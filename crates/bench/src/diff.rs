//! Field-by-field comparison of two run reports with declared tolerances —
//! the regression gate behind the `report_diff` binary.
//!
//! Reports are flattened to `path → leaf` maps. Array elements are keyed by
//! their identity field when they have one (`phase`, `name`, `round`,
//! `node`) and by index otherwise, so "the build_histogram phase" in run A
//! lines up with the same phase in run B even if another phase appears or
//! disappears.
//!
//! Tolerances come from rule lines (`<pattern> <tolerance|ignore>`); the
//! *last* matching rule wins, the default is exact equality. Patterns are
//! globs where `*` matches any run of characters. Wall-clock fields
//! (`compute*_secs`, `*wall_secs`, `percentiles.wall/*`) are ignored by
//! built-in rules — they differ on every run by construction; pass
//! `--strict-wall` to `report_diff` to drop those defaults.
//!
//! Numeric comparison under a tolerance is relative
//! (`|x−y| / max(|x|,|y|)`), except against a zero baseline, where the
//! nonzero side's absolute magnitude is compared against the tolerance
//! (both-zero always matches) — see `nums_match`.

use std::collections::BTreeMap;

use crate::json::Json;

/// A flattened leaf value.
#[derive(Debug, Clone, PartialEq)]
pub enum Leaf {
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Leaf {
    fn render(&self) -> String {
        match self {
            Leaf::Num(v) => format!("{v}"),
            Leaf::Str(s) => format!("{s:?}"),
            Leaf::Bool(b) => b.to_string(),
            Leaf::Null => "null".into(),
        }
    }
}

/// Array-element identity fields, in lookup order. An element carrying
/// several of them (a `trace_profile` attribution row has both `phase` and
/// `track`) is keyed by all of them joined with `/`, so rows that share a
/// phase across tracks — or a track across phases — never collide.
const KEY_FIELDS: [&str; 7] = [
    "phase", "name", "round", "node", "window", "track", "tenant",
];

/// Flattens a JSON document into `path → leaf` (paths `.`-joined, array
/// elements keyed per the module docs).
pub fn flatten(doc: &Json) -> BTreeMap<String, Leaf> {
    let mut out = BTreeMap::new();
    flatten_into(doc, String::new(), &mut out);
    out
}

fn element_key(item: &Json, index: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    for field in KEY_FIELDS {
        match item.get(field) {
            Some(Json::Str(s)) => parts.push(s.clone()),
            Some(Json::Num(v)) => parts.push(format!("{v}")),
            _ => {}
        }
    }
    if parts.is_empty() {
        index.to_string()
    } else {
        parts.join("/")
    }
}

fn flatten_into(value: &Json, path: String, out: &mut BTreeMap<String, Leaf>) {
    let join = |segment: &str| {
        if path.is_empty() {
            segment.to_string()
        } else {
            format!("{path}.{segment}")
        }
    };
    match value {
        Json::Obj(members) => {
            for (k, v) in members {
                flatten_into(v, join(k), out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_into(item, join(&element_key(item, i)), out);
            }
        }
        Json::Num(v) => {
            out.insert(path, Leaf::Num(*v));
        }
        Json::Str(s) => {
            out.insert(path, Leaf::Str(s.clone()));
        }
        Json::Bool(b) => {
            out.insert(path, Leaf::Bool(*b));
        }
        Json::Null => {
            out.insert(path, Leaf::Null);
        }
    }
}

/// One tolerance rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Glob pattern over flattened paths (`*` matches any run of chars).
    pub pattern: String,
    /// Allowed relative difference; `None` skips the field entirely.
    pub tolerance: Option<f64>,
}

/// Built-in rules: skip wall-clock fields, which differ on every run
/// (elapsed seconds, the throughput rates derived from them, the
/// `serving_sim` report's `wall_secs` measurement, and the hist-kernel
/// bench's `quantized_speedup` ratios, which are quotients of wall times).
pub fn default_rules() -> Vec<Rule> {
    [
        "*compute_secs",
        "*compute_max_secs",
        "*compute_p50_secs",
        "*compute_p99_secs",
        "*compute_skew_secs",
        "*_per_sec",
        "*wall_secs",
        "percentiles.wall/*",
        "*quantized_speedup*",
    ]
    .into_iter()
    .map(|p| Rule {
        pattern: p.to_string(),
        tolerance: None,
    })
    .collect()
}

/// Rules for comparing a faulted run against a clean baseline: faults must
/// change *timing only*, never the learned model or the communicated data.
///
/// Everything on the simulated clock is ignored (retries, stragglers, and
/// elastic membership churn legitimately stretch it), as are the fault and
/// membership counters themselves and the resume marker — the clean
/// baseline has no `faults` or `membership` section at all; bytes,
/// packages, losses, and per-round telemetry stay under the strict default
/// and must match the clean run exactly.
pub fn fault_rules() -> Vec<Rule> {
    [
        "*sim_time_secs",
        "percentiles.*",
        "faults.*",
        "membership.*",
        "resumed_from_round",
    ]
    .into_iter()
    .map(|p| Rule {
        pattern: p.to_string(),
        tolerance: None,
    })
    .collect()
}

/// Rules for comparing a `--sparse-wire` run against its dense baseline:
/// the sparse exchange must change *wire accounting only*, never the
/// learned model or the training telemetry.
///
/// Everything that legitimately tracks the frame bytes is ignored — comm
/// bytes/packages and their simulated time, `hist_bytes_wire`, the
/// per-round `sparse_frames` tallies, the `sparsity` section, and the
/// metric percentiles (PS request sizes shift with the frames) — while the
/// structural counters stay under the strict default: losses, split gains,
/// node instance counts, tree/round counts, and `hist_bytes_raw` must
/// match the dense run exactly.
pub fn wire_rules() -> Vec<Rule> {
    [
        "comm.*",
        "phases.*.comm.*",
        "*sim_time_secs",
        "*hist_bytes_wire",
        "*sparse_frames.*",
        "sparsity.*",
        "percentiles.*",
    ]
    .into_iter()
    .map(|p| Rule {
        pattern: p.to_string(),
        tolerance: None,
    })
    .collect()
}

/// Parses a tolerance file: one `<pattern> <tolerance|ignore>` rule per
/// line, `#` comments, blank lines skipped.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(pattern), Some(spec), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "line {}: expected `<pattern> <tolerance|ignore>`, got {line:?}",
                lineno + 1
            ));
        };
        let tolerance = if spec.eq_ignore_ascii_case("ignore") {
            None
        } else {
            let tol: f64 = spec
                .parse()
                .map_err(|_| format!("line {}: invalid tolerance {spec:?}", lineno + 1))?;
            if tol.is_nan() || tol < 0.0 {
                return Err(format!("line {}: tolerance must be >= 0", lineno + 1));
            }
            Some(tol)
        };
        rules.push(Rule {
            pattern: pattern.to_string(),
            tolerance,
        });
    }
    Ok(rules)
}

/// Glob match: `*` matches any (possibly empty) run of characters.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[u8], t: &[u8]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some((b'*', rest)) => (0..=t.len()).any(|skip| rec(rest, &t[skip..])),
            Some((c, rest)) => t
                .split_first()
                .is_some_and(|(tc, tr)| tc == c && rec(rest, tr)),
        }
    }
    rec(pattern.as_bytes(), text.as_bytes())
}

/// How the rules treat one path: `None` → ignore, `Some(tol)` → compare
/// with relative tolerance `tol` (0 = exact). Last matching rule wins;
/// unmatched paths are exact.
fn tolerance_for(path: &str, rules: &[Rule]) -> Option<f64> {
    let mut result = Some(0.0);
    for rule in rules {
        if glob_match(&rule.pattern, path) {
            result = rule.tolerance;
        }
    }
    result
}

/// One field-level disagreement.
#[derive(Debug, Clone)]
pub struct Difference {
    /// Flattened path of the field.
    pub path: String,
    /// What went wrong, human-readable.
    pub detail: String,
}

/// Outcome of a report comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffResult {
    /// Fields that disagree beyond tolerance (empty → reports match).
    pub differences: Vec<Difference>,
    /// Fields compared (present on both sides, not ignored).
    pub compared: usize,
    /// Fields skipped by `ignore` rules.
    pub ignored: usize,
}

impl DiffResult {
    /// True when no field disagreed.
    pub fn is_match(&self) -> bool {
        self.differences.is_empty()
    }
}

/// Compares two parsed reports field by field under `rules`.
pub fn diff_reports(a: &Json, b: &Json, rules: &[Rule]) -> DiffResult {
    let fa = flatten(a);
    let fb = flatten(b);
    let mut result = DiffResult::default();
    let mut paths: Vec<&String> = fa.keys().collect();
    for k in fb.keys() {
        if !fa.contains_key(k) {
            paths.push(k);
        }
    }
    paths.sort();
    for path in paths {
        let Some(tol) = tolerance_for(path, rules) else {
            result.ignored += 1;
            continue;
        };
        match (fa.get(path), fb.get(path)) {
            (Some(va), None) => result.differences.push(Difference {
                path: path.clone(),
                detail: format!("only in first report (= {})", va.render()),
            }),
            (None, Some(vb)) => result.differences.push(Difference {
                path: path.clone(),
                detail: format!("only in second report (= {})", vb.render()),
            }),
            (Some(va), Some(vb)) => {
                result.compared += 1;
                match (va, vb) {
                    (Leaf::Num(x), Leaf::Num(y)) => {
                        if !nums_match(*x, *y, tol) {
                            let rel = rel_diff(*x, *y);
                            result.differences.push(Difference {
                                path: path.clone(),
                                detail: format!(
                                    "{x} vs {y} (relative diff {rel:.3e}, tolerance {tol:.3e})"
                                ),
                            });
                        }
                    }
                    _ => {
                        if va != vb {
                            result.differences.push(Difference {
                                path: path.clone(),
                                detail: format!("{} vs {}", va.render(), vb.render()),
                            });
                        }
                    }
                }
            }
            (None, None) => unreachable!("path came from one of the maps"),
        }
    }
    result
}

fn rel_diff(x: f64, y: f64) -> f64 {
    let denom = x.abs().max(y.abs());
    if denom == 0.0 {
        0.0
    } else {
        (x - y).abs() / denom
    }
}

/// Tolerance comparison with a defined zero-baseline behavior:
///
/// * both zero (including `0.0` vs `-0.0`) → match exactly;
/// * one side zero → the *absolute* magnitude of the other side is compared
///   against `tol` (the relative difference against a zero baseline is
///   always 1, which would reject arbitrarily small values under any
///   tolerance below 1);
/// * both nonzero → relative difference `|x−y| / max(|x|,|y|) <= tol`.
fn nums_match(x: f64, y: f64, tol: f64) -> bool {
    if x == y {
        return true;
    }
    if !x.is_finite() || !y.is_finite() {
        // Both emitters write null for non-finite; a NaN here means the
        // documents already differ structurally.
        return false;
    }
    if x == 0.0 || y == 0.0 {
        // Zero baseline: both-zero already matched above, so exactly one
        // side is nonzero here and |x - y| is its magnitude.
        return (x - y).abs() <= tol;
    }
    tol > 0.0 && rel_diff(x, y) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn glob_patterns() {
        assert!(glob_match("*compute_secs", "compute_secs"));
        assert!(glob_match("*compute_secs", "rounds.0.compute_secs"));
        assert!(!glob_match("*compute_secs", "compute_max_secs"));
        assert!(glob_match(
            "percentiles.wall/*",
            "percentiles.wall/phase_secs/finish.p50"
        ));
        assert!(!glob_match(
            "percentiles.wall/*",
            "percentiles.sim/ps_requests.value"
        ));
        assert!(glob_match("comm.bytes", "comm.bytes"));
        assert!(!glob_match("comm.bytes", "comm.bytes2"));
    }

    #[test]
    fn flatten_keys_arrays_by_identity() {
        let doc = parse(
            r#"{"phases":[{"phase":"new_tree","comm":{"bytes":5}}],
                "rounds":[{"round":0,"split_gains":[1.5,2.5]}],
                "percentiles":[{"name":"sim/x","p50":3}]}"#,
        )
        .unwrap();
        let flat = flatten(&doc);
        assert_eq!(
            flat.get("phases.new_tree.comm.bytes"),
            Some(&Leaf::Num(5.0))
        );
        assert_eq!(flat.get("rounds.0.split_gains.1"), Some(&Leaf::Num(2.5)));
        assert_eq!(flat.get("percentiles.sim/x.p50"), Some(&Leaf::Num(3.0)));
        // Multi-key elements compose their identity: attribution rows share
        // phases across tracks and tracks across phases without colliding.
        let doc = parse(
            r#"{"attribution":[{"track":"net","phase":"find_split","secs":1},
                               {"track":"w0","phase":"find_split","secs":2},
                               {"track":"w0","phase":"new_tree","secs":3}],
                "timeline":[{"window":0,"served":4}]}"#,
        )
        .unwrap();
        let flat = flatten(&doc);
        assert_eq!(
            flat.get("attribution.find_split/net.secs"),
            Some(&Leaf::Num(1.0))
        );
        assert_eq!(
            flat.get("attribution.find_split/w0.secs"),
            Some(&Leaf::Num(2.0))
        );
        assert_eq!(
            flat.get("attribution.new_tree/w0.secs"),
            Some(&Leaf::Num(3.0))
        );
        assert_eq!(flat.get("timeline.0.served"), Some(&Leaf::Num(4.0)));
    }

    #[test]
    fn rule_parsing_and_precedence() {
        let rules = parse_rules(
            "# comment\n\
             *               0.05  # everything loose\n\
             comm.bytes      0     # but bytes exact\n\
             rounds.*        ignore\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(
            tolerance_for("phases.new_tree.comm.sim_time_secs", &rules),
            Some(0.05)
        );
        assert_eq!(tolerance_for("comm.bytes", &rules), Some(0.0));
        assert_eq!(tolerance_for("rounds.0.train_loss", &rules), None);

        assert!(parse_rules("pattern").is_err());
        assert!(parse_rules("pattern x").is_err());
        assert!(parse_rules("pattern -0.5").is_err());
    }

    #[test]
    fn identical_reports_match() {
        let a = parse(r#"{"workers":2,"comm":{"bytes":10,"sim_time_secs":0.5}}"#).unwrap();
        let r = diff_reports(&a, &a.clone(), &default_rules());
        assert!(r.is_match());
        assert_eq!(r.compared, 3);
    }

    #[test]
    fn differences_and_tolerances() {
        let a = parse(r#"{"comm":{"bytes":1000,"sim_time_secs":0.50}}"#).unwrap();
        let b = parse(r#"{"comm":{"bytes":1000,"sim_time_secs":0.51}}"#).unwrap();
        // Exact: sim_time differs.
        let r = diff_reports(&a, &b, &default_rules());
        assert_eq!(r.differences.len(), 1);
        assert!(r.differences[0].path.ends_with("sim_time_secs"));
        // 5% relative tolerance passes.
        let mut rules = default_rules();
        rules.extend(parse_rules("comm.sim_time_secs 0.05").unwrap());
        assert!(diff_reports(&a, &b, &rules).is_match());
        // ...but 1% does not.
        let mut rules = default_rules();
        rules.extend(parse_rules("comm.sim_time_secs 0.01").unwrap());
        assert!(!diff_reports(&a, &b, &rules).is_match());
    }

    #[test]
    fn zero_baseline_branches() {
        // Both zero: passes even at exact tolerance (and across signs).
        assert!(nums_match(0.0, 0.0, 0.0));
        assert!(nums_match(0.0, -0.0, 0.0));
        // Zero vs small nonzero: the relative difference is 1.0, so the
        // pre-fix comparison rejected any tolerance below 1; the defined
        // behavior compares the absolute magnitude against the tolerance.
        assert!(rel_diff(0.0, 0.005) == 1.0);
        assert!(nums_match(0.0, 0.005, 0.01));
        assert!(nums_match(0.005, 0.0, 0.01)); // symmetric
        assert!(nums_match(0.0, -0.005, 0.01)); // sign-independent
                                                // Zero vs nonzero beyond the tolerance still fails...
        assert!(!nums_match(0.0, 0.05, 0.01));
        // ...and exact tolerance keeps zero-vs-nonzero a mismatch.
        assert!(!nums_match(0.0, 1e-300, 0.0));
        // Nonzero pairs keep the relative comparison.
        assert!(nums_match(100.0, 100.5, 0.01));
        assert!(!nums_match(100.0, 102.0, 0.01));
    }

    #[test]
    fn zero_baseline_through_diff_reports() {
        let a = parse(r#"{"rounds":[{"round":0,"gain":0.0}]}"#).unwrap();
        let b = parse(r#"{"rounds":[{"round":0,"gain":0.004}]}"#).unwrap();
        let rules = parse_rules("rounds.*.gain 0.01").unwrap();
        assert!(diff_reports(&a, &b, &rules).is_match());
        let tight = parse_rules("rounds.*.gain 0.001").unwrap();
        assert!(!diff_reports(&a, &b, &tight).is_match());
    }

    #[test]
    fn serving_sim_wall_fields_are_skipped_by_default() {
        let a = parse(
            r#"{"kind":"serving_sim","served":80,"wall_secs":0.031,"wall_served_per_sec":2580.6}"#,
        )
        .unwrap();
        let b = parse(
            r#"{"kind":"serving_sim","served":80,"wall_secs":0.058,"wall_served_per_sec":1379.3}"#,
        )
        .unwrap();
        let r = diff_reports(&a, &b, &default_rules());
        assert!(r.is_match(), "{:?}", r.differences);
        assert_eq!(r.ignored, 2);
        // A structural field still fails under the defaults.
        let c = parse(
            r#"{"kind":"serving_sim","served":81,"wall_secs":0.031,"wall_served_per_sec":2612.9}"#,
        )
        .unwrap();
        let r = diff_reports(&a, &c, &default_rules());
        assert_eq!(r.differences.len(), 1);
        assert_eq!(r.differences[0].path, "served");
    }

    #[test]
    fn quantized_speedup_ratios_are_skipped_by_default() {
        // The hist-kernel bench's quantized/f32 speedups are quotients of
        // wall times, so two runs disagree on them; the structural
        // checksum-equality flag next to them must still be compared.
        let a = parse(
            r#"{"kind":"hist_kernel","quantized_speedup":{"wide/t1":1.61,"wide/t8":1.48},
                "problems":[{"name":"wide","quantized_checksums_equal":true}]}"#,
        )
        .unwrap();
        let b = parse(
            r#"{"kind":"hist_kernel","quantized_speedup":{"wide/t1":1.34,"wide/t8":1.92},
                "problems":[{"name":"wide","quantized_checksums_equal":true}]}"#,
        )
        .unwrap();
        let r = diff_reports(&a, &b, &default_rules());
        assert!(r.is_match(), "{:?}", r.differences);
        assert_eq!(r.ignored, 2);
        let c = parse(
            r#"{"kind":"hist_kernel","quantized_speedup":{"wide/t1":1.61,"wide/t8":1.48},
                "problems":[{"name":"wide","quantized_checksums_equal":false}]}"#,
        )
        .unwrap();
        let r = diff_reports(&a, &c, &default_rules());
        assert_eq!(r.differences.len(), 1);
        assert!(r.differences[0].path.contains("quantized_checksums_equal"));
    }

    #[test]
    fn missing_fields_are_reported() {
        let a = parse(r#"{"comm":{"bytes":1}}"#).unwrap();
        let b = parse(r#"{"comm":{"bytes":1,"packages":2}}"#).unwrap();
        let r = diff_reports(&a, &b, &[]);
        assert_eq!(r.differences.len(), 1);
        assert!(r.differences[0].detail.contains("only in second"));
    }

    #[test]
    fn fault_rules_compare_data_but_not_timing() {
        let clean = parse(
            r#"{"comm":{"bytes":1000,"packages":8,"sim_time_secs":0.50},
                "rounds":[{"round":0,"train_loss":0.5}]}"#,
        )
        .unwrap();
        let faulted = parse(
            r#"{"comm":{"bytes":1000,"packages":8,"sim_time_secs":0.93},
                "rounds":[{"round":0,"train_loss":0.5}],
                "faults":{"plan_seed":42,"retries":7},
                "membership":{"joins":1,"leaves":1,"handoff_secs":0.25},
                "resumed_from_round":3}"#,
        )
        .unwrap();
        let mut rules = default_rules();
        rules.extend(fault_rules());
        let r = diff_reports(&clean, &faulted, &rules);
        assert!(r.is_match(), "{:?}", r.differences);
        // A byte difference is still a failure under fault rules.
        let corrupt = parse(
            r#"{"comm":{"bytes":1001,"packages":8,"sim_time_secs":0.93},
                "rounds":[{"round":0,"train_loss":0.5}]}"#,
        )
        .unwrap();
        let r = diff_reports(&clean, &corrupt, &rules);
        assert_eq!(r.differences.len(), 1);
        assert_eq!(r.differences[0].path, "comm.bytes");
    }

    #[test]
    fn wall_clock_defaults_are_skipped() {
        let a = parse(r#"{"compute_secs":1.0,"comm":{"bytes":5}}"#).unwrap();
        let b = parse(r#"{"compute_secs":9.0,"comm":{"bytes":5}}"#).unwrap();
        let r = diff_reports(&a, &b, &default_rules());
        assert!(r.is_match());
        assert_eq!(r.ignored, 1);
    }
}
