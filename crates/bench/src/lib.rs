//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §3 for the experiment index).
//!
//! Each binary prints a table with the same rows/series the paper reports.
//! Absolute numbers differ from the paper — computation runs on this
//! machine, communication on the simulated network — but the *shapes*
//! (orderings, speedup factors, crossovers) are the reproduction targets,
//! recorded in EXPERIMENTS.md.
//!
//! Set `DIMBOOST_SCALE=full` for paper-shaped (slow) runs; the default
//! `quick` scale finishes in seconds per experiment.

use std::time::Instant;

use dimboost_baselines::{train_baseline, train_tencentboost, BaselineKind};
use dimboost_core::metrics::classification_error;
use dimboost_core::{train_distributed, GbdtConfig, LossPoint, RunReport, Trace};
use dimboost_data::Dataset;
use dimboost_ps::PsConfig;
use dimboost_simnet::CostModel;

pub mod check;
pub mod diff;
pub mod json;

/// Experiment scale, selected by the `DIMBOOST_SCALE` environment variable
/// (`quick` default, `full` for larger paper-shaped runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment sizes for CI and iteration.
    Quick,
    /// Larger runs that stress the same asymptotics.
    Full,
}

impl Scale {
    /// Reads `DIMBOOST_SCALE` (`quick`/`full`).
    pub fn from_env() -> Self {
        match std::env::var("DIMBOOST_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks the quick or full variant of a size.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One system's end-to-end result, printable as a table row.
#[derive(Debug, Clone)]
pub struct SystemResult {
    /// System label (DimBoost, XGBoost, …).
    pub system: String,
    /// Wall-clock computation seconds (max across workers per phase).
    pub compute_secs: f64,
    /// Simulated communication seconds.
    pub comm_secs: f64,
    /// Payload bytes moved.
    pub comm_bytes: u64,
    /// Test error (misclassification), if a test set was supplied.
    pub test_error: Option<f64>,
    /// Per-tree training-loss curve.
    pub curve: Vec<LossPoint>,
    /// Structured per-phase / per-round run report (DimBoost runner only —
    /// the baselines predate phase attribution).
    pub report: Option<RunReport>,
    /// Event-level trace (DimBoost runner only, and only when
    /// `DIMBOOST_TRACE_DIR` requested one).
    pub trace: Option<Trace>,
}

impl SystemResult {
    /// Modelled total time (compute + simulated communication).
    pub fn total_secs(&self) -> f64 {
        self.compute_secs + self.comm_secs
    }
}

/// Runs the DimBoost trainer and packages the result.
pub fn run_dimboost(
    shards: &[Dataset],
    config: &GbdtConfig,
    servers: usize,
    cost: CostModel,
    test: Option<&Dataset>,
) -> SystemResult {
    let ps = PsConfig {
        num_servers: servers,
        num_partitions: 0,
        cost_model: cost,
    };
    let mut config = config.clone();
    // Event traces are opt-in per experiment run via the same env-var
    // convention as reports: collecting them costs memory per event.
    config.collect_trace = std::env::var_os("DIMBOOST_TRACE_DIR").is_some();
    let out = train_distributed(shards, &config, ps).expect("dimboost training failed");
    SystemResult {
        system: "DimBoost".into(),
        compute_secs: out.breakdown.compute_secs,
        comm_secs: out.breakdown.comm.sim_time.seconds(),
        comm_bytes: out.breakdown.comm.bytes,
        test_error: test.map(|t| classification_error(&out.model.predict_dataset(t), t.labels())),
        curve: out.loss_curve,
        report: Some(out.report),
        trace: out.trace,
    }
}

/// Runs one collective-based baseline.
pub fn run_collective_baseline(
    kind: BaselineKind,
    shards: &[Dataset],
    config: &GbdtConfig,
    cost: CostModel,
    test: Option<&Dataset>,
) -> SystemResult {
    let out = train_baseline(kind, shards, config, cost).expect("baseline training failed");
    SystemResult {
        system: kind.name().into(),
        compute_secs: out.breakdown.compute_secs,
        comm_secs: out.breakdown.comm.sim_time.seconds(),
        comm_bytes: out.breakdown.comm.bytes,
        test_error: test.map(|t| classification_error(&out.model.predict_dataset(t), t.labels())),
        curve: out.loss_curve,
        report: None,
        trace: None,
    }
}

/// Runs the TencentBoost baseline (PS without DimBoost's optimizations).
pub fn run_tencentboost(
    shards: &[Dataset],
    config: &GbdtConfig,
    servers: usize,
    cost: CostModel,
    test: Option<&Dataset>,
) -> SystemResult {
    let ps = PsConfig {
        num_servers: servers,
        num_partitions: 0,
        cost_model: cost,
    };
    let out = train_tencentboost(shards, config, ps).expect("tencentboost training failed");
    SystemResult {
        system: "TencentBoost".into(),
        compute_secs: out.breakdown.compute_secs,
        comm_secs: out.breakdown.comm.sim_time.seconds(),
        comm_bytes: out.breakdown.comm.bytes,
        test_error: test.map(|t| classification_error(&out.model.predict_dataset(t), t.labels())),
        curve: out.loss_curve,
        report: None,
        trace: None,
    }
}

/// Table rows for a run report's per-phase breakdown (pairs with
/// [`PHASE_HEADER`]).
pub fn phase_rows(report: &RunReport) -> Vec<Vec<String>> {
    report
        .phases
        .iter()
        .map(|p| {
            vec![
                p.phase.name().to_string(),
                fmt_secs(p.compute_max_secs),
                fmt_secs(p.compute_p50_secs),
                fmt_secs(p.compute_p99_secs),
                fmt_secs(p.compute_skew_secs),
                fmt_bytes(p.comm.bytes),
                p.comm.packages.to_string(),
                fmt_secs(p.comm.sim_time.seconds()),
            ]
        })
        .collect()
}

/// Header matching [`phase_rows`].
pub const PHASE_HEADER: [&str; 8] = [
    "phase",
    "compute(max)",
    "p50",
    "p99",
    "skew",
    "bytes",
    "pkgs",
    "comm(sim)",
];

/// When `DIMBOOST_REPORT_DIR` is set, writes the report's full JSON to
/// `<dir>/<name>.json` and returns the path. Directories are created as
/// needed; failures are reported, not fatal (benches keep printing tables).
pub fn maybe_write_report(name: &str, report: &RunReport) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("DIMBOOST_REPORT_DIR")?;
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("report dir {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, report.json()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("report {}: {e}", path.display());
            None
        }
    }
}

/// When `DIMBOOST_TRACE_DIR` is set, writes the trace's Chrome-trace JSON
/// to `<dir>/<name>.trace.json` (plus the canonical form to
/// `<dir>/<name>.trace.canonical.json`) and returns the first path. Same
/// non-fatal error policy as [`maybe_write_report`].
pub fn maybe_write_trace(name: &str, trace: &Trace) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("DIMBOOST_TRACE_DIR")?;
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("trace dir {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.trace.json"));
    if let Err(e) = std::fs::write(&path, trace.chrome_json()) {
        eprintln!("trace {}: {e}", path.display());
        return None;
    }
    let canonical = dir.join(format!("{name}.trace.canonical.json"));
    if let Err(e) = std::fs::write(&canonical, trace.canonical_chrome_json()) {
        eprintln!("trace {}: {e}", canonical.display());
    }
    Some(path)
}

/// Prints an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

/// Formats byte counts compactly.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1}{}", UNITS[u])
}

/// Times a closure, returning its output and elapsed wall seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Row of the standard end-to-end comparison table.
pub fn result_row(r: &SystemResult) -> Vec<String> {
    vec![
        r.system.clone(),
        fmt_secs(r.compute_secs),
        fmt_secs(r.comm_secs),
        fmt_secs(r.total_secs()),
        fmt_bytes(r.comm_bytes),
        r.test_error.map_or("-".into(), |e| format!("{e:.4}")),
        r.curve
            .last()
            .map_or("-".into(), |p| format!("{:.4}", p.train_loss)),
    ]
}

/// Header matching [`result_row`].
pub const RESULT_HEADER: [&str; 7] = [
    "system",
    "compute",
    "comm(sim)",
    "total",
    "bytes",
    "test err",
    "train loss",
];

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_data::partition::partition_rows;
    use dimboost_data::synthetic::{generate, SparseGenConfig};

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 100), 1);
        assert_eq!(Scale::Full.pick(1, 100), 100);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(120.0), "120s");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_secs(0.0015), "1.50ms");
        assert_eq!(fmt_secs(1e-5), "10.00us");
        assert_eq!(fmt_bytes(512), "512.0B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
    }

    #[test]
    fn runners_produce_comparable_results() {
        let ds = generate(&SparseGenConfig::new(600, 1_500, 8, 5));
        let shards = partition_rows(&ds, 4).unwrap();
        let config = GbdtConfig {
            num_trees: 2,
            max_depth: 3,
            num_candidates: 20,
            ..GbdtConfig::default()
        };
        let dim = run_dimboost(&shards, &config, 4, CostModel::GIGABIT_LAN, Some(&ds));
        let xgb = run_collective_baseline(
            BaselineKind::Xgboost,
            &shards,
            &config,
            CostModel::GIGABIT_LAN,
            Some(&ds),
        );
        let tencent = run_tencentboost(&shards, &config, 4, CostModel::GIGABIT_LAN, Some(&ds));
        for r in [&dim, &xgb, &tencent] {
            assert!(r.total_secs() > 0.0, "{}: zero total", r.system);
            assert!(r.test_error.unwrap() < 0.5, "{}: bad error", r.system);
            assert_eq!(r.curve.len(), 2);
        }
        // DimBoost's compressed, scatter-style pushes move fewer bytes than
        // the XGBoost-style full-histogram allreduce path.
        assert!(dim.comm_bytes < xgb.comm_bytes);
        // The DimBoost runner carries the structured report and it agrees
        // with the flat fields.
        let report = dim.report.as_ref().expect("dimboost report");
        assert_eq!(report.comm.bytes, dim.comm_bytes);
        assert_eq!(report.workers, 4);
        let rows = phase_rows(report);
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.len() == PHASE_HEADER.len()));
        assert!(xgb.report.is_none());
    }
}
