//! Ablation of the *extensions beyond the paper* (DESIGN.md §4b), so their
//! costs/benefits are measured with the same harness as the paper's own
//! optimizations:
//!
//! * sibling histogram subtraction — histogram bytes and build time saved;
//! * row subsampling — compute saved per tree vs. accuracy;
//! * feature-parallel LightGBM — the communication/computation/memory
//!   trade-off of Section 2.3's column-partitioned mode;
//! * early stopping — trees saved on a plateauing run.

use dimboost_baselines::train_lightgbm_feature_parallel;
use dimboost_baselines::BaselineKind;
use dimboost_bench::{fmt_bytes, fmt_secs, print_table, run_collective_baseline, Scale};
use dimboost_core::metrics::classification_error;
use dimboost_core::{
    train_distributed, train_distributed_with_eval, EvalOptions, GbdtConfig, Optimizations,
};
use dimboost_data::partition::{partition_rows, train_test_split};
use dimboost_data::synthetic::{gender_like, generate};
use dimboost_ps::PsConfig;
use dimboost_simnet::CostModel;

fn main() {
    let scale = Scale::from_env();
    let cfg_data = gender_like(42)
        .with_rows(scale.pick(10_000, 40_000))
        .with_features(scale.pick(3_000, 20_000));
    let ds = generate(&cfg_data);
    let (train, test) = train_test_split(&ds, 0.1, 42).unwrap();
    let workers = scale.pick(5, 10);
    let shards = partition_rows(&train, workers).unwrap();
    let ps = PsConfig {
        num_servers: workers,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    };
    let base = GbdtConfig {
        num_trees: scale.pick(5, 20),
        max_depth: scale.pick(5, 7),
        num_candidates: 20,
        learning_rate: 0.2,
        num_threads: 4,
        ..GbdtConfig::default()
    };

    // ---- Sibling histogram subtraction. -----------------------------------
    let mut rows = Vec::new();
    for (label, sub) in [
        ("paper optimizations only", false),
        ("+ sibling subtraction", true),
    ] {
        let mut cfg = base.clone();
        cfg.opts = Optimizations {
            hist_subtraction: sub,
            ..Optimizations::ALL
        };
        let out = train_distributed(&shards, &cfg, ps).unwrap();
        let err = classification_error(&out.model.predict_dataset(&test), test.labels());
        rows.push(vec![
            label.into(),
            fmt_secs(out.breakdown.compute_secs),
            fmt_secs(out.breakdown.comm.sim_time.seconds()),
            fmt_bytes(out.breakdown.comm.bytes),
            format!("{err:.4}"),
        ]);
    }
    print_table(
        "Extension: sibling histogram subtraction",
        &["configuration", "compute", "comm(sim)", "bytes", "test err"],
        &rows,
    );

    // ---- Pre-binned construction. -------------------------------------------
    let mut rows = Vec::new();
    for (label, binning) in [
        ("bin per build (Algorithm 2)", false),
        ("+ pre-binning", true),
    ] {
        let mut cfg = base.clone();
        cfg.opts.pre_binning = binning;
        let out = train_distributed(&shards, &cfg, ps).unwrap();
        rows.push(vec![
            label.into(),
            fmt_secs(out.breakdown.compute_secs),
            fmt_secs(out.breakdown.total_secs()),
        ]);
    }
    print_table(
        "Extension: pre-binned histogram construction",
        &["configuration", "compute", "total"],
        &rows,
    );

    // ---- Row subsampling. ---------------------------------------------------
    let mut rows = Vec::new();
    for ratio in [1.0f64, 0.5, 0.25] {
        let mut cfg = base.clone();
        cfg.instance_sample_ratio = ratio;
        let out = train_distributed(&shards, &cfg, ps).unwrap();
        let err = classification_error(&out.model.predict_dataset(&test), test.labels());
        rows.push(vec![
            format!("{:.0}% rows/tree", ratio * 100.0),
            fmt_secs(out.breakdown.compute_secs),
            fmt_secs(out.breakdown.total_secs()),
            format!("{err:.4}"),
        ]);
    }
    print_table(
        "Extension: stochastic row subsampling",
        &["configuration", "compute", "total", "test err"],
        &rows,
    );

    // ---- Feature-parallel vs data-parallel LightGBM. -------------------------
    let data_parallel = run_collective_baseline(
        BaselineKind::Lightgbm,
        &shards,
        &base,
        CostModel::GIGABIT_LAN,
        Some(&test),
    );
    let fp =
        train_lightgbm_feature_parallel(&train, workers, &base, CostModel::GIGABIT_LAN).unwrap();
    let fp_err = classification_error(&fp.model.predict_dataset(&test), test.labels());
    print_table(
        "Extension: LightGBM feature-parallel vs data-parallel (Section 2.3)",
        &[
            "mode",
            "compute",
            "comm(sim)",
            "bytes",
            "test err",
            "memory/worker",
        ],
        &[
            vec![
                "data-parallel".into(),
                fmt_secs(data_parallel.compute_secs),
                fmt_secs(data_parallel.comm_secs),
                fmt_bytes(data_parallel.comm_bytes),
                format!("{:.4}", data_parallel.test_error.unwrap()),
                fmt_bytes((train.memory_bytes() / workers) as u64),
            ],
            vec![
                "feature-parallel".into(),
                fmt_secs(fp.breakdown.compute_secs),
                fmt_secs(fp.breakdown.comm.sim_time.seconds()),
                fmt_bytes(fp.breakdown.comm.bytes),
                format!("{fp_err:.4}"),
                // The paper's critique: the whole dataset on every worker.
                fmt_bytes(train.memory_bytes() as u64),
            ],
        ],
    );

    // ---- Early stopping. ------------------------------------------------------
    let mut cfg = base.clone();
    cfg.num_trees = scale.pick(15, 40);
    cfg.learning_rate = 0.5; // plateaus quickly
    let ev = EvalOptions {
        dataset: &test,
        early_stopping_rounds: Some(3),
    };
    let out = train_distributed_with_eval(&shards, &cfg, ps, Some(ev)).unwrap();
    println!(
        "\nExtension: early stopping — budget {} rounds, stopped with {} trees (best round {:?})",
        cfg.num_trees,
        out.model.num_trees(),
        out.best_iteration,
    );
    let pts: Vec<String> = out
        .eval_curve
        .iter()
        .map(|p| format!("({}, {:.4})", p.tree, p.train_loss))
        .collect();
    println!("eval curve: {}", pts.join(" "));
}
