//! Profiles a trace file into a canonical `{"kind":"trace_profile"}`
//! report: critical-path decomposition, utilization/wait split, and (for
//! serve-sim traces) the per-tenant SLO breakdown.
//!
//! ```text
//! trace_analyze [--out profile.json] [--folded stacks.folded] [--top N] <trace>
//! ```
//!
//! The input format is sniffed from the header line:
//!
//! * `# dimboost-trace-events v1 ...` — a training events-text trace
//!   (`dimboost train --trace-events`), analyzed by `simnet::analyze`;
//! * `# serve-sim-trace v1 ...` — a serving trace
//!   (`dimboost serve-sim --trace`), analyzed by `serving::analyze`.
//!
//! `--out` writes the canonical profile JSON (byte-identical across reruns
//! of the same configuration — `cmp` and `report_diff` gate it in ci.sh),
//! `--folded` writes folded flamegraph stacks, and the summary always
//! prints to stdout (`--top` bounds its table rows, default 10).
//!
//! Exit status: 0 on success, 1 when the trace fails an analyzer check
//! (the critical-path identity, a conservation law), 2 on usage or I/O
//! errors.

use std::process::ExitCode;

use dimboost_serving::{analyze_serve_trace, is_serve_trace};
use dimboost_simnet::{analyze_trace, Trace};

const USAGE: &str =
    "usage: trace_analyze [--out profile.json] [--folded stacks.folded] [--top N] <trace>";

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_analyze: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut folded: Option<String> = None;
    let mut top = 10usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(v) => out = Some(v.clone()),
                None => return fail("--out needs a path"),
            },
            "--folded" => match iter.next() {
                Some(v) => folded = Some(v.clone()),
                None => return fail("--folded needs a path"),
            },
            "--top" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => top = n,
                _ => return fail("--top needs a positive count"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => return fail(&format!("unknown flag {flag:?}")),
            p if path.is_none() => path = Some(p.to_string()),
            _ => return fail("expected exactly one trace file"),
        }
    }
    let Some(path) = path else {
        return fail("expected a trace file");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => return fail(&format!("read {path}: {e}")),
    };

    // Sniff the trace kind from the header and profile it; both analyzers
    // produce the same artifact trio (canonical JSON, folded stacks, human
    // summary).
    let (json, stacks, summary) = if is_serve_trace(&text) {
        match analyze_serve_trace(&text) {
            Ok(p) => (p.canonical_json(), p.folded_stacks(), p.summary(top)),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let trace = match Trace::parse_events_text(&text) {
            Ok(trace) => trace,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        match analyze_trace(&trace) {
            Ok(p) => (p.canonical_json(), p.folded_stacks(), p.summary(top)),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    if let Some(out) = out {
        if let Err(e) = std::fs::write(&out, &json) {
            return fail(&format!("write {out}: {e}"));
        }
    }
    if let Some(folded) = folded {
        if let Err(e) = std::fs::write(&folded, &stacks) {
            return fail(&format!("write {folded}: {e}"));
        }
    }
    print!("{summary}");
    ExitCode::SUCCESS
}
