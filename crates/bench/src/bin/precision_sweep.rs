//! Appendix A.1 / Section 6.1 extension — accuracy and traffic vs
//! compression bit width.
//!
//! The paper fixes r = 8 and reports test error 0.2514 (vs 0.2509 at full
//! precision). This sweep varies r ∈ {2, 4, 8, 16} plus full precision and
//! reports test error, pushed bytes, and modelled time, plus an empirical
//! check of the Appendix A.1 unbiasedness argument: the mean decoded value
//! over repeated quantizations converges to the input.

use dimboost_bench::{fmt_bytes, fmt_secs, print_table, run_dimboost, Scale};
use dimboost_core::GbdtConfig;
use dimboost_data::partition::{partition_rows, train_test_split};
use dimboost_data::synthetic::{gender_like, generate};
use dimboost_ps::quantize::quantize;
use dimboost_simnet::CostModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let cfg_data = gender_like(42)
        .with_rows(scale.pick(8_000, 40_000))
        .with_features(scale.pick(2_000, 16_000));
    let ds = generate(&cfg_data);
    let (train, test) = train_test_split(&ds, 0.1, 42).unwrap();
    let workers = scale.pick(5, 10);
    let shards = partition_rows(&train, workers).unwrap();

    let base = GbdtConfig {
        num_trees: scale.pick(5, 20),
        max_depth: scale.pick(4, 6),
        num_candidates: 20,
        learning_rate: 0.2,
        num_threads: 4,
        ..GbdtConfig::default()
    };

    let mut rows = Vec::new();
    // Full precision reference.
    let mut cfg = base.clone();
    cfg.opts.low_precision = false;
    let full = run_dimboost(&shards, &cfg, workers, CostModel::GIGABIT_LAN, Some(&test));
    rows.push(vec![
        "32 (full f32)".into(),
        format!("{:.4}", full.test_error.unwrap()),
        fmt_bytes(full.comm_bytes),
        fmt_secs(full.total_secs()),
    ]);
    for bits in [16u8, 8, 4, 2] {
        let mut cfg = base.clone();
        cfg.opts.low_precision = true;
        cfg.compress_bits = bits;
        let r = run_dimboost(&shards, &cfg, workers, CostModel::GIGABIT_LAN, Some(&test));
        rows.push(vec![
            bits.to_string(),
            format!("{:.4}", r.test_error.unwrap()),
            fmt_bytes(r.comm_bytes),
            fmt_secs(r.total_secs()),
        ]);
    }
    print_table(
        "Precision sweep: compression bits vs accuracy and traffic",
        &["bits", "test error", "bytes moved", "total time"],
        &rows,
    );

    // ---- Appendix A.1 empirical unbiasedness check. -----------------------
    let values: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 13.0).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let trials = 50_000;
    let mut sums = vec![0.0f64; values.len()];
    for _ in 0..trials {
        let q = quantize(&values, 8, &mut rng);
        for (s, v) in sums.iter_mut().zip(q.dequantize()) {
            *s += v as f64;
        }
    }
    let max_bias = values
        .iter()
        .zip(&sums)
        .map(|(&v, &s)| (s / trials as f64 - v as f64).abs())
        .fold(0.0f64, f64::max);
    let step = values.iter().fold(0.0f32, |m, v| m.max(v.abs())) / 127.0;
    println!(
        "\nAppendix A.1: max |E[decoded] - value| over {} trials = {:.2e} (one quantization step = {:.2e})",
        trials, max_bias, step
    );
    println!(
        "unbiasedness: {}",
        if max_bias < step as f64 / 10.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
