//! Table 1 / Figure 3 — communication cost of the four model-aggregation
//! strategies under the α/β/γ cost model, with the real data path executed
//! to verify that all strategies compute identical sums.
//!
//! Paper claims to reproduce (Section 3, "Remarks"):
//! * For large histograms, DimBoost and LightGBM beat XGBoost and MLlib.
//! * DimBoost ≈ LightGBM at power-of-two worker counts.
//! * Off powers of two, LightGBM costs about twice DimBoost.
//! * For small messages, latency dominates and the gap closes/reverses.

use dimboost_bench::{fmt_secs, print_table};
use dimboost_simnet::collectives::{
    allreduce_binomial, ps_batch_exchange, reduce_scatter_halving, reduce_to_one,
};
use dimboost_simnet::CostModel;

fn main() {
    let model = CostModel::GIGABIT_LAN;
    println!(
        "cost model: alpha={}s/package, beta={}s/byte, gamma={}s/byte",
        model.alpha, model.beta, model.gamma
    );

    // ---- Closed-form sweep over histogram size and worker count. ---------
    let sizes: [(usize, &str); 4] = [
        (256 << 10, "256KiB"),
        (4 << 20, "4MiB"),
        (32 << 20, "32MiB"),
        (128 << 20, "128MiB"),
    ];
    for (h, label) in sizes {
        let mut rows = Vec::new();
        for w in [4usize, 5, 8, 16, 32, 50] {
            rows.push(vec![
                w.to_string(),
                fmt_secs(model.t_reduce_to_one(h, w).seconds()),
                fmt_secs(model.t_allreduce_binomial(h, w).seconds()),
                fmt_secs(model.t_reduce_scatter(h, w).seconds()),
                fmt_secs(model.t_ps_exchange(h, w).seconds()),
            ]);
        }
        print_table(
            &format!("Table 1 closed forms, histogram = {label}"),
            &[
                "w",
                "MLlib (reduce)",
                "XGBoost (allreduce)",
                "LightGBM (reducescatter)",
                "DimBoost (PS)",
            ],
            &rows,
        );
    }

    // ---- Executed collectives: real buffers, verified equivalence. -------
    let elems = 1 << 20; // 4 MiB of f32
    let mut rows = Vec::new();
    for w in [4usize, 5, 8, 16] {
        let buffers: Vec<Vec<f32>> = (0..w)
            .map(|r| {
                (0..elems)
                    .map(|i| ((r * 31 + i) % 17) as f32 - 8.0)
                    .collect()
            })
            .collect();
        let (sum_ref, s_mllib) = reduce_to_one(&buffers, 0, &model);
        let (sum_xgb, s_xgb) = allreduce_binomial(&buffers, &model);
        let (scat, s_lgbm) = reduce_scatter_halving(&buffers, &model);
        let (ps, s_ps) = ps_batch_exchange(&buffers, w, &model);

        let agree = |v: &[f32]| v.iter().zip(&sum_ref).all(|(a, b)| (a - b).abs() < 1e-2);
        assert!(agree(&sum_xgb), "allreduce sum mismatch at w={w}");
        assert!(
            agree(&scat.assemble()),
            "reducescatter sum mismatch at w={w}"
        );
        assert!(agree(&ps.assemble()), "ps exchange sum mismatch at w={w}");

        rows.push(vec![
            w.to_string(),
            format!(
                "{} / {}pkg",
                fmt_secs(s_mllib.sim_time.seconds()),
                s_mllib.packages
            ),
            format!(
                "{} / {}pkg",
                fmt_secs(s_xgb.sim_time.seconds()),
                s_xgb.packages
            ),
            format!(
                "{} / {}pkg",
                fmt_secs(s_lgbm.sim_time.seconds()),
                s_lgbm.packages
            ),
            format!(
                "{} / {}pkg",
                fmt_secs(s_ps.sim_time.seconds()),
                s_ps.packages
            ),
        ]);
    }
    print_table(
        "Executed collectives (4MiB histogram, sums verified identical)",
        &["w", "MLlib", "XGBoost", "LightGBM", "DimBoost"],
        &rows,
    );

    // ---- The paper's headline ratios at the Gender-scale histogram. ------
    let h = 32 << 20;
    for w in [32usize, 50] {
        let mllib = model.t_reduce_to_one(h, w).seconds();
        let xgb = model.t_allreduce_binomial(h, w).seconds();
        let lgbm = model.t_reduce_scatter(h, w).seconds();
        let dim = model.t_ps_exchange(h, w).seconds();
        println!(
            "\nw={w}: DimBoost {}; speedup vs MLlib {:.1}x, vs XGBoost {:.1}x, vs LightGBM {:.2}x{}",
            fmt_secs(dim),
            mllib / dim,
            xgb / dim,
            lgbm / dim,
            if w.is_power_of_two() { " (power of two)" } else { " (non-power-of-two: LightGBM doubled)" },
        );
    }
}
