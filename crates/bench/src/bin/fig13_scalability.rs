//! Figure 13 (Appendix A.2) — scalability: run time decomposed into data
//! loading, computation, and communication as machines are added.
//!
//! Shapes to reproduce: loading time drops ~linearly with machines;
//! computation drops sublinearly (split finding does not parallelize with
//! instances); communication appears at w ≥ 2 but does not grow
//! significantly with more workers (the PS exchange's bandwidth term is
//! constant in w).

use dimboost_bench::{
    fmt_secs, maybe_write_report, maybe_write_trace, phase_rows, print_table, run_dimboost, timed,
    Scale, PHASE_HEADER,
};
use dimboost_core::GbdtConfig;
use dimboost_data::partition::partition_rows;
use dimboost_data::synthetic::{generate, rcv1_like, synthesis_like, SparseGenConfig};
use dimboost_simnet::CostModel;

fn sweep(name: &str, cfg_data: &SparseGenConfig, workers: &[usize], config: &GbdtConfig) {
    let ds = generate(cfg_data);
    let mut rows = Vec::new();
    let mut last_report = None;
    for &w in workers {
        // "Loading": materializing each worker's shard from the source
        // (stands in for the HDFS read, split evenly across machines).
        let (shards, t_load_total) = timed(|| partition_rows(&ds, w).unwrap());
        let load = t_load_total / w as f64;
        let r = run_dimboost(&shards, config, w, CostModel::GIGABIT_LAN, None);
        rows.push(vec![
            w.to_string(),
            fmt_secs(load),
            fmt_secs(r.compute_secs),
            fmt_secs(r.comm_secs),
            fmt_secs(load + r.total_secs()),
        ]);
        if let Some(trace) = &r.trace {
            if let Some(path) =
                maybe_write_trace(&format!("fig13_{}_w{w}", name.replace(' ', "_")), trace)
            {
                println!("wrote {}", path.display());
            }
        }
        if let Some(report) = r.report {
            if let Some(path) =
                maybe_write_report(&format!("fig13_{}_w{w}", name.replace(' ', "_")), &report)
            {
                println!("wrote {}", path.display());
            }
            last_report = Some((w, report));
        }
    }
    print_table(
        &format!("Figure 13: scalability on {name}"),
        &[
            "workers",
            "loading",
            "computation",
            "communication(sim)",
            "total",
        ],
        &rows,
    );
    // Per-phase view of the widest run: where the added machines spend
    // their time, and how skewed the workers are.
    if let Some((w, report)) = last_report {
        print_table(
            &format!("Per-phase breakdown on {name} (w = {w})"),
            &PHASE_HEADER,
            &phase_rows(&report),
        );
    }
}

fn main() {
    let scale = Scale::from_env();
    let config = GbdtConfig {
        num_trees: scale.pick(4, 20),
        max_depth: scale.pick(4, 7),
        num_candidates: 20,
        num_threads: 4,
        ..GbdtConfig::default()
    };

    let rcv1 = rcv1_like(42).with_rows(scale.pick(8_000, 20_000));
    sweep("RCV1-shaped", &rcv1, &[1, 2, 5], &config);

    let synthesis = synthesis_like(42)
        .with_rows(scale.pick(10_000, 40_000))
        .with_features(scale.pick(3_000, 10_000));
    sweep(
        "Synthesis-shaped",
        &synthesis,
        &scale.pick_slice(&[2, 5, 10], &[10, 20, 50]),
        &config,
    );
}

trait PickSlice {
    fn pick_slice<'a>(&self, quick: &'a [usize], full: &'a [usize]) -> Vec<usize>;
}

impl PickSlice for Scale {
    fn pick_slice<'a>(&self, quick: &'a [usize], full: &'a [usize]) -> Vec<usize> {
        match self {
            Scale::Quick => quick.to_vec(),
            Scale::Full => full.to_vec(),
        }
    }
}
