//! Table 3 — effect of each proposed optimization, added cumulatively in
//! the paper's order.
//!
//! Three measurements, as in the paper:
//! 1. *Build the root node*: dense pass → sparsity-aware (Algorithm 2) →
//!    + parallel batch construction.
//! 2. *Build the last layer*: with instances located by re-routing the
//!    whole shard vs. by the node-to-instance index.
//! 3. *Build a tree* end-to-end: + task scheduler → + two-phase split →
//!    + low-precision histograms (modelled time = compute + simulated comm).
//!
//! Shapes to reproduce: sparsity-aware is the dominant win (paper: 1500×,
//! proportional to M/z), parallel batch adds a multi-core factor, the index
//! ~2× on deep layers, and the three FIND_SPLIT optimizations progressively
//! cut per-tree time (paper: 131 → 120 → 77 → 41 s).

use dimboost_bench::{
    fmt_bytes, fmt_secs, maybe_write_report, maybe_write_trace, print_table, timed, Scale,
};
use dimboost_core::hist_build::build_row;
use dimboost_core::loss::GradPair;
use dimboost_core::parallel::{build_row_batched, BatchConfig};
use dimboost_core::{train_distributed, FeatureMeta, GbdtConfig, NodeIndex, Optimizations, Tree};
use dimboost_data::partition::partition_rows;
use dimboost_data::synthetic::{gender_like, generate};
use dimboost_data::Dataset;
use dimboost_ps::PsConfig;
use dimboost_simnet::{CostModel, Phase};
use dimboost_sketch::{propose_candidates, GkSketch, SplitCandidates};

fn candidates_for(ds: &Dataset, k: usize) -> Vec<SplitCandidates> {
    let mut sketches: Vec<GkSketch> = (0..ds.num_features())
        .map(|_| GkSketch::new(0.02))
        .collect();
    for (row, _) in ds.iter_rows() {
        for (f, v) in row.iter() {
            sketches[f as usize].insert(v);
        }
    }
    sketches
        .iter_mut()
        .map(|s| propose_candidates(s, k))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let cfg_data = gender_like(42)
        .with_rows(scale.pick(20_000, 60_000))
        .with_features(scale.pick(4_000, 33_000));
    let ds = generate(&cfg_data);
    println!(
        "dataset: {} rows x {} features, avg nnz {:.1} (z/M = {:.5})",
        ds.num_rows(),
        ds.num_features(),
        ds.avg_nnz(),
        ds.avg_nnz() / ds.num_features() as f64
    );

    let candidates = candidates_for(&ds, 20);
    let meta = FeatureMeta::all_features(&candidates);
    let grads: Vec<GradPair> = (0..ds.num_rows())
        .map(|i| GradPair {
            g: ((i % 5) as f32 - 2.0) / 2.0,
            h: 0.25,
        })
        .collect();
    let all: Vec<u32> = (0..ds.num_rows() as u32).collect();

    // ---- 1. Build the root node. -----------------------------------------
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "host parallelism: {cores} core(s){}",
        if cores == 1 {
            " — the parallel-batch row cannot speed up on one core; its win is the multi-core factor (paper: 33s -> 0.218s on 24 cores)"
        } else {
            ""
        }
    );

    let (_, t_dense) = timed(|| build_row(&ds, &all, &grads, &meta, false));
    let (_, t_sparse) = timed(|| build_row(&ds, &all, &grads, &meta, true));
    let bc = BatchConfig {
        batch_size: 1_000,
        threads: 8,
        sparse: true,
    };
    let (_, t_batch) = timed(|| build_row_batched(&ds, &all, &grads, &meta, &bc));
    print_table(
        "Table 3a: build the root node",
        &["configuration", "time", "speedup vs dense"],
        &[
            vec!["dense (basic)".into(), fmt_secs(t_dense), "1.0x".into()],
            vec![
                "+ sparsity-aware".into(),
                fmt_secs(t_sparse),
                format!("{:.0}x", t_dense / t_sparse),
            ],
            vec![
                "+ parallel batch".into(),
                fmt_secs(t_batch),
                format!("{:.0}x", t_dense / t_batch),
            ],
        ],
    );

    // ---- 2. Build the last layer: scan vs node-to-instance index. --------
    // Grow a random tree of depth `d-1` and mirror it in a NodeIndex, then
    // time histogram construction for the whole last layer both ways.
    let depth = 5;
    let mut tree = Tree::new(depth);
    let mut index = NodeIndex::new(ds.num_rows(), tree.capacity());
    let mut frontier = vec![0u32];
    for _ in 0..depth - 1 {
        let mut next = Vec::new();
        for &node in &frontier {
            // Split on the feature most frequent within this node (at
            // threshold 0), which keeps the layer reasonably balanced.
            let mut counts = vec![0u32; ds.num_features()];
            for &i in index.instances(node) {
                for &f in ds.row(i as usize).indices() {
                    counts[f as usize] += 1;
                }
            }
            let f = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .map(|(f, _)| f)
                .unwrap_or(0);
            let threshold = 0.0f32;
            tree.set_internal(node, f as u32, threshold);
            let (lc, rc) = (Tree::left_child(node), Tree::right_child(node));
            index.split(node, lc, rc, |i| {
                ds.row(i as usize).get(f as u32) <= threshold
            });
            next.push(lc);
            next.push(rc);
        }
        frontier = next;
    }
    println!(
        "\nlast layer: {} nodes, sizes {:?}",
        frontier.len(),
        frontier.iter().map(|&n| index.count(n)).collect::<Vec<_>>()
    );

    let (_, t_scan) = timed(|| {
        for &node in &frontier {
            let instances: Vec<u32> = (0..ds.num_rows() as u32)
                .filter(|&i| tree.route(&ds.row(i as usize), 0) == node)
                .collect();
            build_row_batched(&ds, &instances, &grads, &meta, &bc);
        }
    });
    let (_, t_index) = timed(|| {
        for &node in &frontier {
            build_row_batched(&ds, index.instances(node), &grads, &meta, &bc);
        }
    });
    print_table(
        "Table 3b: build the last layer",
        &["configuration", "time", "speedup"],
        &[
            vec![
                "full-shard routing (no index)".into(),
                fmt_secs(t_scan),
                "1.0x".into(),
            ],
            vec![
                "+ node-to-instance index".into(),
                fmt_secs(t_index),
                format!("{:.2}x", t_scan / t_index),
            ],
        ],
    );

    // ---- 3. Build a tree: FIND_SPLIT optimizations, cumulative. ----------
    let workers = scale.pick(5, 8);
    let shards = partition_rows(&ds, workers).unwrap();
    let base = GbdtConfig {
        num_trees: 1,
        max_depth: depth,
        num_candidates: 20,
        num_threads: 8,
        batch_size: 1_000,
        ..GbdtConfig::default()
    };
    let steps: Vec<(&str, Optimizations)> = vec![
        (
            "index+sparse+batch (no sched/2phase/lp)",
            Optimizations {
                task_scheduler: false,
                two_phase_split: false,
                low_precision: false,
                ..Optimizations::ALL
            },
        ),
        (
            "+ task scheduler",
            Optimizations {
                two_phase_split: false,
                low_precision: false,
                ..Optimizations::ALL
            },
        ),
        (
            "+ two-phase split",
            Optimizations {
                low_precision: false,
                ..Optimizations::ALL
            },
        ),
        ("+ low-precision histogram", Optimizations::ALL),
    ];
    let mut rows = Vec::new();
    let mut first_total = None;
    for (step, (label, opts)) in steps.into_iter().enumerate() {
        let mut cfg = base.clone();
        cfg.opts = opts;
        cfg.collect_trace = std::env::var_os("DIMBOOST_TRACE_DIR").is_some();
        let ps = PsConfig {
            num_servers: workers,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let out = train_distributed(&shards, &cfg, ps).expect("training failed");
        let total = out.breakdown.total_secs();
        let first = *first_total.get_or_insert(total);
        // Phase-attributed bytes isolate where each optimization saves
        // traffic: two-phase split shrinks FIND_SPLIT's pulls, low
        // precision shrinks BUILD_HISTOGRAM's pushes.
        let phase_bytes = |phase| out.report.phase(phase).map_or(0, |p| p.comm.bytes);
        rows.push(vec![
            label.into(),
            fmt_secs(out.breakdown.compute_secs),
            fmt_secs(out.breakdown.comm.sim_time.seconds()),
            fmt_bytes(phase_bytes(Phase::BuildHistogram)),
            fmt_bytes(phase_bytes(Phase::FindSplit)),
            fmt_secs(total),
            format!("{:.2}x", first / total),
        ]);
        if let Some(path) = maybe_write_report(&format!("table3_step{step}"), &out.report) {
            println!("wrote {}", path.display());
        }
        if let Some(trace) = &out.trace {
            if let Some(path) = maybe_write_trace(&format!("table3_step{step}"), trace) {
                println!("wrote {}", path.display());
            }
        }
    }
    print_table(
        "Table 3c: build a tree (modelled time = compute + simulated comm)",
        &[
            "configuration",
            "compute",
            "comm(sim)",
            "hist bytes",
            "split bytes",
            "total",
            "speedup",
        ],
        &rows,
    );
}
