//! Table 4 — impact of the number of parameter servers.
//!
//! The paper trains Gender on 50 workers and varies p ∈ {5, 20, 50}: run
//! time drops from 38 → 23 → 17 minutes (2.2× from 5 to 50 servers).
//! Shape to reproduce: end-to-end time decreases monotonically as servers
//! are added, because each server's inbound link carries `w·h/p` bytes.

use dimboost_bench::{fmt_secs, print_table, run_dimboost, Scale};
use dimboost_core::GbdtConfig;
use dimboost_data::partition::partition_rows;
use dimboost_data::synthetic::{gender_like, generate};
use dimboost_simnet::CostModel;

fn main() {
    let scale = Scale::from_env();
    let workers = scale.pick(10, 50);
    let servers = match scale {
        Scale::Quick => vec![1, 4, 10],
        Scale::Full => vec![5, 20, 50],
    };
    let cfg_data = gender_like(42)
        .with_rows(scale.pick(8_000, 40_000))
        .with_features(scale.pick(4_000, 33_000));
    let ds = generate(&cfg_data);
    let shards = partition_rows(&ds, workers).unwrap();
    let config = GbdtConfig {
        num_trees: scale.pick(3, 20),
        max_depth: scale.pick(4, 7),
        num_candidates: 20,
        num_threads: 4,
        ..GbdtConfig::default()
    };

    let mut rows = Vec::new();
    let mut slowest = None;
    for &p in &servers {
        let r = run_dimboost(&shards, &config, p, CostModel::GIGABIT_LAN, None);
        let total = r.total_secs();
        let base = *slowest.get_or_insert(total);
        rows.push(vec![
            p.to_string(),
            fmt_secs(r.compute_secs),
            fmt_secs(r.comm_secs),
            fmt_secs(total),
            format!("{:.2}x", base / total),
        ]);
    }
    print_table(
        &format!("Table 4: impact of #parameter servers ({workers} workers)"),
        &[
            "#servers",
            "compute",
            "comm(sim)",
            "total",
            "speedup vs fewest",
        ],
        &rows,
    );
}
