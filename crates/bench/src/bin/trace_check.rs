//! Validates exported Chrome-trace-event JSON files: balanced B/E nesting
//! per lane, monotone timestamps, phase tags, strictly increasing sequence
//! numbers, and (optionally) the expected track layout.
//!
//! ```text
//! trace_check [--workers N] [--servers N] [--expect-faults] <trace.json>...
//! ```
//!
//! `--expect-faults` requires the `faults` lane (fault-injected runs emit
//! one); without the flag the lane must be absent (clean runs never declare
//! it).
//!
//! Exit status: 0 when every file validates, 1 when any fails, 2 on usage
//! or I/O errors.

use std::process::ExitCode;

use dimboost_bench::check::{check_chrome_trace, check_fault_track, check_track_layout};

const USAGE: &str =
    "usage: trace_check [--workers N] [--servers N] [--expect-faults] <trace.json>...";

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut workers: Option<usize> = None;
    let mut servers: Option<usize> = None;
    let mut expect_faults = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workers" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => workers = Some(n),
                None => return fail("--workers needs a count"),
            },
            "--servers" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => servers = Some(n),
                None => return fail("--servers needs a count"),
            },
            "--expect-faults" => expect_faults = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => return fail(&format!("unknown flag {flag:?}")),
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        return fail("expected at least one trace file");
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => return fail(&format!("read {path}: {e}")),
        };
        match check_chrome_trace(&text) {
            Ok(stats) => {
                let layout = check_track_layout(&stats, workers.unwrap_or(0), servers.unwrap_or(0))
                    .and_then(|()| check_fault_track(&stats, expect_faults));
                match layout {
                    Ok(()) => println!(
                        "{path}: ok ({} entries, {} intervals, {} tracks)",
                        stats.entries,
                        stats.intervals,
                        stats.tracks.len()
                    ),
                    Err(e) => {
                        eprintln!("{path}: bad track layout: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("{path}: invalid: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
