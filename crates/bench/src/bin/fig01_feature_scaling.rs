//! Figure 1 — run time of an XGBoost-style system vs DimBoost as the
//! feature dimension grows.
//!
//! Paper claim to reproduce: XGBoost's run time grows steeply with the
//! number of features (dense construction + full-histogram allreduce),
//! while DimBoost grows much more slowly (sparsity-aware construction +
//! compressed scatter-style aggregation), so the gap widens with dimension.

use dimboost_baselines::BaselineKind;
use dimboost_bench::{fmt_secs, print_table, run_collective_baseline, run_dimboost, Scale};
use dimboost_core::GbdtConfig;
use dimboost_data::partition::partition_rows;
use dimboost_data::synthetic::{gender_like, generate};
use dimboost_simnet::CostModel;

fn main() {
    let scale = Scale::from_env();
    let rows = scale.pick(4_000, 20_000);
    let dims = match scale {
        Scale::Quick => vec![500, 1_000, 2_000, 4_000],
        Scale::Full => vec![2_000, 8_000, 16_000, 33_000],
    };
    let workers = 5;

    // One Gender-shaped dataset at the largest dimension; prefixes give the
    // smaller-dimension variants, exactly how the paper derives Gender-10K.
    let full = generate(
        &gender_like(42)
            .with_rows(rows)
            .with_features(*dims.last().unwrap()),
    );

    let config = GbdtConfig {
        num_trees: scale.pick(3, 10),
        max_depth: 4,
        num_candidates: 20,
        learning_rate: 0.1,
        num_threads: 4,
        ..GbdtConfig::default()
    };

    let mut table = Vec::new();
    for &m in &dims {
        let ds = full.restrict_features(m);
        let shards = partition_rows(&ds, workers).unwrap();
        let dim = run_dimboost(&shards, &config, workers, CostModel::GIGABIT_LAN, None);
        let xgb = run_collective_baseline(
            BaselineKind::Xgboost,
            &shards,
            &config,
            CostModel::GIGABIT_LAN,
            None,
        );
        table.push(vec![
            m.to_string(),
            fmt_secs(xgb.total_secs()),
            fmt_secs(dim.total_secs()),
            format!("{:.1}x", xgb.total_secs() / dim.total_secs()),
        ]);
        println!(
            "m={m}: XGBoost {} (compute {}, comm {}), DimBoost {} (compute {}, comm {})",
            fmt_secs(xgb.total_secs()),
            fmt_secs(xgb.compute_secs),
            fmt_secs(xgb.comm_secs),
            fmt_secs(dim.total_secs()),
            fmt_secs(dim.compute_secs),
            fmt_secs(dim.comm_secs),
        );
    }
    print_table(
        "Figure 1: run time vs #features (Gender-shaped data)",
        &["#features", "XGBoost", "DimBoost", "speedup"],
        &table,
    );
}
