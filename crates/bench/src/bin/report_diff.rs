//! Compares two run-report JSON documents field by field with declared
//! tolerances — the regression gate `ci.sh` runs over canonical reports.
//!
//! ```text
//! report_diff <a.json> <b.json> [--tolerances <file>] [--strict-wall] [--faults] [--wire] [--quiet]
//! ```
//!
//! Exit status: 0 when the reports agree (within tolerances), 1 when any
//! field regresses, 2 on usage or I/O errors.
//!
//! The tolerance file has one rule per line, `<pattern> <tolerance|ignore>`
//! (`#` comments). Patterns are `*`-globs over flattened paths such as
//! `phases.build_histogram.comm.bytes` or `percentiles.sim/ps_requests.p99`;
//! the last matching rule wins and unmatched fields must match exactly.
//! Wall-clock fields (`compute*_secs`, `percentiles.wall/*`) are ignored by
//! default; `--strict-wall` compares them too.
//!
//! `--faults` compares a faulted or elastic run against a clean baseline:
//! simulated time, the `faults` and `membership` sections, and the resume
//! marker are ignored (faults and membership churn stretch the clock by
//! design) while bytes, packages, and per-round telemetry remain strict —
//! the chaos and elasticity gates `ci.sh` runs.
//!
//! `--wire` compares a `--sparse-wire` run against its dense baseline: the
//! byte/package accounting (and the simulated time it drives), the
//! `sparsity` section, and the per-round wire tallies are ignored — sparse
//! frames legitimately move fewer bytes — while losses, split gains, node
//! instance counts, and `hist_bytes_raw` remain strict. The sparse-exchange
//! gate `ci.sh` runs.

use std::process::ExitCode;

use dimboost_bench::diff::{
    default_rules, diff_reports, fault_rules, parse_rules, wire_rules, Rule,
};
use dimboost_bench::json;

const USAGE: &str = "usage: report_diff <a.json> <b.json> \
                     [--tolerances <file>] [--strict-wall] [--faults] [--wire] [--quiet]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("report_diff: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance_file: Option<String> = None;
    let mut strict_wall = false;
    let mut faults = false;
    let mut wire = false;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tolerances" => match iter.next() {
                Some(path) => tolerance_file = Some(path.clone()),
                None => return fail("missing value for --tolerances"),
            },
            "--strict-wall" => strict_wall = true,
            "--faults" => faults = true,
            "--wire" => wire = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => return fail(&format!("unknown flag {flag:?}")),
            path => paths.push(path.to_string()),
        }
    }
    let [a_path, b_path] = paths.as_slice() else {
        return fail("expected exactly two report paths");
    };

    let mut rules: Vec<Rule> = if strict_wall {
        Vec::new()
    } else {
        default_rules()
    };
    if faults {
        rules.extend(fault_rules());
    }
    if wire {
        rules.extend(wire_rules());
    }
    if let Some(path) = &tolerance_file {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => return fail(&format!("read {path}: {e}")),
        };
        match parse_rules(&text) {
            Ok(extra) => rules.extend(extra),
            Err(e) => return fail(&format!("{path}: {e}")),
        }
    }

    let load = |path: &str| -> Result<json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let a = match load(a_path) {
        Ok(doc) => doc,
        Err(e) => return fail(&e),
    };
    let b = match load(b_path) {
        Ok(doc) => doc,
        Err(e) => return fail(&e),
    };

    let result = diff_reports(&a, &b, &rules);
    if result.is_match() {
        if !quiet {
            println!(
                "report_diff: {} fields match ({} ignored)",
                result.compared, result.ignored
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "report_diff: {} difference(s) between {a_path} and {b_path} \
             ({} fields compared, {} ignored):",
            result.differences.len(),
            result.compared,
            result.ignored
        );
        for d in &result.differences {
            eprintln!("  {}: {}", d.path, d.detail);
        }
        ExitCode::FAILURE
    }
}
