//! Histogram-kernel throughput bench: dense vs sparse vs binned vs fused
//! vs quantized.
//!
//! Simulates one tree layer — shard rows dealt round-robin across `nodes`
//! build nodes — and times how fast each builder variant constructs the
//! layer's histograms at several thread counts:
//!
//! * `dense`     — per-node batched builds, dense enumeration
//!   (`parallel::build_row_batched`, `sparse: false`);
//! * `sparse`    — per-node batched builds, Algorithm 2
//!   (`parallel::build_row_batched`, `sparse: true`);
//! * `binned`    — per-node batched builds over the pre-binned CSR
//!   (`BinnedShard::build_row_batched`);
//! * `fused`     — one layer-fused pass over the binned CSR
//!   (`fused::build_layer`);
//! * `quantized` — the layer-fused pass over packed fixed-point integer
//!   cells (`fused::build_layer_quantized`, DESIGN.md §15). Gradient
//!   quantization and the pair-cell view of the binned CSR happen once
//!   per tree in the trainer, so they are built outside the timed region
//!   here too.
//!
//! Two problem presets run by default: `default` exercises every variant
//! at a size where per-node overheads matter, and `wide` (more rows,
//! features, and nodes) isolates the memory-bound kernels — `binned`,
//! `fused`, `quantized` — at a layer width where the fused pass's
//! parallel scaling is actually visible. The dense/sparse enumeration
//! variants are skipped on `wide` (dense alone would dwarf the rest of
//! the run without informing either gate).
//!
//! The JSON report follows the repo's canonical-vs-timed split:
//! structural fields (sizes, per-variant entry counts, FNV-1a checksums
//! over the produced histogram bits, the per-problem
//! `quantized_checksums_equal` flag) are deterministic, while
//! `wall_secs`, `entries_per_sec`, `rounds_per_sec`, and the
//! `quantized_speedup` ratios are wall numbers that `report_diff`'s
//! built-in rules ignore — two runs of this bench must be
//! canonical-report identical.
//!
//! The quantized kernel's integer accumulation is associative, so its
//! histogram bits are independent of the thread count: the bench asserts
//! that the `quantized/t*` checksums agree within each problem and hard
//! fails if they do not, and records the verdict as
//! `quantized_checksums_equal` for CI to grep.
//!
//! Two perf gates, both evaluated on the `wide` problem (ratios of wall
//! times on the same machine and run, so neither flakes on absolute
//! machine speed):
//!
//! * `--assert-fused-ratio R` — summed over all measured thread counts,
//!   the fused kernel must not be slower than the per-node binned path
//!   by more than a factor of `R`;
//! * `--assert-quantized-ratio R` — at **every** measured thread count,
//!   the quantized kernel must be at least `R`× faster than the f32
//!   fused kernel.

use std::process::ExitCode;

use dimboost_core::binned::BinnedShard;
use dimboost_core::fused::{self, LayerPositions};
use dimboost_core::hist_build::{QuantBinned, QuantizedGrads};
use dimboost_core::parallel::{build_row_batched, BatchConfig};
use dimboost_core::{FeatureMeta, GradPair};
use dimboost_data::synthetic::{generate, SparseGenConfig};
use dimboost_sketch::SplitCandidates;

/// Quantization codes used by the `quantized` variant — the trainer's
/// default `quant_hist_bits`.
const QUANT_BITS: u8 = 12;

/// One benchmark problem: a synthetic layer of a given shape plus the
/// variant set to measure on it.
struct Problem {
    name: &'static str,
    rows: usize,
    features: usize,
    nnz: usize,
    nodes: usize,
    variants: &'static [&'static str],
}

const ALL_VARIANTS: &[&str] = &["dense", "sparse", "binned", "fused", "quantized"];
const WIDE_VARIANTS: &[&str] = &["binned", "fused", "quantized"];

struct Options {
    /// `default` problem shape.
    rows: usize,
    features: usize,
    nnz: usize,
    nodes: usize,
    /// `wide` problem shape.
    wide_rows: usize,
    wide_features: usize,
    wide_nnz: usize,
    wide_nodes: usize,
    rounds: usize,
    batch_size: usize,
    seed: u64,
    threads_list: Vec<usize>,
    out: Option<String>,
    assert_fused_ratio: Option<f64>,
    assert_quantized_ratio: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            rows: 20_000,
            features: 200,
            nnz: 16,
            nodes: 8,
            wide_rows: 80_000,
            wide_features: 400,
            wide_nnz: 24,
            wide_nodes: 16,
            rounds: 3,
            batch_size: 1024,
            seed: 7,
            threads_list: vec![1, 2, 4, 8],
            out: Some("BENCH_hist.json".into()),
            assert_fused_ratio: None,
            assert_quantized_ratio: None,
        }
    }
}

impl Options {
    fn problems(&self) -> Vec<Problem> {
        vec![
            Problem {
                name: "default",
                rows: self.rows,
                features: self.features,
                nnz: self.nnz,
                nodes: self.nodes,
                variants: ALL_VARIANTS,
            },
            Problem {
                name: "wide",
                rows: self.wide_rows,
                features: self.wide_features,
                nnz: self.wide_nnz,
                nodes: self.wide_nodes,
                variants: WIDE_VARIANTS,
            },
        ]
    }
}

/// One timed `(variant, threads)` measurement.
struct Entry {
    variant: &'static str,
    threads: usize,
    /// Work items per round: nonzero CSR entries for
    /// sparse/binned/fused/quantized, `rows × features` cells for the
    /// dense enumeration. Deterministic.
    entries: u64,
    /// FNV-1a 64 over the layer's histogram bits (node order). Pins the
    /// exact output of every variant into the canonical report.
    checksum: u64,
    secs: f64,
}

/// All measurements and structural facts for one problem.
struct ProblemRun {
    name: &'static str,
    rows: usize,
    features: usize,
    nnz: usize,
    nodes: usize,
    row_len: usize,
    /// Whether every `quantized/t*` checksum in this problem agreed —
    /// the cross-thread-count bit-equality claim of DESIGN.md §15.
    quantized_checksums_equal: bool,
    entries: Vec<Entry>,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut runs: Vec<ProblemRun> = Vec::new();
    for problem in opts.problems() {
        runs.push(run_problem(&problem, &opts));
    }

    if runs
        .iter()
        .any(|r| r.entries.iter().any(|e| e.variant == "quantized") && !r.quantized_checksums_equal)
    {
        eprintln!("FAIL: quantized checksums differ across thread counts (see above)");
        return ExitCode::FAILURE;
    }

    if let Some(out) = &opts.out {
        let doc = render_json(&opts, &runs);
        if let Err(e) = std::fs::write(out, doc) {
            eprintln!("failed to write {out}: {e}");
            return ExitCode::from(2);
        }
        println!("report written to {out}");
    }

    // Both perf gates read the `wide` problem: the default preset is small
    // enough that per-call overheads, not kernel throughput, dominate.
    let wide = runs
        .iter()
        .find(|r| r.name == "wide")
        .expect("wide problem always runs");

    if let Some(ratio) = opts.assert_fused_ratio {
        let total = |variant: &str| -> f64 {
            wide.entries
                .iter()
                .filter(|e| e.variant == variant)
                .map(|e| e.secs)
                .sum()
        };
        let (fused_secs, binned_secs) = (total("fused"), total("binned"));
        if fused_secs > binned_secs * ratio {
            eprintln!(
                "FAIL: wide fused kernel {fused_secs:.4}s vs per-node binned {binned_secs:.4}s \
                 exceeds the {ratio}x budget"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "wide fused/binned wall ratio {:.2} within the {ratio}x budget",
            fused_secs / binned_secs.max(1e-12)
        );
    }

    if let Some(ratio) = opts.assert_quantized_ratio {
        let secs_of = |variant: &str, threads: usize| -> f64 {
            wide.entries
                .iter()
                .find(|e| e.variant == variant && e.threads == threads)
                .map(|e| e.secs)
                .unwrap_or(0.0)
        };
        for &threads in &opts.threads_list {
            let (fused_secs, quant_secs) =
                (secs_of("fused", threads), secs_of("quantized", threads));
            let speedup = fused_secs / quant_secs.max(1e-12);
            if speedup < ratio {
                eprintln!(
                    "FAIL: wide quantized/t{threads} speedup {speedup:.2}x over f32 fused \
                     ({quant_secs:.4}s vs {fused_secs:.4}s) is below the required {ratio}x"
                );
                return ExitCode::FAILURE;
            }
            println!("wide quantized/t{threads} speedup {speedup:.2}x >= {ratio}x");
        }
    }
    ExitCode::SUCCESS
}

fn run_problem(problem: &Problem, opts: &Options) -> ProblemRun {
    let ds = generate(&SparseGenConfig::new(
        problem.rows,
        problem.features,
        problem.nnz,
        opts.seed,
    ));
    let cands: Vec<SplitCandidates> = (0..problem.features)
        .map(|f| {
            SplitCandidates::from_boundaries(vec![-0.5, 0.2 + (f % 4) as f32 * 0.25, 1.1, 1.7])
        })
        .collect();
    let meta = FeatureMeta::all_features(&cands);
    let grads: Vec<GradPair> = (0..problem.rows)
        .map(|i| GradPair {
            g: ((i % 17) as f32 - 8.0) / 5.0,
            h: 0.2 + (i % 6) as f32 * 0.3,
        })
        .collect();
    let binned = BinnedShard::build(&ds, &meta);
    let row_len = meta.layout().row_len();
    // Built once per tree in the trainer (amortized across every layer of
    // the tree), so kept outside the timed region here as well.
    let qbinned = QuantBinned::build(&binned, &meta);
    let qgrads = QuantizedGrads::quantize(&grads, QUANT_BITS);

    // The simulated layer: row i belongs to build node i % nodes.
    let mut slots = vec![0u32; problem.rows];
    let mut counts = vec![0u64; problem.nodes];
    for (i, slot) in slots.iter_mut().enumerate() {
        *slot = (i % problem.nodes) as u32;
        counts[i % problem.nodes] += 1;
    }
    let positions = LayerPositions { slots, counts };
    let node_instances: Vec<Vec<u32>> = (0..problem.nodes)
        .map(|n| {
            ((n as u32)..problem.rows as u32)
                .step_by(problem.nodes)
                .collect()
        })
        .collect();

    println!(
        "hist_kernel_bench[{}]: {} rows × {} features (nnz {}), {} nodes, row_len {}, \
         {} round(s), batch {}",
        problem.name,
        problem.rows,
        problem.features,
        ds.nnz(),
        problem.nodes,
        row_len,
        opts.rounds,
        opts.batch_size
    );

    let mut entries: Vec<Entry> = Vec::new();
    for &threads in &opts.threads_list {
        for &variant in problem.variants {
            // Builds the full layer once, returning its concatenated rows.
            let build = || -> Vec<f32> {
                match variant {
                    "quantized" => {
                        let (block, _stats) = fused::build_layer_quantized(
                            &binned,
                            &qbinned,
                            &positions,
                            &qgrads,
                            &meta,
                            opts.batch_size,
                            threads,
                        );
                        block
                    }
                    "fused" => fused::build_layer(
                        &binned,
                        &positions,
                        &grads,
                        &meta,
                        opts.batch_size,
                        threads,
                    ),
                    "binned" => node_instances
                        .iter()
                        .flat_map(|inst| {
                            binned.build_row_batched(inst, &grads, &meta, opts.batch_size, threads)
                        })
                        .collect(),
                    dense_or_sparse => {
                        let bc = BatchConfig {
                            batch_size: opts.batch_size,
                            threads,
                            sparse: dense_or_sparse == "sparse",
                        };
                        node_instances
                            .iter()
                            .flat_map(|inst| build_row_batched(&ds, inst, &grads, &meta, &bc))
                            .collect()
                    }
                }
            };
            let _warmup = build();
            let start = std::time::Instant::now();
            let mut layer = Vec::new();
            for _ in 0..opts.rounds {
                layer = build();
            }
            let secs = start.elapsed().as_secs_f64();
            let per_round = if variant == "dense" {
                (problem.rows * problem.features) as u64
            } else {
                ds.nnz() as u64
            };
            let entry = Entry {
                variant,
                threads,
                entries: per_round,
                checksum: fnv1a64(&layer),
                secs,
            };
            println!(
                "  {:>9}/t{threads}: {:>12.0} entries/s, {:>7.2} rounds/s ({:.4}s)",
                variant,
                entry.entries as f64 * opts.rounds as f64 / secs.max(1e-12),
                opts.rounds as f64 / secs.max(1e-12),
                secs
            );
            entries.push(entry);
        }
    }

    // DESIGN.md §15: integer accumulation is associative, so the quantized
    // layer must be bit-identical — same checksum — at every thread count.
    let quant_checksums: Vec<u64> = entries
        .iter()
        .filter(|e| e.variant == "quantized")
        .map(|e| e.checksum)
        .collect();
    let quantized_checksums_equal = quant_checksums.windows(2).all(|w| w[0] == w[1]);
    if !quantized_checksums_equal {
        eprintln!(
            "FAIL[{}]: quantized checksums differ across thread counts: {quant_checksums:?}",
            problem.name
        );
    }

    ProblemRun {
        name: problem.name,
        rows: problem.rows,
        features: problem.features,
        nnz: ds.nnz(),
        nodes: problem.nodes,
        row_len,
        quantized_checksums_equal,
        entries,
    }
}

fn render_json(opts: &Options, runs: &[ProblemRun]) -> String {
    let mut out = String::from("{");
    out.push_str("\"kind\":\"hist_kernel\"");
    out.push_str(&format!(",\"rounds\":{}", opts.rounds));
    out.push_str(&format!(",\"batch_size\":{}", opts.batch_size));
    out.push_str(&format!(",\"seed\":{}", opts.seed));
    out.push_str(&format!(",\"quant_bits\":{QUANT_BITS}"));
    out.push_str(",\"problems\":[");
    for (p, run) in runs.iter().enumerate() {
        if p > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"rows\":{},\"features\":{},\"nnz\":{},\"nodes\":{},\
             \"row_len\":{},\"quantized_checksums_equal\":{}",
            run.name,
            run.rows,
            run.features,
            run.nnz,
            run.nodes,
            run.row_len,
            run.quantized_checksums_equal,
        ));
        out.push_str(",\"results\":[");
        for (i, e) in run.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let secs = e.secs.max(1e-12);
            out.push_str(&format!(
                "{{\"name\":\"{}/t{}\",\"variant\":\"{}\",\"threads\":{},\"entries\":{},\
                 \"checksum\":{},\"wall_secs\":{},\"entries_per_sec\":{},\"rounds_per_sec\":{}}}",
                e.variant,
                e.threads,
                e.variant,
                e.threads,
                e.entries,
                e.checksum,
                e.secs,
                e.entries as f64 * opts.rounds as f64 / secs,
                opts.rounds as f64 / secs,
            ));
        }
        out.push_str("]}");
    }
    out.push(']');
    // Wall-derived summary (ignored by report_diff's default rules): the
    // quantized kernel's speedup over f32 fused, per thread count, on each
    // problem that ran both.
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for run in runs {
        for &threads in &opts.threads_list {
            let secs_of = |variant: &str| -> Option<f64> {
                run.entries
                    .iter()
                    .find(|e| e.variant == variant && e.threads == threads)
                    .map(|e| e.secs)
            };
            if let (Some(fused_secs), Some(quant_secs)) = (secs_of("fused"), secs_of("quantized")) {
                speedups.push((
                    format!("{}/t{}", run.name, threads),
                    fused_secs / quant_secs.max(1e-12),
                ));
            }
        }
    }
    if !speedups.is_empty() {
        out.push_str(",\"quantized_speedup\":{");
        for (i, (name, ratio)) in speedups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{ratio:.4}"));
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// FNV-1a 64 over the little-endian bytes of `values` (bit-sensitive, same
/// scheme as the serving report's score checksum).
fn fnv1a64(values: &[f32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for b in v.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--rows" => opts.rows = parse(&flag, &value("--rows")?)?,
            "--features" => opts.features = parse(&flag, &value("--features")?)?,
            "--nnz" => opts.nnz = parse(&flag, &value("--nnz")?)?,
            "--nodes" => opts.nodes = parse(&flag, &value("--nodes")?)?,
            "--wide-rows" => opts.wide_rows = parse(&flag, &value("--wide-rows")?)?,
            "--wide-features" => opts.wide_features = parse(&flag, &value("--wide-features")?)?,
            "--wide-nnz" => opts.wide_nnz = parse(&flag, &value("--wide-nnz")?)?,
            "--wide-nodes" => opts.wide_nodes = parse(&flag, &value("--wide-nodes")?)?,
            "--rounds" => opts.rounds = parse(&flag, &value("--rounds")?)?,
            "--batch-size" => opts.batch_size = parse(&flag, &value("--batch-size")?)?,
            "--seed" => opts.seed = parse(&flag, &value("--seed")?)?,
            "--threads-list" => {
                opts.threads_list = value("--threads-list")?
                    .split(',')
                    .map(|t| parse(&flag, t))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => opts.out = Some(value("--out")?),
            "--no-out" => opts.out = None,
            "--assert-fused-ratio" => {
                let v = value("--assert-fused-ratio")?;
                opts.assert_fused_ratio = Some(v.parse().map_err(|_| format!("bad ratio {v:?}"))?);
            }
            "--assert-quantized-ratio" => {
                let v = value("--assert-quantized-ratio")?;
                opts.assert_quantized_ratio =
                    Some(v.parse().map_err(|_| format!("bad ratio {v:?}"))?);
            }
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: hist_kernel_bench [--rows N] [--features M] \
                     [--nnz K] [--nodes D] [--wide-rows N] [--wide-features M] [--wide-nnz K] \
                     [--wide-nodes D] [--rounds R] [--batch-size B] [--seed S] \
                     [--threads-list 1,2,4,8] [--out FILE | --no-out] [--assert-fused-ratio X] \
                     [--assert-quantized-ratio X]"
                ))
            }
        }
    }
    if opts.rows == 0
        || opts.features == 0
        || opts.nodes == 0
        || opts.rounds == 0
        || opts.wide_rows == 0
        || opts.wide_features == 0
        || opts.wide_nodes == 0
    {
        return Err("rows, features, nodes, and rounds must be positive".into());
    }
    if opts.batch_size == 0 || opts.threads_list.is_empty() {
        return Err("batch_size and threads-list must be non-empty".into());
    }
    if opts.threads_list.contains(&0) {
        return Err("thread counts must be positive".into());
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value {value:?} for {flag}"))
}
