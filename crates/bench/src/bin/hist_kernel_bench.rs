//! Histogram-kernel throughput bench: dense vs sparse vs binned vs fused.
//!
//! Simulates one tree layer — shard rows dealt round-robin across `nodes`
//! build nodes — and times how fast each builder variant constructs the
//! layer's histograms at several thread counts:
//!
//! * `dense`  — per-node batched builds, dense enumeration
//!   (`parallel::build_row_batched`, `sparse: false`);
//! * `sparse` — per-node batched builds, Algorithm 2
//!   (`parallel::build_row_batched`, `sparse: true`);
//! * `binned` — per-node batched builds over the pre-binned CSR
//!   (`BinnedShard::build_row_batched`);
//! * `fused`  — one layer-fused pass over the binned CSR
//!   (`fused::build_layer`).
//!
//! The JSON report follows the repo's canonical-vs-timed split: structural
//! fields (sizes, per-variant entry counts, FNV-1a checksums over the
//! produced histogram bits) are deterministic, while `compute_secs`,
//! `entries_per_sec`, and `rounds_per_sec` are wall numbers that
//! `report_diff`'s built-in rules ignore — two runs of this bench must be
//! canonical-report identical.
//!
//! `--assert-fused-ratio R` turns the bench into a perf gate: summed over
//! all measured thread counts, the fused kernel must not be slower than
//! the per-node binned path by more than a factor of `R` (a ratio of wall
//! times on the same machine and run, so the gate does not flake on
//! absolute machine speed).

use std::process::ExitCode;

use dimboost_core::binned::BinnedShard;
use dimboost_core::fused::{self, LayerPositions};
use dimboost_core::parallel::{build_row_batched, BatchConfig};
use dimboost_core::{FeatureMeta, GradPair};
use dimboost_data::synthetic::{generate, SparseGenConfig};
use dimboost_data::Dataset;
use dimboost_sketch::SplitCandidates;

const VARIANTS: [&str; 4] = ["dense", "sparse", "binned", "fused"];

struct Options {
    rows: usize,
    features: usize,
    nnz: usize,
    nodes: usize,
    rounds: usize,
    batch_size: usize,
    seed: u64,
    threads_list: Vec<usize>,
    out: Option<String>,
    assert_fused_ratio: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            rows: 20_000,
            features: 200,
            nnz: 16,
            nodes: 8,
            rounds: 3,
            batch_size: 1024,
            seed: 7,
            threads_list: vec![1, 2, 4, 8],
            out: Some("BENCH_hist.json".into()),
            assert_fused_ratio: None,
        }
    }
}

/// One timed `(variant, threads)` measurement.
struct Entry {
    variant: &'static str,
    threads: usize,
    /// Work items per round: nonzero CSR entries for sparse/binned/fused,
    /// `rows × features` cells for the dense enumeration. Deterministic.
    entries: u64,
    /// FNV-1a 64 over the layer's histogram bits (node order). Pins the
    /// exact output of every variant into the canonical report.
    checksum: u64,
    secs: f64,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let ds = generate(&SparseGenConfig::new(
        opts.rows,
        opts.features,
        opts.nnz,
        opts.seed,
    ));
    let cands: Vec<SplitCandidates> = (0..opts.features)
        .map(|f| {
            SplitCandidates::from_boundaries(vec![-0.5, 0.2 + (f % 4) as f32 * 0.25, 1.1, 1.7])
        })
        .collect();
    let meta = FeatureMeta::all_features(&cands);
    let grads: Vec<GradPair> = (0..opts.rows)
        .map(|i| GradPair {
            g: ((i % 17) as f32 - 8.0) / 5.0,
            h: 0.2 + (i % 6) as f32 * 0.3,
        })
        .collect();
    let binned = BinnedShard::build(&ds, &meta);
    let row_len = meta.layout().row_len();

    // The simulated layer: row i belongs to build node i % nodes.
    let mut slots = vec![0u32; opts.rows];
    let mut counts = vec![0u64; opts.nodes];
    for (i, slot) in slots.iter_mut().enumerate() {
        *slot = (i % opts.nodes) as u32;
        counts[i % opts.nodes] += 1;
    }
    let positions = LayerPositions { slots, counts };
    let node_instances: Vec<Vec<u32>> = (0..opts.nodes)
        .map(|n| ((n as u32)..opts.rows as u32).step_by(opts.nodes).collect())
        .collect();

    println!(
        "hist_kernel_bench: {} rows × {} features (nnz {}), {} nodes, row_len {}, {} round(s), batch {}",
        opts.rows,
        opts.features,
        ds.nnz(),
        opts.nodes,
        row_len,
        opts.rounds,
        opts.batch_size
    );

    let mut entries: Vec<Entry> = Vec::new();
    for &threads in &opts.threads_list {
        for variant in VARIANTS {
            // Builds the full layer once, returning its concatenated rows.
            let build = || -> Vec<f32> {
                match variant {
                    "fused" => fused::build_layer(
                        &binned,
                        &positions,
                        &grads,
                        &meta,
                        opts.batch_size,
                        threads,
                    ),
                    "binned" => node_instances
                        .iter()
                        .flat_map(|inst| {
                            binned.build_row_batched(inst, &grads, &meta, opts.batch_size, threads)
                        })
                        .collect(),
                    dense_or_sparse => {
                        let bc = BatchConfig {
                            batch_size: opts.batch_size,
                            threads,
                            sparse: dense_or_sparse == "sparse",
                        };
                        node_instances
                            .iter()
                            .flat_map(|inst| build_row_batched(&ds, inst, &grads, &meta, &bc))
                            .collect()
                    }
                }
            };
            let _warmup = build();
            let start = std::time::Instant::now();
            let mut layer = Vec::new();
            for _ in 0..opts.rounds {
                layer = build();
            }
            let secs = start.elapsed().as_secs_f64();
            let per_round = if variant == "dense" {
                (opts.rows * opts.features) as u64
            } else {
                ds.nnz() as u64
            };
            let entry = Entry {
                variant,
                threads,
                entries: per_round,
                checksum: fnv1a64(&layer),
                secs,
            };
            println!(
                "  {:>6}/t{threads}: {:>12.0} entries/s, {:>7.2} rounds/s ({:.4}s)",
                variant,
                entry.entries as f64 * opts.rounds as f64 / secs.max(1e-12),
                opts.rounds as f64 / secs.max(1e-12),
                secs
            );
            entries.push(entry);
        }
    }

    if let Some(out) = &opts.out {
        let doc = render_json(&opts, &ds, row_len, &entries);
        if let Err(e) = std::fs::write(out, doc) {
            eprintln!("failed to write {out}: {e}");
            return ExitCode::from(2);
        }
        println!("report written to {out}");
    }

    if let Some(ratio) = opts.assert_fused_ratio {
        let total = |variant: &str| -> f64 {
            entries
                .iter()
                .filter(|e| e.variant == variant)
                .map(|e| e.secs)
                .sum()
        };
        let (fused_secs, binned_secs) = (total("fused"), total("binned"));
        if fused_secs > binned_secs * ratio {
            eprintln!(
                "FAIL: fused kernel {fused_secs:.4}s vs per-node binned {binned_secs:.4}s \
                 exceeds the {ratio}x budget"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "fused/binned wall ratio {:.2} within the {ratio}x budget",
            fused_secs / binned_secs.max(1e-12)
        );
    }
    ExitCode::SUCCESS
}

fn render_json(opts: &Options, ds: &Dataset, row_len: usize, entries: &[Entry]) -> String {
    let mut out = String::from("{");
    out.push_str("\"kind\":\"hist_kernel\"");
    out.push_str(&format!(",\"rows\":{}", opts.rows));
    out.push_str(&format!(",\"features\":{}", opts.features));
    out.push_str(&format!(",\"nnz\":{}", ds.nnz()));
    out.push_str(&format!(",\"nodes\":{}", opts.nodes));
    out.push_str(&format!(",\"rounds\":{}", opts.rounds));
    out.push_str(&format!(",\"batch_size\":{}", opts.batch_size));
    out.push_str(&format!(",\"seed\":{}", opts.seed));
    out.push_str(&format!(",\"row_len\":{row_len}"));
    out.push_str(",\"results\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let secs = e.secs.max(1e-12);
        out.push_str(&format!(
            "{{\"name\":\"{}/t{}\",\"variant\":\"{}\",\"threads\":{},\"entries\":{},\
             \"checksum\":{},\"compute_secs\":{},\"entries_per_sec\":{},\"rounds_per_sec\":{}}}",
            e.variant,
            e.threads,
            e.variant,
            e.threads,
            e.entries,
            e.checksum,
            e.secs,
            e.entries as f64 * opts.rounds as f64 / secs,
            opts.rounds as f64 / secs,
        ));
    }
    out.push_str("]}");
    out
}

/// FNV-1a 64 over the little-endian bytes of `values` (bit-sensitive, same
/// scheme as the serving report's score checksum).
fn fnv1a64(values: &[f32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for b in v.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--rows" => opts.rows = parse(&flag, &value("--rows")?)?,
            "--features" => opts.features = parse(&flag, &value("--features")?)?,
            "--nnz" => opts.nnz = parse(&flag, &value("--nnz")?)?,
            "--nodes" => opts.nodes = parse(&flag, &value("--nodes")?)?,
            "--rounds" => opts.rounds = parse(&flag, &value("--rounds")?)?,
            "--batch-size" => opts.batch_size = parse(&flag, &value("--batch-size")?)?,
            "--seed" => opts.seed = parse(&flag, &value("--seed")?)?,
            "--threads-list" => {
                opts.threads_list = value("--threads-list")?
                    .split(',')
                    .map(|t| parse(&flag, t))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => opts.out = Some(value("--out")?),
            "--no-out" => opts.out = None,
            "--assert-fused-ratio" => {
                let v = value("--assert-fused-ratio")?;
                opts.assert_fused_ratio = Some(v.parse().map_err(|_| format!("bad ratio {v:?}"))?);
            }
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: hist_kernel_bench [--rows N] [--features M] \
                     [--nnz K] [--nodes D] [--rounds R] [--batch-size B] [--seed S] \
                     [--threads-list 1,2,4,8] [--out FILE | --no-out] [--assert-fused-ratio X]"
                ))
            }
        }
    }
    if opts.rows == 0 || opts.features == 0 || opts.nodes == 0 || opts.rounds == 0 {
        return Err("rows, features, nodes, and rounds must be positive".into());
    }
    if opts.batch_size == 0 || opts.threads_list.is_empty() {
        return Err("batch_size and threads-list must be non-empty".into());
    }
    if opts.threads_list.contains(&0) {
        return Err("thread counts must be positive".into());
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value {value:?} for {flag}"))
}
