//! Figure 12 — end-to-end comparison of the five systems on the three
//! datasets: (a) RCV1-shaped on a small cluster, (b) Synthesis-shaped on a
//! small cluster, (c) Gender-shaped on the large cluster (where the paper
//! excludes LightGBM and MLlib fails to finish).
//!
//! Shapes to reproduce: DimBoost fastest everywhere; MLlib slowest by far;
//! the gap over XGBoost grows with dimensionality (4.2× on RCV1 → ~9× on
//! Synthesis/Gender in the paper); TencentBoost sits between XGBoost and
//! DimBoost; all systems converge to comparable training loss, DimBoost
//! fastest against wall-clock.
//!
//! Usage: `fig12_end_to_end [rcv1|synthesis|gender|all]`

use dimboost_baselines::BaselineKind;
use dimboost_bench::{
    print_table, result_row, run_collective_baseline, run_dimboost, run_tencentboost, Scale,
    SystemResult, RESULT_HEADER,
};
use dimboost_core::GbdtConfig;
use dimboost_data::partition::{partition_rows, train_test_split};
use dimboost_data::synthetic::{gender_like, generate, rcv1_like, synthesis_like};
use dimboost_simnet::CostModel;

struct Setup {
    name: &'static str,
    dataset: dimboost_data::synthetic::SparseGenConfig,
    workers: usize,
    include_lightgbm: bool,
    include_mllib: bool,
}

fn convergence_summary(r: &SystemResult) -> String {
    // Time (modelled seconds) to reach within 5% of the run's final loss.
    let last = r.curve.last().map(|p| p.train_loss).unwrap_or(f64::NAN);
    let target = last * 1.05;
    let t = r
        .curve
        .iter()
        .find(|p| p.train_loss <= target)
        .map(|p| p.elapsed_secs)
        .unwrap_or(f64::NAN);
    format!("{:.2}s to within 5% of final loss {:.4}", t, last)
}

fn run(setup: &Setup, scale: Scale) {
    let rows_scale = match scale {
        Scale::Quick => 0.25,
        Scale::Full => 1.0,
    };
    let feat_scale = match scale {
        Scale::Quick => 0.25,
        Scale::Full => 1.0,
    };
    let mut cfg_data = setup.dataset.clone();
    cfg_data.rows = ((cfg_data.rows as f64 * rows_scale) as usize).max(1_000);
    cfg_data.features = ((cfg_data.features as f64 * feat_scale) as usize).max(200);
    cfg_data.avg_nnz = cfg_data.avg_nnz.min(cfg_data.features / 2);

    let ds = generate(&cfg_data);
    let (train, test) = train_test_split(&ds, 0.1, 42).unwrap();
    println!(
        "\n#### {} : {} rows x {} features (z={:.0}), {} workers ####",
        setup.name,
        train.num_rows(),
        train.num_features(),
        train.avg_nnz(),
        setup.workers
    );
    let shards = partition_rows(&train, setup.workers).unwrap();
    let config = GbdtConfig {
        num_trees: scale.pick(5, 20),
        max_depth: scale.pick(4, 7),
        num_candidates: 20,
        learning_rate: 0.1,
        num_threads: 4,
        batch_size: 10_000,
        ..GbdtConfig::default()
    };
    let cost = CostModel::GIGABIT_LAN;

    let mut results: Vec<SystemResult> = Vec::new();
    results.push(run_dimboost(
        &shards,
        &config,
        setup.workers,
        cost,
        Some(&test),
    ));
    results.push(run_tencentboost(
        &shards,
        &config,
        setup.workers,
        cost,
        Some(&test),
    ));
    results.push(run_collective_baseline(
        BaselineKind::Xgboost,
        &shards,
        &config,
        cost,
        Some(&test),
    ));
    if setup.include_lightgbm {
        results.push(run_collective_baseline(
            BaselineKind::Lightgbm,
            &shards,
            &config,
            cost,
            Some(&test),
        ));
    }
    if setup.include_mllib {
        results.push(run_collective_baseline(
            BaselineKind::Mllib,
            &shards,
            &config,
            cost,
            Some(&test),
        ));
    }

    let table: Vec<Vec<String>> = results.iter().map(result_row).collect();
    print_table(
        &format!("Figure 12 ({}) — run time", setup.name),
        &RESULT_HEADER,
        &table,
    );

    let dim_total = results[0].total_secs();
    for r in &results[1..] {
        println!(
            "  DimBoost speedup vs {}: {:.1}x",
            r.system,
            r.total_secs() / dim_total
        );
    }
    println!("\nconvergence (training loss vs modelled time):");
    for r in &results {
        println!("  {:<13} {}", r.system, convergence_summary(r));
        let pts: Vec<String> = r
            .curve
            .iter()
            .map(|p| format!("({:.2}s, {:.4})", p.elapsed_secs, p.train_loss))
            .collect();
        println!("    curve: {}", pts.join(" "));
    }
}

fn main() {
    let scale = Scale::from_env();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let setups = [
        Setup {
            name: "rcv1",
            dataset: rcv1_like(42),
            workers: 5,
            include_lightgbm: true,
            include_mllib: true,
        },
        Setup {
            name: "synthesis",
            dataset: synthesis_like(42),
            workers: 5,
            include_lightgbm: true,
            include_mllib: true,
        },
        Setup {
            name: "gender",
            dataset: gender_like(42),
            workers: scale.pick(10, 50),
            // The paper excludes LightGBM (no Yarn/HDFS support) and MLlib
            // fails to finish on Gender; we mirror the lineup.
            include_lightgbm: false,
            include_mllib: false,
        },
    ];
    for setup in &setups {
        if which == "all" || which == setup.name {
            run(setup, scale);
        }
    }
}
