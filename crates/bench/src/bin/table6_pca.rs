//! Table 6 — impact of dimension reduction.
//!
//! The paper runs PCA (Spark MLlib) on Gender down to 10K dimensions, then
//! trains: PCA takes 64 minutes, training 9 minutes, and the test error
//! *worsens* from 0.2514 to 0.2785. Shapes to reproduce: (1) PCA cost
//! dominates and makes the end-to-end pipeline slower than training
//! directly in high dimension; (2) the reduced model is less accurate.

use dimboost_bench::{fmt_secs, print_table, run_dimboost, timed, Scale};
use dimboost_core::GbdtConfig;
use dimboost_data::partition::{partition_rows, train_test_split};
use dimboost_data::synthetic::{gender_like, generate};
use dimboost_linalg::{Pca, PcaConfig};
use dimboost_simnet::CostModel;

fn main() {
    let scale = Scale::from_env();
    let cfg_data = gender_like(42)
        .with_rows(scale.pick(6_000, 40_000))
        .with_features(scale.pick(3_000, 33_000));
    let ds = generate(&cfg_data);
    let (train, test) = train_test_split(&ds, 0.1, 42).unwrap();
    let workers = scale.pick(5, 10);
    let target_dim = scale.pick(32, 96);

    let config = GbdtConfig {
        num_trees: scale.pick(8, 20),
        max_depth: scale.pick(4, 7),
        num_candidates: 20,
        learning_rate: 0.2,
        num_threads: 4,
        ..GbdtConfig::default()
    };

    // Direct training in the full dimension.
    let shards = partition_rows(&train, workers).unwrap();
    let (direct, t_direct) = timed(|| {
        run_dimboost(
            &shards,
            &config,
            workers,
            CostModel::GIGABIT_LAN,
            Some(&test),
        )
    });
    let _ = t_direct;

    // PCA to `target_dim`, then train in the reduced space.
    let (pca, t_pca) = timed(|| {
        Pca::fit(
            &train,
            &PcaConfig {
                components: target_dim,
                iterations: 12,
                seed: 42,
            },
        )
        .expect("PCA failed")
    });
    let (reduced_sets, t_project) = timed(|| (pca.transform(&train), pca.transform(&test)));
    let (red_train, red_test) = reduced_sets;
    let red_shards = partition_rows(&red_train, workers).unwrap();
    let reduced = run_dimboost(
        &red_shards,
        &config,
        workers,
        CostModel::GIGABIT_LAN,
        Some(&red_test),
    );

    let pca_total = t_pca + t_project;
    print_table(
        "Table 6: impact of dimension reduction",
        &[
            "method",
            "PCA time",
            "train time",
            "end-to-end",
            "test error",
        ],
        &[
            vec![
                format!("PCA to {target_dim} dims + train"),
                fmt_secs(pca_total),
                fmt_secs(reduced.total_secs()),
                fmt_secs(pca_total + reduced.total_secs()),
                format!("{:.4}", reduced.test_error.unwrap()),
            ],
            vec![
                "direct (no PCA)".into(),
                "0".into(),
                fmt_secs(direct.total_secs()),
                fmt_secs(direct.total_secs()),
                format!("{:.4}", direct.test_error.unwrap()),
            ],
        ],
    );
    let worse_error = reduced.test_error.unwrap() > direct.test_error.unwrap();
    let slower = pca_total + reduced.total_secs() > direct.total_secs();
    println!(
        "\nshape check: PCA pipeline slower end-to-end: {} | PCA degrades accuracy: {}",
        if slower {
            "REPRODUCED"
        } else {
            "NOT reproduced at this scale"
        },
        if worse_error {
            "REPRODUCED"
        } else {
            "NOT reproduced at this scale"
        },
    );
}
