//! Table 2 — the dataset inventory. Prints the paper's datasets next to the
//! shape-compatible substitutes this reproduction generates (quick-scale
//! defaults; `DIMBOOST_SCALE=full` enlarges rows/features).
//!
//! Shape to reproduce: the *ratios* — per-row sparsity `z` matches the paper
//! exactly, dimensionality ordering matches (Gender > Synthesis > RCV1 >
//! low-dim), and density `z/M` falls in the same high-dimensional regime.

use dimboost_bench::{fmt_bytes, print_table, Scale};
use dimboost_data::synthetic::{gender_like, generate, low_dim_like, rcv1_like, synthesis_like};

fn main() {
    let scale = Scale::from_env();
    let row_scale = match scale {
        Scale::Quick => 0.25,
        Scale::Full => 1.0,
    };

    let paper = [
        ("RCV1", "0.7M", "47K", 76, "1.4GB"),
        ("Synthesis", "50M", "100K", 100, "60GB"),
        ("Gender", "122M", "330K", 107, "145GB"),
        ("Synthesis-2 (A.3)", "100M", "1K", 100, "-"),
    ];
    let mut ours = Vec::new();
    for (name, cfg) in [
        ("RCV1", rcv1_like(42)),
        ("Synthesis", synthesis_like(42)),
        ("Gender", gender_like(42)),
        ("Synthesis-2 (A.3)", low_dim_like(42)),
    ] {
        let rows = ((cfg.rows as f64 * row_scale) as usize).max(1_000);
        let cfg = cfg.with_rows(rows);
        let ds = generate(&cfg);
        ours.push(vec![
            name.to_string(),
            ds.num_rows().to_string(),
            ds.num_features().to_string(),
            format!("{:.0}", ds.avg_nnz()),
            format!("{:.5}", ds.density()),
            fmt_bytes(ds.memory_bytes() as u64),
        ]);
    }

    let paper_rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&(n, i, f, z, s)| {
            vec![
                n.into(),
                i.into(),
                f.into(),
                z.to_string(),
                "-".into(),
                s.into(),
            ]
        })
        .collect();
    print_table(
        "Table 2 (paper): datasets",
        &[
            "dataset",
            "#instances",
            "#features",
            "#nonzero",
            "density",
            "size",
        ],
        &paper_rows,
    );
    print_table(
        "Table 2 (this reproduction): shape-compatible substitutes",
        &[
            "dataset",
            "#instances",
            "#features",
            "#nonzero",
            "density",
            "in-memory",
        ],
        &ours,
    );
    println!(
        "\nper-row sparsity z matches the paper exactly; rows/features are scaled to \
         laptop size (set DIMBOOST_SCALE=full for larger)."
    );
}
