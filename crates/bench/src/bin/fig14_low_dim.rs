//! Figure 14 (Appendix A.3) — the five systems on a *low-dimensional*
//! dataset (Synthesis-2: many rows, 1000 features).
//!
//! Shape to reproduce: DimBoost still wins (paper: 7.8× vs XGBoost, 4.5×
//! vs TencentBoost), but here the edge comes mostly from the computation
//! side (parallel training paradigm), since communication is cheap at low
//! dimension.

use dimboost_baselines::BaselineKind;
use dimboost_bench::{
    print_table, result_row, run_collective_baseline, run_dimboost, run_tencentboost, Scale,
    RESULT_HEADER,
};
use dimboost_core::GbdtConfig;
use dimboost_data::partition::{partition_rows, train_test_split};
use dimboost_data::synthetic::{generate, low_dim_like};
use dimboost_simnet::CostModel;

fn main() {
    let scale = Scale::from_env();
    let cfg_data = low_dim_like(42).with_rows(scale.pick(15_000, 60_000));
    let ds = generate(&cfg_data);
    let (train, test) = train_test_split(&ds, 0.1, 42).unwrap();
    let workers = scale.pick(10, 50);
    let shards = partition_rows(&train, workers).unwrap();

    let config = GbdtConfig {
        num_trees: scale.pick(5, 20),
        max_depth: scale.pick(4, 7),
        num_candidates: 20,
        num_threads: 4,
        ..GbdtConfig::default()
    };
    let cost = CostModel::GIGABIT_LAN;

    let results = [
        run_dimboost(&shards, &config, workers, cost, Some(&test)),
        run_tencentboost(&shards, &config, workers, cost, Some(&test)),
        run_collective_baseline(BaselineKind::Xgboost, &shards, &config, cost, Some(&test)),
        run_collective_baseline(BaselineKind::Lightgbm, &shards, &config, cost, Some(&test)),
        run_collective_baseline(BaselineKind::Mllib, &shards, &config, cost, Some(&test)),
    ];
    let table: Vec<Vec<String>> = results.iter().map(result_row).collect();
    print_table(
        &format!("Figure 14: low-dimensional dataset ({} workers)", workers),
        &RESULT_HEADER,
        &table,
    );
    let dim = results[0].total_secs();
    for r in &results[1..] {
        println!(
            "  DimBoost speedup vs {}: {:.1}x",
            r.system,
            r.total_secs() / dim
        );
    }
}
