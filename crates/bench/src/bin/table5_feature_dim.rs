//! Table 5 — impact of feature dimension on accuracy.
//!
//! The paper trains prefixes of the Gender feature space (Gender-10K,
//! Gender-100K, Gender-330K): test error falls from 0.3014 → 0.2714 →
//! 0.2514 as more features are used. Shape to reproduce: test error
//! decreases monotonically with the feature prefix length, because the
//! generator spreads informative features over the whole range.

use dimboost_bench::{print_table, run_dimboost, Scale};
use dimboost_core::GbdtConfig;
use dimboost_data::partition::{partition_rows, train_test_split};
use dimboost_data::synthetic::{gender_like, generate};
use dimboost_simnet::CostModel;

fn main() {
    let scale = Scale::from_env();
    let full_m = scale.pick(6_000, 33_000);
    let cfg_data = gender_like(42)
        .with_rows(scale.pick(12_000, 40_000))
        .with_features(full_m);
    let ds = generate(&cfg_data);
    let workers = scale.pick(5, 10);

    // Prefixes at ~3%, ~30%, and 100% of the feature space, mirroring
    // Gender-10K / Gender-100K / Gender-330K.
    let prefixes = [full_m * 3 / 100, full_m * 30 / 100, full_m];

    let config = GbdtConfig {
        num_trees: scale.pick(8, 20),
        max_depth: scale.pick(4, 7),
        num_candidates: 20,
        learning_rate: 0.2,
        num_threads: 4,
        ..GbdtConfig::default()
    };

    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for &m in &prefixes {
        let sub = ds.restrict_features(m);
        let (train, test) = train_test_split(&sub, 0.1, 42).unwrap();
        let shards = partition_rows(&train, workers).unwrap();
        let r = run_dimboost(
            &shards,
            &config,
            workers,
            CostModel::GIGABIT_LAN,
            Some(&test),
        );
        let err = r.test_error.unwrap();
        errors.push(err);
        rows.push(vec![
            format!("Gender-{m}"),
            format!("{err:.4}"),
            format!("{:.4}", r.curve.last().unwrap().train_loss),
        ]);
    }
    print_table(
        "Table 5: impact of feature dimension",
        &["dataset prefix", "test error", "train loss"],
        &rows,
    );
    let monotone = errors.windows(2).all(|w| w[1] <= w[0] + 1e-9);
    println!(
        "\nshape check: error decreases with more features: {}",
        if monotone {
            "REPRODUCED"
        } else {
            "NOT monotone (noise at this scale)"
        }
    );
}
