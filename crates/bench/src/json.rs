//! A minimal recursive-descent JSON parser.
//!
//! The workspace's dependency allowlist has no real serde implementation
//! (the `serde` crate here is a no-op shim), so the report-diff and
//! trace-check tools parse their inputs with this ~200-line parser. It
//! covers the full JSON grammar the repo's own emitters produce (and
//! standard JSON generally), keeps object keys in document order, and
//! reports errors with byte offsets.

/// A parsed JSON value. Object members keep their document order (the
/// canonical-report diff relies on stable iteration).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; the repo's emitters stay in range).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this repo's
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,{"b":"x"},[]],"c":{"d":null}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(doc.get("c").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"x", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrips_repo_reports() {
        // Shape emitted by RunReport::canonical_json.
        let doc = parse(
            r#"{"workers":2,"servers":2,"comm":{"bytes":1096,"packages":6,"sim_time_secs":0.26},
                "phases":[{"phase":"build_histogram","comm":{"bytes":1000,"packages":4,"sim_time_secs":0.25}}],
                "rounds":[{"round":0,"trees":1,"train_loss":0.5,"split_gains":[2.25,0.5],
                "node_instances":[{"node":0,"instances":100}]}],
                "percentiles":[{"name":"sim/ps_requests","kind":"counter","count":7,"value":7,
                "min":0,"max":0,"p50":0,"p95":0,"p99":0}]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("workers").unwrap().as_f64(), Some(2.0));
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(
            phases[0].get("phase").unwrap().as_str(),
            Some("build_histogram")
        );
        let pct = doc.get("percentiles").unwrap().as_arr().unwrap();
        assert_eq!(
            pct[0].get("name").unwrap().as_str(),
            Some("sim/ps_requests")
        );
    }
}
