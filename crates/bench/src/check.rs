//! Structural validation of exported Chrome-trace-event JSON — the checker
//! behind the `trace_check` binary and the CI smoke step.
//!
//! Accepts both container forms (a bare event array, or an object with a
//! `traceEvents` member) and verifies what Perfetto/`chrome://tracing`
//! assume:
//!
//! * every `B` (begin) has a matching `E` (end) on the same `(pid, tid)`,
//!   properly nested, with nothing left open at the end;
//! * timestamps never go backwards within a `(pid, tid)` lane;
//! * every `B` event is phase-tagged (`args.phase`) and carries the
//!   deterministic sequence number (`args.seq`), strictly increasing in
//!   file order;
//! * `thread_name` metadata names each referenced lane.

use std::collections::{BTreeMap, HashMap};

use crate::json::Json;

/// What a validated trace contained.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total entries in the event array (metadata included).
    pub entries: usize,
    /// `B`/`E` interval count.
    pub intervals: usize,
    /// `tid → thread name` from metadata, sorted by tid.
    pub tracks: BTreeMap<u64, String>,
}

impl TraceStats {
    /// True when the named track exists (by `thread_name` metadata).
    pub fn has_track(&self, name: &str) -> bool {
        self.tracks.values().any(|n| n == name)
    }
}

fn field_f64(event: &Json, key: &str, what: &str, idx: usize) -> Result<f64, String> {
    event
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event {idx}: {what} missing numeric {key:?}"))
}

/// Validates a Chrome-trace-event JSON document.
pub fn check_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = crate::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match &doc {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("object form lacks a traceEvents array")?,
        _ => return Err("top level must be an array or object".into()),
    };

    let mut stats = TraceStats {
        entries: events.len(),
        ..TraceStats::default()
    };
    // Per-lane open-interval stack and clock.
    let mut open: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    let mut clock: HashMap<(u64, u64), f64> = HashMap::new();
    let mut last_seq: Option<u64> = None;

    for (idx, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing \"ph\""))?;
        match ph {
            "M" => {
                if event.get("name").and_then(Json::as_str) == Some("thread_name") {
                    let tid = field_f64(event, "tid", "metadata", idx)? as u64;
                    let name = event
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("event {idx}: thread_name without args.name"))?;
                    stats.tracks.insert(tid, name.to_string());
                }
            }
            "B" | "E" => {
                let pid = field_f64(event, "pid", ph, idx)? as u64;
                let tid = field_f64(event, "tid", ph, idx)? as u64;
                let ts = field_f64(event, "ts", ph, idx)?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("event {idx}: bad timestamp {ts}"));
                }
                let lane = (pid, tid);
                if let Some(&prev) = clock.get(&lane) {
                    if ts < prev {
                        return Err(format!(
                            "event {idx}: timestamp {ts} goes backwards on tid {tid} (was {prev})"
                        ));
                    }
                }
                clock.insert(lane, ts);
                if ph == "B" {
                    let name = event
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("event {idx}: B without a name"))?;
                    let args = event
                        .get("args")
                        .ok_or_else(|| format!("event {idx}: B without args"))?;
                    if args.get("phase").and_then(Json::as_str).is_none() {
                        return Err(format!("event {idx}: B {name:?} not phase-tagged"));
                    }
                    let seq = args
                        .get("seq")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("event {idx}: B {name:?} missing args.seq"))?
                        as u64;
                    if let Some(prev) = last_seq {
                        if seq <= prev {
                            return Err(format!(
                                "event {idx}: seq {seq} not strictly increasing (was {prev})"
                            ));
                        }
                    }
                    last_seq = Some(seq);
                    open.entry(lane).or_default().push(name.to_string());
                    stats.intervals += 1;
                } else {
                    let stack = open.entry(lane).or_default();
                    if stack.pop().is_none() {
                        return Err(format!("event {idx}: E without an open B on tid {tid}"));
                    }
                }
            }
            other => return Err(format!("event {idx}: unsupported ph {other:?}")),
        }
    }

    for ((_, tid), stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("unclosed B {name:?} on tid {tid}"));
        }
    }
    Ok(stats)
}

/// Checks that the trace declares one named track per worker and server
/// plus the shared `net` lane (the export's track layout).
pub fn check_track_layout(
    stats: &TraceStats,
    workers: usize,
    servers: usize,
) -> Result<(), String> {
    if !stats.has_track("net") {
        return Err("missing net track".into());
    }
    for w in 0..workers {
        if !stats.has_track(&format!("worker {w}")) {
            return Err(format!("missing track \"worker {w}\""));
        }
    }
    for s in 0..servers {
        if !stats.has_track(&format!("server {s}")) {
            return Err(format!("missing track \"server {s}\""));
        }
    }
    Ok(())
}

/// Checks the `faults` lane against expectation: a fault-injected run must
/// declare it (the plan's effects are visible on the timeline), a clean run
/// must not (the exporter only declares tracks that carry events).
pub fn check_fault_track(stats: &TraceStats, expect_faults: bool) -> Result<(), String> {
    match (stats.has_track("faults"), expect_faults) {
        (false, true) => Err("missing \"faults\" track (fault plan had no visible effect?)".into()),
        (true, false) => Err("unexpected \"faults\" track in a clean-run trace".into()),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_simnet::{CostModel, Phase, SimTime, TraceBus};

    fn sample_trace_json(canonical: bool) -> String {
        let bus = TraceBus::new(2, 2, CostModel::GIGABIT_LAN, true);
        bus.on_compute(0, Phase::CreateSketch, 0.01);
        bus.set_worker(Some(0));
        bus.on_request(
            Phase::BuildHistogram,
            "push_histogram",
            4096,
            2,
            SimTime::ZERO,
        );
        bus.set_worker(Some(1));
        bus.on_request(
            Phase::BuildHistogram,
            "push_histogram",
            4096,
            2,
            SimTime::ZERO,
        );
        bus.set_worker(None);
        bus.on_charge(Phase::BuildHistogram, SimTime(0.25));
        let trace = bus.finish();
        if canonical {
            trace.canonical_chrome_json()
        } else {
            trace.chrome_json()
        }
    }

    #[test]
    fn accepts_real_exports() {
        for canonical in [false, true] {
            let stats = check_chrome_trace(&sample_trace_json(canonical)).unwrap();
            assert!(stats.intervals > 0);
            check_track_layout(&stats, 2, 2).unwrap();
            assert!(check_track_layout(&stats, 3, 2).is_err());
        }
    }

    #[test]
    fn fault_track_expectation() {
        // Clean trace: no faults lane.
        let stats = check_chrome_trace(&sample_trace_json(true)).unwrap();
        check_fault_track(&stats, false).unwrap();
        assert!(check_fault_track(&stats, true).is_err());

        // Faulted trace: the lane appears and is a well-formed track.
        let bus = TraceBus::new(1, 1, CostModel::GIGABIT_LAN, true);
        bus.set_worker(Some(0));
        bus.on_fault(Phase::BuildHistogram, "retry_backoff", SimTime(0.02), 0, 1);
        bus.set_worker(None);
        bus.on_charge(Phase::BuildHistogram, SimTime(0.05));
        let stats = check_chrome_trace(&bus.finish().canonical_chrome_json()).unwrap();
        check_fault_track(&stats, true).unwrap();
        assert!(check_fault_track(&stats, false).is_err());
    }

    #[test]
    fn accepts_object_container() {
        let arr = sample_trace_json(true);
        let wrapped = format!("{{\"traceEvents\":{arr}}}");
        check_chrome_trace(&wrapped).unwrap();
    }

    #[test]
    fn rejects_unbalanced_and_backwards() {
        // E without B.
        let bad = r#"[{"ph":"E","pid":0,"tid":1,"ts":5}]"#;
        assert!(check_chrome_trace(bad)
            .unwrap_err()
            .contains("without an open B"));
        // Unclosed B.
        let bad = r#"[{"ph":"B","name":"x","cat":"c","pid":0,"tid":1,"ts":1,
                       "args":{"phase":"finish","seq":0}}]"#;
        assert!(check_chrome_trace(bad).unwrap_err().contains("unclosed"));
        // Backwards clock on one lane.
        let bad = r#"[
            {"ph":"B","name":"x","cat":"c","pid":0,"tid":1,"ts":5,"args":{"phase":"finish","seq":0}},
            {"ph":"E","pid":0,"tid":1,"ts":4}]"#;
        assert!(check_chrome_trace(bad).unwrap_err().contains("backwards"));
        // Untagged B.
        let bad = r#"[{"ph":"B","name":"x","cat":"c","pid":0,"tid":1,"ts":0,"args":{"seq":0}}]"#;
        assert!(check_chrome_trace(bad)
            .unwrap_err()
            .contains("phase-tagged"));
        // Non-increasing seq.
        let bad = r#"[
            {"ph":"B","name":"x","cat":"c","pid":0,"tid":1,"ts":0,"args":{"phase":"finish","seq":1}},
            {"ph":"E","pid":0,"tid":1,"ts":1},
            {"ph":"B","name":"y","cat":"c","pid":0,"tid":2,"ts":0,"args":{"phase":"finish","seq":1}},
            {"ph":"E","pid":0,"tid":2,"ts":1}]"#;
        assert!(check_chrome_trace(bad)
            .unwrap_err()
            .contains("strictly increasing"));
    }
}
