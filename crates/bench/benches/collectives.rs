//! Microbenchmark: the four aggregation strategies' *data paths* (the
//! actual merge work; simulated network time is a separate, analytic
//! quantity printed by `table1_comm_cost`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dimboost_simnet::collectives::{
    allreduce_binomial, ps_batch_exchange, reduce_scatter_halving, reduce_to_one,
};
use dimboost_simnet::CostModel;
use std::hint::black_box;

fn buffers(w: usize, elems: usize) -> Vec<Vec<f32>> {
    (0..w)
        .map(|r| {
            (0..elems)
                .map(|i| ((r * 31 + i) % 13) as f32 - 6.0)
                .collect()
        })
        .collect()
}

fn bench_collectives(c: &mut Criterion) {
    let elems = 1 << 18; // 1 MiB of f32 per worker
    let model = CostModel::FREE;
    let mut group = c.benchmark_group("collectives_1MiB");
    for w in [4usize, 8, 16] {
        let bufs = buffers(w, elems);
        group.throughput(Throughput::Bytes((w * elems * 4) as u64));
        group.bench_with_input(BenchmarkId::new("reduce_to_one", w), &w, |b, _| {
            b.iter(|| black_box(reduce_to_one(&bufs, 0, &model)))
        });
        group.bench_with_input(BenchmarkId::new("allreduce_binomial", w), &w, |b, _| {
            b.iter(|| black_box(allreduce_binomial(&bufs, &model)))
        });
        group.bench_with_input(BenchmarkId::new("reduce_scatter", w), &w, |b, _| {
            b.iter(|| black_box(reduce_scatter_halving(&bufs, &model)))
        });
        group.bench_with_input(BenchmarkId::new("ps_exchange", w), &w, |b, _| {
            b.iter(|| black_box(ps_batch_exchange(&bufs, w, &model)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_collectives
}
criterion_main!(benches);
