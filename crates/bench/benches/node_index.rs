//! Microbenchmark: node-to-instance index split throughput (Section 5.2)
//! versus re-routing the whole shard through the tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dimboost_core::{NodeIndex, Tree};
use dimboost_data::synthetic::{generate, SparseGenConfig};
use std::hint::black_box;

fn bench_node_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_index");
    for n in [10_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("split_root", n), &n, |b, &n| {
            b.iter(|| {
                let mut idx = NodeIndex::new(n, 7);
                idx.split(0, 1, 2, |i| i % 3 != 0);
                black_box(idx)
            })
        });
    }

    group.finish();

    // Index lookup vs full-shard routing for locating a node's instances.
    let n = 50_000;
    let ds = generate(&SparseGenConfig::new(n, 100, 10, 7));
    let mut tree = Tree::new(3);
    tree.set_internal(0, 0, 0.5);
    tree.set_internal(1, 1, 0.5);
    tree.set_internal(2, 2, 0.5);
    let mut idx = NodeIndex::new(n, tree.capacity());
    idx.split(0, 1, 2, |i| ds.row(i as usize).get(0) <= 0.5);
    idx.split(1, 3, 4, |i| ds.row(i as usize).get(1) <= 0.5);
    idx.split(2, 5, 6, |i| ds.row(i as usize).get(2) <= 0.5);

    let mut group2 = c.benchmark_group("locate_node_instances");
    group2.throughput(Throughput::Elements(n as u64));
    group2.bench_function("via_index", |b| {
        b.iter(|| {
            let total: usize = (3..7u32).map(|node| idx.instances(node).len()).sum();
            black_box(total)
        })
    });
    group2.bench_function("via_full_routing", |b| {
        b.iter(|| {
            let mut counts = [0usize; 4];
            for i in 0..n as u32 {
                let leaf = tree.route(&ds.row(i as usize), 0);
                counts[(leaf - 3) as usize] += 1;
            }
            black_box(counts)
        })
    });
    group2.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_node_index
}
criterion_main!(benches);
