//! Microbenchmark: gradient histogram construction (Section 5.1).
//!
//! Dense vs sparsity-aware builders across a sparsity sweep — the measured
//! shape behind Table 3a and Figure 1: dense cost scales with `M·N`,
//! sparse with `z·N + M`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dimboost_core::binned::BinnedShard;
use dimboost_core::hist_build::{build_row, new_row};
use dimboost_core::loss::GradPair;
use dimboost_core::parallel::{build_row_batched, BatchConfig};
use dimboost_core::FeatureMeta;
use dimboost_data::synthetic::{generate, SparseGenConfig};
use dimboost_data::Dataset;
use dimboost_sketch::SplitCandidates;
use std::hint::black_box;

fn setup(rows: usize, features: usize, nnz: usize) -> (Dataset, FeatureMeta, Vec<GradPair>) {
    let ds = generate(&SparseGenConfig::new(rows, features, nnz, 42));
    let cands: Vec<SplitCandidates> = (0..features)
        .map(|_| SplitCandidates::from_boundaries((1..=20).map(|i| i as f32 / 10.0).collect()))
        .collect();
    let meta = FeatureMeta::all_features(&cands);
    let grads: Vec<GradPair> = (0..rows)
        .map(|i| GradPair {
            g: ((i % 7) as f32 - 3.0) / 3.0,
            h: 0.25,
        })
        .collect();
    (ds, meta, grads)
}

fn bench_dense_vs_sparse(c: &mut Criterion) {
    let rows = 2_000;
    let mut group = c.benchmark_group("hist_build");
    for features in [500usize, 2_000, 8_000] {
        let (ds, meta, grads) = setup(rows, features, 50);
        let instances: Vec<u32> = (0..rows as u32).collect();
        group.throughput(Throughput::Elements((rows * 50) as u64));
        group.bench_with_input(BenchmarkId::new("dense", features), &features, |b, _| {
            b.iter(|| black_box(build_row(&ds, &instances, &grads, &meta, false)))
        });
        group.bench_with_input(BenchmarkId::new("sparse", features), &features, |b, _| {
            b.iter(|| black_box(build_row(&ds, &instances, &grads, &meta, true)))
        });
        let bc = BatchConfig {
            batch_size: 256,
            threads: 4,
            sparse: true,
        };
        group.bench_with_input(
            BenchmarkId::new("sparse_batched", features),
            &features,
            |b, _| b.iter(|| black_box(build_row_batched(&ds, &instances, &grads, &meta, &bc))),
        );
        let binned = BinnedShard::build(&ds, &meta);
        group.bench_with_input(
            BenchmarkId::new("pre_binned", features),
            &features,
            |b, _| {
                b.iter(|| {
                    let mut out = new_row(&meta);
                    binned.build_into(&instances, &grads, &mut out);
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

fn bench_sparsity_sweep(c: &mut Criterion) {
    let rows = 2_000;
    let features = 2_000;
    let mut group = c.benchmark_group("hist_build_sparsity");
    for nnz in [10usize, 50, 200, 800] {
        let (ds, meta, grads) = setup(rows, features, nnz);
        let instances: Vec<u32> = (0..rows as u32).collect();
        group.bench_with_input(BenchmarkId::new("sparse", nnz), &nnz, |b, _| {
            b.iter(|| black_box(build_row(&ds, &instances, &grads, &meta, true)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dense_vs_sparse, bench_sparsity_sweep
}
criterion_main!(benches);
