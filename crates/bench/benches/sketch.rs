//! Microbenchmark: GK quantile sketch insert, merge, and query — the
//! CREATE_SKETCH / PULL_SKETCH phases' kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dimboost_sketch::{propose_candidates, GkSketch};
use std::hint::black_box;

fn bench_sketch(c: &mut Criterion) {
    let n = 100_000usize;
    let values: Vec<f32> = (0..n)
        .map(|i| ((i as u64 * 48271) % 99991) as f32)
        .collect();

    let mut group = c.benchmark_group("gk_sketch");
    group.throughput(Throughput::Elements(n as u64));
    for eps in [0.05f64, 0.01, 0.001] {
        group.bench_with_input(
            BenchmarkId::new("insert", format!("{eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let mut s = GkSketch::new(eps);
                    s.extend(values.iter().copied());
                    s.flush();
                    black_box(s)
                })
            },
        );
    }

    let make = |lo: usize, hi: usize| {
        let mut s = GkSketch::new(0.01);
        s.extend(values[lo..hi].iter().copied());
        s.flush();
        s
    };
    let a = make(0, n / 2);
    let b2 = make(n / 2, n);
    group.bench_function("merge_halves", |b| {
        b.iter(|| {
            let mut m = a.clone();
            m.merge(&b2);
            black_box(m)
        })
    });

    let mut full = make(0, n);
    group.bench_function("propose_20_candidates", |b| {
        b.iter(|| black_box(propose_candidates(&mut full, 20)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sketch
}
criterion_main!(benches);
