//! Microbenchmark: Algorithm 1's split scan over a histogram row — the
//! server-side pull UDF of the two-phase split (Section 6.3). The sharded
//! variant shows why pushing the scan to the servers is cheap: total work is
//! unchanged but each shard's scan is `1/p` of it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dimboost_ps::split::best_split_in_range;
use dimboost_ps::{HistogramLayout, SplitParams};
use std::hint::black_box;

fn make_row(layout: &HistogramLayout) -> Vec<f32> {
    let mut row = vec![0.0f32; layout.row_len()];
    for f in 0..layout.num_features() {
        for k in 0..layout.num_buckets(f) {
            row[layout.g_index(f, k)] = ((f * 7 + k * 3) % 11) as f32 - 5.0;
            row[layout.h_index(f, k)] = 0.1 + ((f + k) % 5) as f32;
        }
    }
    row
}

fn bench_split_scan(c: &mut Criterion) {
    let params = SplitParams::default();
    let mut group = c.benchmark_group("split_scan");
    for features in [1_000usize, 10_000, 50_000] {
        let layout = HistogramLayout::new(vec![21; features]);
        let row = make_row(&layout);
        group.throughput(Throughput::Elements(features as u64));
        group.bench_with_input(BenchmarkId::new("full", features), &features, |b, &nf| {
            b.iter(|| black_box(best_split_in_range(&row, &layout, 0..nf, None, &params)))
        });
        // One shard of an 8-way partition (the server-side phase).
        let shard_range = 0..features / 8;
        let shard = &row[layout.elem_range(shard_range.clone())];
        group.bench_with_input(
            BenchmarkId::new("one_of_8_shards", features),
            &features,
            |b, _| {
                b.iter(|| {
                    black_box(best_split_in_range(
                        shard,
                        &layout,
                        shard_range.clone(),
                        Some((0.0, 100.0)),
                        &params,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_split_scan
}
criterion_main!(benches);
