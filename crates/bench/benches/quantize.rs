//! Microbenchmark: low-precision histogram encode/decode throughput
//! (Section 6.1) at the paper's d = 8 and neighbours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dimboost_ps::quantize::{quantize, quantize_row};
use dimboost_ps::HistogramLayout;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_quantize(c: &mut Criterion) {
    let n = 1 << 16;
    let values: Vec<f32> = (0..n)
        .map(|i| ((i * 37 % 1000) as f32 - 500.0) / 25.0)
        .collect();
    let mut group = c.benchmark_group("quantize_flat");
    group.throughput(Throughput::Bytes((n * 4) as u64));
    for bits in [4u8, 8, 16] {
        group.bench_with_input(BenchmarkId::new("encode", bits), &bits, |b, &bits| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(quantize(&values, bits, &mut rng)))
        });
    }
    let mut rng = StdRng::seed_from_u64(1);
    let q = quantize(&values, 8, &mut rng);
    group.bench_function("decode_8bit", |b| b.iter(|| black_box(q.dequantize())));
    group.finish();

    // Layout-aware row quantizer (the production push path).
    let features = 1_000;
    let layout = HistogramLayout::new(vec![21; features]);
    let row: Vec<f32> = (0..layout.row_len())
        .map(|i| {
            if i % 21 == 0 {
                500.0
            } else {
                ((i % 13) as f32 - 6.0) / 6.0
            }
        })
        .collect();
    let mut group = c.benchmark_group("quantize_row");
    group.throughput(Throughput::Bytes((layout.row_len() * 4) as u64));
    group.bench_function("encode_8bit", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(quantize_row(&row, &layout, 8, &mut rng)))
    });
    let mut rng = StdRng::seed_from_u64(2);
    let q = quantize_row(&row, &layout, 8, &mut rng);
    group.bench_function("decode_8bit", |b| {
        b.iter(|| black_box(q.dequantize(&layout)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantize
}
criterion_main!(benches);
