//! Microbenchmark: model scoring throughput — single-row routing and batch
//! prediction over sparse data, the serving-side cost of the ensemble.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dimboost_core::{train_single_machine, GbdtConfig};
use dimboost_data::synthetic::{generate, SparseGenConfig};
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let dataset = generate(&SparseGenConfig::new(5_000, 1_000, 30, 42));
    let mut group = c.benchmark_group("predict");
    for trees in [5usize, 20, 50] {
        let config = GbdtConfig {
            num_trees: trees,
            max_depth: 5,
            learning_rate: 0.3,
            ..GbdtConfig::default()
        };
        let model = train_single_machine(&dataset, &config).expect("train");
        group.throughput(Throughput::Elements(dataset.num_rows() as u64));
        group.bench_with_input(BenchmarkId::new("batch", trees), &trees, |b, _| {
            b.iter(|| black_box(model.predict_dataset(&dataset)))
        });
        group.bench_with_input(BenchmarkId::new("single_row", trees), &trees, |b, _| {
            let row = dataset.row(17);
            b.iter(|| black_box(model.predict(&row)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_predict
}
criterion_main!(benches);
