//! Production-serving simulation for the DimBoost reproduction.
//!
//! The training side of the repo answers "how fast can the cluster learn
//! the model"; this crate answers the natural follow-up — "what happens
//! when the *trained* model meets traffic". It drives the compiled scoring
//! engine (`dimboost-predict`) under an **open-loop** request-arrival
//! process on the simulated clock, with the queueing policies a production
//! scorer actually needs:
//!
//! * **Seeded arrivals** ([`arrival`]): exponential inter-arrival gaps
//!   drawn through the same SplitMix64-style decision hashing the fault
//!   layer uses — pure in `(seed, request index)`, so the whole traffic
//!   trace is a function of the seed, never of execution order.
//! * **Bounded queues + load shedding** ([`sim`]): each tenant owns a
//!   FIFO queue of fixed capacity; an arrival that finds its queue full is
//!   shed at admission and counted, never silently dropped.
//! * **Adaptive batching under a latency SLO**: a free server dispatches a
//!   tenant's batch when it fills *or* when the oldest queued request's
//!   slack (SLO minus predicted service time) expires, whichever is first.
//! * **Multi-model tenancy with zero-downtime hot-swap**: scripted model
//!   swaps apply atomically between batches; an in-flight batch finishes
//!   on the model it was dispatched with, and every served request records
//!   the model epoch that scored it.
//!
//! The data path is real — every request is scored through
//! [`dimboost_predict::CompiledModel`] on an actual dataset row; only
//! *time* is simulated. Latency, wait, batch-size, and queue-depth
//! distributions flow through [`dimboost_simnet::MetricsRegistry`]
//! histograms into a `{"kind":"serving_sim"}` report ([`report`]) whose
//! canonical form is byte-identical across reruns and gated by
//! `report_diff` in ci.sh.

pub mod analyze;
pub mod arrival;
pub mod report;
pub mod sim;

pub use analyze::{analyze_serve_trace, is_serve_trace, ServeAnalyzeError, ServeProfile};
pub use arrival::{poisson_arrivals, Arrival};
pub use report::{ServeSimReport, TenantReport};
pub use sim::{run_serve_sim, ModelSwap, ServeSimConfig, ServeSimResult, ServedRecord, TenantSpec};
