//! The `{"kind":"serving_sim"}` report.
//!
//! Same canonical-vs-timed scheme as the training `RunReport` and the
//! serving bench's `ServingReport`: every field that is a pure function of
//! `(models, data, arrivals, config)` — counts, simulated-clock latencies,
//! per-tenant score checksums, `sim/serve/*` metric entries — appears in
//! the canonical JSON and must be byte-identical across reruns. Wall-clock
//! measurements live in the timings-only fields `wall_secs` and
//! `wall_served_per_sec` plus `wall/`-prefixed percentile entries, all of
//! which `report_diff`'s built-in rules (`*wall_secs`, `*_per_sec`,
//! `wall/*`) ignore.
//!
//! The per-tenant array is keyed by the `name` field, which `report_diff`
//! uses for array-element identity, so a diff of two serving reports lines
//! tenants up by name rather than by position.

use dimboost_simnet::MetricExport;

/// FNV-1a 64 offset basis — the checksum of an empty score stream.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one score's little-endian bytes into a running FNV-1a 64 hash.
/// Seed with [`FNV_OFFSET`]; feeding scores one at a time in completion
/// order matches hashing the concatenated byte stream, so the per-tenant
/// checksum pins both the score *bits* and the completion *order*.
pub fn fnv1a64_extend(mut hash: u64, score: f32) -> u64 {
    for b in score.to_le_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Per-tenant slice of the serving report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name — the array-identity key for `report_diff`.
    pub name: String,
    /// Requests that arrived for this tenant.
    pub arrived: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Model swaps applied.
    pub swaps: u64,
    /// Model epoch at end of simulation (0 if never swapped).
    pub final_epoch: u64,
    /// FNV-1a 64 over served scores in completion order.
    pub score_checksum: u64,
}

/// Aggregated result of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSimReport {
    /// Seed the arrival schedule was built from.
    pub seed: u64,
    /// Scheduled arrivals handed to the simulation.
    pub requests_planned: u64,
    /// Arrivals processed before the horizon.
    pub arrived: u64,
    /// Arrivals admitted to a queue.
    pub admitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests queued or in flight when the simulation stopped
    /// (`arrived == served + shed + in_flight_at_end`).
    pub in_flight_at_end: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Model swaps applied.
    pub swaps: u64,
    /// Served requests whose latency exceeded the SLO.
    pub slo_violations: u64,
    /// Per-tenant queue capacity.
    pub queue_capacity: usize,
    /// Maximum batch size.
    pub max_batch: usize,
    /// The latency SLO.
    pub slo_secs: f64,
    /// Fixed per-batch service cost.
    pub service_fixed_secs: f64,
    /// Per-request service cost.
    pub service_per_row_secs: f64,
    /// Simulated clock at the last processed event.
    pub sim_clock_secs: f64,
    /// Served requests per simulated second (deterministic — this is
    /// simulated time, so it belongs in the canonical report).
    pub throughput_rps: f64,
    /// The server's structural capacity: a full batch's rows over its
    /// service time. Offered load beyond this must queue or shed.
    pub saturation_rps: f64,
    /// Median served latency (simulated seconds).
    pub latency_p50_secs: f64,
    /// 99th-percentile served latency.
    pub latency_p99_secs: f64,
    /// 99.9th-percentile served latency.
    pub latency_p999_secs: f64,
    /// Exact maximum served latency.
    pub latency_max_secs: f64,
    /// Wall-clock seconds the simulation took (timings-only).
    pub wall_secs: f64,
    /// Per-tenant breakdown, in tenant-index order.
    pub tenants: Vec<TenantReport>,
    /// Metric exports (`sim/serve/*` canonical, `wall/` timings-only).
    pub percentiles: Vec<MetricExport>,
}

impl ServeSimReport {
    /// Serializes to JSON. With `timings`, wall-clock content (`wall_secs`,
    /// `wall_served_per_sec`, `wall/` percentile entries) is included;
    /// without, the document is canonical — bit-identical across reruns.
    pub fn json(&self, timings: bool) -> String {
        let mut out = String::from("{");
        push_field(&mut out, "kind", "\"serving_sim\"", true);
        push_field(&mut out, "seed", &self.seed.to_string(), false);
        push_field(
            &mut out,
            "requests_planned",
            &self.requests_planned.to_string(),
            false,
        );
        push_field(&mut out, "arrived", &self.arrived.to_string(), false);
        push_field(&mut out, "admitted", &self.admitted.to_string(), false);
        push_field(&mut out, "served", &self.served.to_string(), false);
        push_field(&mut out, "shed", &self.shed.to_string(), false);
        push_field(
            &mut out,
            "in_flight_at_end",
            &self.in_flight_at_end.to_string(),
            false,
        );
        push_field(&mut out, "batches", &self.batches.to_string(), false);
        push_field(&mut out, "swaps", &self.swaps.to_string(), false);
        push_field(
            &mut out,
            "slo_violations",
            &self.slo_violations.to_string(),
            false,
        );
        push_field(
            &mut out,
            "queue_capacity",
            &self.queue_capacity.to_string(),
            false,
        );
        push_field(&mut out, "max_batch", &self.max_batch.to_string(), false);
        push_field(&mut out, "slo_secs", &fmt_f64(self.slo_secs), false);
        push_field(
            &mut out,
            "service_fixed_secs",
            &fmt_f64(self.service_fixed_secs),
            false,
        );
        push_field(
            &mut out,
            "service_per_row_secs",
            &fmt_f64(self.service_per_row_secs),
            false,
        );
        push_field(
            &mut out,
            "sim_clock_secs",
            &fmt_f64(self.sim_clock_secs),
            false,
        );
        push_field(
            &mut out,
            "throughput_rps",
            &fmt_f64(self.throughput_rps),
            false,
        );
        push_field(
            &mut out,
            "saturation_rps",
            &fmt_f64(self.saturation_rps),
            false,
        );
        push_field(
            &mut out,
            "latency_p50_secs",
            &fmt_f64(self.latency_p50_secs),
            false,
        );
        push_field(
            &mut out,
            "latency_p99_secs",
            &fmt_f64(self.latency_p99_secs),
            false,
        );
        push_field(
            &mut out,
            "latency_p999_secs",
            &fmt_f64(self.latency_p999_secs),
            false,
        );
        push_field(
            &mut out,
            "latency_max_secs",
            &fmt_f64(self.latency_max_secs),
            false,
        );
        if timings {
            push_field(&mut out, "wall_secs", &fmt_f64(self.wall_secs), false);
            let wall_rate = if self.wall_secs > 0.0 {
                self.served as f64 / self.wall_secs
            } else {
                0.0
            };
            push_field(&mut out, "wall_served_per_sec", &fmt_f64(wall_rate), false);
        }
        out.push_str(",\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_field(&mut out, "name", &format!("\"{}\"", t.name), true);
            push_field(&mut out, "arrived", &t.arrived.to_string(), false);
            push_field(&mut out, "served", &t.served.to_string(), false);
            push_field(&mut out, "shed", &t.shed.to_string(), false);
            push_field(&mut out, "swaps", &t.swaps.to_string(), false);
            push_field(&mut out, "final_epoch", &t.final_epoch.to_string(), false);
            push_field(
                &mut out,
                "score_checksum",
                &t.score_checksum.to_string(),
                false,
            );
            out.push('}');
        }
        out.push_str("],\"percentiles\":[");
        let mut first = true;
        for m in &self.percentiles {
            if !timings && !m.deterministic {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push('{');
            push_field(&mut out, "name", &format!("\"{}\"", m.name), true);
            push_field(&mut out, "kind", &format!("\"{}\"", m.kind), false);
            push_field(&mut out, "count", &m.count.to_string(), false);
            push_field(&mut out, "value", &fmt_f64(m.value), false);
            push_field(&mut out, "min", &fmt_f64(m.min), false);
            push_field(&mut out, "max", &fmt_f64(m.max), false);
            push_field(&mut out, "p50", &fmt_f64(m.p50), false);
            push_field(&mut out, "p95", &fmt_f64(m.p95), false);
            push_field(&mut out, "p99", &fmt_f64(m.p99), false);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The canonical (rerun-stable) JSON document.
    pub fn canonical_json(&self) -> String {
        self.json(false)
    }

    /// One-line human-readable summary for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "serve-sim: {} arrived / {} served / {} shed / {} in flight, {} batches, {} swaps, {:.0} rps (sat {:.0}), p50 {:.4}s p99 {:.4}s p999 {:.4}s max {:.4}s, {} SLO misses",
            self.arrived,
            self.served,
            self.shed,
            self.in_flight_at_end,
            self.batches,
            self.swaps,
            self.throughput_rps,
            self.saturation_rps,
            self.latency_p50_secs,
            self.latency_p99_secs,
            self.latency_p999_secs,
            self.latency_max_secs,
            self.slo_violations,
        )
    }
}

fn push_field(out: &mut String, key: &str, value: &str, first: bool) {
    if !first {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
}

/// Shortest round-trip decimal form (`f64` Display), as in `RunReport`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_checksum_matches_stream_hashing() {
        // Folding scores one at a time must equal hashing the concatenated
        // byte stream (the serving bench's formulation).
        let scores = [1.5f32, -0.25, 0.0, f32::from_bits(0x7fc0_1234)];
        let mut incremental = FNV_OFFSET;
        for s in scores {
            incremental = fnv1a64_extend(incremental, s);
        }
        let mut stream = FNV_OFFSET;
        for b in scores.iter().flat_map(|s| s.to_le_bytes()) {
            stream ^= b as u64;
            stream = stream.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(incremental, stream);
        // Order- and bit-sensitivity.
        assert_ne!(
            fnv1a64_extend(fnv1a64_extend(FNV_OFFSET, 1.0), 2.0),
            fnv1a64_extend(fnv1a64_extend(FNV_OFFSET, 2.0), 1.0)
        );
        assert_ne!(
            fnv1a64_extend(FNV_OFFSET, 0.0),
            fnv1a64_extend(FNV_OFFSET, -0.0)
        );
    }

    fn sample_report() -> ServeSimReport {
        ServeSimReport {
            seed: 7,
            requests_planned: 10,
            arrived: 10,
            admitted: 9,
            served: 8,
            shed: 1,
            in_flight_at_end: 1,
            batches: 3,
            swaps: 1,
            slo_violations: 2,
            queue_capacity: 4,
            max_batch: 8,
            slo_secs: 0.05,
            service_fixed_secs: 1e-4,
            service_per_row_secs: 1e-5,
            sim_clock_secs: 0.5,
            throughput_rps: 16.0,
            saturation_rps: 44444.444444444445,
            latency_p50_secs: 0.01,
            latency_p99_secs: 0.04,
            latency_p999_secs: 0.045,
            latency_max_secs: 0.05,
            wall_secs: 0.123,
            tenants: vec![TenantReport {
                name: "tenant0".into(),
                arrived: 10,
                served: 8,
                shed: 1,
                swaps: 1,
                final_epoch: 1,
                score_checksum: 42,
            }],
            percentiles: Vec::new(),
        }
    }

    #[test]
    fn canonical_json_excludes_wall_fields() {
        let r = sample_report();
        let canonical = r.canonical_json();
        assert!(canonical.starts_with("{\"kind\":\"serving_sim\""));
        assert!(!canonical.contains("wall_secs"));
        assert!(!canonical.contains("wall_served_per_sec"));
        let timed = r.json(true);
        assert!(timed.contains("\"wall_secs\":0.123"));
        assert!(timed.contains("wall_served_per_sec"));
        assert!(timed.contains("\"name\":\"tenant0\""));
        assert!(r.summary().contains("8 served"));
    }
}
