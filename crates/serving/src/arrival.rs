//! The open-loop arrival process.
//!
//! Requests arrive regardless of whether the server keeps up — the defining
//! property of an open-loop (arrival-driven) workload generator, and the
//! regime where queueing, shedding, and SLO policies actually matter. Gaps
//! are exponential (a Poisson process) with every draw hashed from
//! `(seed, request index)` through [`dimboost_simnet::fault::decision_hash`]:
//! the schedule is a pure function of the seed, independent of execution
//! order, and bit-identical across reruns.

use dimboost_simnet::fault::{decision_hash, unit};

/// Hash salts keeping the three per-request draws independent. Distinct
/// from the fault layer's salts (1, 2) so a serving simulation sharing a
/// seed with a fault plan still draws unrelated streams.
const SALT_GAP: u64 = 0x5e71;
const SALT_TENANT: u64 = 0x5e72;
const SALT_ROW: u64 = 0x5e73;

/// One scheduled request: a time, a tenant to serve it, and the dataset
/// row it scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time on the simulated clock, in seconds.
    pub at_secs: f64,
    /// Index of the tenant (model) the request targets.
    pub tenant: usize,
    /// Dataset row the request carries.
    pub row: usize,
}

/// A seeded Poisson arrival schedule: `requests` arrivals at mean rate
/// `rate_rps` (requests per simulated second, across all tenants), each
/// assigned a tenant in `0..tenants` and a row in `0..rows` uniformly.
///
/// Request `i`'s gap is the inverse-CDF transform `-ln(1 − u) / rate` of a
/// hashed uniform `u`, so the full schedule is pure in
/// `(seed, requests, rate_rps, tenants, rows)` — two calls with equal
/// arguments return identical schedules, bit for bit.
pub fn poisson_arrivals(
    seed: u64,
    requests: usize,
    rate_rps: f64,
    tenants: usize,
    rows: usize,
) -> Vec<Arrival> {
    assert!(
        rate_rps > 0.0 && rate_rps.is_finite(),
        "rate must be positive"
    );
    assert!(tenants > 0, "need at least one tenant");
    assert!(rows > 0, "need at least one dataset row");
    let mut at = 0.0f64;
    let mut out = Vec::with_capacity(requests);
    for i in 0..requests {
        let u = unit(decision_hash(seed, 0, i as u64, 0, SALT_GAP));
        at += -(1.0 - u).ln() / rate_rps;
        out.push(Arrival {
            at_secs: at,
            tenant: (decision_hash(seed, 0, i as u64, 0, SALT_TENANT) % tenants as u64) as usize,
            row: (decision_hash(seed, 0, i as u64, 0, SALT_ROW) % rows as u64) as usize,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_pure_in_its_arguments() {
        let a = poisson_arrivals(7, 500, 1000.0, 3, 40);
        let b = poisson_arrivals(7, 500, 1000.0, 3, 40);
        assert_eq!(a, b);
        let c = poisson_arrivals(8, 500, 1000.0, 3, 40);
        assert_ne!(a, c, "a different seed must reshuffle the schedule");
    }

    #[test]
    fn arrivals_are_sorted_and_mean_gap_tracks_the_rate() {
        let arrivals = poisson_arrivals(42, 4000, 1000.0, 2, 10);
        assert_eq!(arrivals.len(), 4000);
        assert!(arrivals.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
        assert!(arrivals.iter().all(|a| a.tenant < 2 && a.row < 10));
        // 4000 arrivals at 1000 rps span ~4 simulated seconds.
        let span = arrivals.last().unwrap().at_secs;
        assert!((3.0..5.0).contains(&span), "span {span}");
        // Both tenants see a fair share.
        let t0 = arrivals.iter().filter(|a| a.tenant == 0).count();
        assert!((1500..2500).contains(&t0), "tenant skew: {t0}/4000");
    }

    #[test]
    fn rate_scales_the_clock_not_the_structure() {
        let slow = poisson_arrivals(5, 100, 10.0, 2, 8);
        let fast = poisson_arrivals(5, 100, 1000.0, 2, 8);
        for (s, f) in slow.iter().zip(&fast) {
            // Same uniforms, same tenant/row stream; only the gap scale
            // differs (by exactly the rate ratio).
            assert_eq!(s.tenant, f.tenant);
            assert_eq!(s.row, f.row);
            assert!((s.at_secs / f.at_secs - 100.0).abs() < 1e-6);
        }
    }
}
