//! SLO analytics over the serve-sim event trace.
//!
//! [`run_serve_sim`](crate::run_serve_sim) emits a deterministic plain-text
//! trace — one `arrive`/`shed`/`dispatch`/`complete`/`swap` line per event
//! behind a `# serve-sim-trace v1` header carrying the configuration. This
//! module replays that text and decomposes every served request's latency
//! into its three causes:
//!
//! * **queue wait** — time between arrival and dispatch during which the
//!   server was *busy* with earlier batches (capacity problem);
//! * **formation wait** — time between arrival and dispatch during which
//!   the server was *free* but the batcher was still accumulating the
//!   batch or burning slack (policy problem);
//! * **service** — dispatch to completion (cost-model problem).
//!
//! `queue + formation + service == latency` holds per request by
//! construction (the two waits partition `[arrival, dispatch]` against the
//! server-busy intervals). On top of the decomposition the profiler reports
//! per-tenant SLO attainment with exact latency quantiles (sorted, not
//! histogram-bucketed), a fixed-window timeline of arrive/serve/shed/SLO
//! rates, and the same conservation identity the simulator asserts
//! (`arrived == served + shed + in_flight_at_end`) — re-proved from the
//! trace alone, so a corrupted trace fails loudly.
//!
//! Output is a canonical `{"kind":"trace_profile","source":"serve_sim"}`
//! JSON document, byte-identical across reruns of the same configuration,
//! gated by `report_diff` in ci.sh next to the training profile.

use std::collections::{HashMap, VecDeque};

use crate::sim::ServeSimConfig;

/// Fixed window count for the timeline (the last window absorbs the
/// end-of-trace remainder).
const TIMELINE_WINDOWS: usize = 20;

/// Why a serve-sim trace failed analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAnalyzeError {
    /// The text does not start with a `# serve-sim-trace v1` header.
    MissingHeader,
    /// The header is malformed (bad or missing `key=value`).
    Header(String),
    /// A trace line is malformed or structurally impossible (1-based line).
    Line { line: usize, message: String },
    /// The conservation identity does not hold over the replay.
    Conservation(String),
}

impl std::fmt::Display for ServeAnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAnalyzeError::MissingHeader => {
                write!(
                    f,
                    "not a serve-sim trace: missing `# serve-sim-trace v1` header"
                )
            }
            ServeAnalyzeError::Header(m) => write!(f, "bad serve-sim trace header: {m}"),
            ServeAnalyzeError::Line { line, message } => {
                write!(f, "bad serve-sim trace line {line}: {message}")
            }
            ServeAnalyzeError::Conservation(m) => write!(f, "conservation broken: {m}"),
        }
    }
}

impl std::error::Error for ServeAnalyzeError {}

/// Per-tenant latency decomposition and SLO attainment.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantProfile {
    /// Tenant index (names live in the serving report; the trace only
    /// carries indices).
    pub tenant: usize,
    /// Requests arrived / served / shed.
    pub arrived: u64,
    /// Served requests.
    pub served: u64,
    /// Shed requests.
    pub shed: u64,
    /// Model swaps applied.
    pub swaps: u64,
    /// Total queue wait across served requests.
    pub queue_wait_secs: f64,
    /// Total batch-formation wait across served requests.
    pub formation_wait_secs: f64,
    /// Total service time across served requests.
    pub service_secs: f64,
    /// Served requests whose latency met the SLO.
    pub slo_ok: u64,
    /// Exact latency quantiles over this tenant's served requests.
    pub latency_p50_secs: f64,
    /// 99th percentile.
    pub latency_p99_secs: f64,
    /// Worst latency.
    pub latency_max_secs: f64,
}

/// One fixed-width window of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineWindow {
    /// Window index, `0..TIMELINE_WINDOWS`.
    pub window: usize,
    /// Window start on the simulated clock.
    pub begin_secs: f64,
    /// Window end.
    pub end_secs: f64,
    /// Arrivals (admitted + shed) whose arrival time falls in the window.
    pub arrived: u64,
    /// Requests completed in the window.
    pub served: u64,
    /// Requests shed in the window.
    pub shed: u64,
    /// Of the completions, how many met the SLO.
    pub slo_ok: u64,
}

/// The full profile of one serve-sim trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeProfile {
    /// Tenant count from the header.
    pub tenants: usize,
    /// Seed echoed from the header.
    pub seed: u64,
    /// Queue capacity from the header.
    pub queue_capacity: usize,
    /// Max batch size from the header.
    pub max_batch: usize,
    /// The SLO the batcher aimed for.
    pub slo_secs: f64,
    /// Trace event lines replayed.
    pub events: u64,
    /// Requests arrived / served / shed, and batches dispatched.
    pub arrived: u64,
    /// Served requests.
    pub served: u64,
    /// Shed requests.
    pub shed: u64,
    /// Requests still queued or in flight when the trace ends.
    pub in_flight_at_end: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Model swaps applied.
    pub swaps: u64,
    /// Last event time: the clock when the trace ends.
    pub end_secs: f64,
    /// Total queue wait across served requests.
    pub queue_wait_secs: f64,
    /// Total batch-formation wait across served requests.
    pub formation_wait_secs: f64,
    /// Total service time across served requests.
    pub service_secs: f64,
    /// Served requests whose latency met the SLO.
    pub slo_ok: u64,
    /// `slo_ok / served` (1 when nothing was served).
    pub slo_attainment: f64,
    /// Exact latency quantiles over all served requests.
    pub latency_p50_secs: f64,
    /// 99th percentile.
    pub latency_p99_secs: f64,
    /// Worst latency.
    pub latency_max_secs: f64,
    /// Per-tenant decomposition, by tenant index.
    pub per_tenant: Vec<TenantProfile>,
    /// Fixed-window arrive/serve/shed/SLO timeline.
    pub timeline: Vec<TimelineWindow>,
}

fn parse_kv<'a>(
    pairs: &'a HashMap<&str, &str>,
    key: &str,
    line: usize,
) -> Result<&'a str, ServeAnalyzeError> {
    pairs
        .get(key)
        .copied()
        .ok_or_else(|| ServeAnalyzeError::Line {
            line,
            message: format!("missing {key}="),
        })
}

fn kv_map(rest: &str) -> HashMap<&str, &str> {
    rest.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .collect()
}

fn num<T: std::str::FromStr>(s: &str, key: &str, line: usize) -> Result<T, ServeAnalyzeError> {
    s.parse().map_err(|_| ServeAnalyzeError::Line {
        line,
        message: format!("bad {key}={s}"),
    })
}

/// Exact nearest-rank quantile over an ascending slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Overlap of `[a, b]` with the busy intervals (ascending, disjoint),
/// starting the scan at `*cursor` (monotone across calls in arrival order
/// is not guaranteed, so the cursor only skips intervals ending before the
/// earliest arrival still live — callers pass a fresh cursor per batch).
fn busy_overlap(busy: &[(f64, f64)], a: f64, b: f64) -> f64 {
    // Binary search for the first interval that could intersect [a, b].
    let mut lo = busy.partition_point(|&(_, end)| end <= a);
    let mut acc = 0.0;
    while lo < busy.len() {
        let (s, e) = busy[lo];
        if s >= b {
            break;
        }
        let left = s.max(a);
        let right = e.min(b);
        if right > left {
            acc += right - left;
        }
        lo += 1;
    }
    acc
}

/// Replays a serve-sim trace and profiles it. Pure and deterministic:
/// byte-identical traces produce byte-identical
/// [`ServeProfile::canonical_json`] documents.
///
/// # Errors
/// Typed [`ServeAnalyzeError`]s on a missing/bad header, malformed or
/// structurally impossible lines (a completion without a dispatch, a
/// dispatch of more requests than are queued), and a broken conservation
/// identity.
pub fn analyze_serve_trace(text: &str) -> Result<ServeProfile, ServeAnalyzeError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ServeAnalyzeError::MissingHeader)?;
    let rest = header
        .strip_prefix("# serve-sim-trace v1 ")
        .ok_or(ServeAnalyzeError::MissingHeader)?;
    let hv = kv_map(rest);
    let want = |key: &str| -> Result<&str, ServeAnalyzeError> {
        hv.get(key)
            .copied()
            .ok_or_else(|| ServeAnalyzeError::Header(format!("missing {key}=")))
    };
    let hnum = |key: &str| -> Result<f64, ServeAnalyzeError> {
        want(key)?
            .parse()
            .map_err(|_| ServeAnalyzeError::Header(format!("bad {key}")))
    };
    let tenants: usize = want("tenants")?
        .parse()
        .map_err(|_| ServeAnalyzeError::Header("bad tenants".into()))?;
    let seed: u64 = want("seed")?
        .parse()
        .map_err(|_| ServeAnalyzeError::Header("bad seed".into()))?;
    let queue_capacity: usize = want("queue_cap")?
        .parse()
        .map_err(|_| ServeAnalyzeError::Header("bad queue_cap".into()))?;
    let max_batch: usize = want("max_batch")?
        .parse()
        .map_err(|_| ServeAnalyzeError::Header("bad max_batch".into()))?;
    let slo_secs = hnum("slo")?;
    if tenants == 0 {
        return Err(ServeAnalyzeError::Header("tenants must be positive".into()));
    }

    struct Queued {
        arrival: f64,
    }
    struct Flight {
        tenant: usize,
        dispatched_at: f64,
        arrivals: Vec<f64>,
    }
    struct TenantAcc {
        arrived: u64,
        served: u64,
        shed: u64,
        swaps: u64,
        queue_wait: f64,
        formation_wait: f64,
        service: f64,
        slo_ok: u64,
        latencies: Vec<f64>,
        queue: VecDeque<Queued>,
    }
    let mut ts: Vec<TenantAcc> = (0..tenants)
        .map(|_| TenantAcc {
            arrived: 0,
            served: 0,
            shed: 0,
            swaps: 0,
            queue_wait: 0.0,
            formation_wait: 0.0,
            service: 0.0,
            slo_ok: 0,
            latencies: Vec::new(),
            queue: VecDeque::new(),
        })
        .collect();

    let mut events = 0u64;
    let (mut arrived, mut served, mut shed) = (0u64, 0u64, 0u64);
    let (mut batches, mut swaps) = (0u64, 0u64);
    let mut end_secs = 0.0f64;
    let mut in_flight: Option<Flight> = None;
    // Completed batches' [dispatch, complete] server-busy intervals, in
    // chronological order (single server → disjoint and ascending).
    let mut busy: Vec<(f64, f64)> = Vec::new();
    let mut all_latencies: Vec<f64> = Vec::new();
    // (time, kind, tenant, slo_ok) rolled into the timeline at the end —
    // kind: 0 arrive, 1 serve, 2 shed.
    let mut ticks: Vec<(f64, u8, bool)> = Vec::new();

    for (i, raw) in lines {
        let line = i + 1;
        let Some((kind, rest)) = raw.split_once(' ') else {
            return Err(ServeAnalyzeError::Line {
                line,
                message: "expected `<kind> key=value ...`".into(),
            });
        };
        let kv = kv_map(rest);
        let t: f64 = num(parse_kv(&kv, "t", line)?, "t", line)?;
        if !t.is_finite() || t < end_secs {
            return Err(ServeAnalyzeError::Line {
                line,
                message: format!("time goes backwards: t={t} after {end_secs}"),
            });
        }
        end_secs = t;
        events += 1;
        let tenant_of = |kv: &HashMap<&str, &str>| -> Result<usize, ServeAnalyzeError> {
            let idx: usize = num(parse_kv(kv, "tenant", line)?, "tenant", line)?;
            if idx >= tenants {
                return Err(ServeAnalyzeError::Line {
                    line,
                    message: format!("tenant={idx} out of range (header says {tenants})"),
                });
            }
            Ok(idx)
        };
        match kind {
            "arrive" => {
                let tenant = tenant_of(&kv)?;
                arrived += 1;
                ts[tenant].arrived += 1;
                ts[tenant].queue.push_back(Queued { arrival: t });
                ticks.push((t, 0, false));
            }
            "shed" => {
                let tenant = tenant_of(&kv)?;
                arrived += 1;
                shed += 1;
                ts[tenant].arrived += 1;
                ts[tenant].shed += 1;
                ticks.push((t, 0, false));
                ticks.push((t, 2, false));
            }
            "dispatch" => {
                if in_flight.is_some() {
                    return Err(ServeAnalyzeError::Line {
                        line,
                        message: "dispatch while a batch is already in flight".into(),
                    });
                }
                let tenant = tenant_of(&kv)?;
                let rows: usize = num(parse_kv(&kv, "rows", line)?, "rows", line)?;
                if rows == 0 || rows > ts[tenant].queue.len() {
                    return Err(ServeAnalyzeError::Line {
                        line,
                        message: format!(
                            "dispatch of {rows} rows but tenant {tenant} has {} queued",
                            ts[tenant].queue.len()
                        ),
                    });
                }
                let arrivals = ts[tenant].queue.drain(..rows).map(|q| q.arrival).collect();
                batches += 1;
                in_flight = Some(Flight {
                    tenant,
                    dispatched_at: t,
                    arrivals,
                });
            }
            "complete" => {
                let Some(f) = in_flight.take() else {
                    return Err(ServeAnalyzeError::Line {
                        line,
                        message: "complete without a batch in flight".into(),
                    });
                };
                let tenant = tenant_of(&kv)?;
                if tenant != f.tenant {
                    return Err(ServeAnalyzeError::Line {
                        line,
                        message: format!(
                            "complete for tenant {tenant} but tenant {} is in flight",
                            f.tenant
                        ),
                    });
                }
                let service = t - f.dispatched_at;
                let acc = &mut ts[tenant];
                for &arrival in &f.arrivals {
                    let wait = f.dispatched_at - arrival;
                    // The server-busy share of the wait is queue wait; the
                    // remainder is batch formation. The request's own batch
                    // starts at dispatch, so it never self-counts.
                    let queued = busy_overlap(&busy, arrival, f.dispatched_at);
                    let latency = t - arrival;
                    acc.served += 1;
                    served += 1;
                    acc.queue_wait += queued;
                    acc.formation_wait += wait - queued;
                    acc.service += service;
                    if latency <= slo_secs {
                        acc.slo_ok += 1;
                    }
                    acc.latencies.push(latency);
                    all_latencies.push(latency);
                    ticks.push((t, 1, latency <= slo_secs));
                }
                busy.push((f.dispatched_at, t));
            }
            "swap" => {
                let tenant = tenant_of(&kv)?;
                swaps += 1;
                ts[tenant].swaps += 1;
            }
            other => {
                return Err(ServeAnalyzeError::Line {
                    line,
                    message: format!("unknown event kind `{other}`"),
                });
            }
        }
    }

    // Conservation, re-proved from the trace alone.
    let queued_at_end: u64 = ts.iter().map(|t| t.queue.len() as u64).sum();
    let in_flight_at_end =
        queued_at_end + in_flight.as_ref().map_or(0, |f| f.arrivals.len() as u64);
    if arrived != served + shed + in_flight_at_end {
        return Err(ServeAnalyzeError::Conservation(format!(
            "{arrived} arrived != {served} served + {shed} shed + {in_flight_at_end} in flight"
        )));
    }

    // Exact quantiles: sort, then nearest-rank.
    all_latencies.sort_by(f64::total_cmp);
    let slo_ok: u64 = ts.iter().map(|t| t.slo_ok).sum();
    let per_tenant: Vec<TenantProfile> = ts
        .into_iter()
        .enumerate()
        .map(|(tenant, mut t)| {
            t.latencies.sort_by(f64::total_cmp);
            TenantProfile {
                tenant,
                arrived: t.arrived,
                served: t.served,
                shed: t.shed,
                swaps: t.swaps,
                queue_wait_secs: t.queue_wait,
                formation_wait_secs: t.formation_wait,
                service_secs: t.service,
                slo_ok: t.slo_ok,
                latency_p50_secs: quantile(&t.latencies, 0.50),
                latency_p99_secs: quantile(&t.latencies, 0.99),
                latency_max_secs: t.latencies.last().copied().unwrap_or(0.0),
            }
        })
        .collect();

    // Fixed-window timeline over [0, end].
    let width = if end_secs > 0.0 {
        end_secs / TIMELINE_WINDOWS as f64
    } else {
        0.0
    };
    let mut timeline: Vec<TimelineWindow> = (0..TIMELINE_WINDOWS)
        .map(|w| TimelineWindow {
            window: w,
            begin_secs: width * w as f64,
            end_secs: if w + 1 == TIMELINE_WINDOWS {
                end_secs
            } else {
                width * (w + 1) as f64
            },
            arrived: 0,
            served: 0,
            shed: 0,
            slo_ok: 0,
        })
        .collect();
    if width > 0.0 {
        for (t, kind, ok) in ticks {
            let w = ((t / width) as usize).min(TIMELINE_WINDOWS - 1);
            match kind {
                0 => timeline[w].arrived += 1,
                1 => {
                    timeline[w].served += 1;
                    if ok {
                        timeline[w].slo_ok += 1;
                    }
                }
                _ => timeline[w].shed += 1,
            }
        }
    }

    Ok(ServeProfile {
        tenants,
        seed,
        queue_capacity,
        max_batch,
        slo_secs,
        events,
        arrived,
        served,
        shed,
        in_flight_at_end,
        batches,
        swaps,
        end_secs,
        queue_wait_secs: per_tenant.iter().map(|t| t.queue_wait_secs).sum(),
        formation_wait_secs: per_tenant.iter().map(|t| t.formation_wait_secs).sum(),
        service_secs: per_tenant.iter().map(|t| t.service_secs).sum(),
        slo_ok,
        slo_attainment: if served > 0 {
            slo_ok as f64 / served as f64
        } else {
            1.0
        },
        latency_p50_secs: quantile(&all_latencies, 0.50),
        latency_p99_secs: quantile(&all_latencies, 0.99),
        latency_max_secs: all_latencies.last().copied().unwrap_or(0.0),
        per_tenant,
        timeline,
    })
}

/// Shortest-round-trip JSON number (non-finite → `null`).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl ServeProfile {
    /// The canonical `{"kind":"trace_profile","source":"serve_sim"}` JSON
    /// document — byte-identical across reruns, `report_diff`-gateable.
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"kind\": \"trace_profile\",\n");
        out.push_str("  \"source\": \"serve_sim\",\n");
        out.push_str(&format!("  \"tenants\": {},\n", self.tenants));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        out.push_str(&format!("  \"max_batch\": {},\n", self.max_batch));
        out.push_str(&format!("  \"slo_secs\": {},\n", fmt_f64(self.slo_secs)));
        out.push_str(&format!("  \"events\": {},\n", self.events));
        out.push_str(&format!("  \"arrived\": {},\n", self.arrived));
        out.push_str(&format!("  \"served\": {},\n", self.served));
        out.push_str(&format!("  \"shed\": {},\n", self.shed));
        out.push_str(&format!(
            "  \"in_flight_at_end\": {},\n",
            self.in_flight_at_end
        ));
        out.push_str(&format!("  \"batches\": {},\n", self.batches));
        out.push_str(&format!("  \"swaps\": {},\n", self.swaps));
        out.push_str(&format!("  \"end_secs\": {},\n", fmt_f64(self.end_secs)));
        out.push_str("  \"latency\": {");
        out.push_str(&format!(
            "\"queue_wait_secs\": {}, \"formation_wait_secs\": {}, \"service_secs\": {}, \
             \"p50_secs\": {}, \"p99_secs\": {}, \"max_secs\": {}",
            fmt_f64(self.queue_wait_secs),
            fmt_f64(self.formation_wait_secs),
            fmt_f64(self.service_secs),
            fmt_f64(self.latency_p50_secs),
            fmt_f64(self.latency_p99_secs),
            fmt_f64(self.latency_max_secs)
        ));
        out.push_str("},\n");
        out.push_str("  \"slo\": {");
        out.push_str(&format!(
            "\"ok\": {}, \"violations\": {}, \"attainment\": {}",
            self.slo_ok,
            self.served - self.slo_ok,
            fmt_f64(self.slo_attainment)
        ));
        out.push_str("},\n  \"per_tenant\": [");
        for (i, t) in self.per_tenant.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"tenant\": {}, \"arrived\": {}, \"served\": {}, \"shed\": {}, \
                 \"swaps\": {}, \"queue_wait_secs\": {}, \"formation_wait_secs\": {}, \
                 \"service_secs\": {}, \"slo_ok\": {}, \"latency_p50_secs\": {}, \
                 \"latency_p99_secs\": {}, \"latency_max_secs\": {}}}",
                t.tenant,
                t.arrived,
                t.served,
                t.shed,
                t.swaps,
                fmt_f64(t.queue_wait_secs),
                fmt_f64(t.formation_wait_secs),
                fmt_f64(t.service_secs),
                t.slo_ok,
                fmt_f64(t.latency_p50_secs),
                fmt_f64(t.latency_p99_secs),
                fmt_f64(t.latency_max_secs)
            ));
        }
        out.push_str("\n  ],\n  \"timeline\": [");
        for (i, w) in self.timeline.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"window\": {}, \"begin_secs\": {}, \"end_secs\": {}, \
                 \"arrived\": {}, \"served\": {}, \"shed\": {}, \"slo_ok\": {}}}",
                w.window,
                fmt_f64(w.begin_secs),
                fmt_f64(w.end_secs),
                w.arrived,
                w.served,
                w.shed,
                w.slo_ok
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Folded flamegraph stacks for the latency decomposition:
    /// `tenant<i>;<cause> <integer ns>` lines, causes `queue_wait` /
    /// `formation_wait` / `service`.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for t in &self.per_tenant {
            for (cause, secs) in [
                ("formation_wait", t.formation_wait_secs),
                ("queue_wait", t.queue_wait_secs),
                ("service", t.service_secs),
            ] {
                let ns = (secs * 1e9).round() as u64;
                if ns > 0 {
                    out.push_str(&format!("tenant{};{cause} {ns}\n", t.tenant));
                }
            }
        }
        out
    }

    /// Human-readable summary; `top` bounds the per-tenant rows (worst SLO
    /// attainment first).
    pub fn summary(&self, top: usize) -> String {
        let mut out = format!(
            "serve-sim profile: {} events, {} tenants, clock ends at {:.6}s\n\
             requests: {} arrived = {} served + {} shed + {} in flight ({} batches, {} swaps)\n\
             latency split: queue {:.6}s vs formation {:.6}s vs service {:.6}s\n\
             slo {}s: {:.2}% attainment ({} ok / {} served), p50 {:.6}s p99 {:.6}s max {:.6}s\n",
            self.events,
            self.tenants,
            self.end_secs,
            self.arrived,
            self.served,
            self.shed,
            self.in_flight_at_end,
            self.batches,
            self.swaps,
            self.queue_wait_secs,
            self.formation_wait_secs,
            self.service_secs,
            self.slo_secs,
            self.slo_attainment * 100.0,
            self.slo_ok,
            self.served,
            self.latency_p50_secs,
            self.latency_p99_secs,
            self.latency_max_secs,
        );
        let mut ranked: Vec<&TenantProfile> = self.per_tenant.iter().collect();
        ranked.sort_by(|a, b| {
            let att = |t: &TenantProfile| {
                if t.served > 0 {
                    t.slo_ok as f64 / t.served as f64
                } else {
                    1.0
                }
            };
            att(a).total_cmp(&att(b)).then(a.tenant.cmp(&b.tenant))
        });
        out.push_str(&format!(
            "{:<8} {:>8} {:>8} {:>6} {:>12} {:>14} {:>12} {:>8}\n",
            "tenant", "served", "shed", "swaps", "queue_s", "formation_s", "service_s", "slo%"
        ));
        for t in ranked.into_iter().take(top) {
            let att = if t.served > 0 {
                t.slo_ok as f64 / t.served as f64 * 100.0
            } else {
                100.0
            };
            out.push_str(&format!(
                "tenant{:<2} {:>8} {:>8} {:>6} {:>12.6} {:>14.6} {:>12.6} {:>7.1}%\n",
                t.tenant,
                t.served,
                t.shed,
                t.swaps,
                t.queue_wait_secs,
                t.formation_wait_secs,
                t.service_secs,
                att
            ));
        }
        out
    }
}

/// True when `text` looks like a serve-sim trace (used by `trace_analyze`
/// and the CLI to dispatch between the train and serving analyzers).
pub fn is_serve_trace(text: &str) -> bool {
    text.starts_with("# serve-sim-trace v1 ")
}

/// Convenience: the header the simulator writes for `config` — kept next
/// to the parser so the two can never drift apart silently.
pub fn trace_header(tenants: usize, config: &ServeSimConfig) -> String {
    format!(
        "# serve-sim-trace v1 tenants={} seed={} queue_cap={} max_batch={} \
         slo={} service_fixed={} service_per_row={}\n",
        tenants,
        config.seed,
        config.queue_capacity,
        config.max_batch,
        config.slo_secs,
        config.service_fixed_secs,
        config.service_per_row_secs
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        // Two tenants, slo 0.05; hand-written schedule:
        //   t=0.00 req0 arrives (tenant 0), t=0.01 req1 arrives (tenant 0)
        //   t=0.02 batch of 2 dispatches, completes t=0.04
        //   t=0.03 req2 arrives (tenant 1) while the server is busy
        //   t=0.04 req2 dispatches alone, completes t=0.06
        //   t=0.05 req3 arrives and is shed
        concat!(
            "# serve-sim-trace v1 tenants=2 seed=7 queue_cap=1 max_batch=2 ",
            "slo=0.05 service_fixed=0.0001 service_per_row=0.00001\n",
            "arrive t=0 req=0 tenant=0 row=1 depth=1\n",
            "arrive t=0.01 req=1 tenant=0 row=2 depth=2\n",
            "dispatch t=0.02 tenant=0 rows=2 epoch=0\n",
            "arrive t=0.03 req=2 tenant=1 row=3 depth=1\n",
            "complete t=0.04 tenant=0 rows=2 epoch=0\n",
            "swap t=0.04 tenant=1 epoch=1 label=refresh\n",
            "dispatch t=0.04 tenant=1 rows=1 epoch=1\n",
            "shed t=0.05 req=3 tenant=1 depth=1\n",
            "complete t=0.06 tenant=1 rows=1 epoch=1\n",
        )
        .to_string()
    }

    #[test]
    fn decomposes_latency_into_queue_formation_service() {
        let p = analyze_serve_trace(&sample_trace()).unwrap();
        assert_eq!(
            (p.arrived, p.served, p.shed, p.in_flight_at_end),
            (4, 3, 1, 0)
        );
        assert_eq!((p.batches, p.swaps), (2, 1));
        // Tenant 0's two requests never waited on a busy server: pure
        // formation wait (0.02 + 0.01), service 2 × 0.02.
        let t0 = &p.per_tenant[0];
        assert!((t0.queue_wait_secs - 0.0).abs() < 1e-12, "{t0:?}");
        assert!((t0.formation_wait_secs - 0.03).abs() < 1e-12, "{t0:?}");
        assert!((t0.service_secs - 0.04).abs() < 1e-12, "{t0:?}");
        // Tenant 1 arrived at 0.03 while the server was busy until 0.04:
        // 0.01 queue wait, no formation wait, 0.02 service.
        let t1 = &p.per_tenant[1];
        assert!((t1.queue_wait_secs - 0.01).abs() < 1e-12, "{t1:?}");
        assert!(t1.formation_wait_secs.abs() < 1e-12, "{t1:?}");
        // Per-request: queue + formation + service == latency.
        let total = p.queue_wait_secs + p.formation_wait_secs + p.service_secs;
        let latencies = 0.04 + 0.03 + 0.03; // req0, req1, req2
        assert!((total - latencies).abs() < 1e-12);
        // SLO 0.05: every latency (0.04, 0.03, 0.03) is within budget.
        assert_eq!(p.slo_ok, 3);
        assert!((p.slo_attainment - 1.0).abs() < 1e-15);
        assert_eq!(p.timeline.len(), 20);
        let arrived: u64 = p.timeline.iter().map(|w| w.arrived).sum();
        let served: u64 = p.timeline.iter().map(|w| w.served).sum();
        assert_eq!((arrived, served), (p.arrived, p.served));
    }

    #[test]
    fn canonical_json_is_deterministic() {
        let a = analyze_serve_trace(&sample_trace()).unwrap();
        let b = analyze_serve_trace(&sample_trace()).unwrap();
        assert_eq!(a, b);
        let j = a.canonical_json();
        assert_eq!(j, b.canonical_json());
        assert!(j.starts_with("{\n  \"kind\": \"trace_profile\""));
        assert!(j.contains("\"source\": \"serve_sim\""));
        assert!(!j.contains("wall"));
        let folded = a.folded_stacks();
        assert!(folded.contains("tenant0;formation_wait "));
        assert!(folded.contains("tenant1;queue_wait "));
    }

    #[test]
    fn malformed_traces_are_typed_errors_not_panics() {
        assert_eq!(
            analyze_serve_trace(""),
            Err(ServeAnalyzeError::MissingHeader)
        );
        assert_eq!(
            analyze_serve_trace("arrive t=0 req=0 tenant=0 row=1 depth=1\n"),
            Err(ServeAnalyzeError::MissingHeader)
        );
        assert!(matches!(
            analyze_serve_trace("# serve-sim-trace v1 tenants=1 seed=0\n"),
            Err(ServeAnalyzeError::Header(_))
        ));
        // A completion with nothing in flight is structural corruption.
        let bad = sample_trace().replace("dispatch t=0.02 tenant=0 rows=2 epoch=0\n", "");
        assert!(matches!(
            analyze_serve_trace(&bad),
            Err(ServeAnalyzeError::Line { .. })
        ));
        // Deleting an arrival breaks conservation (dispatch of 2 with 1
        // queued) — also caught structurally.
        let bad = sample_trace().replace("arrive t=0.01 req=1 tenant=0 row=2 depth=2\n", "");
        assert!(analyze_serve_trace(&bad).is_err());
    }

    #[test]
    fn header_helper_matches_parser() {
        let cfg = ServeSimConfig::default();
        let header = trace_header(3, &cfg);
        assert!(is_serve_trace(&header));
        let p = analyze_serve_trace(&header).unwrap();
        assert_eq!(p.tenants, 3);
        assert_eq!(p.seed, cfg.seed);
        assert_eq!(p.queue_capacity, cfg.queue_capacity);
        assert_eq!(p.max_batch, cfg.max_batch);
        assert_eq!(p.slo_secs.to_bits(), cfg.slo_secs.to_bits());
        assert_eq!(p.events, 0);
    }
}
