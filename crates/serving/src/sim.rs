//! The event-driven serving simulation.
//!
//! A single scoring server (the compiled engine is itself batched and
//! deterministic, so one logical server models a serving replica) consumes
//! per-tenant FIFO queues on the simulated clock. Four event kinds drive
//! the loop — request arrival, batch completion, dispatch-deadline expiry,
//! and scripted model swap — and ties are broken in a fixed order
//! (completion, then arrival; swaps apply before any dispatch decision at
//! the same instant), so the whole execution is a pure function of
//! `(tenants, swaps, data, arrivals, config)`.
//!
//! **Batching policy.** A free server dispatches the tenant whose oldest
//! queued request has waited longest, as soon as that tenant's batch is
//! full (`max_batch` requests) *or* the head request's slack has expired.
//! The slack deadline is `arrival + max(0, slo − predicted_service)` where
//! `predicted_service = service_fixed + service_per_row · batch_rows` for
//! the batch that would dispatch now — growing queues pull the deadline
//! earlier, which is what makes the batching adaptive.
//!
//! **Shed policy.** Admission control happens at arrival: a request whose
//! tenant queue already holds `queue_capacity` entries is shed and counted
//! (globally and per tenant). Everything admitted is eventually served
//! unless the horizon cuts the simulation first, giving the conservation
//! identity `arrived == served + shed + in_flight_at_end`, which
//! [`run_serve_sim`] asserts.
//!
//! **Swap protocol.** A [`ModelSwap`] replaces a tenant's model at a
//! scripted simulated time and bumps the tenant's *epoch*. Swaps apply
//! between batches only: a batch in flight keeps the model it was
//! dispatched with (scores are computed at dispatch — physically, scoring
//! happens during the service interval), and every [`ServedRecord`] carries
//! the epoch that scored it, so tests can pin pre/post-swap scores
//! bit-exactly against each model standalone.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use dimboost_data::Dataset;
use dimboost_predict::CompiledModel;
use dimboost_simnet::{Metric, MetricsRegistry};

use crate::arrival::Arrival;
use crate::report::{fnv1a64_extend, ServeSimReport, TenantReport, FNV_OFFSET};

/// One served model: a stable name (used as the report's array identity
/// key) plus the compiled model that scores its requests.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name, e.g. `tenant0`. Must be unique across tenants.
    pub name: String,
    /// The model serving this tenant (epoch 0).
    pub model: CompiledModel,
}

/// A scripted zero-downtime model swap.
#[derive(Debug, Clone)]
pub struct ModelSwap {
    /// Simulated time at which the swap applies.
    pub at_secs: f64,
    /// Tenant whose model is replaced.
    pub tenant: usize,
    /// Human-readable label for the trace line.
    pub label: String,
    /// The replacement model (the tenant's epoch increments by one).
    pub model: CompiledModel,
}

/// Simulation knobs. All times are simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSimConfig {
    /// Seed echoed into the report (the arrival schedule is built from it).
    pub seed: u64,
    /// Per-tenant queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// Latency SLO: the batcher aims to complete every request within this
    /// budget, and completions beyond it count as SLO violations.
    pub slo_secs: f64,
    /// Fixed service cost per dispatched batch.
    pub service_fixed_secs: f64,
    /// Incremental service cost per batched request.
    pub service_per_row_secs: f64,
    /// Stop processing events after this simulated time; queued and
    /// in-flight requests are reported as `in_flight_at_end`. `None` drains
    /// every admitted request.
    pub horizon_secs: Option<f64>,
}

impl Default for ServeSimConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            queue_capacity: 256,
            max_batch: 16,
            slo_secs: 0.05,
            service_fixed_secs: 1e-4,
            service_per_row_secs: 1e-5,
            horizon_secs: None,
        }
    }
}

/// One served request, in completion order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedRecord {
    /// Index of the request in the arrival schedule.
    pub request: u64,
    /// Tenant that served it.
    pub tenant: usize,
    /// Dataset row it scored.
    pub row: usize,
    /// Arrival time.
    pub arrival_secs: f64,
    /// Batch dispatch time.
    pub dispatch_secs: f64,
    /// Batch completion time (`latency = complete − arrival`).
    pub complete_secs: f64,
    /// Model epoch that scored the request (0 before any swap).
    pub epoch: usize,
    /// The transformed prediction, bit-exact to the model standalone.
    pub score: f32,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct ServeSimResult {
    /// The aggregated report (canonical JSON is rerun-stable).
    pub report: ServeSimReport,
    /// Per-request records in completion order.
    pub records: Vec<ServedRecord>,
    /// Deterministic plain-text event trace, one event per line.
    pub trace: String,
}

struct Pending {
    request: u64,
    arrival: f64,
    row: usize,
}

struct TenantState<'a> {
    model: &'a CompiledModel,
    epoch: usize,
    queue: VecDeque<Pending>,
    arrived: u64,
    served: u64,
    shed: u64,
    swaps: u64,
    checksum: u64,
}

struct InFlight {
    tenant: usize,
    epoch: usize,
    dispatched_at: f64,
    done_at: f64,
    scored: Vec<(Pending, f32)>,
}

/// Predicted service time for an `n`-request batch.
fn service_secs(cfg: &ServeSimConfig, n: usize) -> f64 {
    cfg.service_fixed_secs + cfg.service_per_row_secs * n as f64
}

/// The time at which `t`'s head request runs out of slack: if the batch
/// that would dispatch *now* were dispatched then, it would just meet the
/// SLO (or is already past hope, in which case the deadline is the arrival
/// itself — dispatch as soon as possible).
fn slack_deadline(t: &TenantState<'_>, cfg: &ServeSimConfig) -> f64 {
    let head = t.queue.front().expect("deadline of an empty queue");
    let predicted = service_secs(cfg, t.queue.len().min(cfg.max_batch));
    head.arrival + (cfg.slo_secs - predicted).max(0.0)
}

/// Among tenants that are dispatchable at `now` (batch full, or head slack
/// expired), the one whose head request has waited longest; ties keep the
/// lowest tenant index. `None` when nothing is ready.
fn pick_dispatchable(ts: &[TenantState<'_>], now: f64, cfg: &ServeSimConfig) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (i, t) in ts.iter().enumerate() {
        if t.queue.is_empty() {
            continue;
        }
        if t.queue.len() >= cfg.max_batch || slack_deadline(t, cfg) <= now {
            let head = t.queue.front().expect("nonempty").arrival;
            if best.is_none_or(|(h, _)| head < h) {
                best = Some((head, i));
            }
        }
    }
    best.map(|(_, i)| i)
}

/// Runs the serving simulation to completion (or to the horizon).
///
/// Bit-deterministic: equal inputs produce byte-identical
/// [`ServeSimResult::trace`] strings and canonical reports. The
/// conservation identity `arrived == served + shed + in_flight_at_end` is
/// asserted before returning.
///
/// # Panics
/// On structurally invalid input: no tenants, zero capacities, a
/// non-positive SLO, negative service costs, or arrivals/swaps referencing
/// out-of-range tenants or rows.
pub fn run_serve_sim(
    tenants: &[TenantSpec],
    swaps: &[ModelSwap],
    data: &Dataset,
    arrivals: &[Arrival],
    config: &ServeSimConfig,
) -> ServeSimResult {
    assert!(!tenants.is_empty(), "need at least one tenant");
    assert!(config.queue_capacity > 0, "queue_capacity must be positive");
    assert!(config.max_batch > 0, "max_batch must be positive");
    assert!(config.slo_secs > 0.0, "slo_secs must be positive");
    assert!(
        config.service_fixed_secs >= 0.0 && config.service_per_row_secs >= 0.0,
        "service costs must not be negative"
    );
    for a in arrivals {
        assert!(a.tenant < tenants.len(), "arrival targets unknown tenant");
        assert!(a.row < data.num_rows(), "arrival row out of range");
    }
    for s in swaps {
        assert!(s.tenant < tenants.len(), "swap targets unknown tenant");
    }

    let wall_start = Instant::now();
    let mut registry = MetricsRegistry::new();
    let mut records: Vec<ServedRecord> = Vec::new();

    // Self-describing header so offline analysis (`trace_analyze`,
    // `dimboost analyze`) needs nothing but the trace file. f64s print with
    // shortest-round-trip `Display`, so parsing them back is bit-exact.
    let mut trace = crate::analyze::trace_header(tenants.len(), config);

    // Stable sort: same-instant swaps apply in script order.
    let mut swap_order: Vec<&ModelSwap> = swaps.iter().collect();
    swap_order.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));

    let mut ts: Vec<TenantState<'_>> = tenants
        .iter()
        .map(|spec| TenantState {
            model: &spec.model,
            epoch: 0,
            queue: VecDeque::new(),
            arrived: 0,
            served: 0,
            shed: 0,
            swaps: 0,
            checksum: FNV_OFFSET,
        })
        .collect();

    let horizon = config.horizon_secs.unwrap_or(f64::INFINITY);
    let mut now = 0.0f64;
    let mut ai = 0usize; // next arrival
    let mut si = 0usize; // next swap
    let mut in_flight: Option<InFlight> = None;
    let mut total_queued = 0usize;
    let (mut arrived, mut admitted, mut served, mut shed) = (0u64, 0u64, 0u64, 0u64);
    let (mut batches, mut swap_count, mut slo_violations) = (0u64, 0u64, 0u64);

    loop {
        // Scripted swaps due now apply before any dispatch decision at this
        // instant — the swap is atomic between batches.
        while si < swap_order.len() && swap_order[si].at_secs <= now {
            let sw = swap_order[si];
            let t = &mut ts[sw.tenant];
            t.model = &sw.model;
            t.epoch += 1;
            t.swaps += 1;
            swap_count += 1;
            let _ = writeln!(
                trace,
                "swap t={now} tenant={} epoch={} label={}",
                sw.tenant, t.epoch, sw.label
            );
            si += 1;
        }

        // A free server dispatches the most overdue ready tenant.
        if in_flight.is_none() {
            if let Some(idx) = pick_dispatchable(&ts, now, config) {
                let t = &mut ts[idx];
                let n = t.queue.len().min(config.max_batch);
                let model = t.model;
                let epoch = t.epoch;
                let mut scored = Vec::with_capacity(n);
                for _ in 0..n {
                    let p = t.queue.pop_front().expect("picked tenant has a queue");
                    // The data path is real: score the request's row with
                    // the tenant's current model, at dispatch time.
                    let s = model.predict(&data.row(p.row));
                    registry.observe("sim/serve/wait_secs", now - p.arrival);
                    scored.push((p, s));
                }
                total_queued -= n;
                batches += 1;
                registry.observe("sim/serve/batch_rows", n as f64);
                let _ = writeln!(
                    trace,
                    "dispatch t={now} tenant={idx} rows={n} epoch={epoch}"
                );
                in_flight = Some(InFlight {
                    tenant: idx,
                    epoch,
                    dispatched_at: now,
                    done_at: now + service_secs(config, n),
                    scored,
                });
                continue;
            }
        }

        // Advance to the next event.
        let t_arr = arrivals.get(ai).map_or(f64::INFINITY, |a| a.at_secs);
        let t_done = in_flight.as_ref().map_or(f64::INFINITY, |b| b.done_at);
        let t_swap = swap_order.get(si).map_or(f64::INFINITY, |s| s.at_secs);
        let t_deadline = if in_flight.is_none() {
            ts.iter()
                .filter(|t| !t.queue.is_empty())
                .map(|t| slack_deadline(t, config))
                .fold(f64::INFINITY, f64::min)
        } else {
            f64::INFINITY
        };
        let next = t_arr.min(t_done).min(t_swap).min(t_deadline);
        if !next.is_finite() || next > horizon {
            break;
        }
        now = next.max(now);

        // Fixed tie order at equal instants: completion frees the server
        // first, then the arrival is admitted; swap/deadline instants need
        // no action here (the loop head handles them).
        if t_done <= now {
            let b = in_flight.take().expect("completion without a batch");
            let rows = b.scored.len();
            let t = &mut ts[b.tenant];
            for (p, score) in b.scored {
                let latency = b.done_at - p.arrival;
                registry.observe("sim/serve/latency_secs", latency);
                if latency > config.slo_secs {
                    slo_violations += 1;
                }
                t.served += 1;
                served += 1;
                t.checksum = fnv1a64_extend(t.checksum, score);
                records.push(ServedRecord {
                    request: p.request,
                    tenant: b.tenant,
                    row: p.row,
                    arrival_secs: p.arrival,
                    dispatch_secs: b.dispatched_at,
                    complete_secs: b.done_at,
                    epoch: b.epoch,
                    score,
                });
            }
            let _ = writeln!(
                trace,
                "complete t={now} tenant={} rows={rows} epoch={}",
                b.tenant, b.epoch
            );
            continue;
        }
        if t_arr <= now {
            let a = arrivals[ai];
            let request = ai as u64;
            ai += 1;
            arrived += 1;
            let t = &mut ts[a.tenant];
            t.arrived += 1;
            if t.queue.len() >= config.queue_capacity {
                // Admission control: shed at arrival, count, move on.
                t.shed += 1;
                shed += 1;
                let _ = writeln!(
                    trace,
                    "shed t={now} req={request} tenant={} depth={total_queued}",
                    a.tenant
                );
            } else {
                t.queue.push_back(Pending {
                    request,
                    arrival: a.at_secs,
                    row: a.row,
                });
                total_queued += 1;
                admitted += 1;
                registry.observe("sim/serve/queue_depth", total_queued as f64);
                let _ = writeln!(
                    trace,
                    "arrive t={now} req={request} tenant={} row={} depth={total_queued}",
                    a.tenant, a.row
                );
            }
            continue;
        }
    }

    let in_flight_at_end =
        total_queued as u64 + in_flight.as_ref().map_or(0, |b| b.scored.len() as u64);
    assert_eq!(
        arrived,
        served + shed + in_flight_at_end,
        "request conservation broken: {arrived} arrived vs {served} served + {shed} shed + {in_flight_at_end} in flight"
    );

    registry.counter_add("sim/serve/arrived", arrived);
    registry.counter_add("sim/serve/admitted", admitted);
    registry.counter_add("sim/serve/served", served);
    registry.counter_add("sim/serve/shed", shed);
    registry.counter_add("sim/serve/batches", batches);
    registry.counter_add("sim/serve/swaps", swap_count);
    registry.counter_add("sim/serve/slo_violations", slo_violations);
    registry.gauge_set("sim/serve/clock_secs", now);
    let wall_secs = wall_start.elapsed().as_secs_f64();
    registry.observe("wall/serve/run_secs", wall_secs);

    // Tail percentiles straight from the latency histogram — the registry
    // export carries p50/p95/p99; serving wants p999 and the exact max too.
    let (p50, p99, p999, lmax) = match registry.get("sim/serve/latency_secs") {
        Some(Metric::Histogram(h)) => (
            h.quantile(0.50),
            h.quantile(0.99),
            h.quantile(0.999),
            h.max(),
        ),
        _ => (0.0, 0.0, 0.0, 0.0),
    };

    let tenant_reports: Vec<TenantReport> = tenants
        .iter()
        .zip(&ts)
        .map(|(spec, t)| TenantReport {
            name: spec.name.clone(),
            arrived: t.arrived,
            served: t.served,
            shed: t.shed,
            swaps: t.swaps,
            final_epoch: t.epoch as u64,
            score_checksum: t.checksum,
        })
        .collect();

    let saturation_rps = if service_secs(config, config.max_batch) > 0.0 {
        config.max_batch as f64 / service_secs(config, config.max_batch)
    } else {
        0.0
    };
    let report = ServeSimReport {
        seed: config.seed,
        requests_planned: arrivals.len() as u64,
        arrived,
        admitted,
        served,
        shed,
        in_flight_at_end,
        batches,
        swaps: swap_count,
        slo_violations,
        queue_capacity: config.queue_capacity,
        max_batch: config.max_batch,
        slo_secs: config.slo_secs,
        service_fixed_secs: config.service_fixed_secs,
        service_per_row_secs: config.service_per_row_secs,
        sim_clock_secs: now,
        throughput_rps: if now > 0.0 { served as f64 / now } else { 0.0 },
        saturation_rps,
        latency_p50_secs: p50,
        latency_p99_secs: p99,
        latency_p999_secs: p999,
        latency_max_secs: lmax,
        wall_secs,
        tenants: tenant_reports,
        percentiles: registry.export(),
    };
    ServeSimResult {
        report,
        records,
        trace,
    }
}
