//! End-to-end contracts of the serving simulation: bit-determinism,
//! hand-computable SLO accounting, request conservation under shedding,
//! and bit-exact hot-swap behavior.

use dimboost_core::{train_single_machine, GbdtConfig, LossKind};
use dimboost_data::synthetic::{generate, SparseGenConfig};
use dimboost_data::Dataset;
use dimboost_predict::CompiledModel;
use dimboost_serving::{
    analyze_serve_trace, is_serve_trace, poisson_arrivals, run_serve_sim, Arrival, ModelSwap,
    ServeSimConfig, TenantSpec,
};

fn dataset() -> Dataset {
    generate(&SparseGenConfig::new(120, 25, 6, 9))
}

fn model(ds: &Dataset, trees: usize, seed: u64) -> CompiledModel {
    let cfg = GbdtConfig {
        num_trees: trees,
        max_depth: 3,
        loss: LossKind::Logistic,
        seed,
        ..GbdtConfig::default()
    };
    CompiledModel::compile(&train_single_machine(ds, &cfg).unwrap())
}

fn tenant(name: &str, model: CompiledModel) -> TenantSpec {
    TenantSpec {
        name: name.into(),
        model,
    }
}

/// `n` requests all arriving at t=0 for tenant 0, scoring rows 0..n.
fn burst(n: usize) -> Vec<Arrival> {
    (0..n)
        .map(|i| Arrival {
            at_secs: 0.0,
            tenant: 0,
            row: i,
        })
        .collect()
}

#[test]
fn two_runs_produce_identical_canonical_reports_and_traces() {
    let ds = dataset();
    let tenants = [
        tenant("tenant0", model(&ds, 3, 1)),
        tenant("tenant1", model(&ds, 2, 2)),
    ];
    let config = ServeSimConfig {
        seed: 77,
        queue_capacity: 32,
        max_batch: 8,
        slo_secs: 0.01,
        ..ServeSimConfig::default()
    };
    let arrivals = poisson_arrivals(config.seed, 600, 2000.0, tenants.len(), ds.num_rows());
    let a = run_serve_sim(&tenants, &[], &ds, &arrivals, &config);
    let b = run_serve_sim(&tenants, &[], &ds, &arrivals, &config);
    assert_eq!(a.trace, b.trace, "event traces must be byte-identical");
    assert_eq!(
        a.report.canonical_json(),
        b.report.canonical_json(),
        "canonical reports must be byte-identical"
    );
    assert_eq!(a.records, b.records);
    assert!(a.report.served > 0);
    // Canonical JSON carries no wall-clock content.
    assert!(!a.report.canonical_json().contains("wall"));
    assert!(a.report.json(true).contains("wall_secs"));
}

#[test]
fn full_batch_latency_is_hand_computable() {
    // 10 requests at t=0, max_batch=10, generous SLO: the batch dispatches
    // the moment it fills (still t=0), so every latency is exactly the
    // 10-row service time, and the single-valued latency histogram makes
    // p50 == p99 == p999 == max exact.
    let ds = dataset();
    let tenants = [tenant("tenant0", model(&ds, 2, 3))];
    let config = ServeSimConfig {
        queue_capacity: 64,
        max_batch: 10,
        slo_secs: 10.0,
        service_fixed_secs: 2e-3,
        service_per_row_secs: 5e-4,
        ..ServeSimConfig::default()
    };
    let s10 = config.service_fixed_secs + config.service_per_row_secs * 10.0;
    let r = run_serve_sim(&tenants, &[], &ds, &burst(10), &config);
    assert_eq!(r.report.served, 10);
    assert_eq!(r.report.batches, 1);
    assert_eq!(r.report.slo_violations, 0);
    for rec in &r.records {
        assert_eq!(rec.dispatch_secs, 0.0);
        assert_eq!(rec.complete_secs - rec.arrival_secs, s10);
    }
    assert_eq!(r.report.latency_p50_secs, s10);
    assert_eq!(r.report.latency_p99_secs, s10);
    assert_eq!(r.report.latency_p999_secs, s10);
    assert_eq!(r.report.latency_max_secs, s10);
}

#[test]
fn slack_expiry_dispatches_a_partial_batch_exactly_on_time() {
    // One request at t=0 with SLO 0.02 and a 1-row service time s1: the
    // batcher holds it until t = slo − s1 (hoping for company), then
    // dispatches — completion lands exactly on the SLO boundary, which is
    // not a violation (violations are strictly beyond the SLO).
    let ds = dataset();
    let tenants = [tenant("tenant0", model(&ds, 2, 4))];
    let config = ServeSimConfig {
        queue_capacity: 8,
        max_batch: 16,
        slo_secs: 0.02,
        service_fixed_secs: 1e-3,
        service_per_row_secs: 1e-4,
        ..ServeSimConfig::default()
    };
    let s1 = config.service_fixed_secs + config.service_per_row_secs;
    let r = run_serve_sim(&tenants, &[], &ds, &burst(1), &config);
    assert_eq!(r.report.served, 1);
    let rec = &r.records[0];
    assert_eq!(rec.dispatch_secs, config.slo_secs - s1);
    assert_eq!(rec.complete_secs, (config.slo_secs - s1) + s1);
    assert_eq!(r.report.slo_violations, 0);
}

#[test]
fn overflow_batch_queues_fifo_behind_the_first() {
    // 10 requests at t=0 with max_batch=5: batch one dispatches at t=0,
    // batch two waits for the server and dispatches at s(5), so the last
    // request's latency is exactly 2·s(5).
    let ds = dataset();
    let tenants = [tenant("tenant0", model(&ds, 2, 5))];
    let config = ServeSimConfig {
        queue_capacity: 64,
        max_batch: 5,
        slo_secs: 10.0,
        service_fixed_secs: 1e-3,
        service_per_row_secs: 2e-4,
        ..ServeSimConfig::default()
    };
    let s5 = config.service_fixed_secs + config.service_per_row_secs * 5.0;
    let r = run_serve_sim(&tenants, &[], &ds, &burst(10), &config);
    assert_eq!(r.report.batches, 2);
    assert_eq!(r.report.latency_max_secs, 2.0 * s5);
    // FIFO: completion order preserves arrival order.
    let order: Vec<u64> = r.records.iter().map(|rec| rec.request).collect();
    assert_eq!(order, (0..10).collect::<Vec<u64>>());
}

#[test]
fn overload_sheds_and_conserves_every_request() {
    let ds = dataset();
    let tenants = [tenant("tenant0", model(&ds, 2, 6))];
    // Saturation is max_batch / s(max_batch) ≈ 2.7k rps; offer 200k rps so
    // the queue fills and shedding engages, and cut the horizon mid-stream
    // so requests are still queued/in-flight at the end.
    let config = ServeSimConfig {
        seed: 11,
        queue_capacity: 8,
        max_batch: 8,
        slo_secs: 0.01,
        service_fixed_secs: 1e-3,
        service_per_row_secs: 2.5e-4,
        horizon_secs: Some(0.004),
    };
    let arrivals = poisson_arrivals(config.seed, 2000, 200_000.0, 1, ds.num_rows());
    let r = run_serve_sim(&tenants, &[], &ds, &arrivals, &config);
    assert!(
        r.report.shed > 0,
        "overload must shed: {}",
        r.report.summary()
    );
    assert!(
        r.report.in_flight_at_end > 0,
        "horizon mid-stream must strand requests: {}",
        r.report.summary()
    );
    // The conservation identity (also asserted inside the sim — this pins
    // it from the outside against the report's own numbers).
    assert_eq!(
        r.report.arrived,
        r.report.served + r.report.shed + r.report.in_flight_at_end
    );
    assert_eq!(r.report.served as usize, r.records.len());
    // Offered load is ~74x saturation; the sim must not serve beyond
    // capacity.
    assert!(r.report.throughput_rps <= r.report.saturation_rps * 1.01);
}

#[test]
fn hot_swap_scores_bit_equal_to_each_model_standalone() {
    let ds = dataset();
    let model_a = model(&ds, 3, 21);
    let model_b = model(&ds, 5, 22);
    let tenants = [tenant("tenant0", model_a.clone())];
    let config = ServeSimConfig {
        seed: 9,
        queue_capacity: 64,
        max_batch: 4,
        slo_secs: 0.01,
        service_fixed_secs: 5e-4,
        service_per_row_secs: 1e-4,
        horizon_secs: None,
    };
    let arrivals = poisson_arrivals(config.seed, 400, 3000.0, 1, ds.num_rows());
    let mid = arrivals[200].at_secs;
    let swaps = [ModelSwap {
        at_secs: mid,
        tenant: 0,
        label: "model_b".into(),
        model: model_b.clone(),
    }];
    let r = run_serve_sim(&tenants, &swaps, &ds, &arrivals, &config);
    assert_eq!(r.report.swaps, 1);
    assert_eq!(r.report.tenants[0].final_epoch, 1);
    let (mut pre, mut post) = (0u64, 0u64);
    for rec in &r.records {
        let expected = match rec.epoch {
            0 => {
                pre += 1;
                model_a.predict(&ds.row(rec.row))
            }
            1 => {
                post += 1;
                model_b.predict(&ds.row(rec.row))
            }
            e => panic!("unexpected epoch {e}"),
        };
        assert_eq!(
            rec.score.to_bits(),
            expected.to_bits(),
            "request {} (epoch {}) diverged from its model standalone",
            rec.request,
            rec.epoch
        );
    }
    assert!(
        pre > 0 && post > 0,
        "swap must split the stream: {pre}/{post}"
    );
    // A batch dispatched before the swap completes on the old model even
    // if it finishes after: no record may mix epochs within a batch.
    for w in r.records.windows(2) {
        if w[0].dispatch_secs == w[1].dispatch_secs && w[0].tenant == w[1].tenant {
            assert_eq!(w[0].epoch, w[1].epoch, "epoch changed inside a batch");
        }
    }
    // And the swap itself never loses a request.
    assert_eq!(
        r.report.arrived,
        r.report.served + r.report.shed + r.report.in_flight_at_end
    );
}

#[test]
fn trace_profile_agrees_with_the_report_and_the_records() {
    let ds = dataset();
    let tenants = [
        tenant("tenant0", model(&ds, 3, 41)),
        tenant("tenant1", model(&ds, 2, 42)),
    ];
    let config = ServeSimConfig {
        seed: 13,
        queue_capacity: 8,
        max_batch: 4,
        slo_secs: 0.005,
        service_fixed_secs: 1e-3,
        service_per_row_secs: 2.5e-4,
        horizon_secs: Some(0.05),
    };
    // Offer well beyond saturation so shedding, queue wait, and stranded
    // requests all show up in the profile.
    let arrivals = poisson_arrivals(config.seed, 1500, 50_000.0, 2, ds.num_rows());
    let r = run_serve_sim(&tenants, &[], &ds, &arrivals, &config);
    assert!(is_serve_trace(&r.trace));
    let p = analyze_serve_trace(&r.trace).unwrap();
    // Replayed counters must equal the simulator's own report.
    assert_eq!(p.arrived, r.report.arrived);
    assert_eq!(p.served, r.report.served);
    assert_eq!(p.shed, r.report.shed);
    assert_eq!(p.in_flight_at_end, r.report.in_flight_at_end);
    assert_eq!(p.batches, r.report.batches);
    assert_eq!(p.slo_ok, r.report.served - r.report.slo_violations);
    assert!(p.shed > 0 && p.queue_wait_secs > 0.0, "{}", p.summary(4));
    // Per request: queue + formation + service == latency, so the folds
    // agree with the records' latency fold up to float regrouping.
    let record_latency: f64 = r
        .records
        .iter()
        .map(|rec| rec.complete_secs - rec.arrival_secs)
        .sum();
    let decomposed = p.queue_wait_secs + p.formation_wait_secs + p.service_secs;
    assert!(
        (decomposed - record_latency).abs() <= 1e-9 * record_latency.max(1.0),
        "decomposition {decomposed} != record latency {record_latency}"
    );
    // Exact-quantile max equals the report's histogram max exactly.
    assert_eq!(
        p.latency_max_secs.to_bits(),
        r.report.latency_max_secs.to_bits()
    );
    // Profiles of identical runs are byte-identical.
    let r2 = run_serve_sim(&tenants, &[], &ds, &arrivals, &config);
    assert_eq!(
        p.canonical_json(),
        analyze_serve_trace(&r2.trace).unwrap().canonical_json()
    );
}

#[test]
fn multi_tenant_isolation_keeps_per_tenant_accounting() {
    let ds = dataset();
    let tenants = [
        tenant("a", model(&ds, 2, 31)),
        tenant("b", model(&ds, 2, 32)),
        tenant("c", model(&ds, 2, 33)),
    ];
    let config = ServeSimConfig {
        seed: 5,
        queue_capacity: 16,
        max_batch: 4,
        slo_secs: 0.02,
        ..ServeSimConfig::default()
    };
    let arrivals = poisson_arrivals(config.seed, 900, 1500.0, 3, ds.num_rows());
    let r = run_serve_sim(&tenants, &[], &ds, &arrivals, &config);
    let per_tenant_arrived: u64 = r.report.tenants.iter().map(|t| t.arrived).sum();
    let per_tenant_served: u64 = r.report.tenants.iter().map(|t| t.served).sum();
    let per_tenant_shed: u64 = r.report.tenants.iter().map(|t| t.shed).sum();
    assert_eq!(per_tenant_arrived, r.report.arrived);
    assert_eq!(per_tenant_served, r.report.served);
    assert_eq!(per_tenant_shed, r.report.shed);
    for t in &r.report.tenants {
        assert!(t.arrived > 0, "tenant {} starved", t.name);
    }
    // Checksums differ across tenants (different models, rows, order).
    assert_ne!(
        r.report.tenants[0].score_checksum,
        r.report.tenants[1].score_checksum
    );
}
