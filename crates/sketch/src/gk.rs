//! Greenwald–Khanna ε-approximate quantile summary.
//!
//! A GK summary over `n` values answers any quantile query with rank error
//! at most `ε·n` while storing `O(1/ε · log(ε·n))` tuples. Two summaries can
//! be merged (the CREATE_SKETCH → parameter-server path in the paper): the
//! merge used here — sort-merge the tuple lists, then compress — yields a
//! summary whose error is bounded by the *sum* of the input errors. This is
//! the same strategy Spark's `QuantileSummaries` uses, and the reason the
//! trainer constructs worker-local sketches at `ε/2` when a single merge
//! layer must stay within `ε`.

use serde::{Deserialize, Serialize};

/// One GK tuple: a sample value `v`, the gap `g` between its minimum rank and
/// the previous tuple's minimum rank, and the rank uncertainty `delta`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Entry {
    v: f32,
    g: u64,
    delta: u64,
}

/// A mergeable Greenwald–Khanna quantile sketch over `f32` values.
///
/// Incoming values are staged in a head buffer and folded into the summary in
/// sorted batches, which keeps insertion `O(log b)` amortized.
///
/// ```
/// use dimboost_sketch::GkSketch;
///
/// let mut a = GkSketch::new(0.01);
/// a.extend((0..5_000).map(|i| i as f32));
/// let mut b = GkSketch::new(0.01);
/// b.extend((5_000..10_000).map(|i| i as f32));
/// a.merge(&b); // the CREATE_SKETCH -> parameter-server path
///
/// let median = a.query(0.5).unwrap();
/// assert!((median - 5_000.0).abs() <= 0.02 * 10_000.0);
/// assert_eq!(a.count(), 10_000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GkSketch {
    epsilon: f64,
    entries: Vec<Entry>,
    count: u64,
    buffer: Vec<(f32, u64)>,
    buffer_capacity: usize,
}

impl GkSketch {
    /// Creates a sketch with rank-error bound `epsilon` (e.g. `0.01` for 1%
    /// of `n`).
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 0.5)`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 0.5,
            "epsilon must be in (0, 0.5), got {epsilon}"
        );
        let buffer_capacity = ((1.0 / (2.0 * epsilon)) as usize).clamp(16, 50_000);
        Self {
            epsilon,
            entries: Vec::new(),
            count: 0,
            buffer: Vec::with_capacity(buffer_capacity),
            buffer_capacity,
        }
    }

    /// The configured rank-error bound.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of values observed (sum of weights for weighted inserts).
    pub fn count(&self) -> u64 {
        self.count + self.buffer.iter().map(|&(_, w)| w).sum::<u64>()
    }

    /// True when no values have been inserted.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Number of stored tuples (after flushing), a space diagnostic.
    pub fn num_entries(&mut self) -> usize {
        self.flush();
        self.entries.len()
    }

    /// Approximate serialized size in bytes (after flushing): 16 bytes per
    /// tuple (value + two varint-free counters) plus a small header. Used by
    /// the simulated network to charge sketch pushes.
    pub fn wire_bytes(&mut self) -> usize {
        self.flush();
        16 * self.entries.len() + 24
    }

    /// Inserts one value. NaN values are ignored (they have no rank).
    pub fn insert(&mut self, v: f32) {
        self.insert_weighted(v, 1);
    }

    /// Inserts a value with an integer multiplicity — the building block of
    /// weighted quantile summaries (the paper cites XGBoost's WQS \[7\] as
    /// one candidate-proposal strategy; Hessian weights are scaled to
    /// integers by the caller). Zero-weight and NaN inserts are ignored.
    pub fn insert_weighted(&mut self, v: f32, weight: u64) {
        if v.is_nan() || weight == 0 {
            return;
        }
        self.buffer.push((v, weight));
        if self.buffer.len() >= self.buffer_capacity {
            self.flush();
        }
    }

    /// Inserts many values.
    pub fn extend<I: IntoIterator<Item = f32>>(&mut self, values: I) {
        for v in values {
            self.insert(v);
        }
    }

    /// Folds the head buffer into the summary and compresses.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.buffer);
        batch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

        let mut merged = Vec::with_capacity(self.entries.len() + batch.len());
        let mut ei = 0;
        for &(v, weight) in &batch {
            while ei < self.entries.len() && self.entries[ei].v <= v {
                merged.push(self.entries[ei]);
                ei += 1;
            }
            self.count += weight;
            // A new value's rank uncertainty is bounded by the summary's
            // current slack, except at the extremes where rank is exact.
            let delta = if merged.is_empty() || ei == self.entries.len() {
                0
            } else {
                ((2.0 * self.epsilon * self.count as f64).floor() as u64).saturating_sub(1)
            };
            merged.push(Entry {
                v,
                g: weight,
                delta,
            });
        }
        merged.extend_from_slice(&self.entries[ei..]);
        self.entries = merged;
        self.compress();
    }

    /// Removes tuples whose neighbours can absorb them without violating the
    /// GK invariant `g_i + g_{i+1} + delta_{i+1} <= 2·ε·n`.
    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let mut out: Vec<Entry> = Vec::with_capacity(self.entries.len());
        // Never merge away the first or last tuple: they pin min and max.
        out.push(self.entries[0]);
        for &e in &self.entries[1..self.entries.len() - 1] {
            let last = *out.last().expect("out is non-empty");
            if out.len() > 1 && last.g + e.g + e.delta <= threshold {
                // Absorb `last` into `e` (keep the larger value).
                let g = last.g + e.g;
                out.pop();
                out.push(Entry {
                    v: e.v,
                    g,
                    delta: e.delta,
                });
            } else {
                out.push(e);
            }
        }
        out.push(self.entries[self.entries.len() - 1]);
        self.entries = out;
    }

    /// Merges another sketch into this one.
    ///
    /// A single merge of two ε-summaries yields (at most) a 2ε-summary;
    /// merging `k` summaries sequentially accumulates error linearly while a
    /// balanced merge tree (see [`GkSketch::merge_all`]) accumulates one ε
    /// per tree level. Callers budget for this by constructing worker-local
    /// sketches at a fraction of the target ε — the trainer uses
    /// `ε / (log2(w) + 2)`.
    pub fn merge(&mut self, other: &GkSketch) {
        let mut other = other.clone();
        other.flush();
        self.flush();
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other;
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        // Sort-merge with delta inflation (Agarwal et al., "Mergeable
        // Summaries"): an entry taken from one summary inherits the rank
        // uncertainty contributed by the *other* summary's surrounding gap,
        // `g(succ) + delta(succ) - 1` for its successor there. Keeping the
        // original deltas would understate uncertainty and let `compress`
        // silently push the true error past the ε-invariant.
        while i < self.entries.len() && j < other.entries.len() {
            if self.entries[i].v <= other.entries[j].v {
                let mut e = self.entries[i];
                let succ = other.entries[j];
                e.delta += succ.g + succ.delta - 1;
                merged.push(e);
                i += 1;
            } else {
                let mut e = other.entries[j];
                let succ = self.entries[i];
                e.delta += succ.g + succ.delta - 1;
                merged.push(e);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&other.entries[j..]);
        self.entries = merged;
        self.count += other.count;
        self.epsilon = self.epsilon.max(other.epsilon);
        self.compress();
    }

    /// Merges a collection of sketches with a balanced binary tree, which
    /// keeps the accumulated rank error at one ε per tree level
    /// (`O(ε · log k)`) instead of the `O(ε · k)` of sequential merging.
    pub fn merge_all<I: IntoIterator<Item = GkSketch>>(sketches: I) -> Option<GkSketch> {
        let mut level: Vec<GkSketch> = sketches.into_iter().collect();
        if level.is_empty() {
            return None;
        }
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut iter = level.into_iter();
            while let Some(mut a) = iter.next() {
                if let Some(b) = iter.next() {
                    a.merge(&b);
                }
                next.push(a);
            }
            level = next;
        }
        level.pop()
    }

    /// Smallest value observed.
    pub fn min(&mut self) -> Option<f32> {
        self.flush();
        self.entries.first().map(|e| e.v)
    }

    /// Largest value observed.
    pub fn max(&mut self) -> Option<f32> {
        self.flush();
        self.entries.last().map(|e| e.v)
    }

    /// Returns a value whose rank is within `ε·n` of `phi·n`.
    /// `phi` is clamped to `[0, 1]`. Returns `None` on an empty sketch.
    pub fn query(&mut self, phi: f64) -> Option<f32> {
        self.flush();
        if self.entries.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let n = self.count as f64;
        let rank = (phi * n).ceil().max(1.0) as u64;
        let slack = (self.epsilon * n).floor() as u64;

        let mut rmin: u64 = 0;
        let mut prev = self.entries[0].v;
        for e in &self.entries {
            rmin += e.g;
            let rmax = rmin + e.delta;
            if rmax > rank + slack {
                return Some(prev);
            }
            prev = e.v;
        }
        Some(prev)
    }

    /// Queries several quantiles at once (values are clamped and may repeat).
    pub fn query_many(&mut self, phis: &[f64]) -> Vec<f32> {
        phis.iter().filter_map(|&p| self.query(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_rank(sorted: &[f32], v: f32) -> (usize, usize) {
        let lo = sorted.partition_point(|&x| x < v);
        let hi = sorted.partition_point(|&x| x <= v);
        (lo, hi)
    }

    fn check_rank_error(values: &mut [f32], sketch: &mut GkSketch, eps: f64) {
        values.sort_unstable_by(f32::total_cmp);
        let n = values.len() as f64;
        for k in 0..=20 {
            let phi = k as f64 / 20.0;
            let q = sketch.query(phi).unwrap();
            let (lo, hi) = exact_rank(values, q);
            let target = (phi * n).ceil().max(1.0);
            // The returned value's rank interval must be within eps*n of the
            // target rank (allow +1 for ceiling effects at the edges).
            let err_lo = target - hi as f64;
            let err_hi = lo as f64 + 1.0 - target;
            let bound = eps * n + 1.0;
            assert!(
                err_lo <= bound && err_hi <= bound,
                "phi={phi} q={q} lo={lo} hi={hi} target={target} bound={bound}"
            );
        }
    }

    #[test]
    fn exact_on_small_input() {
        let mut s = GkSketch::new(0.01);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.insert(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.query(0.5), Some(3.0));
        assert_eq!(s.query(0.0), Some(1.0));
        assert_eq!(s.query(1.0), Some(5.0));
    }

    #[test]
    fn empty_sketch() {
        let mut s = GkSketch::new(0.1);
        assert!(s.is_empty());
        assert_eq!(s.query(0.5), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn rejects_bad_epsilon() {
        GkSketch::new(0.0);
    }

    #[test]
    fn ignores_nan() {
        let mut s = GkSketch::new(0.1);
        s.insert(f32::NAN);
        s.insert(1.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn rank_error_uniform_stream() {
        let eps = 0.01;
        let mut s = GkSketch::new(eps);
        let mut values: Vec<f32> = (0..50_000)
            .map(|i| ((i * 2654435761u64 as usize) % 99991) as f32)
            .collect();
        s.extend(values.iter().copied());
        check_rank_error(&mut values, &mut s, eps);
    }

    #[test]
    fn rank_error_sorted_stream() {
        let eps = 0.02;
        let mut s = GkSketch::new(eps);
        let mut values: Vec<f32> = (0..20_000).map(|i| i as f32).collect();
        s.extend(values.iter().copied());
        check_rank_error(&mut values, &mut s, eps);
    }

    #[test]
    fn rank_error_reverse_sorted_stream() {
        let eps = 0.02;
        let mut s = GkSketch::new(eps);
        let mut values: Vec<f32> = (0..20_000).rev().map(|i| i as f32).collect();
        s.extend(values.iter().copied());
        check_rank_error(&mut values, &mut s, eps);
    }

    #[test]
    fn rank_error_heavy_duplicates() {
        let eps = 0.02;
        let mut s = GkSketch::new(eps);
        let mut values: Vec<f32> = (0..30_000).map(|i| (i % 7) as f32).collect();
        s.extend(values.iter().copied());
        check_rank_error(&mut values, &mut s, eps);
    }

    #[test]
    fn space_stays_sublinear() {
        let mut s = GkSketch::new(0.01);
        for i in 0..200_000 {
            s.insert((i % 100_003) as f32);
        }
        let entries = s.num_entries();
        assert!(
            entries < 4_000,
            "summary kept {entries} tuples for 200k values"
        );
    }

    #[test]
    fn merge_matches_union_error_budget() {
        // Two sketches at eps/2 merged must answer within eps of the union.
        let eps = 0.02;
        let mut a = GkSketch::new(eps / 2.0);
        let mut b = GkSketch::new(eps / 2.0);
        let mut all: Vec<f32> = Vec::new();
        for i in 0..25_000 {
            let v = ((i * 48271) % 65_537) as f32;
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
            all.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 25_000);
        check_rank_error(&mut all, &mut a, eps);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = GkSketch::new(0.05);
        a.extend([3.0, 1.0, 2.0]);
        let before = a.query(0.5);
        let b = GkSketch::new(0.05);
        a.merge(&b);
        assert_eq!(a.query(0.5), before);

        let mut c = GkSketch::new(0.05);
        c.merge(&a);
        assert_eq!(c.count(), 3);
        assert_eq!(c.query(0.5), before);
    }

    #[test]
    fn merge_many_workers_balanced_tree() {
        // Simulates the CREATE_SKETCH phase: w workers each sketch a shard
        // at eps_w; a balanced merge tree accumulates ~eps_w per level, so
        // the union must answer within eps_w * (log2(w) + 1).
        let eps_w = 0.01;
        let w: usize = 8;
        let budget = eps_w * ((w as f64).log2() + 1.0);
        let mut all: Vec<f32> = Vec::new();
        let mut locals = Vec::new();
        for worker in 0..w {
            let mut local = GkSketch::new(eps_w);
            for i in 0..5_000 {
                let v = ((worker * 5_000 + i) as u64 * 22_695_477 % 131_071) as f32;
                local.insert(v);
                all.push(v);
            }
            locals.push(local);
        }
        let mut merged = GkSketch::merge_all(locals).unwrap();
        assert_eq!(merged.count(), (w * 5_000) as u64);
        check_rank_error(&mut all, &mut merged, budget);
    }

    #[test]
    fn merge_all_empty_and_single() {
        assert!(GkSketch::merge_all(std::iter::empty()).is_none());
        let mut s = GkSketch::new(0.1);
        s.extend([1.0, 2.0, 3.0]);
        let mut m = GkSketch::merge_all([s]).unwrap();
        assert_eq!(m.count(), 3);
        assert_eq!(m.query(1.0), Some(3.0));
    }

    #[test]
    fn weighted_insert_equals_repeated_insert() {
        let mut weighted = GkSketch::new(0.02);
        let mut repeated = GkSketch::new(0.02);
        for i in 0..2_000u64 {
            let v = ((i * 48_271) % 9_973) as f32;
            let w = 1 + (i % 5);
            weighted.insert_weighted(v, w);
            for _ in 0..w {
                repeated.insert(v);
            }
        }
        assert_eq!(weighted.count(), repeated.count());
        for k in 0..=10 {
            let phi = k as f64 / 10.0;
            let a = weighted.query(phi).unwrap();
            let b = repeated.query(phi).unwrap();
            // Same error budget; allow one slack interval of divergence.
            assert!(
                (a - b).abs() <= 9_973.0 * 0.05,
                "phi={phi}: weighted {a} vs repeated {b}"
            );
        }
    }

    #[test]
    fn weighted_rank_error_bound() {
        let eps = 0.02;
        let mut s = GkSketch::new(eps);
        let mut expanded: Vec<f32> = Vec::new();
        for i in 0..5_000u64 {
            let v = ((i * 1_103_515_245) % 65_521) as f32;
            let w = 1 + (i % 4);
            s.insert_weighted(v, w);
            for _ in 0..w {
                expanded.push(v);
            }
        }
        check_rank_error(&mut expanded, &mut s, eps);
    }

    #[test]
    fn zero_weight_is_ignored() {
        let mut s = GkSketch::new(0.1);
        s.insert_weighted(5.0, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_queries() {
        let mut s = GkSketch::new(0.02);
        s.extend((0..10_000).map(|i| (i % 997) as f32));
        s.flush();
        let json = serde_json_like(&s);
        let mut back: GkSketch = json;
        assert_eq!(back.query(0.5), s.query(0.5));
    }

    // serde is exercised structurally (clone through Serialize-able fields);
    // we avoid a serde_json dependency by round-tripping through clone.
    fn serde_json_like(s: &GkSketch) -> GkSketch {
        s.clone()
    }
}
