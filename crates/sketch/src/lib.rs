//! Mergeable quantile sketches for split-candidate proposal.
//!
//! The paper builds per-feature quantile sketches on each worker
//! (CREATE_SKETCH), merges them on the parameter server, and derives K split
//! candidates per feature from the merged summary (PULL_SKETCH). The paper's
//! prototype uses Yahoo DataSketches; the Greenwald–Khanna (GK) summary
//! implemented here is one of the alternatives the paper itself cites
//! (Section 2.2, \[18\]) and provides the same mergeable ε-approximate
//! quantile guarantees.

mod candidates;
mod gk;

pub use candidates::{propose_candidates, SplitCandidates};
pub use gk::GkSketch;
