//! Split-candidate proposal from merged quantile sketches.
//!
//! After the parameter server has merged the per-worker sketches of a
//! feature, each worker pulls the merged summary and derives `K` split
//! candidates (the PULL_SKETCH phase). The candidates partition the feature's
//! value range into histogram buckets; Algorithm 2 additionally needs a
//! well-defined **zero bucket** — the bucket that contains the value `0.0` —
//! so `0.0` is always inserted as an explicit boundary.

use serde::{Deserialize, Serialize};

use crate::GkSketch;

/// Split candidates for one feature: a sorted list of distinct boundary
/// values. With `s` boundaries there are `s + 1` buckets; bucket `k` holds
/// values `v` with `splits[k-1] < v <= splits[k]` (bucket `0` is everything
/// `<= splits[0]`, bucket `s` everything `> splits[s-1]`).
///
/// ```
/// use dimboost_sketch::SplitCandidates;
///
/// let c = SplitCandidates::from_boundaries(vec![1.0, 2.0]); // 0.0 inserted
/// assert_eq!(c.splits(), &[0.0, 1.0, 2.0]);
/// assert_eq!(c.num_buckets(), 4);
/// assert_eq!(c.bucket(0.0), c.zero_bucket());
/// assert_eq!(c.bucket(1.5), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitCandidates {
    splits: Vec<f32>,
    zero_bucket: usize,
}

impl SplitCandidates {
    /// Builds candidates from explicit boundaries. `0.0` is inserted if
    /// missing; boundaries are sorted and deduplicated.
    pub fn from_boundaries(mut splits: Vec<f32>) -> Self {
        splits.retain(|v| !v.is_nan());
        if !splits.contains(&0.0) {
            splits.push(0.0);
        }
        splits.sort_unstable_by(f32::total_cmp);
        splits.dedup();
        let zero_bucket = splits.partition_point(|&s| s < 0.0);
        Self {
            splits,
            zero_bucket,
        }
    }

    /// The sorted boundary values.
    pub fn splits(&self) -> &[f32] {
        &self.splits
    }

    /// Number of histogram buckets (`splits.len() + 1`).
    pub fn num_buckets(&self) -> usize {
        self.splits.len() + 1
    }

    /// Index of the bucket containing `0.0` (Algorithm 2's `idx_0`).
    pub fn zero_bucket(&self) -> usize {
        self.zero_bucket
    }

    /// Bucket index for a value: the number of boundaries strictly below `v`.
    /// A value equal to a boundary lands in that boundary's bucket, so the
    /// split predicate "goes left iff `v <= splits[k]`" matches bucket
    /// prefix sums exactly.
    pub fn bucket(&self, v: f32) -> usize {
        self.splits.partition_point(|&s| s < v)
    }

    /// The split value tested when splitting between buckets `k` and `k+1`
    /// (i.e. instances go left iff `value <= threshold`).
    pub fn threshold(&self, k: usize) -> f32 {
        self.splits[k]
    }
}

/// Proposes `k` split candidates for one feature from its merged sketch.
///
/// Candidates are the `i/k` quantiles of the *nonzero* value distribution
/// (workers only feed nonzero entries to sketches — zeros dominate
/// high-dimensional data and carry no rank information), plus the mandatory
/// `0.0` boundary. Duplicate quantiles (heavy-hitter values) collapse, so
/// fewer than `k` boundaries may result.
pub fn propose_candidates(sketch: &mut GkSketch, k: usize) -> SplitCandidates {
    assert!(k >= 1, "need at least one split candidate");
    if sketch.is_empty() {
        return SplitCandidates::from_boundaries(Vec::new());
    }
    let mut boundaries = Vec::with_capacity(k + 1);
    for i in 1..=k {
        let phi = i as f64 / k as f64;
        if let Some(q) = sketch.query(phi) {
            boundaries.push(q);
        }
    }
    SplitCandidates::from_boundaries(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_always_a_boundary() {
        let c = SplitCandidates::from_boundaries(vec![1.0, 2.0, 3.0]);
        assert!(c.splits().contains(&0.0));
        assert_eq!(c.zero_bucket(), 0);
        assert_eq!(c.bucket(0.0), 0);
    }

    #[test]
    fn bucket_assignment_with_negatives() {
        let c = SplitCandidates::from_boundaries(vec![-1.0, 0.0, 1.0]);
        // splits: [-1, 0, 1]; buckets: (-inf,-1], (-1,0], (0,1], (1,inf)
        assert_eq!(c.num_buckets(), 4);
        assert_eq!(c.bucket(-2.0), 0);
        assert_eq!(c.bucket(-1.0), 0);
        assert_eq!(c.bucket(-0.5), 1);
        assert_eq!(c.bucket(0.0), 1);
        assert_eq!(c.zero_bucket(), 1);
        assert_eq!(c.bucket(0.5), 2);
        assert_eq!(c.bucket(1.0), 2);
        assert_eq!(c.bucket(5.0), 3);
    }

    #[test]
    fn boundaries_are_sorted_dedup() {
        let c = SplitCandidates::from_boundaries(vec![3.0, 1.0, 3.0, 2.0]);
        assert_eq!(c.splits(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn nan_boundaries_dropped() {
        let c = SplitCandidates::from_boundaries(vec![f32::NAN, 1.0]);
        assert_eq!(c.splits(), &[0.0, 1.0]);
    }

    #[test]
    fn propose_from_uniform_sketch() {
        let mut s = GkSketch::new(0.005);
        s.extend((1..=10_000).map(|i| i as f32));
        let c = propose_candidates(&mut s, 10);
        // Expect boundaries near 1000, 2000, ..., 10000 plus the zero bound.
        assert_eq!(c.num_buckets(), c.splits().len() + 1);
        assert!(c.splits().len() >= 10);
        for (i, &s) in c.splits().iter().skip(1).enumerate() {
            let expected = 1000.0 * (i + 1) as f32;
            assert!(
                (s - expected).abs() <= 100.0,
                "candidate {i} = {s}, expected ~{expected}"
            );
        }
        assert_eq!(c.zero_bucket(), 0);
    }

    #[test]
    fn propose_collapses_duplicates() {
        let mut s = GkSketch::new(0.01);
        s.extend(std::iter::repeat_n(5.0f32, 1000));
        let c = propose_candidates(&mut s, 20);
        assert_eq!(c.splits(), &[0.0, 5.0]);
        assert_eq!(c.num_buckets(), 3);
    }

    #[test]
    fn propose_from_empty_sketch() {
        let mut s = GkSketch::new(0.01);
        let c = propose_candidates(&mut s, 10);
        assert_eq!(c.splits(), &[0.0]);
        assert_eq!(c.num_buckets(), 2);
    }

    #[test]
    fn threshold_matches_bucket_boundary() {
        let c = SplitCandidates::from_boundaries(vec![1.0, 2.0]);
        assert_eq!(c.threshold(0), 0.0);
        assert_eq!(c.threshold(1), 1.0);
        assert_eq!(c.threshold(2), 2.0);
        // "goes left iff v <= threshold(k)" is consistent with bucket():
        // every value in buckets 0..=k satisfies v <= threshold(k).
        for v in [-1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            let b = c.bucket(v);
            for k in 0..c.splits().len() {
                assert_eq!(v <= c.threshold(k), b <= k, "v={v} k={k}");
            }
        }
    }
}
