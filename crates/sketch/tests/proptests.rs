//! Property-based tests for the GK sketch and candidate proposal.

use dimboost_sketch::{propose_candidates, GkSketch, SplitCandidates};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// The sketch answers every queried quantile with rank error <= eps*n
    /// (+1 for ceiling effects) on arbitrary small inputs.
    #[test]
    fn rank_error_bound(values in vec(-1e6f32..1e6, 1..3000), eps in 0.01f64..0.2) {
        let mut sketch = GkSketch::new(eps);
        sketch.extend(values.iter().copied());
        let mut sorted = values.clone();
        sorted.sort_unstable_by(f32::total_cmp);
        let n = sorted.len() as f64;
        for k in 0..=10 {
            let phi = k as f64 / 10.0;
            let q = sketch.query(phi).unwrap();
            let lo = sorted.partition_point(|&x| x < q) as f64;
            let hi = sorted.partition_point(|&x| x <= q) as f64;
            let target = (phi * n).ceil().max(1.0);
            let bound = eps * n + 1.0;
            prop_assert!(target - hi <= bound && lo + 1.0 - target <= bound,
                "phi={} q={} lo={} hi={} target={} bound={}", phi, q, lo, hi, target, bound);
        }
    }

    /// Merging two sketches preserves the total count and the min/max.
    #[test]
    fn merge_preserves_extremes(a in vec(-1e3f32..1e3, 1..500), b in vec(-1e3f32..1e3, 1..500)) {
        let mut sa = GkSketch::new(0.05);
        sa.extend(a.iter().copied());
        let mut sb = GkSketch::new(0.05);
        sb.extend(b.iter().copied());
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), (a.len() + b.len()) as u64);
        let min = a.iter().chain(&b).copied().fold(f32::INFINITY, f32::min);
        let max = a.iter().chain(&b).copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(sa.min().unwrap(), min);
        prop_assert_eq!(sa.max().unwrap(), max);
    }

    /// Queries are monotone in phi.
    #[test]
    fn queries_monotone(values in vec(-1e4f32..1e4, 1..2000)) {
        let mut sketch = GkSketch::new(0.05);
        sketch.extend(values.iter().copied());
        let qs: Vec<f32> = (0..=20).map(|k| sketch.query(k as f64 / 20.0).unwrap()).collect();
        prop_assert!(qs.windows(2).all(|w| w[0] <= w[1]), "non-monotone: {:?}", qs);
    }

    /// Candidate proposal: boundaries sorted, distinct, contain zero, and
    /// bucket() is consistent with the boundary ordering.
    #[test]
    fn candidates_invariants(values in vec(-100f32..100.0, 1..2000), k in 1usize..64) {
        let mut sketch = GkSketch::new(0.02);
        sketch.extend(values.iter().copied());
        let c = propose_candidates(&mut sketch, k);
        let s = c.splits();
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.contains(&0.0));
        prop_assert_eq!(c.num_buckets(), s.len() + 1);
        prop_assert_eq!(c.zero_bucket(), c.bucket(0.0));
        for &v in values.iter().take(100) {
            let b = c.bucket(v);
            prop_assert!(b < c.num_buckets());
            if b > 0 {
                prop_assert!(v > s[b - 1]);
            }
            if b < s.len() {
                prop_assert!(v <= s[b]);
            }
        }
    }

    /// from_boundaries is idempotent.
    #[test]
    fn from_boundaries_idempotent(bounds in vec(-50f32..50.0, 0..40)) {
        let c1 = SplitCandidates::from_boundaries(bounds);
        let c2 = SplitCandidates::from_boundaries(c1.splits().to_vec());
        prop_assert_eq!(c1, c2);
    }
}
