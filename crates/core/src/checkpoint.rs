//! Trainer checkpoints: everything needed to resume a crashed distributed
//! run and continue it **bit-exactly**.
//!
//! A checkpoint captures, after boosting round `next_round − 1`:
//!
//! * a fingerprint of the run (seed, tree budget, loss, learning rate,
//!   feature count, worker count, per-shard row counts, and the digest of
//!   any elastic-membership schedule) so a resume against the wrong config
//!   or data fails loudly instead of silently diverging;
//! * the partial model (embedded in the [`crate::model_io`] format);
//! * every worker's RNG state (the xoshiro256++ words), so feature
//!   subsampling and stochastic rounding continue the exact same streams;
//! * the per-phase communication ledger, so resumed reports account for the
//!   whole logical run;
//! * the per-feature split candidates (skipping the sketch phases on
//!   resume keeps candidate proposal — and therefore every split — exactly
//!   reproducible);
//! * the loss/eval curves, early-stopping cursor, and per-round telemetry.
//!
//! Worker predictions are *not* stored: they are recomputed from the
//! partial model, which reproduces the incremental updates bit-exactly
//! because both sum the same trees in the same order per class column.
//!
//! The on-disk format is little-endian with a magic + version header, in
//! the same defensive style as [`crate::model_io`]: every length is bounds-
//! checked, so a truncated or corrupt checkpoint degrades to a typed error.
//! [`TrainCheckpoint::save_to_dir`] writes to a temporary file and renames
//! it into place, so a crash mid-write can never clobber the previous good
//! checkpoint.

use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dimboost_simnet::{CommLedger, Phase, SimTime};
use dimboost_sketch::SplitCandidates;

use crate::model::GbdtModel;
use crate::model_io::{self, ModelIoError};
use crate::report::{NodeInstances, RoundRecord};
use crate::trainer::LossPoint;

const MAGIC: &[u8; 8] = b"DIMBCKPT";
/// Version 2 adds the elastic-membership digest to the fingerprint and an
/// optional stripe-assignment snapshot to the payload. Version-1 files are
/// still readable: they decode with a zero digest and no snapshot.
const VERSION: u32 = 2;
const MIN_VERSION: u32 = 1;

/// File name of the rolling checkpoint inside a checkpoint directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// Errors from checkpoint (de)serialization and resume validation.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the checkpoint magic.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// Structurally invalid content.
    Corrupt(String),
    /// The checkpoint was taken under a different config or data layout
    /// than the resuming run.
    ConfigMismatch(String),
    /// The embedded model failed to decode.
    Model(ModelIoError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a DimBoost checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::ConfigMismatch(msg) => {
                write!(f, "checkpoint does not match this run: {msg}")
            }
            CheckpointError::Model(e) => write!(f, "embedded model: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ModelIoError> for CheckpointError {
    fn from(e: ModelIoError) -> Self {
        CheckpointError::Model(e)
    }
}

/// Identity of a training run for resume validation: a checkpoint may only
/// be resumed by a run with the identical fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointFingerprint {
    /// Master training seed.
    pub seed: u64,
    /// Total boosting rounds the run was configured for.
    pub num_trees: u64,
    /// Loss tag byte (the [`crate::model_io`] encoding).
    pub loss_tag: u8,
    /// Class count (1 for scalar losses).
    pub loss_classes: u32,
    /// Learning-rate bits (compared bit-exactly).
    pub learning_rate_bits: u32,
    /// Global feature count.
    pub num_features: u64,
    /// Worker (shard) count.
    pub workers: u32,
    /// Instance rows per shard, in shard order.
    pub shard_rows: Vec<u64>,
    /// Digest of the fault plan's elastic-membership schedule (joins,
    /// leaves, speed factors, speculation threshold) — see
    /// [`dimboost_simnet::FaultPlan::membership_digest`]. Zero for runs
    /// without membership events. Resuming under a different schedule
    /// would silently change epoch numbering and stripe placement, so it
    /// must fail loudly here instead.
    pub membership_digest: u64,
}

impl CheckpointFingerprint {
    /// Checks that `other` (the resuming run) matches this checkpoint,
    /// naming the first mismatching field.
    pub fn ensure_matches(&self, other: &CheckpointFingerprint) -> Result<(), CheckpointError> {
        macro_rules! check {
            ($field:ident) => {
                if self.$field != other.$field {
                    return Err(CheckpointError::ConfigMismatch(format!(
                        "{} differs: checkpoint {:?} vs run {:?}",
                        stringify!($field),
                        self.$field,
                        other.$field
                    )));
                }
            };
        }
        check!(seed);
        check!(num_trees);
        check!(loss_tag);
        check!(loss_classes);
        check!(learning_rate_bits);
        check!(num_features);
        check!(workers);
        check!(shard_rows);
        check!(membership_digest);
        Ok(())
    }
}

/// When and where the trainer writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory the rolling [`CHECKPOINT_FILE`] is written into (created
    /// if absent).
    pub dir: PathBuf,
    /// Write a checkpoint after every `every` completed rounds (≥ 1).
    pub every: usize,
}

impl CheckpointOptions {
    /// Checkpoint into `dir` after every round.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: 1,
        }
    }
}

/// A complete resumable snapshot of a distributed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Run identity for resume validation.
    pub fingerprint: CheckpointFingerprint,
    /// The next boosting round to execute (rounds `0..next_round` are in
    /// the model).
    pub next_round: usize,
    /// The partial model after round `next_round − 1`.
    pub model: GbdtModel,
    /// Per-worker RNG states, in shard order.
    pub rng_states: Vec<[u64; 4]>,
    /// Communication ledger accumulated so far.
    pub ledger: CommLedger,
    /// Per-feature split candidates proposed by the sketch phases.
    pub candidates: Vec<SplitCandidates>,
    /// Training-loss curve so far.
    pub loss_curve: Vec<LossPoint>,
    /// Per-round telemetry so far.
    pub rounds: Vec<RoundRecord>,
    /// Eval-loss curve so far (empty when the run has no eval set).
    pub eval_curve: Vec<LossPoint>,
    /// Best eval loss seen (`f64::INFINITY` when none).
    pub best_eval_loss: f64,
    /// Round of the best eval loss.
    pub best_iteration: Option<usize>,
    /// Elastic-membership snapshot `(stripe→machine assignment, live
    /// machine set, epoch)` at checkpoint time; `None` for fixed-membership
    /// runs. Restoring it on resume reproduces the exact placement and
    /// epoch numbering the interrupted run had reached.
    pub membership: Option<(Vec<u32>, Vec<u32>, u64)>,
}

fn need(bytes: &Bytes, n: usize) -> Result<(), CheckpointError> {
    if bytes.remaining() < n {
        Err(CheckpointError::Corrupt("unexpected end of input".into()))
    } else {
        Ok(())
    }
}

fn get_len(bytes: &mut Bytes, what: &str, cap: usize) -> Result<usize, CheckpointError> {
    need(bytes, 8)?;
    let n = bytes.get_u64_le();
    if n as usize > cap {
        return Err(CheckpointError::Corrupt(format!(
            "implausible {what} count {n}"
        )));
    }
    Ok(n as usize)
}

impl TrainCheckpoint {
    /// Serializes the checkpoint to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let model_blob = model_io::model_to_bytes(&self.model);
        let mut buf = BytesMut::with_capacity(512 + model_blob.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);

        let fp = &self.fingerprint;
        buf.put_u64_le(fp.seed);
        buf.put_u64_le(fp.num_trees);
        buf.put_u8(fp.loss_tag);
        buf.put_u32_le(fp.loss_classes);
        buf.put_u32_le(fp.learning_rate_bits);
        buf.put_u64_le(fp.num_features);
        buf.put_u32_le(fp.workers);
        buf.put_u64_le(fp.shard_rows.len() as u64);
        for &rows in &fp.shard_rows {
            buf.put_u64_le(rows);
        }
        buf.put_u64_le(fp.membership_digest);

        buf.put_u64_le(self.next_round as u64);
        buf.put_u64_le(model_blob.len() as u64);
        buf.put_slice(&model_blob);

        buf.put_u64_le(self.rng_states.len() as u64);
        for state in &self.rng_states {
            for &w in state {
                buf.put_u64_le(w);
            }
        }

        for phase in Phase::ALL {
            let c = self.ledger.phase(phase);
            buf.put_u64_le(c.bytes);
            buf.put_u64_le(c.packages);
            buf.put_f64_le(c.sim_time.seconds());
        }

        buf.put_u64_le(self.candidates.len() as u64);
        for cand in &self.candidates {
            buf.put_u32_le(cand.splits().len() as u32);
            for &s in cand.splits() {
                buf.put_f32_le(s);
            }
        }

        buf.put_u64_le(self.loss_curve.len() as u64);
        for p in &self.loss_curve {
            put_loss_point(&mut buf, p);
        }

        buf.put_u64_le(self.rounds.len() as u64);
        for r in &self.rounds {
            buf.put_u64_le(r.round as u64);
            buf.put_u64_le(r.trees as u64);
            buf.put_f64_le(r.train_loss);
            buf.put_f64_le(r.compute_secs);
            buf.put_u64_le(r.hist_bytes_raw);
            buf.put_u64_le(r.hist_bytes_wire);
            buf.put_f32_le(r.max_quant_scale);
            buf.put_u32_le(r.split_gains.len() as u32);
            for &g in &r.split_gains {
                buf.put_f32_le(g);
            }
            buf.put_u32_le(r.node_instances.len() as u32);
            for n in &r.node_instances {
                buf.put_u32_le(n.node);
                buf.put_u64_le(n.instances);
            }
        }

        buf.put_u64_le(self.eval_curve.len() as u64);
        for p in &self.eval_curve {
            put_loss_point(&mut buf, p);
        }
        buf.put_f64_le(self.best_eval_loss);
        match self.best_iteration {
            Some(round) => {
                buf.put_u8(1);
                buf.put_u64_le(round as u64);
            }
            None => {
                buf.put_u8(0);
                buf.put_u64_le(0);
            }
        }

        match &self.membership {
            Some((assignment, live, epoch)) => {
                buf.put_u8(1);
                buf.put_u64_le(assignment.len() as u64);
                for &m in assignment {
                    buf.put_u32_le(m);
                }
                buf.put_u64_le(live.len() as u64);
                for &m in live {
                    buf.put_u32_le(m);
                }
                buf.put_u64_le(*epoch);
            }
            None => buf.put_u8(0),
        }

        buf.freeze()
    }

    /// Deserializes a checkpoint, validating structure (including the
    /// embedded model).
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, CheckpointError> {
        need(&bytes, 8)?;
        let mut magic = [0u8; 8];
        bytes.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        need(&bytes, 4)?;
        let version = bytes.get_u32_le();
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion(version));
        }

        need(&bytes, 8 + 8 + 1 + 4 + 4 + 8 + 4)?;
        let seed = bytes.get_u64_le();
        let num_trees = bytes.get_u64_le();
        let loss_tag = bytes.get_u8();
        let loss_classes = bytes.get_u32_le();
        let learning_rate_bits = bytes.get_u32_le();
        let num_features = bytes.get_u64_le();
        let workers = bytes.get_u32_le();
        let n_shards = get_len(&mut bytes, "shard", 1 << 20)?;
        need(&bytes, n_shards * 8)?;
        let shard_rows = (0..n_shards).map(|_| bytes.get_u64_le()).collect();
        let membership_digest = if version >= 2 {
            need(&bytes, 8)?;
            bytes.get_u64_le()
        } else {
            0
        };
        let fingerprint = CheckpointFingerprint {
            seed,
            num_trees,
            loss_tag,
            loss_classes,
            learning_rate_bits,
            num_features,
            workers,
            shard_rows,
            membership_digest,
        };

        need(&bytes, 8)?;
        let next_round = bytes.get_u64_le() as usize;
        need(&bytes, 8)?;
        let model_len = bytes.get_u64_le() as usize;
        need(&bytes, model_len)?;
        let model = model_io::model_from_bytes(bytes.split_to(model_len))?;

        let n_rng = get_len(&mut bytes, "rng state", 1 << 20)?;
        need(&bytes, n_rng * 32)?;
        let rng_states = (0..n_rng)
            .map(|_| {
                let mut s = [0u64; 4];
                for w in &mut s {
                    *w = bytes.get_u64_le();
                }
                s
            })
            .collect();

        let mut ledger = CommLedger::new();
        for phase in Phase::ALL {
            need(&bytes, 8 + 8 + 8)?;
            let b = bytes.get_u64_le();
            let p = bytes.get_u64_le();
            let t = bytes.get_f64_le();
            if !t.is_finite() || t < 0.0 {
                return Err(CheckpointError::Corrupt(format!(
                    "bad sim time {t} for phase {}",
                    phase.name()
                )));
            }
            ledger.record(phase, b, p, SimTime(t));
        }

        let n_cand = get_len(&mut bytes, "candidate", 1 << 28)?;
        let mut candidates = Vec::with_capacity(n_cand);
        for _ in 0..n_cand {
            need(&bytes, 4)?;
            let n = bytes.get_u32_le() as usize;
            need(&bytes, n * 4)?;
            let splits: Vec<f32> = (0..n).map(|_| bytes.get_f32_le()).collect();
            // `from_boundaries` re-derives the zero bucket from the splits,
            // so the rebuilt candidates are identical to the originals.
            candidates.push(SplitCandidates::from_boundaries(splits));
        }

        let n_loss = get_len(&mut bytes, "loss point", 1 << 24)?;
        let mut loss_curve = Vec::with_capacity(n_loss);
        for _ in 0..n_loss {
            loss_curve.push(get_loss_point(&mut bytes)?);
        }

        let n_rounds = get_len(&mut bytes, "round", 1 << 24)?;
        let mut rounds = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            need(&bytes, 8 + 8 + 8 + 8 + 8 + 8 + 4 + 4)?;
            let mut r = RoundRecord::new(bytes.get_u64_le() as usize);
            r.trees = bytes.get_u64_le() as usize;
            r.train_loss = bytes.get_f64_le();
            r.compute_secs = bytes.get_f64_le();
            r.hist_bytes_raw = bytes.get_u64_le();
            r.hist_bytes_wire = bytes.get_u64_le();
            r.max_quant_scale = bytes.get_f32_le();
            let n_gains = bytes.get_u32_le() as usize;
            need(&bytes, n_gains * 4 + 4)?;
            r.split_gains = (0..n_gains).map(|_| bytes.get_f32_le()).collect();
            let n_nodes = bytes.get_u32_le() as usize;
            need(&bytes, n_nodes * 12)?;
            r.node_instances = (0..n_nodes)
                .map(|_| NodeInstances {
                    node: bytes.get_u32_le(),
                    instances: bytes.get_u64_le(),
                })
                .collect();
            rounds.push(r);
        }

        let n_eval = get_len(&mut bytes, "eval point", 1 << 24)?;
        let mut eval_curve = Vec::with_capacity(n_eval);
        for _ in 0..n_eval {
            eval_curve.push(get_loss_point(&mut bytes)?);
        }
        need(&bytes, 8 + 1 + 8)?;
        let best_eval_loss = bytes.get_f64_le();
        let has_best = bytes.get_u8();
        let best_round = bytes.get_u64_le() as usize;
        let best_iteration = match has_best {
            0 => None,
            1 => Some(best_round),
            t => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown best-iteration flag {t}"
                )))
            }
        };

        let membership = if version >= 2 {
            need(&bytes, 1)?;
            match bytes.get_u8() {
                0 => None,
                1 => {
                    let n_assign = get_len(&mut bytes, "stripe assignment", 1 << 20)?;
                    need(&bytes, n_assign * 4)?;
                    let assignment = (0..n_assign).map(|_| bytes.get_u32_le()).collect();
                    let n_live = get_len(&mut bytes, "live machine", 1 << 20)?;
                    need(&bytes, n_live * 4 + 8)?;
                    let live = (0..n_live).map(|_| bytes.get_u32_le()).collect();
                    let epoch = bytes.get_u64_le();
                    Some((assignment, live, epoch))
                }
                t => {
                    return Err(CheckpointError::Corrupt(format!(
                        "unknown membership flag {t}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(TrainCheckpoint {
            fingerprint,
            next_round,
            model,
            rng_states,
            ledger,
            candidates,
            loss_curve,
            rounds,
            eval_curve,
            best_eval_loss,
            best_iteration,
            membership,
        })
    }

    /// Atomically writes the rolling checkpoint into `dir` (created if
    /// absent): the bytes land in a temporary file first and are renamed
    /// over [`CHECKPOINT_FILE`], so an interrupted write never destroys
    /// the previous checkpoint. Returns the final path.
    pub fn save_to_dir(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
        let path = dir.join(CHECKPOINT_FILE);
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads the rolling checkpoint from `dir`.
    pub fn load_from_dir(dir: &Path) -> Result<Self, CheckpointError> {
        let path = dir.join(CHECKPOINT_FILE);
        let raw = std::fs::read(&path)?;
        Self::from_bytes(Bytes::from(raw))
    }
}

fn put_loss_point(buf: &mut BytesMut, p: &LossPoint) {
    buf.put_u64_le(p.tree as u64);
    buf.put_f64_le(p.train_loss);
    buf.put_f64_le(p.elapsed_secs);
}

fn get_loss_point(bytes: &mut Bytes) -> Result<LossPoint, CheckpointError> {
    need(bytes, 8 + 8 + 8)?;
    Ok(LossPoint {
        tree: bytes.get_u64_le() as usize,
        train_loss: bytes.get_f64_le(),
        elapsed_secs: bytes.get_f64_le(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_single_machine;
    use crate::GbdtConfig;
    use dimboost_data::synthetic::{generate, SparseGenConfig};

    fn sample_checkpoint() -> TrainCheckpoint {
        let ds = generate(&SparseGenConfig::new(400, 40, 8, 7));
        let cfg = GbdtConfig {
            num_trees: 2,
            max_depth: 3,
            ..GbdtConfig::default()
        };
        let model = train_single_machine(&ds, &cfg).unwrap();
        let mut ledger = CommLedger::new();
        ledger.record(Phase::BuildHistogram, 1234, 8, SimTime(0.5));
        ledger.record(Phase::FindSplit, 96, 2, SimTime(0.0625));
        let mut round = RoundRecord::new(0);
        round.trees = 1;
        round.train_loss = 0.5;
        round.split_gains = vec![1.5, 0.25];
        round.node_instances = vec![NodeInstances {
            node: 0,
            instances: 400,
        }];
        TrainCheckpoint {
            fingerprint: CheckpointFingerprint {
                seed: 42,
                num_trees: 5,
                loss_tag: 0,
                loss_classes: 1,
                learning_rate_bits: 0.1f32.to_bits(),
                num_features: 40,
                workers: 3,
                shard_rows: vec![134, 133, 133],
                membership_digest: 0x1234_5678_9ABC_DEF0,
            },
            next_round: 2,
            model,
            rng_states: vec![[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12]],
            ledger,
            candidates: vec![
                SplitCandidates::from_boundaries(vec![-1.0, 0.5, 2.0]),
                SplitCandidates::from_boundaries(vec![0.25]),
            ],
            loss_curve: vec![LossPoint {
                tree: 1,
                train_loss: 0.5,
                elapsed_secs: 0.1,
            }],
            rounds: vec![round],
            eval_curve: vec![LossPoint {
                tree: 1,
                train_loss: 0.625,
                elapsed_secs: 0.1,
            }],
            best_eval_loss: 0.625,
            best_iteration: Some(0),
            membership: Some((vec![0, 1, 1], vec![0, 1, 5], 4)),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ck = sample_checkpoint();
        let back = TrainCheckpoint::from_bytes(ck.to_bytes()).unwrap();
        assert_eq!(ck, back);
        // Ledger sim times survive bit-exactly.
        assert_eq!(
            ck.ledger.phase(Phase::BuildHistogram).sim_time.seconds(),
            back.ledger.phase(Phase::BuildHistogram).sim_time.seconds()
        );
    }

    #[test]
    fn dir_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join("dimboost_ckpt_test");
        std::fs::remove_dir_all(&dir).ok();
        let ck = sample_checkpoint();
        let path = ck.save_to_dir(&dir).unwrap();
        assert!(path.ends_with(CHECKPOINT_FILE));
        assert!(!dir.join(format!("{CHECKPOINT_FILE}.tmp")).exists());
        // A second save overwrites the first in place.
        let mut ck2 = ck.clone();
        ck2.next_round = 3;
        ck2.save_to_dir(&dir).unwrap();
        let back = TrainCheckpoint::load_from_dir(&dir).unwrap();
        assert_eq!(back, ck2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let err = TrainCheckpoint::from_bytes(Bytes::from_static(b"NOTACKPTmore")).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
        let bytes = sample_checkpoint().to_bytes();
        for frac in 1..8 {
            let cut = bytes.len() * frac / 8;
            let err = TrainCheckpoint::from_bytes(bytes.slice(0..cut)).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Corrupt(_)
                        | CheckpointError::BadMagic
                        | CheckpointError::Model(_)
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn rejects_future_version() {
        let mut raw = sample_checkpoint().to_bytes().to_vec();
        raw[8] = 77;
        let err = TrainCheckpoint::from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, CheckpointError::UnsupportedVersion(77)));
    }

    #[test]
    fn fingerprint_mismatch_names_field() {
        let fp = sample_checkpoint().fingerprint;
        let mut other = fp.clone();
        other.seed = 99;
        let err = fp.ensure_matches(&other).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
        let mut other = fp.clone();
        other.shard_rows = vec![1];
        let err = fp.ensure_matches(&other).unwrap_err();
        assert!(err.to_string().contains("shard_rows"), "{err}");
        // Resuming under a different membership schedule must fail loudly.
        let mut other = fp.clone();
        other.membership_digest ^= 1;
        let err = fp.ensure_matches(&other).unwrap_err();
        assert!(err.to_string().contains("membership_digest"), "{err}");
        assert!(fp.ensure_matches(&fp.clone()).is_ok());
    }

    #[test]
    fn membership_snapshot_roundtrips_in_both_forms() {
        // `Some` snapshot survives bit-exactly (sample_checkpoint carries one).
        let ck = sample_checkpoint();
        let back = TrainCheckpoint::from_bytes(ck.to_bytes()).unwrap();
        assert_eq!(back.membership, Some((vec![0, 1, 1], vec![0, 1, 5], 4)));
        // And a fixed-membership checkpoint stays `None`.
        let mut fixed = ck.clone();
        fixed.membership = None;
        fixed.fingerprint.membership_digest = 0;
        let back = TrainCheckpoint::from_bytes(fixed.to_bytes()).unwrap();
        assert_eq!(back, fixed);
        assert_eq!(back.membership, None);
    }

    #[test]
    fn error_display_and_source() {
        let e = CheckpointError::ConfigMismatch("workers differ".into());
        assert!(e.to_string().contains("workers differ"));
        let io = CheckpointError::from(std::io::Error::other("x"));
        assert!(std::error::Error::source(&io).is_some());
        let m = CheckpointError::from(ModelIoError::BadMagic);
        assert!(std::error::Error::source(&m).is_some());
    }
}
