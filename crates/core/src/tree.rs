//! Regression trees in the implicit breadth-first layout the paper uses:
//! node `i`'s children are `2i + 1` and `2i + 2` (the "state array" of the
//! task scheduler, Figure 10, indexes nodes the same way).

use dimboost_data::RowView;
use serde::{Deserialize, Serialize};

/// One slot of the tree's node array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Not (yet) part of the tree.
    Unused,
    /// A split node: instances with nonzero `value(feature) <= threshold`
    /// go left; zeros (absent features) follow `default_left`.
    Internal {
        /// Global feature index tested at this node.
        feature: u32,
        /// Split threshold.
        threshold: f32,
        /// Objective gain the split achieved (for feature importance).
        gain: f32,
        /// Where zero (absent) values go. `0.0 <= threshold` unless
        /// default-direction learning chose otherwise.
        default_left: bool,
    },
    /// A terminal node predicting `weight` (before shrinkage).
    Leaf {
        /// The regression weight `ω`.
        weight: f32,
    },
}

/// A single regression tree with at most `2^(max_depth+1) − 1` nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    max_depth: usize,
}

impl Tree {
    /// Creates an empty tree able to hold splits down to `max_depth` levels
    /// (leaves live at depth `max_depth`).
    pub fn new(max_depth: usize) -> Self {
        let capacity = (1usize << (max_depth + 1)) - 1;
        Self {
            nodes: vec![Node::Unused; capacity],
            max_depth,
        }
    }

    /// Reconstructs a tree from a full node array (deserialization path).
    ///
    /// # Errors
    /// Fails if the array length is not `2^(max_depth+1) − 1` or the
    /// structure violates [`Tree::check_consistency`].
    pub fn from_nodes(nodes: Vec<Node>, max_depth: usize) -> Result<Self, String> {
        let expected = (1usize << (max_depth + 1)) - 1;
        if nodes.len() != expected {
            return Err(format!(
                "node array length {} does not match depth {max_depth} (expected {expected})",
                nodes.len()
            ));
        }
        let tree = Self { nodes, max_depth };
        tree.check_consistency()?;
        Ok(tree)
    }

    /// The raw node array (serialization path).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Maximum split depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Total node-array capacity.
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// The node at `id`.
    pub fn node(&self, id: u32) -> Node {
        self.nodes[id as usize]
    }

    /// Left child id.
    pub fn left_child(id: u32) -> u32 {
        2 * id + 1
    }

    /// Right child id.
    pub fn right_child(id: u32) -> u32 {
        2 * id + 2
    }

    /// Parent id (panics on the root).
    pub fn parent(id: u32) -> u32 {
        assert!(id > 0, "root has no parent");
        (id - 1) / 2
    }

    /// Depth of a node id in the implicit layout (root = 0).
    pub fn depth_of(id: u32) -> usize {
        (id + 1).ilog2() as usize
    }

    /// Marks `id` as an internal split node.
    pub fn set_internal(&mut self, id: u32, feature: u32, threshold: f32) {
        self.set_internal_with_gain(id, feature, threshold, 0.0);
    }

    /// Marks `id` as an internal split node, recording the split's gain;
    /// zeros take the natural direction (`0 <= threshold`).
    pub fn set_internal_with_gain(&mut self, id: u32, feature: u32, threshold: f32, gain: f32) {
        self.set_internal_full(id, feature, threshold, gain, 0.0 <= threshold);
    }

    /// Marks `id` as an internal split node with an explicit default
    /// direction for zero (absent) values.
    pub fn set_internal_full(
        &mut self,
        id: u32,
        feature: u32,
        threshold: f32,
        gain: f32,
        default_left: bool,
    ) {
        assert!(
            Self::depth_of(id) < self.max_depth,
            "cannot split node {id} at depth {} (max {})",
            Self::depth_of(id),
            self.max_depth
        );
        self.nodes[id as usize] = Node::Internal {
            feature,
            threshold,
            gain,
            default_left,
        };
    }

    /// Marks `id` as a leaf with the given weight.
    pub fn set_leaf(&mut self, id: u32, weight: f32) {
        self.nodes[id as usize] = Node::Leaf { weight };
    }

    /// Number of leaves currently in the tree.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Number of internal nodes currently in the tree.
    pub fn num_internal(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Internal { .. }))
            .count()
    }

    /// Routes an instance from node `from` downward until it reaches a node
    /// that is not internal; returns that node id. Used both for prediction
    /// (reaching a leaf) and, during construction, for locating the active
    /// node an instance currently belongs to.
    pub fn route(&self, row: &RowView<'_>, from: u32) -> u32 {
        let mut id = from;
        loop {
            match self.nodes[id as usize] {
                Node::Internal {
                    feature,
                    threshold,
                    default_left,
                    ..
                } => {
                    let v = row.get(feature);
                    let left = if v == 0.0 {
                        default_left
                    } else {
                        v <= threshold
                    };
                    id = if left {
                        Self::left_child(id)
                    } else {
                        Self::right_child(id)
                    };
                }
                _ => return id,
            }
        }
    }

    /// Predicts the (unshrunk) weight for an instance. Instances landing on
    /// an `Unused` slot (possible only on malformed trees) predict `0.0`.
    pub fn predict(&self, row: &RowView<'_>) -> f32 {
        match self.nodes[self.route(row, 0) as usize] {
            Node::Leaf { weight } => weight,
            _ => 0.0,
        }
    }

    /// Renders the tree as an indented text outline (model inspection).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_node(0, 0, &mut out);
        out
    }

    fn dump_node(&self, id: u32, depth: usize, out: &mut String) {
        if id as usize >= self.nodes.len() {
            return;
        }
        let pad = "  ".repeat(depth);
        match self.nodes[id as usize] {
            Node::Unused => {}
            Node::Internal {
                feature,
                threshold,
                gain,
                default_left,
            } => {
                out.push_str(&format!(
                    "{pad}#{id} [f{feature} <= {threshold}] gain={gain:.4} zeros={}\n",
                    if default_left { "left" } else { "right" }
                ));
                self.dump_node(Self::left_child(id), depth + 1, out);
                self.dump_node(Self::right_child(id), depth + 1, out);
            }
            Node::Leaf { weight } => {
                out.push_str(&format!("{pad}#{id} leaf weight={weight:.4}\n"));
            }
        }
    }

    /// Checks structural invariants: every internal node has both children
    /// present (internal or leaf), and no node hangs below a leaf or unused
    /// slot. Returns the first violation found.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            let id = i as u32;
            match n {
                Node::Internal { .. } => {
                    for child in [Self::left_child(id), Self::right_child(id)] {
                        if child as usize >= self.nodes.len()
                            || matches!(self.nodes[child as usize], Node::Unused)
                        {
                            return Err(format!("internal node {id} missing child {child}"));
                        }
                    }
                }
                Node::Leaf { .. } | Node::Unused => {
                    for child in [Self::left_child(id), Self::right_child(id)] {
                        if (child as usize) < self.nodes.len()
                            && !matches!(self.nodes[child as usize], Node::Unused)
                        {
                            return Err(format!("non-internal node {id} has child {child}"));
                        }
                    }
                }
            }
        }
        if matches!(self.nodes[0], Node::Unused) {
            return Err("root is unused".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_data::{Dataset, SparseInstance};

    fn row_of(ds: &Dataset, i: usize) -> RowView<'_> {
        ds.row(i)
    }

    fn dataset() -> Dataset {
        let insts = vec![
            SparseInstance::new(vec![0], vec![0.2]).unwrap(), // left
            SparseInstance::new(vec![0], vec![0.9]).unwrap(), // right
            SparseInstance::empty(),                          // zero -> left
        ];
        Dataset::from_instances(&insts, vec![0.0; 3], 2).unwrap()
    }

    fn stump() -> Tree {
        let mut t = Tree::new(2);
        t.set_internal(0, 0, 0.5);
        t.set_leaf(1, -1.0);
        t.set_leaf(2, 1.0);
        t
    }

    #[test]
    fn children_and_depth() {
        assert_eq!(Tree::left_child(0), 1);
        assert_eq!(Tree::right_child(0), 2);
        assert_eq!(Tree::parent(2), 0);
        assert_eq!(Tree::depth_of(0), 0);
        assert_eq!(Tree::depth_of(1), 1);
        assert_eq!(Tree::depth_of(2), 1);
        assert_eq!(Tree::depth_of(3), 2);
        assert_eq!(Tree::depth_of(6), 2);
    }

    #[test]
    fn stump_predicts_by_threshold() {
        let t = stump();
        let ds = dataset();
        assert_eq!(t.predict(&row_of(&ds, 0)), -1.0);
        assert_eq!(t.predict(&row_of(&ds, 1)), 1.0);
        assert_eq!(t.predict(&row_of(&ds, 2)), -1.0); // zero goes left
    }

    #[test]
    fn route_stops_at_active_frontier() {
        let mut t = Tree::new(3);
        t.set_internal(0, 0, 0.5);
        // children not yet materialized: routing stops at them.
        let ds = dataset();
        assert_eq!(t.route(&row_of(&ds, 0), 0), 1);
        assert_eq!(t.route(&row_of(&ds, 1), 0), 2);
    }

    #[test]
    fn consistency_checks() {
        assert!(stump().check_consistency().is_ok());

        let mut t = Tree::new(2);
        t.set_internal(0, 0, 0.5);
        t.set_leaf(1, 0.0);
        // missing right child
        assert!(t.check_consistency().is_err());

        let mut t = Tree::new(2);
        t.set_leaf(0, 0.0);
        t.set_leaf(1, 0.0); // dangling below a leaf
        assert!(t.check_consistency().is_err());

        let t = Tree::new(2); // unused root
        assert!(t.check_consistency().is_err());
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn cannot_split_past_max_depth() {
        let mut t = Tree::new(1);
        t.set_internal(1, 0, 0.0);
    }

    #[test]
    fn capacity_matches_depth() {
        assert_eq!(Tree::new(1).capacity(), 3);
        assert_eq!(Tree::new(3).capacity(), 15);
        assert_eq!(Tree::new(7).capacity(), 255);
    }

    #[test]
    fn leaf_and_internal_counts() {
        let t = stump();
        assert_eq!(t.num_leaves(), 2);
        assert_eq!(t.num_internal(), 1);
    }
}
