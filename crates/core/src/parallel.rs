//! Parallel batch histogram construction (Section 5.2).
//!
//! The node-parallel scheme leaves cores idle near the root ("cold start":
//! one node, one thread). The batch scheme divides a node's instance range
//! into batches of `b` instances, builds partial histograms for batches on
//! `q` threads, and merges. Each thread owns one partial row, so no locks
//! are taken on the hot path.
//!
//! # Deterministic striping
//!
//! Batches are assigned by **static round-robin striping**: thread `t`
//! processes batches `t, t + q, t + 2q, …` in ascending order. An earlier
//! version claimed batches from an atomic cursor, which made each thread's
//! f32 partial sum depend on OS scheduling and silently broke the repo's
//! bit-reproducibility guarantee. With striping, each partial row is a pure
//! function of `(instances, threads, batch_size)`, and partials are merged
//! in thread-index order, so the output is bit-identical across reruns for
//! any fixed configuration. The same rule is used by
//! [`crate::binned::BinnedShard::build_row_batched`] and the batch scoring
//! engine in `dimboost-predict`.
//!
//! Across *different* `(threads, batch_size)` the f32 builders here only
//! agree to a float-associativity tolerance — the grouping of additions
//! changes. That caveat used to apply to every histogram path; it no longer
//! does. The quantized accumulator ([`crate::hist_build::build_quantized`]
//! and `fused::build_layer_quantized`, behind `Optimizations::
//! quantized_hist`) sums fixed-point integers, which are associative, so
//! its histograms — and the resulting model bytes — are bit-identical
//! across **any** thread count and batch size (DESIGN.md §15).
//!
//! The stripes execute on the persistent [`crate::pool`] (one pool per
//! process) rather than per-call scoped threads; `threads` here is the
//! number of *logical stripes*, which the pool's determinism rule keeps
//! independent of its own physical size.

use dimboost_data::Dataset;

use crate::hist_build::{build_dense, build_sparse, new_row};
use crate::loss::GradPair;
use crate::meta::FeatureMeta;
use crate::pool;

/// Tuning knobs for the batched builder.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Instances per batch (the paper's `b`, default 10 000).
    pub batch_size: usize,
    /// Maximum worker threads (the paper's `q`).
    pub threads: usize,
    /// Use the sparsity-aware inner builder.
    pub sparse: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            batch_size: 10_000,
            threads: 4,
            sparse: true,
        }
    }
}

/// Builds one node's histogram row by processing instance batches in
/// parallel and merging the per-thread partial rows.
pub fn build_row_batched(
    shard: &Dataset,
    instances: &[u32],
    grads: &[GradPair],
    meta: &FeatureMeta,
    config: &BatchConfig,
) -> Vec<f32> {
    assert!(config.batch_size > 0, "batch_size must be positive");
    assert!(config.threads > 0, "threads must be positive");

    let num_batches = instances.len().div_ceil(config.batch_size.max(1));
    let threads = config.threads.min(num_batches.max(1));
    if threads <= 1 {
        // Single batch or single thread: no parallel machinery.
        let mut out = new_row(meta);
        if config.sparse {
            build_sparse(shard, instances, grads, meta, &mut out);
        } else {
            let mut scratch = Vec::new();
            build_dense(shard, instances, grads, meta, &mut out, &mut scratch);
        }
        return out;
    }

    // Static round-robin striping: stripe `t` owns batches t, t+threads, …
    // in ascending order. No shared cursor, so batch→stripe assignment and
    // therefore every f32 partial sum is independent of OS scheduling. The
    // persistent pool returns partials in stripe order.
    let partials: Vec<Vec<f32>> = pool::global().run(threads, |t| {
        let mut partial = new_row(meta);
        let mut scratch = Vec::new();
        let mut b = t;
        while b < num_batches {
            let lo = b * config.batch_size;
            let hi = (lo + config.batch_size).min(instances.len());
            let batch = &instances[lo..hi];
            if config.sparse {
                build_sparse(shard, batch, grads, meta, &mut partial);
            } else {
                build_dense(shard, batch, grads, meta, &mut partial, &mut scratch);
            }
            b += threads;
        }
        partial
    });

    // Merge partials in stripe-index order (the "send once all threads are
    // finished" step). The order is fixed, so the merged row is bit-stable.
    let mut iter = partials.into_iter();
    let mut out = iter.next().expect("at least one partial row");
    for p in iter {
        for (o, v) in out.iter_mut().zip(&p) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist_build::build_row;
    use dimboost_data::synthetic::{generate, SparseGenConfig};
    use dimboost_sketch::SplitCandidates;

    fn setup(n: usize) -> (Dataset, FeatureMeta, Vec<GradPair>) {
        let ds = generate(&SparseGenConfig::new(n, 40, 8, 5));
        let cands: Vec<SplitCandidates> = (0..40)
            .map(|_| SplitCandidates::from_boundaries(vec![0.3, 0.8, 1.4]))
            .collect();
        let meta = FeatureMeta::all_features(&cands);
        let grads: Vec<GradPair> = (0..n)
            .map(|i| GradPair {
                g: ((i % 5) as f32 - 2.0),
                h: 0.5 + (i % 2) as f32,
            })
            .collect();
        (ds, meta, grads)
    }

    // The batched builder is fully deterministic: batches are statically
    // striped (thread t owns batches t, t+q, …) and partials are merged in
    // thread-index order, so for a fixed (instances, threads, batch_size)
    // the output is bit-identical across reruns — pinned exactly by
    // `repeat_runs_are_bit_identical` below. This tolerance exists only for
    // comparing *against the sequential reference*, where f32 associativity
    // differs: striping regroups the additions into per-thread partial
    // sums. With |g| ≤ 2 over ≤ 500 instances the sums stay within ±1000,
    // where reordering error is bounded well below 1e-2; the bound catches
    // real regressions without ever flaking.
    fn assert_rows_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-2, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn batched_equals_sequential_sparse() {
        let (ds, meta, grads) = setup(500);
        let instances: Vec<u32> = (0..500).collect();
        let seq = build_row(&ds, &instances, &grads, &meta, true);
        for threads in [1, 2, 4, 8] {
            for batch_size in [7, 64, 100, 1000] {
                let cfg = BatchConfig {
                    batch_size,
                    threads,
                    sparse: true,
                };
                let par = build_row_batched(&ds, &instances, &grads, &meta, &cfg);
                if threads == 1 || batch_size >= instances.len() {
                    // Single thread (or a single batch) adds in the exact
                    // same order as the sequential builder: bit-equal.
                    assert_eq!(par, seq, "threads={threads} batch={batch_size}");
                } else {
                    assert_rows_close(&par, &seq);
                }
            }
        }
    }

    // Pins the headline invariant of static striping: for a fixed
    // configuration the builder's output is bit-identical across reruns,
    // for every thread count — no tolerance, exact f32 bit equality.
    #[test]
    fn repeat_runs_are_bit_identical() {
        let (ds, meta, grads) = setup(500);
        let instances: Vec<u32> = (0..500).collect();
        for threads in [2, 4, 8] {
            for sparse in [true, false] {
                let cfg = BatchConfig {
                    batch_size: 37,
                    threads,
                    sparse,
                };
                let first = build_row_batched(&ds, &instances, &grads, &meta, &cfg);
                for _ in 0..10 {
                    let again = build_row_batched(&ds, &instances, &grads, &meta, &cfg);
                    assert_eq!(again, first, "threads={threads} sparse={sparse}");
                }
            }
        }
    }

    #[test]
    fn batched_equals_sequential_dense() {
        let (ds, meta, grads) = setup(200);
        let instances: Vec<u32> = (0..200).collect();
        let seq = build_row(&ds, &instances, &grads, &meta, false);
        let cfg = BatchConfig {
            batch_size: 33,
            threads: 3,
            sparse: false,
        };
        let par = build_row_batched(&ds, &instances, &grads, &meta, &cfg);
        assert_rows_close(&par, &seq);
    }

    #[test]
    fn subset_of_instances() {
        let (ds, meta, grads) = setup(300);
        let instances: Vec<u32> = (100..250).collect();
        let seq = build_row(&ds, &instances, &grads, &meta, true);
        let cfg = BatchConfig {
            batch_size: 20,
            threads: 4,
            sparse: true,
        };
        let par = build_row_batched(&ds, &instances, &grads, &meta, &cfg);
        assert_rows_close(&par, &seq);
    }

    #[test]
    fn empty_instances() {
        let (ds, meta, grads) = setup(10);
        let cfg = BatchConfig::default();
        let row = build_row_batched(&ds, &[], &grads, &meta, &cfg);
        assert!(row.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn rejects_zero_batch_size() {
        let (ds, meta, grads) = setup(10);
        let cfg = BatchConfig {
            batch_size: 0,
            threads: 1,
            sparse: true,
        };
        build_row_batched(&ds, &[0], &grads, &meta, &cfg);
    }
}
