//! K-fold cross-validation over the distributed trainer.

use dimboost_data::partition::partition_rows;
use dimboost_data::Dataset;
use dimboost_ps::PsConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::config::{GbdtConfig, LossKind};
use crate::loss::{loss_for, softmax_loss};
use crate::trainer::train_distributed;

/// Result of a k-fold cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Mean held-out loss per fold (log-loss / squared / softmax CE to match
    /// the configured objective).
    pub fold_losses: Vec<f64>,
    /// Mean of the fold losses.
    pub mean: f64,
    /// Population standard deviation of the fold losses.
    pub std: f64,
}

/// Runs `folds`-fold cross-validation: the rows are shuffled with
/// `config.seed`, split into near-equal folds, and each fold is evaluated by
/// a model trained on the remaining rows (distributed across `workers`
/// simulated workers).
pub fn cross_validate(
    dataset: &Dataset,
    config: &GbdtConfig,
    workers: usize,
    ps_config: PsConfig,
    folds: usize,
) -> Result<CvResult, String> {
    if folds < 2 {
        return Err("cross-validation needs at least 2 folds".into());
    }
    if dataset.num_rows() < folds {
        return Err(format!(
            "{} rows cannot form {folds} folds",
            dataset.num_rows()
        ));
    }
    let mut order: Vec<usize> = (0..dataset.num_rows()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0DE_F01D);
    order.shuffle(&mut rng);

    let mut fold_losses = Vec::with_capacity(folds);
    for fold in 0..folds {
        let held: Vec<usize> = order.iter().copied().skip(fold).step_by(folds).collect();
        let kept: Vec<usize> = order
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % folds != fold)
            .map(|(_, r)| r)
            .collect();
        let train = dataset.subset(&kept);
        let test = dataset.subset(&held);
        let shards = partition_rows(&train, workers.max(1)).map_err(|e| e.to_string())?;
        let out = train_distributed(&shards, config, ps_config)?;

        let loss = match config.loss {
            LossKind::Softmax { .. } => {
                let k = config.loss.trees_per_round();
                (0..test.num_rows())
                    .map(|i| {
                        let scores = out.model.predict_scores(&test.row(i));
                        debug_assert_eq!(scores.len(), k);
                        softmax_loss(&scores, test.label(i) as usize)
                    })
                    .sum::<f64>()
                    / test.num_rows().max(1) as f64
            }
            kind => {
                let l = loss_for(kind);
                (0..test.num_rows())
                    .map(|i| l.loss(out.model.predict_raw(&test.row(i)), test.label(i)))
                    .sum::<f64>()
                    / test.num_rows().max(1) as f64
            }
        };
        fold_losses.push(loss);
    }

    let n = fold_losses.len() as f64;
    let mean = fold_losses.iter().sum::<f64>() / n;
    let var = fold_losses
        .iter()
        .map(|l| (l - mean) * (l - mean))
        .sum::<f64>()
        / n;
    Ok(CvResult {
        fold_losses,
        mean,
        std: var.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_data::synthetic::{generate, SparseGenConfig};
    use dimboost_simnet::CostModel;

    fn ps() -> PsConfig {
        PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        }
    }

    fn config() -> GbdtConfig {
        GbdtConfig {
            num_trees: 4,
            max_depth: 3,
            num_candidates: 8,
            learning_rate: 0.3,
            ..GbdtConfig::default()
        }
    }

    #[test]
    fn cv_beats_the_uninformed_baseline() {
        let ds = generate(&SparseGenConfig::new(1_500, 150, 12, 31));
        let cv = cross_validate(&ds, &config(), 2, ps(), 4).unwrap();
        assert_eq!(cv.fold_losses.len(), 4);
        // Every fold must beat the ln 2 coin-flip log-loss.
        for l in &cv.fold_losses {
            assert!(*l < std::f64::consts::LN_2, "fold loss {l}");
        }
        assert!(cv.mean < std::f64::consts::LN_2);
        assert!(cv.std >= 0.0 && cv.std < 0.2, "std {}", cv.std);
    }

    #[test]
    fn cv_covers_every_row_exactly_once() {
        // Fold sizes: stride-partition of the shuffled order covers all rows.
        let ds = generate(&SparseGenConfig::new(103, 20, 5, 9));
        let cv = cross_validate(&ds, &config(), 1, ps(), 5).unwrap();
        assert_eq!(cv.fold_losses.len(), 5);
    }

    #[test]
    fn cv_deterministic_in_seed() {
        let ds = generate(&SparseGenConfig::new(600, 60, 8, 3));
        let a = cross_validate(&ds, &config(), 2, ps(), 3).unwrap();
        let b = cross_validate(&ds, &config(), 2, ps(), 3).unwrap();
        assert_eq!(a.fold_losses, b.fold_losses);
    }

    #[test]
    fn cv_rejects_bad_inputs() {
        let ds = generate(&SparseGenConfig::new(10, 5, 2, 1));
        assert!(cross_validate(&ds, &config(), 1, ps(), 1).is_err());
        assert!(cross_validate(&ds, &config(), 1, ps(), 11).is_err());
    }
}
