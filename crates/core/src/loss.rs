//! Loss functions and their first/second-order gradients (Section 2.2).
//!
//! GBDT is trained additively: each tree fits the first- and second-order
//! gradients (`g_i`, `h_i`) of the loss at the current prediction, following
//! the LogitBoost second-order expansion the paper adopts from XGBoost.

use crate::config::LossKind;

/// A first-/second-order gradient pair for one instance.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GradPair {
    /// First-order gradient `g = ∂l/∂ŷ`.
    pub g: f32,
    /// Second-order gradient `h = ∂²l/∂ŷ²`.
    pub h: f32,
}

/// A boosting loss: maps a raw score and a label to a loss value and its
/// gradients, and transforms raw scores into user-facing predictions.
pub trait Loss: Send + Sync {
    /// Loss value for one instance.
    fn loss(&self, score: f32, label: f32) -> f64;
    /// First- and second-order gradients at the current score.
    fn grad(&self, score: f32, label: f32) -> GradPair;
    /// Transforms a raw additive score into the output space (probability
    /// for classification, identity for regression).
    fn transform(&self, score: f32) -> f32;
    /// Display name.
    fn name(&self) -> &'static str;
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Logistic loss `l = −y·log(p) − (1−y)·log(1−p)` with `p = σ(ŷ)`, for
/// labels in {0, 1}. Gradients: `g = p − y`, `h = p·(1 − p)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogisticLoss;

impl Loss for LogisticLoss {
    fn loss(&self, score: f32, label: f32) -> f64 {
        // Numerically stable: log(1 + e^{-s}) + (1-y)·s.
        let s = score as f64;
        let y = label as f64;
        let log1p_exp = if s > 0.0 {
            (-s).exp().ln_1p()
        } else {
            s.exp().ln_1p() - s
        };
        log1p_exp + (1.0 - y) * s
    }

    fn grad(&self, score: f32, label: f32) -> GradPair {
        let p = sigmoid(score);
        GradPair {
            g: p - label,
            h: (p * (1.0 - p)).max(1e-16),
        }
    }

    fn transform(&self, score: f32) -> f32 {
        sigmoid(score)
    }

    fn name(&self) -> &'static str {
        "logistic"
    }
}

/// Squared loss `l = ½·(ŷ − y)²`. Gradients: `g = ŷ − y`, `h = 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SquareLoss;

impl Loss for SquareLoss {
    fn loss(&self, score: f32, label: f32) -> f64 {
        // Subtract in f64: the finite-difference tests probe tiny
        // perturbations that f32 subtraction would round away.
        let d = score as f64 - label as f64;
        0.5 * d * d
    }

    fn grad(&self, score: f32, label: f32) -> GradPair {
        GradPair {
            g: score - label,
            h: 1.0,
        }
    }

    fn transform(&self, score: f32) -> f32 {
        score
    }

    fn name(&self) -> &'static str {
        "square"
    }
}

/// Resolves a *scalar* [`LossKind`] to its implementation.
///
/// # Panics
/// Panics on [`LossKind::Softmax`], whose per-class gradients do not fit
/// the scalar interface — the trainer handles it through
/// [`softmax_grads`] / [`softmax_loss`] instead.
pub fn loss_for(kind: LossKind) -> &'static dyn Loss {
    match kind {
        LossKind::Logistic => &LogisticLoss,
        LossKind::Square => &SquareLoss,
        LossKind::Softmax { .. } => {
            panic!("softmax is vector-valued; use softmax_grads/softmax_loss")
        }
    }
}

// ---- Multiclass softmax (extension beyond the paper) -----------------------

/// In-place softmax over a score vector (numerically stable).
pub fn softmax_inplace(scores: &mut [f32]) {
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
    for s in scores.iter_mut() {
        *s *= inv;
    }
}

/// Per-class gradients of the softmax cross-entropy at the given raw
/// scores: `g_c = p_c − 1[y = c]`, `h_c = p_c·(1 − p_c)` (the diagonal of
/// the softmax Hessian, floored away from zero). `out` must hold one pair
/// per class.
pub fn softmax_grads(scores: &[f32], label: usize, out: &mut [GradPair]) {
    debug_assert_eq!(scores.len(), out.len());
    debug_assert!(
        label < scores.len(),
        "label {label} out of {} classes",
        scores.len()
    );
    let mut probs = scores.to_vec();
    softmax_inplace(&mut probs);
    for (c, (o, &p)) in out.iter_mut().zip(&probs).enumerate() {
        let y = f32::from(c == label);
        *o = GradPair {
            g: p - y,
            h: (p * (1.0 - p)).max(1e-16),
        };
    }
}

/// Softmax cross-entropy loss `−log p_y` at the given raw scores.
pub fn softmax_loss(scores: &[f32], label: usize) -> f64 {
    debug_assert!(label < scores.len());
    // Stable log-sum-exp.
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
    let lse: f64 = scores
        .iter()
        .map(|&s| (s as f64 - max).exp())
        .sum::<f64>()
        .ln()
        + max;
    lse - scores[label] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of first and second derivatives.
    fn check_gradients(loss: &dyn Loss, score: f32, label: f32) {
        // A power-of-two step is exactly representable in f32, so the
        // central differences are free of rounding noise.
        let eps = 0.0625f32;
        let gp = loss.grad(score, label);
        let l_plus = loss.loss(score + eps, label);
        let l_minus = loss.loss(score - eps, label);
        let num_g = (l_plus - l_minus) / (2.0 * eps as f64);
        assert!(
            (num_g - gp.g as f64).abs() < 1e-3,
            "{}: g mismatch at ({score}, {label}): {num_g} vs {}",
            loss.name(),
            gp.g
        );
        let l0 = loss.loss(score, label);
        let num_h = (l_plus - 2.0 * l0 + l_minus) / (eps as f64 * eps as f64);
        assert!(
            (num_h - gp.h as f64).abs() < 1e-2,
            "{}: h mismatch at ({score}, {label}): {num_h} vs {}",
            loss.name(),
            gp.h
        );
    }

    #[test]
    fn logistic_gradients_match_finite_differences() {
        for score in [-3.0f32, -0.5, 0.0, 0.5, 3.0] {
            for label in [0.0f32, 1.0] {
                check_gradients(&LogisticLoss, score, label);
            }
        }
    }

    #[test]
    fn square_gradients_match_finite_differences() {
        for score in [-2.0f32, 0.0, 1.5] {
            for label in [-1.0f32, 0.0, 2.5] {
                check_gradients(&SquareLoss, score, label);
            }
        }
    }

    #[test]
    fn logistic_loss_is_stable_at_extremes() {
        let l = LogisticLoss;
        assert!(l.loss(100.0, 1.0).is_finite());
        assert!(l.loss(-100.0, 0.0).is_finite());
        assert!(l.loss(100.0, 0.0) > 99.0); // ~s for confident wrong answer
        assert!(l.loss(100.0, 1.0) < 1e-3);
    }

    #[test]
    fn logistic_hessian_strictly_positive() {
        let gp = LogisticLoss.grad(40.0, 1.0);
        assert!(gp.h > 0.0);
    }

    #[test]
    fn transforms() {
        assert_eq!(SquareLoss.transform(2.5), 2.5);
        assert!((LogisticLoss.transform(0.0) - 0.5).abs() < 1e-6);
        assert!(LogisticLoss.transform(10.0) > 0.99);
    }

    #[test]
    fn loss_for_dispatch() {
        assert_eq!(loss_for(LossKind::Logistic).name(), "logistic");
        assert_eq!(loss_for(LossKind::Square).name(), "square");
    }

    #[test]
    #[should_panic(expected = "vector-valued")]
    fn loss_for_rejects_softmax() {
        loss_for(LossKind::Softmax { classes: 3 });
    }

    #[test]
    fn softmax_probabilities_sum_to_one() {
        let mut s = vec![1.0f32, 2.0, 3.0, -1.0];
        softmax_inplace(&mut s);
        let sum: f32 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s.windows(2).take(2).all(|w| w[0] < w[1]));
        // Stability at extreme scores.
        let mut big = vec![1000.0f32, 999.0];
        softmax_inplace(&mut big);
        assert!(big.iter().all(|p| p.is_finite()));
        assert!((big.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_grads_match_finite_differences() {
        let scores = [0.5f32, -1.0, 2.0];
        let eps = 0.0625f32;
        for label in 0..3 {
            let mut grads = vec![GradPair::default(); 3];
            softmax_grads(&scores, label, &mut grads);
            for c in 0..3 {
                let mut plus = scores;
                plus[c] += eps;
                let mut minus = scores;
                minus[c] -= eps;
                let num_g =
                    (softmax_loss(&plus, label) - softmax_loss(&minus, label)) / (2.0 * eps as f64);
                assert!(
                    (num_g - grads[c].g as f64).abs() < 1e-3,
                    "label {label} class {c}: {num_g} vs {}",
                    grads[c].g
                );
                let l0 = softmax_loss(&scores, label);
                let num_h = (softmax_loss(&plus, label) - 2.0 * l0 + softmax_loss(&minus, label))
                    / (eps as f64 * eps as f64);
                assert!(
                    (num_h - grads[c].h as f64).abs() < 1e-2,
                    "label {label} class {c}: h {num_h} vs {}",
                    grads[c].h
                );
            }
        }
    }

    #[test]
    fn softmax_grads_sum_to_zero() {
        let scores = [0.1f32, 0.2, 0.3, 0.4];
        let mut grads = vec![GradPair::default(); 4];
        softmax_grads(&scores, 2, &mut grads);
        let g_sum: f32 = grads.iter().map(|p| p.g).sum();
        assert!(
            g_sum.abs() < 1e-6,
            "softmax gradients must sum to zero: {g_sum}"
        );
        assert!(grads.iter().all(|p| p.h > 0.0));
    }

    #[test]
    fn softmax_loss_prefers_correct_class() {
        let confident = [5.0f32, -5.0];
        assert!(softmax_loss(&confident, 0) < 0.01);
        assert!(softmax_loss(&confident, 1) > 5.0);
    }

    #[test]
    fn trees_per_round() {
        assert_eq!(LossKind::Logistic.trees_per_round(), 1);
        assert_eq!(LossKind::Square.trees_per_round(), 1);
        assert_eq!(LossKind::Softmax { classes: 5 }.trees_per_round(), 5);
    }
}
