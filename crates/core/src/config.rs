use dimboost_ps::SplitParams;
use serde::{Deserialize, Serialize};

/// Which loss function drives the boosting objective (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Logistic loss for binary classification (labels in {0, 1}).
    Logistic,
    /// Squared loss for regression.
    Square,
    /// Softmax cross-entropy for multiclass classification (labels in
    /// `0..classes`). **Extension beyond the paper** (which evaluates binary
    /// classification only): each boosting round grows one tree per class.
    Softmax {
        /// Number of classes (≥ 2).
        classes: u32,
    },
}

impl LossKind {
    /// Trees grown per boosting round: 1 for scalar losses, `classes` for
    /// softmax.
    pub fn trees_per_round(&self) -> usize {
        match self {
            LossKind::Softmax { classes } => *classes as usize,
            _ => 1,
        }
    }
}

/// The optimization toggles evaluated one by one in Table 3. Each flag turns
/// one of the paper's proposed techniques on; with everything off the system
/// degenerates to the "basic algorithm" baseline of Section 7.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Optimizations {
    /// Sparsity-aware histogram construction (Section 5.1, Algorithm 2).
    /// Off: dense enumeration of every feature of every instance.
    pub sparse_hist: bool,
    /// Parallel batch histogram construction (Section 5.2). Off: one thread
    /// builds each node's histogram sequentially.
    pub parallel_batch: bool,
    /// The node-to-instance index (Section 5.2). Off: the instances of each
    /// tree node are recomputed by routing the whole shard through the
    /// partially built tree.
    pub node_index: bool,
    /// The round-robin task scheduler (Section 6.2). Off: a single agent
    /// worker finds the split of every active node.
    pub task_scheduler: bool,
    /// Two-phase (server-side + worker-side) split finding (Section 6.3).
    /// Off: workers pull entire merged histogram rows.
    pub two_phase_split: bool,
    /// Low-precision gradient histograms (Section 6.1). Off: full `f32`
    /// rows are pushed to the parameter server.
    pub low_precision: bool,
    /// **Extension (not in the paper):** pre-binned histogram
    /// construction. Each nonzero's bucket is resolved once after
    /// PULL_SKETCH and reused across every layer (and, with σ = 1, every
    /// tree), removing the per-build binary searches. Costs ~12 bytes per
    /// nonzero of worker memory.
    pub pre_binning: bool,
    /// **Extension (not in the paper):** sibling histogram subtraction.
    /// Below the root, only the smaller child of each split is built and
    /// pushed; the other child's merged histogram is derived on the servers
    /// as `parent − child`, halving construction and push cost per layer.
    /// LightGBM ships this trick; DimBoost's paper does not, so it defaults
    /// to off and is excluded from [`Optimizations::ALL`].
    pub hist_subtraction: bool,
    /// **Extension (not in the paper):** layer-fused histogram
    /// construction (see `crate::fused`): one statically-striped pass over
    /// the binned shard builds every build node of the layer at once,
    /// instead of one pass (and one thread-team dispatch) per node.
    /// Implies the pre-binned representation (the binned shard is built
    /// whenever this flag is on). Excluded from [`Optimizations::ALL`] so
    /// paper-faithful ablation configs keep it off.
    pub fused_layer: bool,
    /// **Extension (not in the paper):** density-adaptive sparse histogram
    /// exchange (after Vasiloudis et al.'s block-distributed GBT). Each
    /// worker pushes per-(stripe, feature-block) deltas under the smallest
    /// of three wire layouts (dense / bitmap / runs; the low-precision path
    /// packs codes, scales, and zero values the same way), and the PS folds
    /// the staged blocks in deterministic stripe order — bit-identical to
    /// the dense exchange while `hist_bytes_wire` tracks the true frame
    /// sizes. Excluded from [`Optimizations::ALL`] so paper-faithful
    /// ablation configs keep the paper's dense exchange.
    pub sparse_wire: bool,
    /// **Extension (not in the paper):** quantized integer histogram
    /// accumulation (see `crate::hist_build` / DESIGN.md §15). Gradients
    /// are fixed-point-quantized once per tree
    /// (`GbdtConfig::quant_hist_bits`, deterministic rounding, scale
    /// derived like the §6.1 wire quantizer's) and histogram cells
    /// accumulate packed integer code pairs — associative, so histogram
    /// and model bytes are bit-identical across **any** `(threads,
    /// batch_size)`, and the hot loop does half the read-modify-writes of
    /// the f32 builders. Implies the pre-binned representation; composes
    /// with `fused_layer` (cache-tiled layer kernel), `hist_subtraction`,
    /// and `sparse_wire`/`low_precision` (rows dequantize once before the
    /// PS push). Excluded from [`Optimizations::ALL`]: the paper's
    /// accumulator is f32, which stays as the ablation baseline.
    pub quantized_hist: bool,
}

impl Optimizations {
    /// Every optimization the paper proposes — the full DimBoost system.
    /// (Extensions beyond the paper, like `hist_subtraction`, stay off.)
    pub const ALL: Optimizations = Optimizations {
        sparse_hist: true,
        parallel_batch: true,
        node_index: true,
        task_scheduler: true,
        two_phase_split: true,
        low_precision: true,
        pre_binning: false,
        hist_subtraction: false,
        fused_layer: false,
        sparse_wire: false,
        quantized_hist: false,
    };

    /// Everything off — the basic algorithm.
    pub const NONE: Optimizations = Optimizations {
        sparse_hist: false,
        parallel_batch: false,
        node_index: false,
        task_scheduler: false,
        two_phase_split: false,
        low_precision: false,
        pre_binning: false,
        hist_subtraction: false,
        fused_layer: false,
        sparse_wire: false,
        quantized_hist: false,
    };
}

impl Default for Optimizations {
    fn default() -> Self {
        Self::ALL
    }
}

/// Training hyper-parameters, mirroring the paper's protocol section
/// (Section 7.1): `T` trees, maximal depth `d`, `K` split candidates,
/// feature sampling ratio `σ`, batch size `b`, compression bits `r`,
/// threads `q`, and learning rate `η`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Number of trees `T`.
    pub num_trees: usize,
    /// Maximum tree depth `d` (number of split levels; leaves sit at depth
    /// `d`, so a tree stores up to `2^(d+1) − 1` nodes and `2^d − 1`
    /// internal-node histograms — the paper's `GradHist` row count).
    pub max_depth: usize,
    /// Number of split candidates per feature `K`.
    pub num_candidates: usize,
    /// Feature sampling ratio `σ` per tree.
    pub feature_sample_ratio: f64,
    /// Instance (row) subsampling ratio per tree — stochastic gradient
    /// boosting. `1.0` (the paper's setting) uses every instance.
    pub instance_sample_ratio: f64,
    /// Shrinkage learning rate `η`.
    pub learning_rate: f32,
    /// L2 regularization on leaf weights (λ).
    pub lambda: f64,
    /// L1 regularization on leaf weights (α, XGBoost's `reg_alpha`);
    /// `0.0` — the paper's objective — by default.
    pub alpha: f64,
    /// Per-leaf complexity penalty (γ).
    pub gamma: f64,
    /// Minimum Hessian sum per child.
    pub min_child_weight: f64,
    /// **Extension (not in the paper):** learn the default direction of
    /// zero (absent) values per split — XGBoost's sparsity-aware split
    /// finding. Off, zeros follow the threshold comparison, as in
    /// Algorithm 1.
    pub learn_default_direction: bool,
    /// Parallel batch size `b` (instances per batch).
    pub batch_size: usize,
    /// Worker thread count `q` for histogram construction.
    pub num_threads: usize,
    /// Compression bit width `r` when low-precision pushes are enabled.
    pub compress_bits: u8,
    /// Rank-error target for the quantile sketches proposing candidates.
    pub sketch_eps: f64,
    /// Loss function.
    pub loss: LossKind,
    /// Master seed for feature sampling and stochastic rounding.
    pub seed: u64,
    /// Optimization toggles (Table 3).
    pub opts: Optimizations,
    /// Record an event-level trace of the run on the simulated clock
    /// (see [`dimboost_simnet::trace`]). Off by default: events cost
    /// memory proportional to rounds × nodes. Metrics percentiles are
    /// collected either way.
    pub collect_trace: bool,
    /// Memory budget in bytes for the fused layer kernel's per-thread
    /// histogram blocks (`build_nodes × row_len × 4 × num_threads`). When
    /// a layer's blocks would exceed it, the trainer falls back to
    /// per-node builds for that layer. Only consulted when
    /// `opts.fused_layer` is on.
    pub fused_block_budget: usize,
    /// Bit width for the quantized histogram accumulator's fixed-point
    /// gradient codes (`opts.quantized_hist`; DESIGN.md §15). In `2..=16`
    /// like `compress_bits`; per shard the trainer may *demote* it so a
    /// 32-bit lane can never overflow (`rows · levels(bits) ≤ i32::MAX` —
    /// see `hist_build::effective_quant_bits`). 12 bits keeps the
    /// quantization step ≤ max|g| / 2047, comfortably below split-decision
    /// noise at trainer scales, while leaving narrow-mode headroom.
    pub quant_hist_bits: u8,
}

/// 256 MiB — far above any realistic layer at the paper's settings
/// (e.g. depth 8, 100k features × 20 buckets ≈ 2^7 × 4 M f32 ≈ 2 GiB
/// would exceed it and fall back, as intended).
fn default_fused_block_budget() -> usize {
    256 << 20
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            num_trees: 10,
            max_depth: 5,
            num_candidates: 20,
            feature_sample_ratio: 1.0,
            instance_sample_ratio: 1.0,
            learning_rate: 0.1,
            lambda: 1.0,
            alpha: 0.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            learn_default_direction: false,
            batch_size: 10_000,
            num_threads: 4,
            compress_bits: 8,
            sketch_eps: 0.02,
            loss: LossKind::Logistic,
            seed: 42,
            opts: Optimizations::ALL,
            collect_trace: false,
            fused_block_budget: default_fused_block_budget(),
            quant_hist_bits: 12,
        }
    }
}

impl GbdtConfig {
    /// The split-objective parameters used by Algorithm 1's scan.
    pub fn split_params(&self) -> SplitParams {
        SplitParams {
            lambda: self.lambda,
            alpha: self.alpha,
            gamma: self.gamma,
            min_child_weight: self.min_child_weight,
            learn_default_direction: self.learn_default_direction,
        }
    }

    /// Validates configuration invariants, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_trees == 0 {
            return Err("num_trees must be positive".into());
        }
        if self.max_depth == 0 || self.max_depth > 20 {
            return Err(format!(
                "max_depth must be in 1..=20, got {}",
                self.max_depth
            ));
        }
        if self.num_candidates == 0 {
            return Err("num_candidates must be positive".into());
        }
        if !(0.0 < self.feature_sample_ratio && self.feature_sample_ratio <= 1.0) {
            return Err(format!(
                "feature_sample_ratio must be in (0, 1], got {}",
                self.feature_sample_ratio
            ));
        }
        if !(0.0 < self.instance_sample_ratio && self.instance_sample_ratio <= 1.0) {
            return Err(format!(
                "instance_sample_ratio must be in (0, 1], got {}",
                self.instance_sample_ratio
            ));
        }
        if self.learning_rate <= 0.0 {
            return Err("learning_rate must be positive".into());
        }
        if !(2..=16).contains(&self.compress_bits) {
            return Err(format!(
                "compress_bits must be in 2..=16, got {}",
                self.compress_bits
            ));
        }
        if !(2..=16).contains(&self.quant_hist_bits) {
            return Err(format!(
                "quant_hist_bits must be in 2..=16, got {}",
                self.quant_hist_bits
            ));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.num_threads == 0 {
            return Err("num_threads must be positive".into());
        }
        if !(self.sketch_eps > 0.0 && self.sketch_eps < 0.5) {
            return Err(format!(
                "sketch_eps must be in (0, 0.5), got {}",
                self.sketch_eps
            ));
        }
        if let LossKind::Softmax { classes } = self.loss {
            if classes < 2 {
                return Err(format!("softmax needs at least 2 classes, got {classes}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(GbdtConfig::default().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            GbdtConfig {
                num_trees: 0,
                ..GbdtConfig::default()
            },
            GbdtConfig {
                max_depth: 0,
                ..GbdtConfig::default()
            },
            GbdtConfig {
                feature_sample_ratio: 1.5,
                ..GbdtConfig::default()
            },
            GbdtConfig {
                instance_sample_ratio: 0.0,
                ..GbdtConfig::default()
            },
            GbdtConfig {
                compress_bits: 1,
                ..GbdtConfig::default()
            },
            GbdtConfig {
                quant_hist_bits: 17,
                ..GbdtConfig::default()
            },
            GbdtConfig {
                sketch_eps: 0.9,
                ..GbdtConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "config should be invalid: {c:?}");
        }
    }

    #[test]
    fn split_params_mirror_config() {
        let c = GbdtConfig {
            lambda: 2.0,
            gamma: 0.5,
            min_child_weight: 3.0,
            ..GbdtConfig::default()
        };
        let p = c.split_params();
        assert_eq!(p.lambda, 2.0);
        assert_eq!(p.gamma, 0.5);
        assert_eq!(p.min_child_weight, 3.0);
    }

    #[test]
    fn optimization_presets() {
        let all = Optimizations::ALL;
        let none = Optimizations::NONE;
        assert!(all.sparse_hist && all.low_precision && !all.hist_subtraction);
        assert!(!none.sparse_hist && !none.two_phase_split);
        assert_eq!(Optimizations::default(), all);
    }
}
