//! The DimBoost distributed trainer: the seven-phase worker execution plan
//! of Figure 7 (CREATE_SKETCH → PULL_SKETCH → NEW_TREE → BUILD_HISTOGRAM →
//! FIND_SPLIT → SPLIT_TREE → FINISH) over the parameter server.
//!
//! Workers are simulated in-process: computation phases run real code and
//! are timed in wall-clock per worker (the distributed wall time of a phase
//! is the *max* across workers, since real workers run concurrently on
//! separate machines); communication is charged to the simulated network via
//! the Table 1 cost formulas. Every optimization of Sections 5–6 is a
//! config toggle so the Table 3 ablation can enable them one at a time.

use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dimboost_data::Dataset;
use dimboost_ps::quantize::quantize_row;
use dimboost_ps::split::{best_split_in_range, FinalSplit, PullSplitResult, SplitDecision};
use dimboost_ps::{ParameterServer, PsConfig};
use dimboost_simnet::fault::{LeavePolicy, LossPolicy, StripeMove};
use dimboost_simnet::{CommStats, FaultPlan, FaultSession, Phase, SimTime, Trace, TraceBus};
use dimboost_sketch::{propose_candidates, GkSketch, SplitCandidates};

use crate::checkpoint::{
    CheckpointError, CheckpointFingerprint, CheckpointOptions, TrainCheckpoint,
};
use crate::config::{GbdtConfig, LossKind};
use crate::hist_build::build_row;
use crate::loss::{loss_for, softmax_grads, softmax_loss, GradPair, Loss};
use crate::meta::FeatureMeta;
use crate::model::GbdtModel;
use crate::model_io;
use crate::node_index::NodeIndex;
use crate::parallel::{build_row_batched, BatchConfig};
use crate::report::{NodeInstances, RoundRecord, RunReport, SpanTimer};
use crate::scheduler::RoundRobinScheduler;
use crate::tree::Tree;

/// Errors from the resilient training entry points.
///
/// The legacy `Result<_, String>` entry points flatten this through
/// [`std::fmt::Display`]; [`TrainError::Invalid`] displays as just its
/// message so those callers see the exact strings they always did.
#[derive(Debug)]
pub enum TrainError {
    /// Invalid configuration or input data.
    Invalid(String),
    /// The fault plan's simulated crash fired. When the run was
    /// checkpointing, `checkpoint` names the directory-resident snapshot a
    /// `--resume` run can continue from.
    Crashed {
        /// Boosting round at which the crash fired (no work from this
        /// round is in the checkpoint).
        round: usize,
        /// Path of the checkpoint written at crash time, if any.
        checkpoint: Option<PathBuf>,
    },
    /// A worker was permanently lost under [`LossPolicy::Abort`].
    WorkerLost {
        /// The lost worker's shard id.
        worker: u32,
        /// Round at which the loss fired.
        round: usize,
    },
    /// Checkpoint I/O, decoding, or fingerprint validation failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Invalid(msg) => write!(f, "{msg}"),
            TrainError::Crashed { round, checkpoint } => {
                write!(f, "simulated worker crash at round {round}")?;
                match checkpoint {
                    Some(path) => write!(f, " (checkpoint at {})", path.display()),
                    None => write!(f, " (no checkpoint was configured)"),
                }
            }
            TrainError::WorkerLost { worker, round } => {
                write!(
                    f,
                    "worker {worker} permanently lost at round {round} (policy: abort)"
                )
            }
            TrainError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<String> for TrainError {
    fn from(msg: String) -> Self {
        TrainError::Invalid(msg)
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

fn invalid(msg: impl Into<String>) -> TrainError {
    TrainError::Invalid(msg.into())
}

/// Robustness configuration for [`train_distributed_resilient`]: an
/// optional deterministic fault plan plus checkpoint/resume settings.
#[derive(Debug, Clone, Default)]
pub struct RobustOptions {
    /// Deterministic fault plan injected into the run (stragglers, message
    /// drops/duplicates, outages, a scripted crash, permanent worker
    /// losses). `None` runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Where and how often to write rolling checkpoints. `None` disables
    /// checkpointing (and makes `resume` invalid).
    pub checkpoint: Option<CheckpointOptions>,
    /// Resume from the rolling checkpoint in `checkpoint.dir` instead of
    /// starting from round 0. The checkpoint's fingerprint must match the
    /// run exactly.
    pub resume: bool,
}

/// Where a training run spent its time.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunBreakdown {
    /// Wall-clock computation seconds: per phase, the maximum across
    /// workers (workers run concurrently on separate machines), summed over
    /// phases.
    pub compute_secs: f64,
    /// Simulated communication ledger (bytes, packages, simulated seconds).
    pub comm: CommStats,
}

impl RunBreakdown {
    /// Total modelled run time: computation plus simulated communication.
    pub fn total_secs(&self) -> f64 {
        self.compute_secs + self.comm.sim_time.seconds()
    }
}

/// One point of the convergence curve (Figure 12's right-hand plots),
/// recorded once per boosting round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossPoint {
    /// Trees in the ensemble when the point was recorded.
    pub tree: usize,
    /// Mean training loss after this tree.
    pub train_loss: f64,
    /// Modelled elapsed seconds (compute + simulated communication).
    pub elapsed_secs: f64,
}

/// Everything a training run produces.
#[derive(Debug, Clone)]
pub struct TrainOutput {
    /// The trained ensemble (truncated to the best iteration when early
    /// stopping fired).
    pub model: GbdtModel,
    /// Time breakdown.
    pub breakdown: RunBreakdown,
    /// Training-loss curve, one point per tree actually trained.
    pub loss_curve: Vec<LossPoint>,
    /// Validation-loss curve (empty when no eval set was supplied).
    pub eval_curve: Vec<LossPoint>,
    /// Zero-based index of the best tree on the eval set, when evaluating.
    pub best_iteration: Option<usize>,
    /// Structured per-phase / per-round run report (see [`crate::report`]).
    /// Its aggregate communication always equals `breakdown.comm`.
    pub report: RunReport,
    /// Event-level trace of the run on the simulated clock, recorded when
    /// [`GbdtConfig::collect_trace`] is set (`None` otherwise). The trace's
    /// communication events fold back to `report.comm` bit-exactly.
    pub trace: Option<Trace>,
}

/// Validation configuration for [`train_distributed_with_eval`].
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions<'a> {
    /// Held-out dataset evaluated after every boosting round.
    pub dataset: &'a Dataset,
    /// Stop after this many rounds without eval-loss improvement and
    /// truncate the model to the best round. `None` evaluates without
    /// stopping.
    pub early_stopping_rounds: Option<usize>,
}

/// Per-worker training state (one per simulated machine).
struct Worker {
    shard_id: usize,
    /// Raw scores, `num_classes` per instance (class-major within a row).
    preds: Vec<f32>,
    /// Current tree's per-instance gradients (one class's column).
    grads: Vec<GradPair>,
    /// Round gradients for all classes (`num_classes` per instance).
    grads_all: Vec<GradPair>,
    index: NodeIndex,
    /// Pre-binned shard (when `Optimizations::pre_binning` is on).
    binned: Option<crate::binned::BinnedShard>,
    /// Packed-pair offset view of `binned` (when
    /// `Optimizations::quantized_hist` is on); rebuilt with it.
    qbinned: Option<crate::hist_build::QuantBinned>,
    /// Current tree's fixed-point gradient codes (`quantized_hist`),
    /// re-quantized each NEW_TREE after the gradient pass.
    qgrads: Option<crate::hist_build::QuantizedGrads>,
    /// Row-subsampling membership for the current tree (`None` = all rows).
    sample_mask: Option<Vec<bool>>,
    rng: StdRng,
}

/// Routes every local instance through the partially-built tree to find the
/// ones currently sitting at `node` — the full-shard scan the
/// node-to-instance index replaces (Table 3's "Node-to-instance Index" row).
fn scan_instances(shard: &Dataset, tree: &Tree, node: u32, mask: Option<&[bool]>) -> Vec<u32> {
    (0..shard.num_rows() as u32)
        .filter(|&i| mask.is_none_or(|m| m[i as usize]))
        .filter(|&i| tree.route(&shard.row(i as usize), 0) == node)
        .collect()
}

/// Builds one worker's per-feature quantile sketches over its shard.
fn build_local_sketches(shard: &Dataset, num_features: usize, eps: f64) -> Vec<GkSketch> {
    let mut sketches: Vec<GkSketch> = (0..num_features).map(|_| GkSketch::new(eps)).collect();
    for (row, _) in shard.iter_rows() {
        for (f, v) in row.iter() {
            sketches[f as usize].insert(v);
        }
    }
    for s in &mut sketches {
        s.flush();
    }
    sketches
}

/// Trains a GBDT model across `shards` (one per worker) with the DimBoost
/// execution plan on a parameter server configured by `ps_config`.
///
/// Returns the model, a compute/communication breakdown, and the per-tree
/// training-loss curve. Deterministic in `(config.seed, shards, ps_config)`.
pub fn train_distributed(
    shards: &[Dataset],
    config: &GbdtConfig,
    ps_config: PsConfig,
) -> Result<TrainOutput, String> {
    train_distributed_with_eval(shards, config, ps_config, None)
}

/// [`train_distributed`] with an optional held-out evaluation set and early
/// stopping.
pub fn train_distributed_with_eval(
    shards: &[Dataset],
    config: &GbdtConfig,
    ps_config: PsConfig,
    eval: Option<EvalOptions<'_>>,
) -> Result<TrainOutput, String> {
    train_impl(shards, config, ps_config, eval, None, None).map_err(|e| e.to_string())
}

/// [`train_distributed_with_eval`] under a robustness harness: deterministic
/// fault injection, rolling checkpoints, and checkpoint-resume.
///
/// The exactness invariant (tested): a fault plan changes only *timing* —
/// the learned model, the logical communication ledger (bytes/packages per
/// phase), and the loss curves are bit-identical to the fault-free run with
/// the same seed. Likewise a run resumed from a checkpoint finishes with a
/// model bit-identical to the uninterrupted run.
pub fn train_distributed_resilient(
    shards: &[Dataset],
    config: &GbdtConfig,
    ps_config: PsConfig,
    eval: Option<EvalOptions<'_>>,
    robust: &RobustOptions,
) -> Result<TrainOutput, TrainError> {
    train_impl(shards, config, ps_config, eval, None, Some(robust))
}

/// Warm start: continues boosting on top of an existing model, appending
/// `config.num_trees` further rounds. The initial model must match the
/// configured loss, learning rate, and dimensionality (the combined
/// ensemble has a single shrinkage factor).
pub fn train_distributed_continue(
    init: &GbdtModel,
    shards: &[Dataset],
    config: &GbdtConfig,
    ps_config: PsConfig,
    eval: Option<EvalOptions<'_>>,
) -> Result<TrainOutput, String> {
    if init.loss() != config.loss {
        return Err(format!(
            "warm start loss mismatch: model {:?} vs config {:?}",
            init.loss(),
            config.loss
        ));
    }
    if init.learning_rate() != config.learning_rate {
        return Err(format!(
            "warm start learning-rate mismatch: model {} vs config {}",
            init.learning_rate(),
            config.learning_rate
        ));
    }
    if !shards.is_empty() && init.num_features() != shards[0].num_features() {
        return Err(format!(
            "warm start dimensionality mismatch: model {} vs data {}",
            init.num_features(),
            shards[0].num_features()
        ));
    }
    init.check_consistency()?;
    train_impl(shards, config, ps_config, eval, Some(init), None).map_err(|e| e.to_string())
}

/// Builds the fingerprint identifying this run for checkpoint validation.
/// `membership_digest` covers the fault plan's elastic schedule (0 without
/// one) so a resume under a different membership history fails loudly.
fn fingerprint_for(
    config: &GbdtConfig,
    shards: &[Dataset],
    membership_digest: u64,
) -> CheckpointFingerprint {
    let (loss_tag, loss_classes) = model_io::loss_tag(config.loss);
    CheckpointFingerprint {
        seed: config.seed,
        num_trees: config.num_trees as u64,
        loss_tag,
        loss_classes,
        learning_rate_bits: config.learning_rate.to_bits(),
        num_features: shards.first().map_or(0, |s| s.num_features()) as u64,
        workers: shards.len() as u32,
        shard_rows: shards.iter().map(|s| s.num_rows() as u64).collect(),
        membership_digest,
    }
}

/// Reconstructs the membership overlay a run had reached after rounds
/// `0..start` by replaying the plan's schedule (used when a resume has no
/// checkpointed snapshot to restore). The rebalance is a pure function of
/// the event sequence, so replay and live application agree exactly. The
/// per-round order mirrors the live path: joins, then leaves, then
/// redistribute-losses.
fn replay_membership_to(session: &FaultSession, start: usize) -> Result<(), TrainError> {
    for round in 0..start {
        let plan = session.plan();
        for spec in plan.joins.iter().filter(|j| j.round == round) {
            session.apply_join(spec.worker).map_err(invalid)?;
        }
        for spec in plan.leaves.iter().filter(|l| l.round == round) {
            session.apply_leave(spec.worker).map_err(invalid)?;
        }
        for spec in plan.losses.iter().filter(|l| l.round == round) {
            if matches!(spec.policy, LossPolicy::Redistribute) {
                session.apply_leave(spec.worker).map_err(invalid)?;
            }
        }
    }
    Ok(())
}

/// Snapshots the run into a resumable checkpoint after round `next_round − 1`.
#[allow(clippy::too_many_arguments)]
fn snapshot_checkpoint(
    fingerprint: &CheckpointFingerprint,
    next_round: usize,
    trees: &[Tree],
    config: &GbdtConfig,
    num_features: usize,
    workers: &[Worker],
    ledger: dimboost_simnet::CommLedger,
    candidates: &[SplitCandidates],
    loss_curve: &[LossPoint],
    rounds: &[RoundRecord],
    eval_curve: &[LossPoint],
    best_eval_loss: f64,
    best_iteration: Option<usize>,
    membership: Option<(Vec<u32>, Vec<u32>, u64)>,
) -> TrainCheckpoint {
    TrainCheckpoint {
        fingerprint: fingerprint.clone(),
        next_round,
        model: GbdtModel::new(
            trees.to_vec(),
            config.learning_rate,
            config.loss,
            num_features,
        ),
        rng_states: workers.iter().map(|wk| wk.rng.state()).collect(),
        ledger,
        candidates: candidates.to_vec(),
        loss_curve: loss_curve.to_vec(),
        rounds: rounds.to_vec(),
        eval_curve: eval_curve.to_vec(),
        best_eval_loss,
        best_iteration,
        membership,
    }
}

fn train_impl(
    shards: &[Dataset],
    config: &GbdtConfig,
    ps_config: PsConfig,
    eval: Option<EvalOptions<'_>>,
    init: Option<&GbdtModel>,
    robust: Option<&RobustOptions>,
) -> Result<TrainOutput, TrainError> {
    config.validate()?;
    if shards.is_empty() {
        return Err(invalid("need at least one worker shard"));
    }
    let num_features = shards[0].num_features();
    if shards.iter().any(|s| s.num_features() != num_features) {
        return Err(invalid("all shards must share the same dimensionality"));
    }
    let total_instances: usize = shards.iter().map(|s| s.num_rows()).sum();
    if total_instances == 0 {
        return Err(invalid("cannot train on zero instances"));
    }

    // ---- Robustness harness: fault session, checkpointing, resume. -------
    let fault_session: Option<Arc<FaultSession>> = robust
        .and_then(|r| r.fault_plan.as_ref())
        .map(|plan| FaultSession::new(plan.clone()));
    let membership_digest = robust
        .and_then(|r| r.fault_plan.as_ref())
        .map_or(0, |p| p.membership_digest());
    let checkpoint_opts = robust.and_then(|r| r.checkpoint.as_ref());
    let resume_ck: Option<TrainCheckpoint> = match robust {
        Some(r) if r.resume => {
            let opts = r
                .checkpoint
                .as_ref()
                .ok_or_else(|| invalid("resume requires a checkpoint directory"))?;
            if init.is_some() {
                return Err(invalid("resume cannot be combined with warm start"));
            }
            let ck = TrainCheckpoint::load_from_dir(&opts.dir)?;
            ck.fingerprint
                .ensure_matches(&fingerprint_for(config, shards, membership_digest))?;
            if ck.rng_states.len() != shards.len() {
                return Err(CheckpointError::Corrupt(format!(
                    "checkpoint has {} RNG states for {} workers",
                    ck.rng_states.len(),
                    shards.len()
                ))
                .into());
            }
            if ck.next_round > config.num_trees {
                return Err(invalid(format!(
                    "checkpoint is ahead of the run: next round {} of {}",
                    ck.next_round, config.num_trees
                )));
            }
            Some(ck)
        }
        _ => None,
    };
    let resumed_from: Option<usize> = resume_ck.as_ref().map(|ck| ck.next_round);
    let start_round = resumed_from.unwrap_or(0);
    // A warm model to recompute per-instance scores from: either an explicit
    // warm start or the partial model inside the checkpoint. Recomputation
    // is bit-exact because `predict_scores` sums the same trees in the same
    // per-class order as the incremental updates did.
    let warm: Option<&GbdtModel> = init.or(resume_ck.as_ref().map(|ck| &ck.model));
    if let (Some(session), Some(start)) = (&fault_session, resumed_from) {
        // Workers redistributed before the crash stay lost in the resumed run.
        for spec in &session.plan().losses {
            if spec.round < start && matches!(spec.policy, LossPolicy::Redistribute) {
                session.mark_lost(spec.worker);
            }
        }
    }

    let w = shards.len();
    // Trees per boosting round: 1 for scalar losses, `classes` for softmax
    // (`num_trees` counts *rounds*, so a softmax run grows `num_trees · k`
    // trees, round-major).
    let k = config.loss.trees_per_round();
    let scalar_loss: Option<&dyn Loss> = match config.loss {
        LossKind::Softmax { .. } => None,
        kind => Some(loss_for(kind)),
    };
    if let LossKind::Softmax { classes } = config.loss {
        let check = |labels: &[f32], what: &str| -> Result<(), String> {
            for &y in labels {
                if y < 0.0 || y.fract() != 0.0 || y as u32 >= classes {
                    return Err(format!(
                        "softmax {what} labels must be class indices in 0..{classes}, got {y}"
                    ));
                }
            }
            Ok(())
        };
        for shard in shards {
            check(shard.labels(), "training")?;
        }
        if let Some(ev) = &eval {
            check(ev.dataset.labels(), "eval")?;
        }
    }
    let ps = ParameterServer::new(num_features, ps_config);
    let cost = ps_config.cost_model;
    let p = ps_config.partitions();
    let params = config.split_params();
    // The trace bus rides along on every PS interaction (through the shared
    // StatsRecorder) and on every timed compute phase. With collect_trace
    // off it still aggregates metrics percentiles, just no event log.
    let bus = TraceBus::new(w, ps_config.num_servers, cost, config.collect_trace);
    ps.attach_trace(bus.clone());
    if let Some(session) = &fault_session {
        ps.attach_faults(session.clone());
    }
    if let Some(ck) = &resume_ck {
        // The resumed report accounts for the whole logical run: absorb the
        // pre-crash ledger before any new charges land.
        ps.recorder().preload(&ck.ledger);
    }
    // ---- Elastic membership overlay. ---------------------------------------
    // Scripted joins/leaves/speed skew change only *placement* and simulated
    // timing. The logical stripes are the initial shard set, immutable for
    // the run: per-stripe worker state (gradients, histograms, RNG streams)
    // and push order never change, so the model stays bit-identical to a
    // fixed-membership run (f32 histogram merging is grouping-sensitive —
    // re-grouping rows would change the bytes).
    let membership_on = fault_session
        .as_ref()
        .is_some_and(|s| s.plan().has_membership_events());
    if membership_on {
        let session = fault_session.as_ref().expect("membership implies a plan");
        session.init_membership(w);
        match resume_ck.as_ref().and_then(|ck| ck.membership.clone()) {
            // The checkpointed snapshot reproduces the exact placement and
            // epoch numbering the interrupted run had reached.
            Some((assignment, live, epoch)) => {
                session.restore_membership(assignment, live, epoch);
            }
            // No snapshot (fresh run, or a pre-elastic checkpoint): replay
            // the schedule up to the start round.
            None => replay_membership_to(session, start_round)?,
        }
        ps.set_epoch(session.membership_epoch());
    }
    // Tags PS interactions with the issuing worker on both the trace bus
    // and the fault session (per-worker message sequence numbers).
    let set_worker = |worker: Option<u32>| {
        bus.set_worker(worker);
        if let Some(session) = &fault_session {
            session.set_worker(worker);
        }
    };
    // Charges a phase-tagged communication time, dilated by any live
    // stragglers (and by permanent worker losses under the redistribute
    // policy: survivors carry the lost shard's traffic on their links).
    // Dilation adds simulated *time* only — bytes and packages stay
    // identical to the fault-free run, preserving the exactness invariant.
    let charge = |phase: Phase, time: SimTime| {
        ps.charge(phase, time);
        let Some(session) = &fault_session else {
            return;
        };
        if membership_on {
            // Elastic schedule: a phase finishes when the slowest live
            // machine drains its stripes (rate × load, see
            // `FaultSession::membership_dilation`); speculation can cap a
            // chronic straggler by replaying its stripes on a backup.
            let d = session.membership_dilation(phase);
            if let Some(b) = d.backup {
                let won = b.effective_factor < b.raw_factor;
                let saved = time.seconds() * (b.raw_factor - b.effective_factor);
                session.on_backup(won, saved);
                ps.recorder()
                    .membership_event(phase, "speculative_backup", SimTime::ZERO, 0, 1);
                if won {
                    // The win's saved seconds are a *reduction*, not
                    // schedule stretch — recorded with zero duration so the
                    // trace profile attributes only real stretch.
                    ps.recorder()
                        .membership_event(phase, "backup_win", SimTime::ZERO, 0, 1);
                }
            }
            if d.factor > 1.0 {
                let extra = time.seconds() * (d.factor - 1.0);
                session.add_elastic_secs(extra);
                ps.recorder()
                    .membership_event(phase, "elastic_dilation", SimTime(extra), 0, 1);
                ps.charge(phase, SimTime(extra));
            }
        } else {
            let dilation = session.dilation(phase);
            if dilation > 1.0 {
                let extra = time.seconds() * (dilation - 1.0);
                session.add_straggler_secs(extra);
                ps.recorder()
                    .fault_event(phase, "straggler_dilation", SimTime(extra), 0, 1);
                ps.charge(phase, SimTime(extra));
            }
        }
    };
    // Transfer cost of re-homing one stripe at a membership event: a
    // graceful handoff streams the resident partition (α + bytes·β); a cold
    // re-shard (redistribute, or a lost machine that cannot hand off)
    // re-reads and re-bins it on the receiver, modelled at twice the
    // streaming cost. Pure simulated time — bytes appear only on the
    // membership trace lane, never in the communication ledger.
    let stripe_bytes: Vec<u64> = shards
        .iter()
        .map(|s| (8 * s.nnz() + 8 * s.num_rows()) as u64)
        .collect();
    let charge_moves = |moves: &[StripeMove], graceful: bool| {
        let Some(session) = &fault_session else {
            return;
        };
        for mv in moves {
            let bytes = stripe_bytes[mv.stripe as usize];
            let base = cost.alpha + bytes as f64 * cost.beta;
            let (name, secs) = if graceful {
                ("stripe_handoff", base)
            } else {
                ("stripe_reshard", 2.0 * base)
            };
            if graceful {
                session.add_handoff_secs(secs);
            } else {
                session.add_reshard_secs(secs);
            }
            ps.recorder()
                .membership_event(Phase::NewTree, name, SimTime(secs), bytes, 1);
            ps.charge(Phase::NewTree, SimTime(secs));
        }
    };
    let mut timer = SpanTimer::new(w);
    timer.attach_trace(bus.clone());
    let mut rounds: Vec<RoundRecord> = match &resume_ck {
        Some(ck) => ck.rounds.clone(),
        None => Vec::with_capacity(config.num_trees),
    };

    let mut workers: Vec<Worker> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| Worker {
            shard_id: i,
            preds: match warm {
                Some(model) => {
                    let mut preds = Vec::with_capacity(s.num_rows() * k);
                    for (row, _) in s.iter_rows() {
                        preds.extend(model.predict_scores(&row));
                    }
                    preds
                }
                None => vec![0.0; s.num_rows() * k],
            },
            grads: vec![GradPair::default(); s.num_rows()],
            grads_all: vec![GradPair::default(); s.num_rows() * k],
            index: NodeIndex::new(s.num_rows(), 0),
            binned: None,
            qbinned: None,
            qgrads: None,
            sample_mask: None,
            rng: match &resume_ck {
                // Feature subsampling and stochastic rounding continue the
                // exact streams the checkpointed run was drawing from.
                Some(ck) => StdRng::from_state(ck.rng_states[i]),
                None => StdRng::seed_from_u64(config.seed ^ ((i as u64 + 1) << 32)),
            },
        })
        .collect();

    let candidates: Vec<SplitCandidates> = match &resume_ck {
        // The sketch phases already ran before the crash — their traffic is
        // in the preloaded ledger. Reusing the checkpointed candidates keeps
        // candidate proposal (and so every split) exactly reproducible.
        Some(ck) => ck.candidates.clone(),
        None => {
            // ---- CREATE_SKETCH: local sketches pushed to the PS. ---------
            // Budget the rank error for the PS-side balanced merge of w
            // sketches.
            let worker_eps = config.sketch_eps / ((w as f64).log2() + 2.0).max(2.0);
            let locals = timer.phase(Phase::CreateSketch, &mut workers, |wk| {
                build_local_sketches(&shards[wk.shard_id], num_features, worker_eps)
            });
            let mut sketch_bytes = 0usize;
            for (wi, mut local) in locals.into_iter().enumerate() {
                set_worker(Some(wi as u32));
                sketch_bytes += local.iter_mut().map(|s| s.wire_bytes()).sum::<usize>();
                ps.push_sketches(local);
            }
            set_worker(None);
            if w > 1 {
                charge(
                    Phase::CreateSketch,
                    cost.t_ps_exchange_p(sketch_bytes / w.max(1), w, ps_config.num_servers),
                );
            }

            // ---- PULL_SKETCH: merged sketches -> candidates per feature. -
            let mut merged = ps.pull_sketches();
            if w > 1 {
                let merged_bytes: usize = merged.iter_mut().map(|s| s.wire_bytes()).sum();
                // All workers pull in parallel over their own links.
                charge(
                    Phase::PullSketch,
                    SimTime(cost.alpha + merged_bytes as f64 * cost.beta),
                );
            }
            merged
                .iter_mut()
                .map(|s| propose_candidates(s, config.num_candidates))
                .collect()
        }
    };

    let mut trees: Vec<Tree> = match warm {
        Some(model) => model.trees().to_vec(),
        None => Vec::with_capacity(config.num_trees),
    };
    // Early-stopping truncation keeps `init_trees` plus whole rounds. A
    // resumed run's trees all belong to the run itself, so the cursor stays
    // at zero there (only an explicit warm start offsets it).
    let init_trees = match init {
        Some(model) => model.num_trees(),
        None => 0,
    };
    let mut loss_curve = match &resume_ck {
        Some(ck) => ck.loss_curve.clone(),
        None => Vec::with_capacity(config.num_trees),
    };
    let mut eval_curve = match &resume_ck {
        Some(ck) => ck.eval_curve.clone(),
        None => Vec::new(),
    };
    let mut eval_preds: Vec<f32> = match &eval {
        Some(ev) => {
            if ev.dataset.num_features() != num_features {
                return Err(invalid(
                    "eval set dimensionality does not match training data",
                ));
            }
            match warm {
                Some(model) => {
                    let mut preds = Vec::with_capacity(ev.dataset.num_rows() * k);
                    for (row, _) in ev.dataset.iter_rows() {
                        preds.extend(model.predict_scores(&row));
                    }
                    preds
                }
                None => vec![0.0; ev.dataset.num_rows() * k],
            }
        }
        None => Vec::new(),
    };
    let mut best_eval_loss = match &resume_ck {
        Some(ck) => ck.best_eval_loss,
        None => f64::INFINITY,
    };
    let mut best_iteration: Option<usize> = match &resume_ck {
        Some(ck) => ck.best_iteration,
        None => None,
    };

    let fingerprint = fingerprint_for(config, shards, membership_digest);
    for round in start_round..config.num_trees {
        // ---- Scripted faults that fire at round boundaries. ---------------
        if let Some(session) = &fault_session {
            // The crash fires only on a fresh (non-resumed) run: the resumed
            // run is the recovery from exactly this crash.
            if resumed_from.is_none() && session.plan().crash_round == Some(round) {
                session.on_crash();
                ps.recorder()
                    .fault_event(Phase::NewTree, "crash", SimTime::ZERO, 0, 1);
                let checkpoint = match checkpoint_opts {
                    Some(opts) => {
                        // Force a crash-time checkpoint regardless of the
                        // cadence, so recovery loses no completed round.
                        let ck = snapshot_checkpoint(
                            &fingerprint,
                            round,
                            &trees,
                            config,
                            num_features,
                            &workers,
                            ps.comm_ledger(),
                            &candidates,
                            &loss_curve,
                            &rounds,
                            &eval_curve,
                            best_eval_loss,
                            best_iteration,
                            session.membership_snapshot(),
                        );
                        Some(ck.save_to_dir(&opts.dir)?)
                    }
                    None => None,
                };
                return Err(TrainError::Crashed { round, checkpoint });
            }
            // Scripted membership events for this round: joins first, then
            // graceful leaves (the same order `replay_membership_to` uses).
            // Each event bumps the epoch; the PS is retagged so any late
            // retry from the old placement is rejected, not merged.
            if membership_on {
                for spec in session.plan().joins.iter().filter(|j| j.round == round) {
                    let moves = session.apply_join(spec.worker).map_err(invalid)?;
                    ps.recorder()
                        .membership_event(Phase::NewTree, "join", SimTime::ZERO, 0, 1);
                    charge_moves(&moves, true);
                    ps.set_epoch(session.membership_epoch());
                }
                for spec in session.plan().leaves.iter().filter(|l| l.round == round) {
                    let moves = session.apply_leave(spec.worker).map_err(invalid)?;
                    ps.recorder()
                        .membership_event(Phase::NewTree, "leave", SimTime::ZERO, 0, 1);
                    charge_moves(&moves, matches!(spec.policy, LeavePolicy::Handoff));
                    ps.set_epoch(session.membership_epoch());
                }
            }
            for spec in &session.plan().losses {
                if spec.round == round && !session.is_lost(spec.worker) {
                    match spec.policy {
                        LossPolicy::Abort => {
                            return Err(TrainError::WorkerLost {
                                worker: spec.worker,
                                round,
                            })
                        }
                        LossPolicy::Redistribute => {
                            // The lost shard is re-read by the survivors; the
                            // logical computation (and so the model) is
                            // unchanged, but every communication phase
                            // dilates — see `FaultSession::dilation`.
                            session.mark_lost(spec.worker);
                            ps.recorder().fault_event(
                                Phase::NewTree,
                                "worker_lost",
                                SimTime::ZERO,
                                0,
                                1,
                            );
                            // Under the elastic overlay a dead machine also
                            // leaves the membership: its stripes cold
                            // re-shard onto the survivors (no handoff — the
                            // machine is gone).
                            if membership_on {
                                let moves = session.apply_leave(spec.worker).map_err(invalid)?;
                                ps.recorder().membership_event(
                                    Phase::NewTree,
                                    "leave",
                                    SimTime::ZERO,
                                    0,
                                    1,
                                );
                                charge_moves(&moves, false);
                                ps.set_epoch(session.membership_epoch());
                            }
                        }
                    }
                }
            }
        }
        timer.begin_round(round);
        let mut record = RoundRecord::new(round);
        // ---- Round gradients for every class (softmax computes each
        // instance's probability vector once per round). ----------------------
        timer.phase(Phase::NewTree, &mut workers, |wk| {
            let shard = &shards[wk.shard_id];
            match scalar_loss {
                Some(loss) => {
                    for i in 0..shard.num_rows() {
                        wk.grads_all[i] = loss.grad(wk.preds[i], shard.label(i));
                    }
                }
                None => {
                    for i in 0..shard.num_rows() {
                        softmax_grads(
                            &wk.preds[i * k..(i + 1) * k],
                            shard.label(i) as usize,
                            &mut wk.grads_all[i * k..(i + 1) * k],
                        );
                    }
                }
            }
        });

        for class in 0..k {
            let t = round * k + class;
            // ---- NEW_TREE ------------------------------------------------------
            let sampled = FeatureMeta::sample_features(
                num_features,
                config.feature_sample_ratio,
                config.seed,
                t,
            );
            ps.publish_sampled(sampled.clone());
            let meta = FeatureMeta::new(ps.pull_sampled(), &candidates);
            ps.init_tree(meta.layout().clone());
            let mut tree = Tree::new(config.max_depth);
            let capacity = tree.capacity();

            let subsample = config.instance_sample_ratio < 1.0;
            timer.phase(Phase::NewTree, &mut workers, |wk| {
                let shard = &shards[wk.shard_id];
                for i in 0..shard.num_rows() {
                    wk.grads[i] = wk.grads_all[i * k + class];
                }
                if config.opts.pre_binning || config.opts.fused_layer || config.opts.quantized_hist
                {
                    // With sigma = 1 the sampled set (and so the binning) is the
                    // same for every tree; rebuild only when sampling changes it.
                    // The fused layer kernel runs over the binned CSR, so
                    // `fused_layer` implies the binned representation — as does
                    // `quantized_hist`, whose pair view derives from it.
                    if wk.binned.is_none() || config.feature_sample_ratio < 1.0 {
                        wk.binned = Some(crate::binned::BinnedShard::build(shard, &meta));
                        wk.qbinned = None;
                    }
                } else {
                    wk.binned = None;
                    wk.qbinned = None;
                }
                if config.opts.quantized_hist {
                    if wk.qbinned.is_none() {
                        wk.qbinned = Some(crate::hist_build::QuantBinned::build(
                            wk.binned
                                .as_ref()
                                .expect("quantized_hist builds the binned shard above"),
                            &meta,
                        ));
                    }
                    // Re-quantize this tree's gradients: the codes are fixed for
                    // the whole tree, so one deterministic rounding pass here
                    // serves every layer. Bits are demoted per shard so a
                    // 32-bit accumulator lane can never wrap (DESIGN.md §15).
                    let bits = crate::hist_build::effective_quant_bits(
                        config.quant_hist_bits,
                        shard.num_rows(),
                    );
                    wk.qgrads = Some(crate::hist_build::QuantizedGrads::quantize(&wk.grads, bits));
                } else {
                    wk.qgrads = None;
                }
                if subsample {
                    // Stochastic gradient boosting: each tree sees a Bernoulli
                    // subsample of the rows; unsampled rows still receive the
                    // tree's predictions afterwards.
                    let mask: Vec<bool> = (0..shard.num_rows())
                        .map(|_| wk.rng.random::<f64>() < config.instance_sample_ratio)
                        .collect();
                    let sampled: Vec<u32> = (0..shard.num_rows() as u32)
                        .filter(|&i| mask[i as usize])
                        .collect();
                    wk.index = NodeIndex::from_instances(sampled, capacity);
                    wk.sample_mask = Some(mask);
                } else {
                    wk.index = NodeIndex::new(shard.num_rows(), capacity);
                    wk.sample_mask = None;
                }
            });

            let mut active: Vec<u32> = vec![0];
            let row_len = meta.layout().row_len();
            let scheduler = if config.opts.task_scheduler {
                RoundRobinScheduler::new(w)
            } else {
                RoundRobinScheduler::single_agent(w)
            };

            // Sibling-subtraction bookkeeping: `(parent, small, big)` triples for
            // the current layer (extension, see `Optimizations::hist_subtraction`).
            let mut pairs: Vec<(u32, u32, u32)> = Vec::new();

            for depth in 0..config.max_depth {
                if active.is_empty() {
                    break;
                }

                // With subtraction on, only the smaller child of each pair is
                // built; its sibling is derived on the servers afterwards.
                let use_subtraction = config.opts.hist_subtraction && !pairs.is_empty();
                let build_nodes: Vec<u32> = if use_subtraction {
                    pairs.iter().map(|&(_, small, _)| small).collect()
                } else {
                    active.clone()
                };

                // ---- BUILD_HISTOGRAM -------------------------------------------
                // Fused layer kernel: one pass over the binned CSR builds every
                // build node at once, unless the per-thread blocks would blow
                // the memory budget — then fall back to per-node builds (still
                // on the binned shard, which `fused_layer` guarantees exists).
                // The quantized kernel is exempt from the budget: its node
                // tiling caps each stripe's working set at
                // `fused::QUANT_TILE_BUDGET_BYTES` regardless of layer width
                // (and the fallback would be bit-identical anyway — integer
                // accumulation makes fused ≡ per-node).
                let use_fused = config.opts.fused_layer
                    && (config.opts.quantized_hist
                        || build_nodes
                            .len()
                            .saturating_mul(row_len)
                            .saturating_mul(4)
                            .saturating_mul(config.num_threads.max(1))
                            <= config.fused_block_budget);
                let local_rows: Vec<Vec<(u32, Vec<f32>, u64)>> =
                    timer.phase(Phase::BuildHistogram, &mut workers, |wk| {
                        let shard = &shards[wk.shard_id];
                        if use_fused {
                            let binned = wk
                                .binned
                                .as_ref()
                                .expect("fused_layer builds the binned shard in NEW_TREE");
                            let positions = if config.opts.node_index {
                                crate::fused::positions_from_index(
                                    &wk.index,
                                    &build_nodes,
                                    shard.num_rows(),
                                )
                            } else {
                                crate::fused::positions_from_scan(
                                    shard,
                                    &tree,
                                    &build_nodes,
                                    wk.sample_mask.as_deref(),
                                )
                            };
                            let block = if config.opts.quantized_hist {
                                let (block, _stats) = crate::fused::build_layer_quantized(
                                    binned,
                                    wk.qbinned
                                        .as_ref()
                                        .expect("quantized_hist builds the pair view in NEW_TREE"),
                                    &positions,
                                    wk.qgrads
                                        .as_ref()
                                        .expect("quantized_hist quantizes grads in NEW_TREE"),
                                    &meta,
                                    config.batch_size,
                                    config.num_threads,
                                );
                                block
                            } else {
                                crate::fused::build_layer(
                                    binned,
                                    &positions,
                                    &wk.grads,
                                    &meta,
                                    config.batch_size,
                                    config.num_threads,
                                )
                            };
                            return build_nodes
                                .iter()
                                .enumerate()
                                .map(|(slot, &node)| {
                                    let row = block[slot * row_len..(slot + 1) * row_len].to_vec();
                                    (node, row, positions.counts[slot])
                                })
                                .collect();
                        }
                        build_nodes
                            .iter()
                            .map(|&node| {
                                let owned;
                                let instances: &[u32] = if config.opts.node_index {
                                    wk.index.instances(node)
                                } else {
                                    owned = scan_instances(
                                        shard,
                                        &tree,
                                        node,
                                        wk.sample_mask.as_deref(),
                                    );
                                    &owned
                                };
                                let count = instances.len() as u64;
                                let row = if config.opts.quantized_hist {
                                    let binned = wk
                                        .binned
                                        .as_ref()
                                        .expect("quantized_hist builds the binned shard");
                                    let qg = wk
                                        .qgrads
                                        .as_ref()
                                        .expect("quantized_hist quantizes grads in NEW_TREE");
                                    // Narrow/wide is chosen per node from its own
                                    // row count; either mode decodes the same
                                    // exact integer sums, so the choice can never
                                    // change the output (pinned by tests).
                                    let mode =
                                        crate::hist_build::acc_mode_for(count, qg.max_code());
                                    crate::hist_build::build_quantized(
                                        binned,
                                        wk.qbinned.as_ref().expect("pair view built in NEW_TREE"),
                                        instances,
                                        qg,
                                        &meta,
                                        mode,
                                    )
                                } else if let Some(binned) = &wk.binned {
                                    if config.opts.parallel_batch {
                                        binned.build_row_batched(
                                            instances,
                                            &wk.grads,
                                            &meta,
                                            config.batch_size,
                                            config.num_threads,
                                        )
                                    } else {
                                        let mut out = crate::hist_build::new_row(&meta);
                                        binned.build_into(instances, &wk.grads, &mut out);
                                        out
                                    }
                                } else if config.opts.parallel_batch {
                                    let bc = BatchConfig {
                                        batch_size: config.batch_size,
                                        threads: config.num_threads,
                                        sparse: config.opts.sparse_hist,
                                    };
                                    build_row_batched(shard, instances, &wk.grads, &meta, &bc)
                                } else {
                                    build_row(
                                        shard,
                                        instances,
                                        &wk.grads,
                                        &meta,
                                        config.opts.sparse_hist,
                                    )
                                };
                                (node, row, count)
                            })
                            .collect()
                    });

                // ---- FIND_SPLIT: push local histograms. -------------------------
                let mut pushed_bytes_per_worker = 0usize;
                // Sparse wire: the t_ps_exchange charge uses the *true*
                // per-worker frame bytes of the layer (max across workers —
                // they push concurrently), not the dense row size.
                let mut sparse_layer_bytes_max = 0u64;
                let mut node_counts = vec![0u64; build_nodes.len()];
                for (wk, rows) in workers.iter_mut().zip(local_rows) {
                    set_worker(Some(wk.shard_id as u32));
                    let mut worker_frame_bytes = 0u64;
                    for (pos, (node, row, count)) in rows.into_iter().enumerate() {
                        node_counts[pos] += count;
                        record.hist_bytes_raw += 4 * row.len() as u64;
                        if config.opts.sparse_wire {
                            // The worker's stripe id keys the server-side
                            // block staging (ascending-stripe fold).
                            let stripe = wk.shard_id as u32;
                            let stats = if config.opts.low_precision {
                                let q = quantize_row(
                                    &row,
                                    meta.layout(),
                                    config.compress_bits,
                                    &mut wk.rng,
                                );
                                record.max_quant_scale = record.max_quant_scale.max(q.max_scale());
                                ps.push_histogram_quantized_sparse(stripe, node, &q)
                            } else {
                                ps.push_histogram_sparse(stripe, node, &row)
                            };
                            worker_frame_bytes += stats.total_bytes();
                            record.hist_bytes_wire += stats.total_bytes();
                            record
                                .sparse_frames
                                .get_or_insert_with(Default::default)
                                .merge(&stats);
                        } else if config.opts.low_precision {
                            let q = quantize_row(
                                &row,
                                meta.layout(),
                                config.compress_bits,
                                &mut wk.rng,
                            );
                            pushed_bytes_per_worker = pushed_bytes_per_worker.max(q.wire_bytes());
                            record.hist_bytes_wire += q.wire_bytes() as u64;
                            record.max_quant_scale = record.max_quant_scale.max(q.max_scale());
                            ps.push_histogram_quantized(node, &q);
                        } else {
                            pushed_bytes_per_worker = pushed_bytes_per_worker.max(4 * row.len());
                            record.hist_bytes_wire += 4 * row.len() as u64;
                            ps.push_histogram(node, &row);
                        }
                    }
                    sparse_layer_bytes_max = sparse_layer_bytes_max.max(worker_frame_bytes);
                }
                set_worker(None);
                for (pos, &node) in build_nodes.iter().enumerate() {
                    record.node_instances.push(NodeInstances {
                        node,
                        instances: node_counts[pos],
                    });
                }
                if config.opts.quantized_hist {
                    // Telemetry only — every field is a pure function of
                    // (config, shard sizes, layer width), so the record is
                    // identical across thread counts and batch sizes.
                    let bits = shards
                        .iter()
                        .map(|s| {
                            crate::hist_build::effective_quant_bits(
                                config.quant_hist_bits,
                                s.num_rows(),
                            )
                        })
                        .min()
                        .unwrap_or(config.quant_hist_bits);
                    let tile =
                        crate::fused::quant_tile_nodes(row_len / 2, build_nodes.len()) as u64;
                    let q = record
                        .quant_hist
                        .get_or_insert(crate::report::QuantHistRecord {
                            bits,
                            tile_nodes: 0,
                        });
                    q.tile_nodes = q.tile_nodes.max(tile);
                }
                if w > 1 {
                    let layer_push_bytes = if config.opts.sparse_wire {
                        sparse_layer_bytes_max as usize
                    } else {
                        pushed_bytes_per_worker * build_nodes.len()
                    };
                    charge(
                        Phase::BuildHistogram,
                        cost.t_ps_exchange_p(layer_push_bytes, w, ps_config.num_servers),
                    );
                }
                if use_subtraction {
                    // Server-local: parent − built child = sibling; no traffic.
                    for &(parent, small, big) in &pairs {
                        ps.derive_sibling(parent, small, big);
                        ps.clear_node(parent);
                    }
                }

                // ---- FIND_SPLIT: scheduled workers pull splits & publish. -------
                for (pos, &node) in active.iter().enumerate() {
                    set_worker(Some(scheduler.worker_for(pos) as u32));
                    let result: PullSplitResult = if config.opts.two_phase_split {
                        ps.pull_split(node, &params)
                    } else {
                        let row = ps.pull_histogram(node);
                        best_split_in_range(
                            &row,
                            meta.layout(),
                            0..meta.num_sampled(),
                            None,
                            &params,
                        )
                    };
                    let split = result.best.map(|s| FinalSplit {
                        feature: meta.global_id(s.feature as usize),
                        threshold: meta.threshold(s.feature as usize, s.bucket as usize),
                        gain: s.gain,
                        left_g: s.left_g,
                        left_h: s.left_h,
                        default_left: s.default_left,
                    });
                    ps.publish_decision(SplitDecision {
                        node,
                        split,
                        total_g: result.total_g,
                        total_h: result.total_h,
                    });
                }
                set_worker(None);
                if w > 1 {
                    let per_node_pull = if config.opts.two_phase_split {
                        // p O(1)-sized replies fetched in one batch.
                        SimTime(cost.alpha + (p * 48) as f64 * cost.beta)
                    } else {
                        // The whole merged row crosses the wire and is scanned.
                        SimTime(
                            cost.alpha * p as f64 + (4 * row_len) as f64 * (cost.beta + cost.gamma),
                        )
                    };
                    let pulls = scheduler.max_load(active.len()) as f64;
                    charge(Phase::FindSplit, SimTime(pulls * per_node_pull.seconds()));
                    // Publishing decisions: tiny messages, serialized per worker.
                    charge(
                        Phase::FindSplit,
                        SimTime(pulls * (cost.alpha + 64.0 * cost.beta)),
                    );
                }

                // ---- SPLIT_TREE --------------------------------------------------
                let decisions = ps.pull_decisions(&active);
                if w > 1 {
                    charge(
                        Phase::SplitTree,
                        SimTime(cost.alpha + (64 * active.len()) as f64 * cost.beta),
                    );
                }
                let mut next_active = Vec::new();
                let mut next_pairs = Vec::new();
                for decision in &decisions {
                    let node = decision.node;
                    // Parents feeding next layer's sibling subtraction must keep
                    // their merged rows on the servers until the derive step.
                    let mut keep_row = false;
                    match decision.split {
                        Some(split) => {
                            record.split_gains.push(split.gain as f32);
                            tree.set_internal_full(
                                node,
                                split.feature,
                                split.threshold,
                                split.gain as f32,
                                split.default_left,
                            );
                            let (lc, rc) = (Tree::left_child(node), Tree::right_child(node));
                            if config.opts.node_index {
                                timer.phase(Phase::SplitTree, &mut workers, |wk| {
                                    let shard = &shards[wk.shard_id];
                                    wk.index.split(node, lc, rc, |i| {
                                        split.goes_left(shard.row(i as usize).get(split.feature))
                                    });
                                });
                            }
                            if depth + 1 < config.max_depth {
                                next_active.push(lc);
                                next_active.push(rc);
                                if config.opts.hist_subtraction {
                                    let right_h = decision.total_h - split.left_h;
                                    let (small, big) = if split.left_h <= right_h {
                                        (lc, rc)
                                    } else {
                                        (rc, lc)
                                    };
                                    next_pairs.push((node, small, big));
                                    keep_row = true;
                                }
                            } else {
                                // Children at maximal depth become leaves using
                                // the split's child statistics.
                                let (gl, hl) = (split.left_g, split.left_h);
                                let (gr, hr) = (decision.total_g - gl, decision.total_h - hl);
                                tree.set_leaf(lc, params.leaf_weight(gl, hl) as f32);
                                tree.set_leaf(rc, params.leaf_weight(gr, hr) as f32);
                            }
                        }
                        None => {
                            tree.set_leaf(
                                node,
                                params.leaf_weight(decision.total_g, decision.total_h) as f32,
                            );
                        }
                    }
                    if !keep_row {
                        ps.clear_node(node);
                    }
                }
                ps.clear_decisions();
                active = next_active;
                pairs = next_pairs;
            }

            debug_assert!(
                tree.check_consistency().is_ok(),
                "tree inconsistent after build"
            );

            // ---- Update this class's score column. -------------------------------
            let eta = config.learning_rate;
            timer.phase(Phase::Finish, &mut workers, |wk| {
                let shard = &shards[wk.shard_id];
                // With row subsampling the index only covers sampled rows, so
                // everything routes through the tree instead.
                if config.opts.node_index && !subsample {
                    // Leaves have contiguous instance ranges in the index.
                    for leaf in 0..tree.capacity() as u32 {
                        if let crate::tree::Node::Leaf { weight } = tree.node(leaf) {
                            for &i in wk.index.instances(leaf) {
                                wk.preds[i as usize * k + class] += eta * weight;
                            }
                        }
                    }
                } else {
                    for i in 0..shard.num_rows() {
                        wk.preds[i * k + class] += eta * tree.predict(&shard.row(i));
                    }
                }
            });
            trees.push(tree);
        } // per-class trees of this round

        // ---- Round training loss. --------------------------------------------
        let eta = config.learning_rate;
        let worker_losses = timer.phase(Phase::Finish, &mut workers, |wk| {
            let shard = &shards[wk.shard_id];
            (0..shard.num_rows())
                .map(|i| match scalar_loss {
                    Some(loss) => loss.loss(wk.preds[i], shard.label(i)),
                    None => softmax_loss(&wk.preds[i * k..(i + 1) * k], shard.label(i) as usize),
                })
                .sum::<f64>()
        });
        let train_loss = worker_losses.iter().sum::<f64>() / total_instances as f64;
        if w > 1 {
            // Loss aggregation: w tiny messages.
            charge(
                Phase::Finish,
                SimTime(cost.alpha + 8.0 * w as f64 * cost.beta),
            );
        }

        let comm_now = ps.comm_stats();
        let elapsed = timer.total_secs() + comm_now.sim_time.seconds();
        loss_curve.push(LossPoint {
            tree: trees.len(),
            train_loss,
            elapsed_secs: elapsed,
        });

        record.trees = trees.len();
        record.train_loss = train_loss;
        record.compute_secs = timer.round_secs(round);
        rounds.push(record);

        // ---- Evaluation & early stopping (per round). -------------------------
        if let Some(ev) = &eval {
            let round_trees = &trees[trees.len() - k..];
            for (i, (row, _)) in ev.dataset.iter_rows().enumerate() {
                for (c, tree) in round_trees.iter().enumerate() {
                    eval_preds[i * k + c] += eta * tree.predict(&row);
                }
            }
            let eval_loss = (0..ev.dataset.num_rows())
                .map(|i| match scalar_loss {
                    Some(loss) => loss.loss(eval_preds[i], ev.dataset.label(i)),
                    None => softmax_loss(
                        &eval_preds[i * k..(i + 1) * k],
                        ev.dataset.label(i) as usize,
                    ),
                })
                .sum::<f64>()
                / ev.dataset.num_rows().max(1) as f64;
            eval_curve.push(LossPoint {
                tree: trees.len(),
                train_loss: eval_loss,
                elapsed_secs: elapsed,
            });
            if eval_loss < best_eval_loss - 1e-12 {
                best_eval_loss = eval_loss;
                best_iteration = Some(round);
            }
            if let (Some(rounds), Some(best)) = (ev.early_stopping_rounds, best_iteration) {
                if round - best >= rounds {
                    trees.truncate(init_trees + (best + 1) * k);
                    break;
                }
            }
        }

        // ---- Rolling checkpoint (atomic tmp + rename). ---------------------
        if let Some(opts) = checkpoint_opts {
            if (round + 1) % opts.every.max(1) == 0 {
                let ck = snapshot_checkpoint(
                    &fingerprint,
                    round + 1,
                    &trees,
                    config,
                    num_features,
                    &workers,
                    ps.comm_ledger(),
                    &candidates,
                    &loss_curve,
                    &rounds,
                    &eval_curve,
                    best_eval_loss,
                    best_iteration,
                    fault_session.as_ref().and_then(|s| s.membership_snapshot()),
                );
                ck.save_to_dir(&opts.dir)?;
            }
        }
    }

    // ---- FINISH -------------------------------------------------------------
    let model = GbdtModel::new(trees, config.learning_rate, config.loss, num_features);
    model.check_consistency()?;
    let ledger = ps.comm_ledger();
    // Every PS interaction in the plan above is phase-tagged; nothing may
    // fall through to the legacy `Other` bucket.
    debug_assert!(
        ledger.phase(Phase::Other).is_empty(),
        "trainer left comm in the legacy Other bucket: {:?}",
        ledger.phase(Phase::Other)
    );
    let breakdown = RunBreakdown {
        compute_secs: timer.total_secs(),
        comm: ledger.total(),
    };
    let mut report = RunReport::assemble_with_metrics(
        w,
        ps_config.num_servers,
        &timer,
        &ledger,
        rounds,
        bus.export_metrics(),
    );
    report.faults = fault_session.as_ref().map(|s| s.summary());
    report.membership = fault_session.as_ref().and_then(|s| s.membership_summary());
    report.resumed_from_round = resumed_from;
    let trace = config.collect_trace.then(|| bus.finish());
    Ok(TrainOutput {
        model,
        breakdown,
        loss_curve,
        eval_curve,
        best_iteration,
        report,
        trace,
    })
}

/// Convenience wrapper: trains on a single machine (one worker, one server,
/// free network) and returns just the model.
pub fn train_single_machine(dataset: &Dataset, config: &GbdtConfig) -> Result<GbdtModel, String> {
    let ps_config = PsConfig {
        num_servers: 1,
        num_partitions: 0,
        cost_model: dimboost_simnet::CostModel::FREE,
    };
    Ok(train_distributed(std::slice::from_ref(dataset), config, ps_config)?.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LossKind, Optimizations};
    use crate::metrics::{classification_error, log_loss, rmse};
    use dimboost_data::partition::{partition_rows, train_test_split};
    use dimboost_data::synthetic::{generate, LabelKind, SparseGenConfig};
    use dimboost_simnet::CostModel;

    fn small_config() -> GbdtConfig {
        GbdtConfig {
            num_trees: 5,
            max_depth: 4,
            num_candidates: 10,
            learning_rate: 0.3,
            num_threads: 2,
            ..GbdtConfig::default()
        }
    }

    fn classification_data() -> (Dataset, Dataset) {
        let ds = generate(&SparseGenConfig::new(3_000, 200, 15, 42));
        train_test_split(&ds, 0.2, 42).unwrap()
    }

    #[test]
    fn single_machine_learns_signal() {
        let (train, test) = classification_data();
        let model = train_single_machine(&train, &small_config()).unwrap();
        assert_eq!(model.num_trees(), 5);
        let probs = model.predict_dataset(&test);
        let err = classification_error(&probs, test.labels());
        // Majority class baseline is ~0.5 on this balanced generator.
        assert!(err < 0.40, "test error {err} did not beat baseline");
    }

    #[test]
    fn training_loss_decreases_monotonically() {
        let (train, _) = classification_data();
        let ps = PsConfig {
            num_servers: 1,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let out = train_distributed(&[train], &small_config(), ps).unwrap();
        let losses: Vec<f64> = out.loss_curve.iter().map(|p| p.train_loss).collect();
        assert_eq!(losses.len(), 5);
        for w in losses.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "loss increased: {losses:?}");
        }
        assert!(
            losses[4] < std::f64::consts::LN_2,
            "final loss {} not below ln 2",
            losses[4]
        );
    }

    #[test]
    fn distributed_matches_single_machine_accuracy() {
        let (train, test) = classification_data();
        let config = small_config();

        let single = train_single_machine(&train, &config).unwrap();
        let err_single = classification_error(&single.predict_dataset(&test), test.labels());

        let shards = partition_rows(&train, 4).unwrap();
        let ps = PsConfig {
            num_servers: 4,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let out = train_distributed(&shards, &config, ps).unwrap();
        let err_dist = classification_error(&out.model.predict_dataset(&test), test.labels());

        assert!(
            (err_single - err_dist).abs() < 0.05,
            "single {err_single} vs distributed {err_dist}"
        );
        // Distributed run actually used the network.
        assert!(out.breakdown.comm.bytes > 0);
        assert!(out.breakdown.comm.sim_time.seconds() > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (train, _) = classification_data();
        let shards = partition_rows(&train, 3).unwrap();
        let config = small_config();
        let ps = PsConfig {
            num_servers: 3,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let a = train_distributed(&shards, &config, ps).unwrap();
        let b = train_distributed(&shards, &config, ps).unwrap();
        assert_eq!(a.model, b.model);
        assert_eq!(a.breakdown.comm.bytes, b.breakdown.comm.bytes);
        // The timing-free run report is bit-identical across reruns.
        assert_eq!(a.report.canonical_json(), b.report.canonical_json());
    }

    #[test]
    fn report_phase_comm_sums_to_aggregate() {
        let (train, _) = classification_data();
        let shards = partition_rows(&train, 3).unwrap();
        let ps = PsConfig {
            num_servers: 3,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let out = train_distributed(&shards, &small_config(), ps).unwrap();
        assert_eq!(out.report.workers, 3);
        assert_eq!(out.report.servers, 3);
        // Per-phase communication entries reproduce the aggregate exactly.
        assert_eq!(
            crate::report::sum_phase_comm(&out.report),
            out.breakdown.comm
        );
        assert_eq!(out.report.comm, out.breakdown.comm);
        // The trainer tags every event — the legacy bucket stays empty.
        assert!(out.report.phases.iter().all(|p| p.phase != Phase::Other));
        // Histogram pushes dominate the traffic (the paper's premise).
        let hist = out
            .report
            .phases
            .iter()
            .find(|p| p.phase == Phase::BuildHistogram)
            .expect("histogram phase present");
        assert!(
            hist.comm.bytes * 2 > out.breakdown.comm.bytes,
            "histogram bytes {} of {}",
            hist.comm.bytes,
            out.breakdown.comm.bytes
        );
        // Compute was measured, with a sane skew.
        for p in &out.report.phases {
            assert!(p.compute_max_secs >= 0.0);
            assert!(p.compute_skew_secs >= 0.0 && p.compute_skew_secs <= p.compute_max_secs);
        }
        assert!(out.report.compute_secs > 0.0);
    }

    #[test]
    fn report_rounds_capture_quantization_and_splits() {
        let (train, _) = classification_data();
        let shards = partition_rows(&train, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };

        let mut lp = small_config();
        lp.opts.low_precision = true;
        lp.compress_bits = 8;
        let out = train_distributed(&shards, &lp, ps).unwrap();
        assert_eq!(out.report.rounds.len(), 5);
        for (i, r) in out.report.rounds.iter().enumerate() {
            assert_eq!(r.round, i);
            assert_eq!(r.trees, i + 1);
            // Quantization compresses the wire format and records its scale.
            assert!(
                r.hist_bytes_wire < r.hist_bytes_raw,
                "round {i}: wire {} !< raw {}",
                r.hist_bytes_wire,
                r.hist_bytes_raw
            );
            assert!(r.max_quant_scale > 0.0);
            assert!(!r.split_gains.is_empty());
            assert!(r.split_gains.iter().all(|g| g.is_finite() && *g >= 0.0));
            // The first histogram of each round is the root over all rows.
            assert_eq!(r.node_instances[0].node, 0);
            assert_eq!(r.node_instances[0].instances, train.num_rows() as u64);
        }
        // Round records agree with the loss curve.
        for (r, pt) in out.report.rounds.iter().zip(&out.loss_curve) {
            assert_eq!(r.train_loss, pt.train_loss);
            assert_eq!(r.trees, pt.tree);
        }

        // Full precision: the wire format is the raw rows, no scales.
        let mut full = small_config();
        full.opts.low_precision = false;
        let out = train_distributed(&shards, &full, ps).unwrap();
        for r in &out.report.rounds {
            assert_eq!(r.hist_bytes_wire, r.hist_bytes_raw);
            assert_eq!(r.max_quant_scale, 0.0);
        }
    }

    #[test]
    fn all_optimizations_off_still_learns() {
        let (train, test) = classification_data();
        let mut config = small_config();
        config.num_trees = 3;
        config.opts = Optimizations::NONE;
        let shards = partition_rows(&train, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let out = train_distributed(&shards, &config, ps).unwrap();
        let err = classification_error(&out.model.predict_dataset(&test), test.labels());
        assert!(err < 0.45, "unoptimized trainer error {err}");
    }

    #[test]
    fn each_optimization_alone_matches_baseline_quality() {
        // Every optimization is a performance change, not a quality change
        // (low precision excepted, which is approximate): models trained
        // with each single toggle must reach similar loss.
        let ds = generate(&SparseGenConfig::new(1_200, 100, 10, 7));
        let shards = partition_rows(&ds, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };

        let mut base_cfg = small_config();
        base_cfg.num_trees = 3;
        base_cfg.opts = Optimizations::NONE;
        let base = train_distributed(&shards, &base_cfg, ps).unwrap();
        let base_loss = base.loss_curve.last().unwrap().train_loss;

        type Toggle = (&'static str, Box<dyn Fn(&mut Optimizations)>);
        let toggles: Vec<Toggle> = vec![
            (
                "sparse_hist",
                Box::new(|o: &mut Optimizations| o.sparse_hist = true),
            ),
            (
                "parallel_batch",
                Box::new(|o: &mut Optimizations| o.parallel_batch = true),
            ),
            (
                "node_index",
                Box::new(|o: &mut Optimizations| o.node_index = true),
            ),
            (
                "task_scheduler",
                Box::new(|o: &mut Optimizations| o.task_scheduler = true),
            ),
            (
                "two_phase_split",
                Box::new(|o: &mut Optimizations| o.two_phase_split = true),
            ),
        ];
        for (name, toggle) in toggles {
            let mut cfg = base_cfg.clone();
            toggle(&mut cfg.opts);
            let out = train_distributed(&shards, &cfg, ps).unwrap();
            let loss = out.loss_curve.last().unwrap().train_loss;
            assert!(
                (loss - base_loss).abs() < 1e-3,
                "{name}: loss {loss} deviates from baseline {base_loss}"
            );
        }
    }

    #[test]
    fn low_precision_close_to_full_precision() {
        let ds = generate(&SparseGenConfig::new(2_000, 150, 12, 21));
        let (train, test) = train_test_split(&ds, 0.2, 21).unwrap();
        let shards = partition_rows(&train, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };

        let mut full_cfg = small_config();
        full_cfg.opts.low_precision = false;
        let full = train_distributed(&shards, &full_cfg, ps).unwrap();

        let mut lp_cfg = small_config();
        lp_cfg.opts.low_precision = true;
        lp_cfg.compress_bits = 8;
        let lp = train_distributed(&shards, &lp_cfg, ps).unwrap();

        let err_full = classification_error(&full.model.predict_dataset(&test), test.labels());
        let err_lp = classification_error(&lp.model.predict_dataset(&test), test.labels());
        // Mirrors the paper's 0.2509 vs 0.2514 observation: tiny gap.
        assert!(
            (err_full - err_lp).abs() < 0.05,
            "full {err_full} vs lp {err_lp}"
        );
        // And the compressed run moved substantially fewer bytes. (The
        // per-feature scale/zero metadata plus non-histogram traffic —
        // sketches, split replies — dilute the ideal 32/d ratio.)
        assert!(
            lp.breakdown.comm.bytes * 3 < full.breakdown.comm.bytes * 2,
            "lp {} vs full {}",
            lp.breakdown.comm.bytes,
            full.breakdown.comm.bytes
        );
    }

    #[test]
    fn hist_subtraction_matches_direct_construction() {
        // The subtraction extension must not change the learned model when
        // pushes are exact (full precision): parent − child is exact modulo
        // f32 cancellation, which the split scan tolerates.
        let ds = generate(&SparseGenConfig::new(2_000, 150, 12, 19));
        let (train, test) = train_test_split(&ds, 0.2, 19).unwrap();
        let shards = partition_rows(&train, 3).unwrap();
        let ps = PsConfig {
            num_servers: 3,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };

        let mut plain_cfg = small_config();
        plain_cfg.opts.low_precision = false;
        let plain = train_distributed(&shards, &plain_cfg, ps).unwrap();

        let mut sub_cfg = plain_cfg.clone();
        sub_cfg.opts.hist_subtraction = true;
        let sub = train_distributed(&shards, &sub_cfg, ps).unwrap();

        let err_plain = classification_error(&plain.model.predict_dataset(&test), test.labels());
        let err_sub = classification_error(&sub.model.predict_dataset(&test), test.labels());
        assert!(
            (err_plain - err_sub).abs() < 0.03,
            "plain {err_plain} vs subtraction {err_sub}"
        );
        // Subtraction pushes roughly half the histogram bytes per deep layer.
        assert!(
            sub.breakdown.comm.bytes < plain.breakdown.comm.bytes,
            "subtraction {} should move fewer bytes than {}",
            sub.breakdown.comm.bytes,
            plain.breakdown.comm.bytes
        );
    }

    #[test]
    fn hist_subtraction_with_low_precision_still_learns() {
        let ds = generate(&SparseGenConfig::new(1_500, 100, 10, 23));
        let shards = partition_rows(&ds, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let mut cfg = small_config();
        cfg.opts.hist_subtraction = true;
        cfg.opts.low_precision = true;
        let out = train_distributed(&shards, &cfg, ps).unwrap();
        let losses: Vec<f64> = out.loss_curve.iter().map(|p| p.train_loss).collect();
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss did not improve: {losses:?}"
        );
    }

    #[test]
    fn regression_with_square_loss() {
        let cfg_data =
            SparseGenConfig::new(2_000, 100, 10, 33).with_label_kind(LabelKind::Regression);
        let ds = generate(&cfg_data);
        let (train, test) = train_test_split(&ds, 0.2, 33).unwrap();
        let mut config = small_config();
        config.loss = LossKind::Square;
        config.num_trees = 10;
        let model = train_single_machine(&train, &config).unwrap();
        let preds = model.predict_dataset(&test);
        let model_rmse = rmse(&preds, test.labels());
        // Baseline: predicting the mean (≈0 for the standardized generator).
        let base_rmse = rmse(&vec![0.0; test.num_rows()], test.labels());
        assert!(
            model_rmse < 0.9 * base_rmse,
            "rmse {model_rmse} vs baseline {base_rmse}"
        );
    }

    #[test]
    fn feature_sampling_trains_and_uses_subset() {
        let ds = generate(&SparseGenConfig::new(1_000, 100, 10, 3));
        let mut config = small_config();
        config.feature_sample_ratio = 0.5;
        config.num_trees = 3;
        let model = train_single_machine(&ds, &config).unwrap();
        assert_eq!(model.num_trees(), 3);
        assert!(model.check_consistency().is_ok());
        let probs = model.predict_dataset(&ds);
        assert!(log_loss(&probs, ds.labels()).is_finite());
    }

    #[test]
    fn row_subsampling_learns_and_stays_deterministic() {
        let (train, test) = classification_data();
        let mut config = small_config();
        config.instance_sample_ratio = 0.5;
        config.num_trees = 8;
        let shards = partition_rows(&train, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let a = train_distributed(&shards, &config, ps).unwrap();
        let b = train_distributed(&shards, &config, ps).unwrap();
        assert_eq!(a.model, b.model);
        let err = classification_error(&a.model.predict_dataset(&test), test.labels());
        assert!(err < 0.42, "subsampled error {err}");
        // Subsampling must change the model vs full rows.
        let mut full = config.clone();
        full.instance_sample_ratio = 1.0;
        let f = train_distributed(&shards, &full, ps).unwrap();
        assert_ne!(a.model, f.model);
    }

    #[test]
    fn eval_curve_and_early_stopping() {
        use crate::trainer::EvalOptions;
        let (train, test) = classification_data();
        let shards = partition_rows(&train, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let mut config = small_config();
        config.num_trees = 10;

        // Plain eval: curve recorded, same length as trees.
        let ev = EvalOptions {
            dataset: &test,
            early_stopping_rounds: None,
        };
        let out = train_distributed_with_eval(&shards, &config, ps, Some(ev)).unwrap();
        assert_eq!(out.eval_curve.len(), 10);
        assert!(out.best_iteration.is_some());
        assert!(out.eval_curve.iter().all(|p| p.train_loss.is_finite()));

        // Aggressive early stopping on an anti-learnable eval set: labels
        // flipped, so eval loss *rises* as training progresses and stopping
        // fires almost immediately.
        let flipped_labels: Vec<f32> = test.labels().iter().map(|&y| 1.0 - y).collect();
        let mut flipped = dimboost_data::DatasetBuilder::new(test.num_features());
        for (i, (row, _)) in test.iter_rows().enumerate() {
            flipped
                .push_raw(row.indices(), row.values(), flipped_labels[i])
                .unwrap();
        }
        let flipped = flipped.finish().unwrap();
        let ev = EvalOptions {
            dataset: &flipped,
            early_stopping_rounds: Some(2),
        };
        let out = train_distributed_with_eval(&shards, &config, ps, Some(ev)).unwrap();
        assert!(
            out.model.num_trees() < 10,
            "early stopping should truncate: kept {}",
            out.model.num_trees()
        );
        assert_eq!(out.model.num_trees(), out.best_iteration.unwrap() + 1);
    }

    #[test]
    fn eval_set_dimension_mismatch_rejected() {
        use crate::trainer::EvalOptions;
        let (train, _) = classification_data();
        let other = generate(&SparseGenConfig::new(50, 7, 2, 1));
        let ev = EvalOptions {
            dataset: &other,
            early_stopping_rounds: None,
        };
        let ps = PsConfig {
            num_servers: 1,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        assert!(train_distributed_with_eval(&[train], &small_config(), ps, Some(ev)).is_err());
    }

    #[test]
    fn l1_alpha_shrinks_leaf_weights() {
        let (train, _) = classification_data();
        let mut plain = small_config();
        plain.opts.low_precision = false;
        let mut l1 = plain.clone();
        l1.alpha = 5.0;
        let a = train_single_machine(&train, &plain).unwrap();
        let b = train_single_machine(&train, &l1).unwrap();
        let sum_abs = |m: &crate::GbdtModel| -> f64 {
            m.trees()
                .iter()
                .flat_map(|t| t.nodes())
                .filter_map(|n| match n {
                    crate::tree::Node::Leaf { weight } => Some(weight.abs() as f64),
                    _ => None,
                })
                .sum()
        };
        assert!(
            sum_abs(&b) < sum_abs(&a),
            "alpha must shrink total |leaf weight|: {} vs {}",
            sum_abs(&b),
            sum_abs(&a)
        );
        // Extreme alpha zeroes everything.
        let mut huge = plain.clone();
        huge.alpha = 1e12;
        let c = train_single_machine(&train, &huge).unwrap();
        assert_eq!(sum_abs(&c), 0.0);
    }

    #[test]
    fn extreme_regularization_yields_single_leaf() {
        // A huge gamma makes every split's regularized gain negative, so
        // each tree collapses to its root leaf; with balanced labels the
        // root leaf weight is ~0 and predictions stay ~0.5.
        let (train, _) = classification_data();
        let mut config = small_config();
        config.gamma = 1e12;
        let model = train_single_machine(&train, &config).unwrap();
        for tree in model.trees() {
            assert_eq!(tree.num_internal(), 0, "gamma must suppress all splits");
            assert_eq!(tree.num_leaves(), 1);
        }
        let probs = model.predict_dataset(&train);
        assert!(probs.iter().all(|&p| (p - 0.5).abs() < 0.2));
    }

    #[test]
    fn huge_min_child_weight_also_suppresses_splits() {
        let (train, _) = classification_data();
        let mut config = small_config();
        config.min_child_weight = 1e12;
        let model = train_single_machine(&train, &config).unwrap();
        assert!(model.trees().iter().all(|t| t.num_internal() == 0));
    }

    #[test]
    fn depth_one_trees_are_stumps() {
        let (train, _) = classification_data();
        let mut config = small_config();
        config.max_depth = 1;
        let model = train_single_machine(&train, &config).unwrap();
        for tree in model.trees() {
            assert!(tree.num_internal() <= 1);
            assert!(tree.num_leaves() <= 2);
            assert!(tree.check_consistency().is_ok());
        }
    }

    #[test]
    fn single_candidate_still_trains() {
        let (train, _) = classification_data();
        let mut config = small_config();
        config.num_candidates = 1;
        let out = train_single_machine(&train, &config);
        assert!(out.is_ok());
    }

    #[test]
    fn warm_start_continues_exactly() {
        // With deterministic settings (no quantization, no subsampling,
        // sigma = 1), training T1 rounds and continuing with T2 must equal
        // one T1+T2 run bit-for-bit.
        let (train, _) = classification_data();
        let shards = partition_rows(&train, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let mut cfg = small_config();
        cfg.opts.low_precision = false;

        let mut long_cfg = cfg.clone();
        long_cfg.num_trees = 6;
        let long = train_distributed(&shards, &long_cfg, ps).unwrap();

        let mut first_cfg = cfg.clone();
        first_cfg.num_trees = 4;
        let first = train_distributed(&shards, &first_cfg, ps).unwrap();
        let mut cont_cfg = cfg.clone();
        cont_cfg.num_trees = 2;
        let cont = train_distributed_continue(&first.model, &shards, &cont_cfg, ps, None).unwrap();

        assert_eq!(cont.model.num_trees(), 6);
        assert_eq!(
            cont.model, long.model,
            "continuation must match the long run"
        );
        // Loss after the continuation matches the long run's final loss.
        let a = cont.loss_curve.last().unwrap().train_loss;
        let b = long.loss_curve.last().unwrap().train_loss;
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn warm_start_validates_compatibility() {
        let (train, _) = classification_data();
        let cfg = small_config();
        let ps = PsConfig {
            num_servers: 1,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let base = train_distributed(std::slice::from_ref(&train), &cfg, ps).unwrap();

        let mut bad_lr = cfg.clone();
        bad_lr.learning_rate = 0.999;
        assert!(train_distributed_continue(
            &base.model,
            std::slice::from_ref(&train),
            &bad_lr,
            ps,
            None
        )
        .unwrap_err()
        .contains("learning-rate"));

        let mut bad_loss = cfg.clone();
        bad_loss.loss = LossKind::Square;
        assert!(train_distributed_continue(
            &base.model,
            std::slice::from_ref(&train),
            &bad_loss,
            ps,
            None
        )
        .unwrap_err()
        .contains("loss"));

        let other = generate(&SparseGenConfig::new(50, 7, 2, 1));
        assert!(
            train_distributed_continue(&base.model, &[other], &cfg, ps, None)
                .unwrap_err()
                .contains("dimensionality")
        );
    }

    #[test]
    fn pre_binning_produces_identical_models() {
        let (train, _) = classification_data();
        let shards = partition_rows(&train, 3).unwrap();
        let ps = PsConfig {
            num_servers: 3,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let mut plain = small_config();
        plain.opts.low_precision = false;
        let mut binned = plain.clone();
        binned.opts.pre_binning = true;
        let a = train_distributed(&shards, &plain, ps).unwrap();
        let b = train_distributed(&shards, &binned, ps).unwrap();
        assert_eq!(
            a.model, b.model,
            "pre-binning must be a pure performance change"
        );

        // Also identical under feature sampling (per-tree rebinning path).
        plain.feature_sample_ratio = 0.6;
        let mut binned = plain.clone();
        binned.opts.pre_binning = true;
        let a = train_distributed(&shards, &plain, ps).unwrap();
        let b = train_distributed(&shards, &binned, ps).unwrap();
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn quantized_hist_model_independent_of_path_threads_and_batch() {
        // The quantized accumulator's integer sums are exact and order-free,
        // so the model must be bit-identical across per-node vs fused,
        // any thread count, any batch size — and the timing-free report
        // (incl. the quant_hist telemetry) must match too.
        let (train, _) = classification_data();
        let shards = partition_rows(&train, 3).unwrap();
        let ps = PsConfig {
            num_servers: 3,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let mut base = small_config();
        base.opts.low_precision = false;
        base.opts.quantized_hist = true;
        base.num_threads = 1;
        let reference = train_distributed(&shards, &base, ps).unwrap();
        assert!(reference.report.rounds[0].quant_hist.is_some());

        for (threads, batch, fused, subtraction) in [
            (2usize, 25usize, false, false),
            (4, 10_000, false, false),
            (2, 25, true, false),
            (8, 40, true, false),
            (4, 25, true, true),
        ] {
            let mut cfg = base.clone();
            cfg.num_threads = threads;
            cfg.batch_size = batch;
            cfg.opts.fused_layer = fused;
            cfg.opts.hist_subtraction = subtraction;
            let out = train_distributed(&shards, &cfg, ps).unwrap();
            if subtraction {
                // Subtraction builds different nodes (different telemetry);
                // model equality is a float-tolerance property of the f32
                // derive — not asserted here (covered by tests/fused.rs for
                // the f32 path). Just require training to succeed and stay
                // quantized.
                assert!(out.report.rounds[0].quant_hist.is_some());
                continue;
            }
            assert_eq!(
                out.model, reference.model,
                "threads={threads} batch={batch} fused={fused}"
            );
            assert_eq!(
                out.report.canonical_json(),
                reference.report.canonical_json(),
                "canonical report drifted at threads={threads} batch={batch} fused={fused}"
            );
        }
    }

    #[test]
    fn quantized_hist_composes_with_sparse_wire_and_low_precision() {
        // The dequantized rows feed the existing push paths unchanged, so
        // dense vs sparse-wire stays bit-identical with quantized
        // accumulation, at full and at 8-bit push precision.
        let (train, _) = classification_data();
        let shards = partition_rows(&train, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        for low_precision in [false, true] {
            let mut dense = small_config();
            dense.opts.low_precision = low_precision;
            dense.opts.quantized_hist = true;
            let mut sparse = dense.clone();
            sparse.opts.sparse_wire = true;
            let a = train_distributed(&shards, &dense, ps).unwrap();
            let b = train_distributed(&shards, &sparse, ps).unwrap();
            assert_eq!(
                a.model, b.model,
                "sparse wire must stay bit-identical under quantized_hist \
                 (low_precision={low_precision})"
            );
        }
    }

    #[test]
    fn sparse_wire_produces_identical_models_and_fewer_bytes() {
        let (train, _) = classification_data();
        let shards = partition_rows(&train, 3).unwrap();
        let ps = PsConfig {
            num_servers: 3,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        for low_precision in [false, true] {
            let mut dense = small_config();
            dense.opts.low_precision = low_precision;
            let mut sparse = dense.clone();
            sparse.opts.sparse_wire = true;
            let a = train_distributed(&shards, &dense, ps).unwrap();
            let b = train_distributed(&shards, &sparse, ps).unwrap();
            assert_eq!(
                a.model, b.model,
                "sparse wire must be bit-identical (low_precision={low_precision})"
            );
            // Per-round training telemetry matches except the wire fields.
            for (ra, rb) in a.report.rounds.iter().zip(&b.report.rounds) {
                assert_eq!(ra.train_loss, rb.train_loss);
                assert_eq!(ra.split_gains, rb.split_gains);
                assert_eq!(ra.node_instances, rb.node_instances);
                assert_eq!(ra.hist_bytes_raw, rb.hist_bytes_raw);
                assert!(ra.sparse_frames.is_none());
                let frames = rb.sparse_frames.as_ref().expect("sparse rounds tally");
                assert_eq!(frames.total_bytes(), rb.hist_bytes_wire);
            }
            // The run-level rollup exists only on the sparse run and its
            // bytes beat the dense f32 exchange.
            assert!(a.report.sparsity.is_none());
            let s = b.report.sparsity.as_ref().expect("sparsity section");
            assert_eq!(s.wire_bytes, s.frames.total_bytes());
            assert!(
                s.wire_bytes < s.raw_bytes,
                "wire {} >= raw {} (low_precision={low_precision})",
                s.wire_bytes,
                s.raw_bytes
            );
        }
    }

    #[test]
    fn learned_default_direction_improves_sparse_splits() {
        use dimboost_data::SparseInstance;
        // Feature 0 pattern: absent and 2.0 are class 1; 0.5 and 1.0 are
        // class 0. No single threshold separates the classes (zeros are
        // glued to the left end of the value axis), but "threshold 1.5 with
        // zeros right" does.
        let mut instances = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400u32 {
            let (value, label) = match i % 4 {
                0 => (None, 1.0),
                1 => (Some(0.5), 0.0),
                2 => (Some(1.0), 0.0),
                _ => (Some(2.0), 1.0),
            };
            let inst = match value {
                Some(v) => SparseInstance::new(vec![0], vec![v]).unwrap(),
                None => SparseInstance::empty(),
            };
            instances.push(inst);
            labels.push(label);
        }
        let ds = Dataset::from_instances(&instances, labels, 1).unwrap();

        let mut config = small_config();
        config.num_trees = 1;
        config.max_depth = 1;
        config.num_candidates = 8;
        config.min_child_weight = 0.0;
        config.learning_rate = 1.0;
        config.opts.low_precision = false;

        let natural = train_single_machine(&ds, &config).unwrap();
        let err_natural = classification_error(&natural.predict_dataset(&ds), ds.labels());

        config.learn_default_direction = true;
        let learned = train_single_machine(&ds, &config).unwrap();
        let err_learned = classification_error(&learned.predict_dataset(&ds), ds.labels());

        assert!(
            err_natural >= 0.24,
            "without default learning one depth-1 split cannot separate: {err_natural}"
        );
        assert_eq!(
            err_learned, 0.0,
            "learned default direction separates exactly"
        );
        // The learned tree routes zeros right.
        match learned.trees()[0].node(0) {
            crate::tree::Node::Internal { default_left, .. } => assert!(!default_left),
            other => panic!("expected a split, got {other:?}"),
        }
    }

    #[test]
    fn multiclass_softmax_learns() {
        use crate::metrics::{multiclass_error, multiclass_log_loss};
        let cfg_data = SparseGenConfig::new(4_000, 200, 15, 77)
            .with_label_kind(LabelKind::Multiclass { classes: 3 });
        let ds = generate(&cfg_data);
        let (train, test) = train_test_split(&ds, 0.2, 77).unwrap();
        let shards = partition_rows(&train, 3).unwrap();
        let mut config = small_config();
        config.loss = LossKind::Softmax { classes: 3 };
        config.num_trees = 8; // rounds: 24 trees total
        let ps = PsConfig {
            num_servers: 3,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let out = train_distributed(&shards, &config, ps).unwrap();

        assert_eq!(out.model.num_trees(), 24);
        assert_eq!(out.model.num_classes(), 3);
        assert!(out.model.check_consistency().is_ok());

        let preds = out.model.predict_dataset(&test);
        let err = multiclass_error(&preds, test.labels());
        // Majority baseline is ~2/3 on balanced 3-class data.
        assert!(err < 0.5, "multiclass error {err}");

        let probas = out.model.predict_proba_dataset(&test);
        assert!(probas
            .iter()
            .all(|p| (p.iter().sum::<f32>() - 1.0).abs() < 1e-4));
        let mll = multiclass_log_loss(&probas, test.labels());
        assert!(
            mll < 3.0f64.ln(),
            "mlogloss {mll} not below uniform baseline"
        );

        // Training loss decreases per round.
        let losses: Vec<f64> = out.loss_curve.iter().map(|p| p.train_loss).collect();
        assert_eq!(losses.len(), 8);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
    }

    #[test]
    fn multiclass_rejects_bad_labels() {
        let ds = generate(&SparseGenConfig::new(100, 20, 5, 1)); // binary labels 0/1 are valid class ids
        let mut config = small_config();
        config.loss = LossKind::Softmax { classes: 3 };
        let ps = PsConfig {
            num_servers: 1,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        assert!(train_distributed(&[ds], &config, ps).is_ok());

        // Labels outside 0..classes must be rejected.
        let cfg_data = SparseGenConfig::new(100, 20, 5, 2)
            .with_label_kind(LabelKind::Multiclass { classes: 5 });
        let bad = generate(&cfg_data);
        assert!(train_distributed(&[bad], &config, ps)
            .unwrap_err()
            .contains("class indices"),);
    }

    #[test]
    fn multiclass_early_stopping_truncates_whole_rounds() {
        use crate::trainer::EvalOptions;
        let cfg_data = SparseGenConfig::new(1_000, 60, 8, 9)
            .with_label_kind(LabelKind::Multiclass { classes: 3 });
        let ds = generate(&cfg_data);
        let (train, test) = train_test_split(&ds, 0.3, 9).unwrap();
        let mut config = small_config();
        config.loss = LossKind::Softmax { classes: 3 };
        config.num_trees = 6;
        let ps = PsConfig {
            num_servers: 1,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let ev = EvalOptions {
            dataset: &test,
            early_stopping_rounds: Some(1),
        };
        let out = train_distributed_with_eval(&[train], &config, ps, Some(ev)).unwrap();
        assert_eq!(
            out.model.num_trees() % 3,
            0,
            "truncation must keep whole rounds"
        );
        assert!(out.model.check_consistency().is_ok());
    }

    #[test]
    fn rejects_invalid_inputs() {
        let ds = generate(&SparseGenConfig::new(10, 5, 2, 1));
        assert!(train_distributed(&[], &small_config(), PsConfig::default()).is_err());

        let empty = Dataset::empty(5);
        assert!(train_distributed(&[empty], &small_config(), PsConfig::default()).is_err());

        let mismatched = vec![ds.clone(), Dataset::empty(7)];
        assert!(train_distributed(&mismatched, &small_config(), PsConfig::default()).is_err());

        let mut bad = small_config();
        bad.num_trees = 0;
        assert!(train_distributed(&[ds], &bad, PsConfig::default()).is_err());
    }

    #[test]
    fn handles_workers_with_empty_shards() {
        let ds = generate(&SparseGenConfig::new(50, 20, 5, 2));
        // 8 workers, 50 rows: every worker has rows; now force empties by
        // using more workers than rows on a tiny set.
        let tiny = generate(&SparseGenConfig::new(3, 20, 5, 2));
        let shards = partition_rows(&tiny, 5).unwrap();
        let mut config = small_config();
        config.num_trees = 2;
        config.min_child_weight = 0.0;
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let out = train_distributed(&shards, &config, ps).unwrap();
        assert_eq!(out.model.num_trees(), 2);
        // Sanity on the larger set too.
        let shards = partition_rows(&ds, 3).unwrap();
        assert!(train_distributed(&shards, &config, ps).is_ok());
    }

    #[test]
    fn more_trees_do_not_hurt_training_loss() {
        let (train, _) = classification_data();
        let mut config = small_config();
        config.num_trees = 12;
        let ps = PsConfig {
            num_servers: 1,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let out = train_distributed(&[train], &config, ps).unwrap();
        let first = out.loss_curve.first().unwrap().train_loss;
        let last = out.loss_curve.last().unwrap().train_loss;
        assert!(last < first, "12 trees: {first} -> {last}");
    }

    #[test]
    fn breakdown_accumulates() {
        let (train, _) = classification_data();
        let shards = partition_rows(&train, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let out = train_distributed(&shards, &small_config(), ps).unwrap();
        assert!(out.breakdown.compute_secs > 0.0);
        assert!(out.breakdown.comm.packages > 0);
        assert!(out.breakdown.total_secs() >= out.breakdown.compute_secs);
        // Curve elapsed times are nondecreasing.
        let times: Vec<f64> = out.loss_curve.iter().map(|pt| pt.elapsed_secs).collect();
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
    }
}
