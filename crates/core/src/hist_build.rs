//! Gradient histogram construction (Section 5.1).
//!
//! Two builders produce bit-identical histograms:
//!
//! * [`build_dense`] — the traditional algorithm: enumerate **every**
//!   (sampled) feature of every instance, `O(M·N)`. This is the baseline the
//!   paper measures against (Table 3's first row).
//! * [`build_sparse`] — Algorithm 2, the sparsity-aware construction:
//!   accumulate the gradient sum of all instances once, touch only nonzero
//!   entries (adding to their bucket and *subtracting* from the zero
//!   bucket), then deposit the accumulated sums into every feature's zero
//!   bucket. `O(z·N + M)` where `z` is the mean nonzeros per instance.
//!
//! A third, non-paper builder family accumulates **fixed-point integers**
//! instead of f32 ([`build_quantized`], plus the layer-fused variant in
//! [`crate::fused`]): gradients are pre-quantized once per tree
//! ([`QuantizedGrads`]) and each histogram cell holds a *packed* G/H code
//! pair in one integer, so integer addition — associative and commutative —
//! replaces float addition and the result is bit-identical under **any**
//! thread count, batch size, or merge order. DESIGN.md §15 documents the
//! format and the overflow bounds.

use dimboost_data::Dataset;
use dimboost_ps::quantize::levels;

use crate::binned::BinnedShard;
use crate::loss::GradPair;
use crate::meta::FeatureMeta;

/// Allocates a zeroed histogram row for `meta`'s layout.
pub fn new_row(meta: &FeatureMeta) -> Vec<f32> {
    vec![0.0f32; meta.layout().row_len()]
}

/// Traditional dense construction: for each instance, walk **all** sampled
/// features (materializing the dense view of the row once) and bin each
/// value. `out` must be a zeroed row of `meta.layout().row_len()`;
/// `scratch` is a reusable dense buffer of `shard.num_features()` values.
pub fn build_dense(
    shard: &Dataset,
    instances: &[u32],
    grads: &[GradPair],
    meta: &FeatureMeta,
    out: &mut [f32],
    scratch: &mut Vec<f32>,
) {
    let layout = meta.layout();
    debug_assert_eq!(out.len(), layout.row_len());
    scratch.clear();
    scratch.resize(shard.num_features(), 0.0);

    for &i in instances {
        let row = shard.row(i as usize);
        let gp = grads[i as usize];
        // Materialize the dense view of this instance.
        for (f, v) in row.iter() {
            scratch[f as usize] = v;
        }
        // The traditional pass: every sampled feature is examined.
        for sf in 0..meta.num_sampled() {
            let f = meta.global_id(sf);
            let v = scratch[f as usize];
            let bucket = meta.candidates(sf).bucket(v);
            out[layout.g_index(sf, bucket)] += gp.g;
            out[layout.h_index(sf, bucket)] += gp.h;
        }
        // Clear only the touched entries.
        for &f in row.indices() {
            scratch[f as usize] = 0.0;
        }
    }
}

/// Sparsity-aware construction (Algorithm 2): only nonzero entries are
/// binned individually; the zero mass is handled in aggregate.
pub fn build_sparse(
    shard: &Dataset,
    instances: &[u32],
    grads: &[GradPair],
    meta: &FeatureMeta,
    out: &mut [f32],
) {
    let layout = meta.layout();
    debug_assert_eq!(out.len(), layout.row_len());

    let mut sum_g = 0.0f64;
    let mut sum_h = 0.0f64;
    for &i in instances {
        let gp = grads[i as usize];
        // Line 2-3: accumulate the total gradient mass in the same pass.
        sum_g += gp.g as f64;
        sum_h += gp.h as f64;
        // Lines 4-10: handle nonzero entries individually.
        for (f, v) in shard.row(i as usize).iter() {
            let Some(sf) = meta.sampled_index(f) else {
                continue;
            };
            let cand = meta.candidates(sf);
            let bucket = cand.bucket(v);
            let zero = cand.zero_bucket();
            out[layout.g_index(sf, bucket)] += gp.g;
            out[layout.h_index(sf, bucket)] += gp.h;
            out[layout.g_index(sf, zero)] -= gp.g;
            out[layout.h_index(sf, zero)] -= gp.h;
        }
    }
    // Lines 12-15: deposit the total mass into every zero bucket.
    for sf in 0..meta.num_sampled() {
        let zero = meta.candidates(sf).zero_bucket();
        out[layout.g_index(sf, zero)] += sum_g as f32;
        out[layout.h_index(sf, zero)] += sum_h as f32;
    }
}

/// Builds a row with the configured strategy, allocating the output.
pub fn build_row(
    shard: &Dataset,
    instances: &[u32],
    grads: &[GradPair],
    meta: &FeatureMeta,
    sparse: bool,
) -> Vec<f32> {
    let mut out = new_row(meta);
    if sparse {
        build_sparse(shard, instances, grads, meta, &mut out);
    } else {
        let mut scratch = Vec::new();
        build_dense(shard, instances, grads, meta, &mut out, &mut scratch);
    }
    out
}

// ---------------------------------------------------------------------------
// Quantized integer accumulation (extension; DESIGN.md §15)
// ---------------------------------------------------------------------------

/// Largest magnitude a 16-bit accumulator lane can hold: `i16::MAX`.
///
/// The narrow mode is legal exactly when `rows_in_node · max_code` stays at
/// or below this bound (see [`acc_mode_for`]); one past it must promote to
/// the wide mode.
pub const NARROW_LANE_MAX: u64 = i16::MAX as u64; // 32_767

/// Accumulator cell width for the quantized histogram path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccMode {
    /// `i32` cells with two 16-bit lanes — half the cell traffic, legal only
    /// under the [`NARROW_LANE_MAX`] bound.
    Narrow,
    /// `i64` cells with two 32-bit lanes — always legal under the
    /// [`effective_quant_bits`] row-count guard.
    Wide,
}

impl AccMode {
    /// Bytes per packed G/H cell in this mode.
    pub fn cell_bytes(self) -> usize {
        match self {
            AccMode::Narrow => 4,
            AccMode::Wide => 8,
        }
    }
}

/// Overflow promotion rule: the narrow (16-bit-lane) accumulator is chosen
/// iff the worst-case lane magnitude `max_rows · max_code` cannot exceed
/// [`NARROW_LANE_MAX`]; anything larger *could* overflow a lane and promotes
/// to [`AccMode::Wide`]. The bound is exact — a node of `max_rows` rows all
/// quantizing to `±max_code` lands precisely on `max_rows · max_code`.
pub fn acc_mode_for(max_rows: u64, max_code: u32) -> AccMode {
    if max_rows.saturating_mul(max_code as u64) <= NARROW_LANE_MAX {
        AccMode::Narrow
    } else {
        AccMode::Wide
    }
}

/// Per-layer row-count guard for the wide accumulator: demotes the requested
/// bit width until `rows · levels(bits) ≤ i32::MAX`, so a 32-bit lane can
/// never wrap even if every one of `rows` instances quantizes to the extreme
/// code. `bits` never drops below 2 (a 2-bit code has `levels == 1`, safe
/// for any `rows ≤ i32::MAX`, and shards are far smaller than that).
pub fn effective_quant_bits(requested: u8, rows: usize) -> u8 {
    let mut bits = requested.clamp(2, 16);
    while bits > 2 && (rows as u64).saturating_mul(levels(bits) as u64) > i32::MAX as u64 {
        bits -= 1;
    }
    bits
}

/// Per-tree fixed-point gradient/hessian codes.
///
/// Scale derivation mirrors the wire quantizer (`dimboost_ps::quantize`):
/// the scale is the max-abs over the shard's values (same `fold`), and the
/// grid has [`levels`]`(bits)` positive steps. Unlike the wire path the
/// rounding here is **deterministic** round-to-nearest (half away from
/// zero) — stochastic rounding would make histogram bytes depend on RNG
/// consumption order. G and H get independent scales.
#[derive(Debug, Clone)]
pub struct QuantizedGrads {
    g_codes: Vec<i32>,
    h_codes: Vec<i32>,
    g_step: f32,
    h_step: f32,
    bits: u8,
}

impl QuantizedGrads {
    /// Quantizes one shard's gradient pairs at `bits` (callers should first
    /// run the width through [`effective_quant_bits`]).
    pub fn quantize(grads: &[GradPair], bits: u8) -> Self {
        assert!(
            (2..=16).contains(&bits),
            "bit width must be in 2..=16, got {bits}"
        );
        let g_scale = grads.iter().fold(0.0f32, |m, p| m.max(p.g.abs()));
        let h_scale = grads.iter().fold(0.0f32, |m, p| m.max(p.h.abs()));
        let levels_f = levels(bits) as f32;
        let max_code = levels(bits) as i32;
        let code = |v: f32, scale: f32| -> i32 {
            if scale == 0.0 {
                return 0;
            }
            // Deterministic round-to-nearest; `as i32` saturates (and maps
            // NaN to 0) so the clamp is belt-and-braces for |v| ≤ scale.
            ((v / scale * levels_f).round() as i32).clamp(-max_code, max_code)
        };
        Self {
            g_codes: grads.iter().map(|p| code(p.g, g_scale)).collect(),
            h_codes: grads.iter().map(|p| code(p.h, h_scale)).collect(),
            g_step: if g_scale == 0.0 {
                0.0
            } else {
                g_scale / levels_f
            },
            h_step: if h_scale == 0.0 {
                0.0
            } else {
                h_scale / levels_f
            },
            bits,
        }
    }

    /// Bit width the codes were quantized at.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Largest code magnitude: `levels(bits)`.
    pub fn max_code(&self) -> u32 {
        levels(self.bits)
    }

    /// Value of one G code step (`scale / levels`).
    pub fn g_step(&self) -> f32 {
        self.g_step
    }

    /// Value of one H code step.
    pub fn h_step(&self) -> f32 {
        self.h_step
    }

    /// Code pair for row `i`.
    #[inline]
    pub(crate) fn codes(&self, i: usize) -> (i64, i64) {
        (self.g_codes[i] as i64, self.h_codes[i] as i64)
    }
}

/// Pair-offset view of a [`BinnedShard`] for the packed-cell accumulator.
///
/// The f32 layout stores each feature as `[G block][H block]`, so an
/// entry's G and H cells are `num_buckets` apart. The quantized accumulator
/// instead keeps **one packed cell per (feature, bucket)** — `pair_len ==
/// row_len / 2` cells — which halves both the indexed reads (`pair_elem` +
/// `zero_elem` = 8 bytes/entry vs 12) and the read-modify-writes (2 per
/// entry vs 4). This derived index is built once per tree alongside the
/// binned CSR.
#[derive(Debug, Clone)]
pub struct QuantBinned {
    /// Packed-cell offset per CSR entry (parallel to `BinnedShard::g_elem`).
    pub(crate) pair_elem: Vec<u32>,
    /// Zero-bucket cell offset per CSR entry: `zero_pair[sf[e]]` resolved
    /// ahead of time, so the hot loop streams it instead of chasing two
    /// loads per entry.
    pub(crate) zero_elem: Vec<u32>,
    /// Packed-cell offset of each sampled feature's zero bucket.
    pub(crate) zero_pair: Vec<u32>,
    /// Cells per histogram row: `Σ_f num_buckets(f) == row_len / 2`.
    pair_len: usize,
}

impl QuantBinned {
    /// Derives the pair offsets from an already-built binned shard.
    pub fn build(binned: &BinnedShard, meta: &FeatureMeta) -> Self {
        let layout = meta.layout();
        // Pair base of feature `sf` is the cumulative bucket count, i.e.
        // exactly `layout.g_index(sf, 0) / 2` — but derive it independently
        // so this never relies on the f32 layout's internal offsets.
        let mut pair_of_g = vec![u32::MAX; layout.row_len()];
        let mut zero_pair = Vec::with_capacity(meta.num_sampled());
        let mut base = 0u32;
        for sf in 0..meta.num_sampled() {
            let nb = layout.num_buckets(sf);
            for k in 0..nb {
                pair_of_g[layout.g_index(sf, k)] = base + k as u32;
            }
            zero_pair.push(base + layout.zero_bucket(sf) as u32);
            base += nb as u32;
        }
        let pair_elem: Vec<u32> = binned
            .g_elem
            .iter()
            .map(|&g| {
                let p = pair_of_g[g as usize];
                debug_assert_ne!(p, u32::MAX, "g_elem offset outside any G block");
                p
            })
            .collect();
        // Pre-resolving each entry's zero cell (`zero_pair[sf[e]]`) turns
        // the hot loop's data-dependent double load into one streamed read,
        // for 4 bytes/entry — the accumulators are memory-bound, so the
        // shorter dependency chain is worth the extra array.
        let zero_elem = binned.sf.iter().map(|&sf| zero_pair[sf as usize]).collect();
        Self {
            pair_elem,
            zero_elem,
            zero_pair,
            pair_len: base as usize,
        }
    }

    /// Packed cells per histogram row (`row_len / 2`).
    pub fn pair_len(&self) -> usize {
        self.pair_len
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.pair_elem.len() + self.zero_elem.len() + self.zero_pair.len()) * 4
    }
}

/// A packed G/H accumulator cell: two signed lanes in one integer.
///
/// All arithmetic is wrapping (ring mod 2^ring_bits), which makes the sum
/// of packed values a ring homomorphism: `Σ pack(gᵢ, hᵢ) ≡ pack(ΣG, ΣH)`
/// regardless of any transient lane borrow, so the *final* cell decodes
/// exactly whenever the final lane sums fit their lanes — which the
/// [`acc_mode_for`] / [`effective_quant_bits`] bounds guarantee.
pub(crate) trait PairCell: Copy + Send + 'static {
    const ZERO: Self;
    fn pack(g: i64, h: i64) -> Self;
    fn add(self, other: Self) -> Self;
    fn sub(self, other: Self) -> Self;
    /// Exact lane split: `h` is the sign-extended low lane and `g` is
    /// recovered as `(cell − h) >> lane_bits`, which corrects the borrow a
    /// negative `h` lane takes from the `g` lane (naïve `cell >> lane_bits`
    /// would read `G − 1` whenever `H < 0`).
    fn unpack(self) -> (i64, i64);
}

impl PairCell for i64 {
    const ZERO: Self = 0;
    #[inline]
    fn pack(g: i64, h: i64) -> Self {
        (g << 32).wrapping_add(h)
    }
    #[inline]
    fn add(self, other: Self) -> Self {
        self.wrapping_add(other)
    }
    #[inline]
    fn sub(self, other: Self) -> Self {
        self.wrapping_sub(other)
    }
    #[inline]
    fn unpack(self) -> (i64, i64) {
        let h = (self as i32) as i64;
        let g = self.wrapping_sub(h) >> 32;
        (g, h)
    }
}

impl PairCell for i32 {
    const ZERO: Self = 0;
    #[inline]
    fn pack(g: i64, h: i64) -> Self {
        ((g as i32) << 16).wrapping_add(h as i32)
    }
    #[inline]
    fn add(self, other: Self) -> Self {
        self.wrapping_add(other)
    }
    #[inline]
    fn sub(self, other: Self) -> Self {
        self.wrapping_sub(other)
    }
    #[inline]
    fn unpack(self) -> (i64, i64) {
        let h = (self as i16) as i32;
        let g = self.wrapping_sub(h) >> 16;
        (g as i64, h as i64)
    }
}

/// Algorithm 2 over packed integer cells: add each nonzero's packed pair to
/// its bucket cell, subtract it from the feature's zero cell, and return the
/// total code sums for the zero-bucket deposit. 2 read-modify-writes per
/// entry (the f32 builders do 4).
pub(crate) fn accumulate_pairs<C: PairCell>(
    binned: &BinnedShard,
    qb: &QuantBinned,
    grads: &QuantizedGrads,
    instances: &[u32],
    cells: &mut [C],
) -> (i64, i64) {
    let mut sum_g = 0i64;
    let mut sum_h = 0i64;
    for &i in instances {
        let i = i as usize;
        let (gc, hc) = grads.codes(i);
        sum_g += gc;
        sum_h += hc;
        let packed = C::pack(gc, hc);
        for e in binned.indptr[i]..binned.indptr[i + 1] {
            let p = qb.pair_elem[e] as usize;
            cells[p] = cells[p].add(packed);
            let z = qb.zero_elem[e] as usize;
            cells[z] = cells[z].sub(packed);
        }
    }
    (sum_g, sum_h)
}

/// Deposits the accumulated code sums into every feature's zero cell
/// (Algorithm 2 lines 12-15, packed form).
pub(crate) fn deposit_zero_sums<C: PairCell>(
    zero_pair: &[u32],
    sum_g: i64,
    sum_h: i64,
    cells: &mut [C],
) {
    let packed = C::pack(sum_g, sum_h);
    for &z in zero_pair {
        cells[z as usize] = cells[z as usize].add(packed);
    }
}

/// Decodes one node's packed cells into an f32 histogram row in layout
/// order. Shared by the per-node and layer-fused quantized builders so the
/// f32 conversion (`lane_sum as f32 * step`) runs in the identical order on
/// both paths — bit-equality between them is structural, not tolerant.
pub(crate) fn dequantize_cells_into<C: PairCell>(
    cells: &[C],
    meta: &FeatureMeta,
    grads: &QuantizedGrads,
    out: &mut [f32],
) {
    let layout = meta.layout();
    debug_assert_eq!(out.len(), layout.row_len());
    let mut base = 0usize;
    for sf in 0..meta.num_sampled() {
        let nb = layout.num_buckets(sf);
        for k in 0..nb {
            let (g, h) = cells[base + k].unpack();
            out[layout.g_index(sf, k)] = g as f32 * grads.g_step();
            out[layout.h_index(sf, k)] = h as f32 * grads.h_step();
        }
        base += nb;
    }
}

/// Per-node quantized histogram build: packed integer accumulation followed
/// by one dequantize pass. The integer phase is associative, so the output
/// depends only on the *set* of instances — not on threads, batching, or
/// visit order — and is bit-identical to the layer-fused quantized kernel.
pub fn build_quantized(
    binned: &BinnedShard,
    qb: &QuantBinned,
    instances: &[u32],
    grads: &QuantizedGrads,
    meta: &FeatureMeta,
    mode: AccMode,
) -> Vec<f32> {
    let mut out = new_row(meta);
    match mode {
        AccMode::Narrow => {
            debug_assert_eq!(
                acc_mode_for(instances.len() as u64, grads.max_code()),
                AccMode::Narrow,
                "narrow mode requested past the overflow bound"
            );
            quantized_into::<i32>(binned, qb, instances, grads, meta, &mut out);
        }
        AccMode::Wide => quantized_into::<i64>(binned, qb, instances, grads, meta, &mut out),
    }
    out
}

fn quantized_into<C: PairCell>(
    binned: &BinnedShard,
    qb: &QuantBinned,
    instances: &[u32],
    grads: &QuantizedGrads,
    meta: &FeatureMeta,
    out: &mut [f32],
) {
    let mut cells = vec![C::ZERO; qb.pair_len()];
    let (sum_g, sum_h) = accumulate_pairs::<C>(binned, qb, grads, instances, &mut cells);
    deposit_zero_sums::<C>(&qb.zero_pair, sum_g, sum_h, &mut cells);
    dequantize_cells_into::<C>(&cells, meta, grads, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_data::synthetic::{generate, SparseGenConfig};
    use dimboost_data::SparseInstance;
    use dimboost_sketch::SplitCandidates;

    fn meta_for(ds: &Dataset, boundaries: Vec<f32>) -> FeatureMeta {
        let cands: Vec<SplitCandidates> = (0..ds.num_features())
            .map(|_| SplitCandidates::from_boundaries(boundaries.clone()))
            .collect();
        FeatureMeta::all_features(&cands)
    }

    fn uniform_grads(n: usize, g: f32, h: f32) -> Vec<GradPair> {
        vec![GradPair { g, h }; n]
    }

    #[test]
    fn sparse_equals_dense_on_toy_data() {
        let insts = vec![
            SparseInstance::new(vec![0, 2], vec![0.6, -1.5]).unwrap(),
            SparseInstance::new(vec![1], vec![2.0]).unwrap(),
            SparseInstance::empty(),
        ];
        let ds = Dataset::from_instances(&insts, vec![0.0; 3], 3).unwrap();
        let meta = meta_for(&ds, vec![-1.0, 1.0]);
        let grads = vec![
            GradPair { g: 1.0, h: 0.5 },
            GradPair { g: -2.0, h: 1.0 },
            GradPair { g: 3.0, h: 2.0 },
        ];
        let instances: Vec<u32> = vec![0, 1, 2];
        let sparse = build_row(&ds, &instances, &grads, &meta, true);
        let dense = build_row(&ds, &instances, &grads, &meta, false);
        for (s, d) in sparse.iter().zip(&dense) {
            assert!((s - d).abs() < 1e-5, "sparse={sparse:?} dense={dense:?}");
        }
    }

    #[test]
    fn sparse_equals_dense_on_generated_data() {
        let ds = generate(&SparseGenConfig::new(300, 50, 8, 11));
        let meta = meta_for(&ds, vec![0.25, 0.5, 1.0, 1.5]);
        let grads: Vec<GradPair> = (0..300)
            .map(|i| GradPair {
                g: ((i % 7) as f32 - 3.0) / 2.0,
                h: 0.1 + (i % 3) as f32,
            })
            .collect();
        let instances: Vec<u32> = (0..300).collect();
        let sparse = build_row(&ds, &instances, &grads, &meta, true);
        let dense = build_row(&ds, &instances, &grads, &meta, false);
        // Deterministic (fixed generator seed); the tolerance only covers
        // f32 accumulation-order differences between the two passes — the
        // sparse pass reconstructs each zero bucket as `total − Σ nonzero`,
        // so a bucket summing ~300 |g| ≤ 1.5 terms can differ by a few ulp
        // of the partial sums, far below 1e-3.
        for (i, (s, d)) in sparse.iter().zip(&dense).enumerate() {
            assert!((s - d).abs() < 1e-3, "elem {i}: {s} vs {d}");
        }
    }

    #[test]
    fn histogram_totals_equal_gradient_sums_per_feature() {
        let ds = generate(&SparseGenConfig::new(200, 20, 5, 3));
        let meta = meta_for(&ds, vec![0.5, 1.0]);
        let grads = uniform_grads(200, 0.5, 0.25);
        let instances: Vec<u32> = (0..200).collect();
        let row = build_row(&ds, &instances, &grads, &meta, true);
        let layout = meta.layout();
        for sf in 0..meta.num_sampled() {
            let g_total: f32 = (0..layout.num_buckets(sf))
                .map(|k| row[layout.g_index(sf, k)])
                .sum();
            let h_total: f32 = (0..layout.num_buckets(sf))
                .map(|k| row[layout.h_index(sf, k)])
                .sum();
            // The sparse pass cancels each nonzero's ±g against the zero
            // bucket, so per-feature totals should reproduce the exact sums
            // up to f32 cancellation error (sums ≤ 100), well under 1e-2.
            assert!((g_total - 100.0).abs() < 1e-2, "feature {sf}: G={g_total}");
            assert!((h_total - 50.0).abs() < 1e-2, "feature {sf}: H={h_total}");
        }
    }

    #[test]
    fn subset_of_instances_only_counts_those() {
        let ds = generate(&SparseGenConfig::new(100, 10, 4, 9));
        let meta = meta_for(&ds, vec![0.5]);
        let grads = uniform_grads(100, 1.0, 1.0);
        let instances: Vec<u32> = (0..50).collect();
        let row = build_row(&ds, &instances, &grads, &meta, true);
        let layout = meta.layout();
        let g_total: f32 = (0..layout.num_buckets(0))
            .map(|k| row[layout.g_index(0, k)])
            .sum();
        assert!((g_total - 50.0).abs() < 1e-3);
    }

    #[test]
    fn feature_sampling_restricts_row() {
        let insts = vec![SparseInstance::new(vec![0, 1, 2], vec![1.0, 1.0, 1.0]).unwrap()];
        let ds = Dataset::from_instances(&insts, vec![1.0], 3).unwrap();
        let cands: Vec<SplitCandidates> = (0..3)
            .map(|_| SplitCandidates::from_boundaries(vec![0.5]))
            .collect();
        let meta = FeatureMeta::new(vec![1], &cands);
        let grads = uniform_grads(1, 2.0, 1.0);
        let sparse = build_row(&ds, &[0], &grads, &meta, true);
        let dense = build_row(&ds, &[0], &grads, &meta, false);
        assert_eq!(sparse.len(), meta.layout().row_len());
        assert_eq!(sparse, dense);
        // Feature 1, value 1.0 > 0.5 -> bucket 1 (boundaries [0, 0.5]).
        let layout = meta.layout();
        assert_eq!(sparse[layout.g_index(0, 2)], 2.0);
    }

    #[test]
    fn empty_instance_list_gives_zero_row() {
        let ds = generate(&SparseGenConfig::new(10, 5, 2, 1));
        let meta = meta_for(&ds, vec![0.5]);
        let grads = uniform_grads(10, 1.0, 1.0);
        let row = build_row(&ds, &[], &grads, &meta, true);
        assert!(row.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn negative_values_bin_below_zero_bucket() {
        let insts = vec![SparseInstance::new(vec![0], vec![-2.0]).unwrap()];
        let ds = Dataset::from_instances(&insts, vec![0.0], 1).unwrap();
        let cands = vec![SplitCandidates::from_boundaries(vec![-1.0, 1.0])];
        let meta = FeatureMeta::all_features(&cands);
        let grads = uniform_grads(1, 1.0, 1.0);
        let row = build_row(&ds, &[0], &grads, &meta, true);
        let layout = meta.layout();
        // boundaries [-1, 0, 1]: -2.0 -> bucket 0; zero bucket is 1.
        assert_eq!(meta.candidates(0).zero_bucket(), 1);
        assert_eq!(row[layout.g_index(0, 0)], 1.0);
        assert_eq!(row[layout.g_index(0, 1)], 0.0);
    }

    // --- quantized accumulator (DESIGN.md §15) ---

    fn varied_grads(n: usize) -> Vec<GradPair> {
        (0..n)
            .map(|i| GradPair {
                g: ((i % 13) as f32 - 6.0) / 3.0,
                h: 0.05 + (i % 5) as f32 * 0.3,
            })
            .collect()
    }

    #[test]
    fn pack_unpack_is_exact_including_negative_low_lane() {
        // The borrow case: a negative H lane borrows from the G lane in the
        // packed representation; unpack must still split exactly.
        for (g, h) in [
            (0i64, 0i64),
            (1, -1),
            (-1, 1),
            (32_767, -32_767),
            (-32_767, 32_767),
            (12_345, -7),
        ] {
            assert_eq!(<i32 as PairCell>::pack(g, h).unpack(), (g, h), "narrow");
        }
        for (g, h) in [
            (0i64, 0i64),
            (1, -1),
            (i32::MAX as i64, -(i32::MAX as i64)),
            (-(i32::MAX as i64), i32::MAX as i64),
            (987_654_321, -123),
        ] {
            assert_eq!(<i64 as PairCell>::pack(g, h).unpack(), (g, h), "wide");
        }
    }

    #[test]
    fn packed_accumulation_is_a_ring_homomorphism() {
        // Mixed-sign code stream whose *partial* sums overflow a lane's
        // nominal range transiently; the final sums fit, so decode is exact.
        let stream: Vec<(i64, i64)> = vec![(30_000, 1), (-29_999, -2), (5, 1), (-4, 1)];
        let (expect_g, expect_h) = stream
            .iter()
            .fold((0i64, 0i64), |(g, h), &(dg, dh)| (g + dg, h + dh));
        let mut narrow = <i32 as PairCell>::ZERO;
        let mut wide = <i64 as PairCell>::ZERO;
        for &(g, h) in &stream {
            narrow = narrow.add(<i32 as PairCell>::pack(g, h));
            wide = wide.add(<i64 as PairCell>::pack(g, h));
        }
        assert_eq!(narrow.unpack(), (expect_g, expect_h));
        assert_eq!(wide.unpack(), (expect_g, expect_h));
    }

    #[test]
    fn narrow_promotion_triggers_exactly_at_documented_bound() {
        // NARROW_LANE_MAX == 32_767: the rule is `rows · max_code ≤ bound`.
        assert_eq!(acc_mode_for(32_767, 1), AccMode::Narrow);
        assert_eq!(acc_mode_for(32_768, 1), AccMode::Wide);
        assert_eq!(acc_mode_for(1, 32_767), AccMode::Narrow);
        // 3 · 10_922 = 32_766 ≤ bound; 3 · 10_923 = 32_769 > bound.
        assert_eq!(acc_mode_for(3, 10_922), AccMode::Narrow);
        assert_eq!(acc_mode_for(3, 10_923), AccMode::Wide);
        // Saturating product: absurd row counts must not wrap back to Narrow.
        assert_eq!(acc_mode_for(u64::MAX, 2), AccMode::Wide);
        // Zero rows / zero code always fit.
        assert_eq!(acc_mode_for(0, 32_767), AccMode::Narrow);
    }

    #[test]
    fn effective_bits_guard_keeps_wide_lane_exact() {
        // The wide lane holds sums up to rows · levels(bits); the guard must
        // demote bits until that product fits i32, and never below 2.
        for rows in [1usize, 1000, 65_538, 70_000, 10_000_000] {
            for requested in [2u8, 8, 12, 16] {
                let eff = effective_quant_bits(requested, rows);
                assert!((2..=requested.max(2)).contains(&eff));
                assert!(
                    eff == 2 || (rows as u64) * (levels(eff) as u64) <= i32::MAX as u64,
                    "rows={rows} requested={requested} eff={eff}"
                );
                // Maximality: one more bit (if available) would overflow.
                if eff < requested.clamp(2, 16) {
                    assert!((rows as u64) * (levels(eff + 1) as u64) > i32::MAX as u64);
                }
            }
        }
        // 16 bits (levels 32_767) fits exactly up to ⌊i32::MAX / 32_767⌋.
        let limit = (i32::MAX as u64 / 32_767) as usize;
        assert_eq!(effective_quant_bits(16, limit), 16);
        assert_eq!(effective_quant_bits(16, limit + 1), 15);
    }

    #[test]
    fn quantize_grads_rounds_to_nearest_deterministically() {
        let grads = vec![
            GradPair { g: 1.0, h: 2.0 },    // scale definers
            GradPair { g: -1.0, h: 0.0 },   // extreme negative / zero
            GradPair { g: 0.2501, h: 1.0 }, // rounds to nearest step
        ];
        // bits = 3 → levels = 3, g_step = 1/3.
        let q = QuantizedGrads::quantize(&grads, 3);
        assert_eq!(q.bits(), 3);
        assert_eq!(q.max_code(), 3);
        assert_eq!(q.codes(0), (3, 3));
        assert_eq!(q.codes(1), (-3, 0));
        // 0.2501 / 1.0 * 3 = 0.7503 → rounds to 1; 1.0/2.0*3 = 1.5 rounds
        // half-away-from-zero to 2.
        assert_eq!(q.codes(2), (1, 2));
        assert_eq!(q.g_step(), 1.0 / 3.0);
        // Re-quantizing is bit-identical (no RNG anywhere).
        let q2 = QuantizedGrads::quantize(&grads, 3);
        assert_eq!(q.codes(2), q2.codes(2));
        assert_eq!(q.g_step().to_bits(), q2.g_step().to_bits());
    }

    #[test]
    fn all_zero_grads_quantize_to_zero_codes_and_steps() {
        let q = QuantizedGrads::quantize(&uniform_grads(10, 0.0, 0.0), 12);
        assert_eq!(q.codes(0), (0, 0));
        assert_eq!(q.g_step(), 0.0);
        assert_eq!(q.h_step(), 0.0);
    }

    #[test]
    fn quantized_narrow_equals_wide_bitwise() {
        let ds = generate(&SparseGenConfig::new(200, 30, 6, 21));
        let meta = meta_for(&ds, vec![0.25, 0.5, 1.0, 1.5]);
        let grads = varied_grads(200);
        // bits = 8 → max_code = 127; 200 · 127 = 25_400 ≤ 32_767, so the
        // narrow mode is legal for the full instance set.
        let q = QuantizedGrads::quantize(&grads, 8);
        assert_eq!(acc_mode_for(200, q.max_code()), AccMode::Narrow);
        let binned = BinnedShard::build(&ds, &meta);
        let qb = QuantBinned::build(&binned, &meta);
        let instances: Vec<u32> = (0..200).collect();
        let narrow = build_quantized(&binned, &qb, &instances, &q, &meta, AccMode::Narrow);
        let wide = build_quantized(&binned, &qb, &instances, &q, &meta, AccMode::Wide);
        // Same integer sums, same dequantize pass → assert_eq on f32 bits.
        assert_eq!(narrow, wide);
    }

    #[test]
    fn quantized_matches_f32_reference_within_derived_tolerance() {
        let n = 300usize;
        let ds = generate(&SparseGenConfig::new(n, 40, 8, 5));
        let meta = meta_for(&ds, vec![0.25, 0.5, 1.0, 1.5]);
        let grads = varied_grads(n);
        let bits = 12u8;
        let q = QuantizedGrads::quantize(&grads, bits);
        let binned = BinnedShard::build(&ds, &meta);
        let qb = QuantBinned::build(&binned, &meta);
        let instances: Vec<u32> = (0..n as u32).collect();
        let quant = build_quantized(&binned, &qb, &instances, &q, &meta, AccMode::Wide);
        let reference = build_row(&ds, &instances, &grads, &meta, true);
        // Tolerance derivation: round-to-nearest puts each row's value
        // within 0.5·step of code·step (the clamp never binds because
        // |v| ≤ scale). A cell sums ≤ n rows, so
        //   |dequant − exact| ≤ n · 0.5 · step
        // plus f32 evaluation error of the two sums themselves (both are
        // ≤ n·|v|max ≈ 600, so a few hundred ulp ≈ 1e-2 at that magnitude —
        // dominated by the quantization term below anyway).
        let g_tol = n as f32 * 0.5 * q.g_step() + 1e-2;
        let h_tol = n as f32 * 0.5 * q.h_step() + 1e-2;
        let layout = meta.layout();
        for sf in 0..meta.num_sampled() {
            for k in 0..layout.num_buckets(sf) {
                let (gi, hi) = (layout.g_index(sf, k), layout.h_index(sf, k));
                assert!(
                    (quant[gi] - reference[gi]).abs() <= g_tol,
                    "G sf={sf} k={k}: {} vs {} (tol {g_tol})",
                    quant[gi],
                    reference[gi]
                );
                assert!(
                    (quant[hi] - reference[hi]).abs() <= h_tol,
                    "H sf={sf} k={k}: {} vs {} (tol {h_tol})",
                    quant[hi],
                    reference[hi]
                );
            }
        }
    }

    #[test]
    fn quantized_wide_lane_never_wraps_under_row_count_guard() {
        // Adversarial input: every row quantizes to the extreme code, so
        // lane sums hit rows · levels(bits) exactly — the guard's bound.
        let n = 500usize;
        let insts: Vec<SparseInstance> = (0..n)
            .map(|_| SparseInstance::new(vec![0], vec![2.0]).unwrap())
            .collect();
        let ds = Dataset::from_instances(&insts, vec![0.0; n], 2).unwrap();
        let meta = meta_for(&ds, vec![-1.0, 1.0]);
        let grads = uniform_grads(n, 1.5, 1.5); // all at max-abs → code ±levels
        let bits = effective_quant_bits(16, n);
        assert_eq!(bits, 16, "500 · 32_767 fits i32 comfortably");
        let q = QuantizedGrads::quantize(&grads, bits);
        let binned = BinnedShard::build(&ds, &meta);
        let qb = QuantBinned::build(&binned, &meta);
        let instances: Vec<u32> = (0..n as u32).collect();
        let row = build_quantized(&binned, &qb, &instances, &q, &meta, AccMode::Wide);
        let layout = meta.layout();
        // Exact: lane sum is n · max_code, dequantized as (n·L)·(scale/L).
        let expect = (n as i64 * q.max_code() as i64) as f32 * q.g_step();
        let bucket = meta.candidates(0).bucket(2.0);
        assert_eq!(row[layout.g_index(0, bucket)], expect);
        assert_eq!(row[layout.h_index(0, bucket)], expect);
    }

    #[test]
    fn quant_binned_pair_view_matches_layout() {
        let ds = generate(&SparseGenConfig::new(50, 10, 4, 3));
        let meta = meta_for(&ds, vec![0.5, 1.0]);
        let binned = BinnedShard::build(&ds, &meta);
        let qb = QuantBinned::build(&binned, &meta);
        let layout = meta.layout();
        assert_eq!(qb.pair_len() * 2, layout.row_len());
        assert_eq!(qb.zero_pair.len(), meta.num_sampled());
        // Every pair offset is the g offset halved-by-construction: feature
        // blocks are [G][H], so pair base == cumulative buckets == g_base/2.
        for (e, &p) in qb.pair_elem.iter().enumerate() {
            let g = binned.g_elem[e] as usize;
            let sf = binned.sf[e] as usize;
            let g_base = layout.g_index(sf, 0);
            assert_eq!(p as usize - (g_base / 2), g - g_base);
        }
    }
}
