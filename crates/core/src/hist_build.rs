//! Gradient histogram construction (Section 5.1).
//!
//! Two builders produce bit-identical histograms:
//!
//! * [`build_dense`] — the traditional algorithm: enumerate **every**
//!   (sampled) feature of every instance, `O(M·N)`. This is the baseline the
//!   paper measures against (Table 3's first row).
//! * [`build_sparse`] — Algorithm 2, the sparsity-aware construction:
//!   accumulate the gradient sum of all instances once, touch only nonzero
//!   entries (adding to their bucket and *subtracting* from the zero
//!   bucket), then deposit the accumulated sums into every feature's zero
//!   bucket. `O(z·N + M)` where `z` is the mean nonzeros per instance.

use dimboost_data::Dataset;

use crate::loss::GradPair;
use crate::meta::FeatureMeta;

/// Allocates a zeroed histogram row for `meta`'s layout.
pub fn new_row(meta: &FeatureMeta) -> Vec<f32> {
    vec![0.0f32; meta.layout().row_len()]
}

/// Traditional dense construction: for each instance, walk **all** sampled
/// features (materializing the dense view of the row once) and bin each
/// value. `out` must be a zeroed row of `meta.layout().row_len()`;
/// `scratch` is a reusable dense buffer of `shard.num_features()` values.
pub fn build_dense(
    shard: &Dataset,
    instances: &[u32],
    grads: &[GradPair],
    meta: &FeatureMeta,
    out: &mut [f32],
    scratch: &mut Vec<f32>,
) {
    let layout = meta.layout();
    debug_assert_eq!(out.len(), layout.row_len());
    scratch.clear();
    scratch.resize(shard.num_features(), 0.0);

    for &i in instances {
        let row = shard.row(i as usize);
        let gp = grads[i as usize];
        // Materialize the dense view of this instance.
        for (f, v) in row.iter() {
            scratch[f as usize] = v;
        }
        // The traditional pass: every sampled feature is examined.
        for sf in 0..meta.num_sampled() {
            let f = meta.global_id(sf);
            let v = scratch[f as usize];
            let bucket = meta.candidates(sf).bucket(v);
            out[layout.g_index(sf, bucket)] += gp.g;
            out[layout.h_index(sf, bucket)] += gp.h;
        }
        // Clear only the touched entries.
        for &f in row.indices() {
            scratch[f as usize] = 0.0;
        }
    }
}

/// Sparsity-aware construction (Algorithm 2): only nonzero entries are
/// binned individually; the zero mass is handled in aggregate.
pub fn build_sparse(
    shard: &Dataset,
    instances: &[u32],
    grads: &[GradPair],
    meta: &FeatureMeta,
    out: &mut [f32],
) {
    let layout = meta.layout();
    debug_assert_eq!(out.len(), layout.row_len());

    let mut sum_g = 0.0f64;
    let mut sum_h = 0.0f64;
    for &i in instances {
        let gp = grads[i as usize];
        // Line 2-3: accumulate the total gradient mass in the same pass.
        sum_g += gp.g as f64;
        sum_h += gp.h as f64;
        // Lines 4-10: handle nonzero entries individually.
        for (f, v) in shard.row(i as usize).iter() {
            let Some(sf) = meta.sampled_index(f) else {
                continue;
            };
            let cand = meta.candidates(sf);
            let bucket = cand.bucket(v);
            let zero = cand.zero_bucket();
            out[layout.g_index(sf, bucket)] += gp.g;
            out[layout.h_index(sf, bucket)] += gp.h;
            out[layout.g_index(sf, zero)] -= gp.g;
            out[layout.h_index(sf, zero)] -= gp.h;
        }
    }
    // Lines 12-15: deposit the total mass into every zero bucket.
    for sf in 0..meta.num_sampled() {
        let zero = meta.candidates(sf).zero_bucket();
        out[layout.g_index(sf, zero)] += sum_g as f32;
        out[layout.h_index(sf, zero)] += sum_h as f32;
    }
}

/// Builds a row with the configured strategy, allocating the output.
pub fn build_row(
    shard: &Dataset,
    instances: &[u32],
    grads: &[GradPair],
    meta: &FeatureMeta,
    sparse: bool,
) -> Vec<f32> {
    let mut out = new_row(meta);
    if sparse {
        build_sparse(shard, instances, grads, meta, &mut out);
    } else {
        let mut scratch = Vec::new();
        build_dense(shard, instances, grads, meta, &mut out, &mut scratch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_data::synthetic::{generate, SparseGenConfig};
    use dimboost_data::SparseInstance;
    use dimboost_sketch::SplitCandidates;

    fn meta_for(ds: &Dataset, boundaries: Vec<f32>) -> FeatureMeta {
        let cands: Vec<SplitCandidates> = (0..ds.num_features())
            .map(|_| SplitCandidates::from_boundaries(boundaries.clone()))
            .collect();
        FeatureMeta::all_features(&cands)
    }

    fn uniform_grads(n: usize, g: f32, h: f32) -> Vec<GradPair> {
        vec![GradPair { g, h }; n]
    }

    #[test]
    fn sparse_equals_dense_on_toy_data() {
        let insts = vec![
            SparseInstance::new(vec![0, 2], vec![0.6, -1.5]).unwrap(),
            SparseInstance::new(vec![1], vec![2.0]).unwrap(),
            SparseInstance::empty(),
        ];
        let ds = Dataset::from_instances(&insts, vec![0.0; 3], 3).unwrap();
        let meta = meta_for(&ds, vec![-1.0, 1.0]);
        let grads = vec![
            GradPair { g: 1.0, h: 0.5 },
            GradPair { g: -2.0, h: 1.0 },
            GradPair { g: 3.0, h: 2.0 },
        ];
        let instances: Vec<u32> = vec![0, 1, 2];
        let sparse = build_row(&ds, &instances, &grads, &meta, true);
        let dense = build_row(&ds, &instances, &grads, &meta, false);
        for (s, d) in sparse.iter().zip(&dense) {
            assert!((s - d).abs() < 1e-5, "sparse={sparse:?} dense={dense:?}");
        }
    }

    #[test]
    fn sparse_equals_dense_on_generated_data() {
        let ds = generate(&SparseGenConfig::new(300, 50, 8, 11));
        let meta = meta_for(&ds, vec![0.25, 0.5, 1.0, 1.5]);
        let grads: Vec<GradPair> = (0..300)
            .map(|i| GradPair {
                g: ((i % 7) as f32 - 3.0) / 2.0,
                h: 0.1 + (i % 3) as f32,
            })
            .collect();
        let instances: Vec<u32> = (0..300).collect();
        let sparse = build_row(&ds, &instances, &grads, &meta, true);
        let dense = build_row(&ds, &instances, &grads, &meta, false);
        // Deterministic (fixed generator seed); the tolerance only covers
        // f32 accumulation-order differences between the two passes — the
        // sparse pass reconstructs each zero bucket as `total − Σ nonzero`,
        // so a bucket summing ~300 |g| ≤ 1.5 terms can differ by a few ulp
        // of the partial sums, far below 1e-3.
        for (i, (s, d)) in sparse.iter().zip(&dense).enumerate() {
            assert!((s - d).abs() < 1e-3, "elem {i}: {s} vs {d}");
        }
    }

    #[test]
    fn histogram_totals_equal_gradient_sums_per_feature() {
        let ds = generate(&SparseGenConfig::new(200, 20, 5, 3));
        let meta = meta_for(&ds, vec![0.5, 1.0]);
        let grads = uniform_grads(200, 0.5, 0.25);
        let instances: Vec<u32> = (0..200).collect();
        let row = build_row(&ds, &instances, &grads, &meta, true);
        let layout = meta.layout();
        for sf in 0..meta.num_sampled() {
            let g_total: f32 = (0..layout.num_buckets(sf))
                .map(|k| row[layout.g_index(sf, k)])
                .sum();
            let h_total: f32 = (0..layout.num_buckets(sf))
                .map(|k| row[layout.h_index(sf, k)])
                .sum();
            // The sparse pass cancels each nonzero's ±g against the zero
            // bucket, so per-feature totals should reproduce the exact sums
            // up to f32 cancellation error (sums ≤ 100), well under 1e-2.
            assert!((g_total - 100.0).abs() < 1e-2, "feature {sf}: G={g_total}");
            assert!((h_total - 50.0).abs() < 1e-2, "feature {sf}: H={h_total}");
        }
    }

    #[test]
    fn subset_of_instances_only_counts_those() {
        let ds = generate(&SparseGenConfig::new(100, 10, 4, 9));
        let meta = meta_for(&ds, vec![0.5]);
        let grads = uniform_grads(100, 1.0, 1.0);
        let instances: Vec<u32> = (0..50).collect();
        let row = build_row(&ds, &instances, &grads, &meta, true);
        let layout = meta.layout();
        let g_total: f32 = (0..layout.num_buckets(0))
            .map(|k| row[layout.g_index(0, k)])
            .sum();
        assert!((g_total - 50.0).abs() < 1e-3);
    }

    #[test]
    fn feature_sampling_restricts_row() {
        let insts = vec![SparseInstance::new(vec![0, 1, 2], vec![1.0, 1.0, 1.0]).unwrap()];
        let ds = Dataset::from_instances(&insts, vec![1.0], 3).unwrap();
        let cands: Vec<SplitCandidates> = (0..3)
            .map(|_| SplitCandidates::from_boundaries(vec![0.5]))
            .collect();
        let meta = FeatureMeta::new(vec![1], &cands);
        let grads = uniform_grads(1, 2.0, 1.0);
        let sparse = build_row(&ds, &[0], &grads, &meta, true);
        let dense = build_row(&ds, &[0], &grads, &meta, false);
        assert_eq!(sparse.len(), meta.layout().row_len());
        assert_eq!(sparse, dense);
        // Feature 1, value 1.0 > 0.5 -> bucket 1 (boundaries [0, 0.5]).
        let layout = meta.layout();
        assert_eq!(sparse[layout.g_index(0, 2)], 2.0);
    }

    #[test]
    fn empty_instance_list_gives_zero_row() {
        let ds = generate(&SparseGenConfig::new(10, 5, 2, 1));
        let meta = meta_for(&ds, vec![0.5]);
        let grads = uniform_grads(10, 1.0, 1.0);
        let row = build_row(&ds, &[], &grads, &meta, true);
        assert!(row.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn negative_values_bin_below_zero_bucket() {
        let insts = vec![SparseInstance::new(vec![0], vec![-2.0]).unwrap()];
        let ds = Dataset::from_instances(&insts, vec![0.0], 1).unwrap();
        let cands = vec![SplitCandidates::from_boundaries(vec![-1.0, 1.0])];
        let meta = FeatureMeta::all_features(&cands);
        let grads = uniform_grads(1, 1.0, 1.0);
        let row = build_row(&ds, &[0], &grads, &meta, true);
        let layout = meta.layout();
        // boundaries [-1, 0, 1]: -2.0 -> bucket 0; zero bucket is 1.
        assert_eq!(meta.candidates(0).zero_bucket(), 1);
        assert_eq!(row[layout.g_index(0, 0)], 1.0);
        assert_eq!(row[layout.g_index(0, 1)], 0.0);
    }
}
