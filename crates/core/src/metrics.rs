//! Evaluation metrics used in the paper's experiments: test error
//! (misclassification rate), training loss curves, and AUC.

/// Misclassification rate of probability predictions thresholded at 0.5
/// against {0, 1} labels (the paper's "test error", e.g. Table 5).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn classification_error(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "length mismatch");
    assert!(!probs.is_empty(), "empty input");
    let wrong = probs
        .iter()
        .zip(labels)
        .filter(|&(&p, &y)| (p >= 0.5) != (y >= 0.5))
        .count();
    wrong as f64 / probs.len() as f64
}

/// Mean logistic loss of probability predictions against {0, 1} labels.
pub fn log_loss(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "length mismatch");
    assert!(!probs.is_empty(), "empty input");
    let eps = 1e-7f64;
    let total: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = (p as f64).clamp(eps, 1.0 - eps);
            if y >= 0.5 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / probs.len() as f64
}

/// Misclassification rate for multiclass predictions: `preds` holds
/// predicted class indices (as `f32`, e.g. from
/// `GbdtModel::predict_dataset` on a softmax model), `labels` the true
/// class indices.
pub fn multiclass_error(preds: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    assert!(!preds.is_empty(), "empty input");
    let wrong = preds
        .iter()
        .zip(labels)
        .filter(|&(&p, &y)| p.round() as i64 != y.round() as i64)
        .count();
    wrong as f64 / preds.len() as f64
}

/// Mean softmax cross-entropy of per-class probability vectors against
/// class-index labels.
pub fn multiclass_log_loss(probas: &[Vec<f32>], labels: &[f32]) -> f64 {
    assert_eq!(probas.len(), labels.len(), "length mismatch");
    assert!(!probas.is_empty(), "empty input");
    let eps = 1e-7f64;
    let total: f64 = probas
        .iter()
        .zip(labels)
        .map(|(p, &y)| {
            let c = y.round() as usize;
            assert!(c < p.len(), "label {c} out of {} classes", p.len());
            -((p[c] as f64).clamp(eps, 1.0).ln())
        })
        .sum();
    total / probas.len() as f64
}

/// Root mean squared error (for regression runs).
pub fn rmse(preds: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    assert!(!preds.is_empty(), "empty input");
    let sse: f64 = preds
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let d = (p - y) as f64;
            d * d
        })
        .sum();
    (sse / preds.len() as f64).sqrt()
}

/// Area under the ROC curve via the rank statistic (ties averaged).
/// Returns 0.5 when one class is absent.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(!scores.is_empty(), "empty input");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

    // Average ranks over ties.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }

    let n_pos = labels.iter().filter(|&&y| y >= 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .enumerate()
        .filter(|&(_, &y)| y >= 0.5)
        .map(|(i, _)| ranks[i])
        .sum();
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_counts_mistakes() {
        let probs = [0.9, 0.1, 0.6, 0.4];
        let labels = [1.0, 0.0, 0.0, 1.0];
        assert!((classification_error(&probs, &labels) - 0.5).abs() < 1e-12);
        assert_eq!(classification_error(&[0.9], &[1.0]), 0.0);
        assert_eq!(classification_error(&[0.1], &[1.0]), 1.0);
    }

    #[test]
    fn log_loss_prefers_confident_correct() {
        let good = log_loss(&[0.99, 0.01], &[1.0, 0.0]);
        let bad = log_loss(&[0.6, 0.4], &[1.0, 0.0]);
        assert!(good < bad);
        // Perfectly uncertain: ln 2.
        assert!((log_loss(&[0.5, 0.5], &[1.0, 0.0]) - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn log_loss_clamps_extremes() {
        assert!(log_loss(&[0.0], &[1.0]).is_finite());
        assert!(log_loss(&[1.0], &[0.0]).is_finite());
    }

    #[test]
    fn multiclass_error_counts_mismatches() {
        let preds = [0.0, 1.0, 2.0, 2.0];
        let labels = [0.0, 1.0, 1.0, 2.0];
        assert!((multiclass_error(&preds, &labels) - 0.25).abs() < 1e-12);
        assert_eq!(multiclass_error(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn multiclass_log_loss_rewards_confidence() {
        let labels = [0.0, 2.0];
        let good = vec![vec![0.9, 0.05, 0.05], vec![0.1, 0.1, 0.8]];
        let bad = vec![vec![0.34, 0.33, 0.33], vec![0.4, 0.4, 0.2]];
        assert!(multiclass_log_loss(&good, &labels) < multiclass_log_loss(&bad, &labels));
        // Uniform over 3 classes: ln 3.
        let uniform = vec![vec![1.0 / 3.0; 3]; 2];
        assert!((multiclass_log_loss(&uniform, &labels) - 3.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn multiclass_log_loss_rejects_bad_label() {
        multiclass_log_loss(&[vec![0.5, 0.5]], &[5.0]);
    }

    #[test]
    fn rmse_basic() {
        assert!((rmse(&[1.0, 2.0], &[1.0, 4.0]) - 2.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(rmse(&[3.0], &[3.0]), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert!((auc(&[0.1, 0.2, 0.8, 0.9], &labels) - 1.0).abs() < 1e-12);
        assert!((auc(&[0.9, 0.8, 0.2, 0.1], &labels) - 0.0).abs() < 1e-12);
        assert!((auc(&[0.5, 0.5, 0.5, 0.5], &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_ties_and_degenerate_classes() {
        let labels = [0.0, 1.0, 1.0];
        let a = auc(&[0.5, 0.5, 0.9], &labels);
        assert!(a > 0.5 && a < 1.0);
        assert_eq!(auc(&[0.3, 0.7], &[1.0, 1.0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        classification_error(&[0.5], &[1.0, 0.0]);
    }
}
