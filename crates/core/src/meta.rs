//! Per-tree feature metadata: which features were sampled, their split
//! candidates, and the histogram layout derived from them.

use dimboost_ps::HistogramLayout;
use dimboost_sketch::SplitCandidates;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Feature metadata for one tree: the σ-sampled feature subset (Section 2.2,
/// "feature sampling"), each sampled feature's split candidates, and the
/// [`HistogramLayout`] describing one `GradHist` row over them.
#[derive(Debug, Clone)]
pub struct FeatureMeta {
    /// Sorted global ids of the sampled features.
    sampled: Vec<u32>,
    /// Split candidates per sampled feature (parallel to `sampled`).
    candidates: Vec<SplitCandidates>,
    /// Layout of one histogram row over the sampled features.
    layout: HistogramLayout,
    /// Dense map: global feature id → sampled index (`u32::MAX` = absent).
    map: Vec<u32>,
}

impl FeatureMeta {
    /// Builds metadata for a set of sampled global features, taking their
    /// candidates from the global per-feature candidate table.
    ///
    /// # Panics
    /// Panics if a sampled id is out of range of the candidate table.
    pub fn new(mut sampled: Vec<u32>, global_candidates: &[SplitCandidates]) -> Self {
        sampled.sort_unstable();
        sampled.dedup();
        let candidates: Vec<SplitCandidates> = sampled
            .iter()
            .map(|&f| global_candidates[f as usize].clone())
            .collect();
        let layout = HistogramLayout::with_zero_buckets(
            candidates.iter().map(|c| c.num_buckets() as u32).collect(),
            candidates.iter().map(|c| c.zero_bucket() as u32).collect(),
        );
        let mut map = vec![u32::MAX; global_candidates.len()];
        for (i, &f) in sampled.iter().enumerate() {
            map[f as usize] = i as u32;
        }
        Self {
            sampled,
            candidates,
            layout,
            map,
        }
    }

    /// Metadata covering all features (σ = 1).
    pub fn all_features(global_candidates: &[SplitCandidates]) -> Self {
        Self::new(
            (0..global_candidates.len() as u32).collect(),
            global_candidates,
        )
    }

    /// Deterministically samples `⌈σ·M⌉` features for tree `tree_index`.
    /// The leader worker runs this and publishes the result; every worker
    /// reproduces it from the same seed.
    pub fn sample_features(
        num_features: usize,
        ratio: f64,
        seed: u64,
        tree_index: usize,
    ) -> Vec<u32> {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "sampling ratio must be in [0, 1]"
        );
        if ratio >= 1.0 {
            return (0..num_features as u32).collect();
        }
        let take = ((num_features as f64 * ratio).ceil() as usize).clamp(1, num_features);
        let mut rng =
            StdRng::seed_from_u64(seed ^ (tree_index as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let mut ids: Vec<u32> = (0..num_features as u32).collect();
        ids.shuffle(&mut rng);
        ids.truncate(take);
        ids.sort_unstable();
        ids
    }

    /// Sorted global ids of the sampled features.
    pub fn sampled(&self) -> &[u32] {
        &self.sampled
    }

    /// Number of sampled features.
    pub fn num_sampled(&self) -> usize {
        self.sampled.len()
    }

    /// Candidates of the `sf`-th sampled feature.
    pub fn candidates(&self, sf: usize) -> &SplitCandidates {
        &self.candidates[sf]
    }

    /// The histogram row layout.
    pub fn layout(&self) -> &HistogramLayout {
        &self.layout
    }

    /// Maps a global feature id to its sampled index, if sampled.
    #[inline]
    pub fn sampled_index(&self, global: u32) -> Option<usize> {
        match self.map.get(global as usize) {
            Some(&i) if i != u32::MAX => Some(i as usize),
            _ => None,
        }
    }

    /// Maps a sampled index back to the global feature id.
    pub fn global_id(&self, sf: usize) -> u32 {
        self.sampled[sf]
    }

    /// The split threshold tested between buckets `bucket` and `bucket + 1`
    /// of sampled feature `sf`.
    pub fn threshold(&self, sf: usize, bucket: usize) -> f32 {
        self.candidates[sf].threshold(bucket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(n: usize) -> Vec<SplitCandidates> {
        (0..n)
            .map(|f| SplitCandidates::from_boundaries(vec![f as f32 + 1.0, f as f32 + 2.0]))
            .collect()
    }

    #[test]
    fn all_features_meta() {
        let meta = FeatureMeta::all_features(&cands(4));
        assert_eq!(meta.num_sampled(), 4);
        assert_eq!(meta.sampled(), &[0, 1, 2, 3]);
        assert_eq!(meta.sampled_index(2), Some(2));
        assert_eq!(meta.global_id(3), 3);
        // 3 boundaries (incl. 0) -> 4 buckets per feature -> 8 elems each.
        assert_eq!(meta.layout().row_len(), 4 * 8);
    }

    #[test]
    fn subset_mapping() {
        let meta = FeatureMeta::new(vec![3, 1], &cands(5));
        assert_eq!(meta.sampled(), &[1, 3]);
        assert_eq!(meta.sampled_index(1), Some(0));
        assert_eq!(meta.sampled_index(3), Some(1));
        assert_eq!(meta.sampled_index(0), None);
        assert_eq!(meta.sampled_index(4), None);
        assert_eq!(meta.sampled_index(99), None);
        assert_eq!(meta.global_id(1), 3);
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let a = FeatureMeta::sample_features(100, 0.3, 7, 2);
        let b = FeatureMeta::sample_features(100, 0.3, 7, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let c = FeatureMeta::sample_features(100, 0.3, 7, 3);
        assert_ne!(a, c, "different trees sample different subsets");
    }

    #[test]
    fn full_ratio_returns_everything() {
        let s = FeatureMeta::sample_features(10, 1.0, 0, 0);
        assert_eq!(s, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn tiny_ratio_keeps_at_least_one() {
        let s = FeatureMeta::sample_features(10, 0.01, 0, 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn threshold_lookup() {
        let meta = FeatureMeta::new(vec![2], &cands(3));
        // feature 2 boundaries: [0.0, 3.0, 4.0]
        assert_eq!(meta.threshold(0, 0), 0.0);
        assert_eq!(meta.threshold(0, 1), 3.0);
        assert_eq!(meta.threshold(0, 2), 4.0);
    }
}
