//! The node-to-instance index (Section 5.2, Figure 9).
//!
//! An array of instance ids plus, for every tree node, the contiguous range
//! of that array holding its instances. Splitting a node rearranges only its
//! own range, after which the two child ranges are recorded. Threads
//! building histograms for different nodes read disjoint ranges — no scan
//! of the whole dataset, no locking.
//!
//! The split is a **stable** partition (Figure 9 describes a two-pointer
//! swap pass; we keep each side's relative order instead, at the cost of a
//! right-side buffer). Stability is load-bearing: the root starts in
//! ascending row order, so every node's instance list stays ascending
//! forever, which makes the per-node builders' f32 addition order identical
//! to the layer-fused kernel's single ascending row sweep
//! (`crate::fused`) — the basis of their bit-equality contract.

/// The node-to-instance index for one worker's shard during one tree.
#[derive(Debug, Clone)]
pub struct NodeIndex {
    /// Instance ids, permuted so that every node's instances are contiguous.
    positions: Vec<u32>,
    /// Per tree node: `(start, end)` into `positions`, or `None` if the node
    /// has not been materialized.
    ranges: Vec<Option<(u32, u32)>>,
}

impl NodeIndex {
    /// Creates the index for `num_instances` instances and a tree with
    /// `capacity` node slots; all instances start at the root (node 0).
    pub fn new(num_instances: usize, capacity: usize) -> Self {
        Self::from_instances((0..num_instances as u32).collect(), capacity)
    }

    /// Creates the index over an explicit instance subset (row subsampling:
    /// only the sampled instances participate in histogram construction).
    pub fn from_instances(instances: Vec<u32>, capacity: usize) -> Self {
        let mut ranges = vec![None; capacity];
        if !ranges.is_empty() {
            ranges[0] = Some((0, instances.len() as u32));
        }
        Self {
            positions: instances,
            ranges,
        }
    }

    /// Instance ids of `node` (empty if the node is absent or empty).
    pub fn instances(&self, node: u32) -> &[u32] {
        match self.ranges.get(node as usize).copied().flatten() {
            Some((l, r)) => &self.positions[l as usize..r as usize],
            None => &[],
        }
    }

    /// Number of instances at `node`.
    pub fn count(&self, node: u32) -> usize {
        self.instances(node).len()
    }

    /// True if `node` has a materialized (possibly empty) range.
    pub fn is_materialized(&self, node: u32) -> bool {
        self.ranges.get(node as usize).copied().flatten().is_some()
    }

    /// Splits `node`'s range between children `left` and `right`:
    /// instances for which `goes_left` holds move to the front, and the
    /// children's ranges are recorded. Returns the number of instances sent
    /// left.
    ///
    /// The partition is **stable** — both children keep their parent's
    /// relative order, so instance lists stay in ascending row order all
    /// the way down the tree (see the module docs for why the fused kernel
    /// depends on this).
    ///
    /// # Panics
    /// Panics if `node` has no range or a child slot is out of bounds.
    pub fn split(
        &mut self,
        node: u32,
        left: u32,
        right: u32,
        mut goes_left: impl FnMut(u32) -> bool,
    ) -> usize {
        let (l, r) = self.ranges[node as usize]
            .unwrap_or_else(|| panic!("node {node} has no instance range"));
        let (l, r) = (l as usize, r as usize);
        // Stable partition: left-goers compact in place in order; the
        // right-goers are buffered and written back after them.
        let mut rights: Vec<u32> = Vec::new();
        let mut write = l;
        for read in l..r {
            let id = self.positions[read];
            if goes_left(id) {
                self.positions[write] = id;
                write += 1;
            } else {
                rights.push(id);
            }
        }
        self.positions[write..r].copy_from_slice(&rights);
        let mid = write as u32;
        self.ranges[left as usize] = Some((l as u32, mid));
        self.ranges[right as usize] = Some((mid, r as u32));
        write - l
    }

    /// Total instances tracked.
    pub fn num_instances(&self) -> usize {
        self.positions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn starts_with_everything_at_root() {
        let idx = NodeIndex::new(5, 7);
        assert_eq!(idx.instances(0), &[0, 1, 2, 3, 4]);
        assert_eq!(idx.count(0), 5);
        assert!(idx.instances(1).is_empty());
        assert!(!idx.is_materialized(1));
    }

    #[test]
    fn split_partitions_by_predicate() {
        let mut idx = NodeIndex::new(6, 7);
        // Evens left, odds right.
        let n_left = idx.split(0, 1, 2, |i| i % 2 == 0);
        assert_eq!(n_left, 3);
        let left: HashSet<u32> = idx.instances(1).iter().copied().collect();
        let right: HashSet<u32> = idx.instances(2).iter().copied().collect();
        assert_eq!(left, HashSet::from([0, 2, 4]));
        assert_eq!(right, HashSet::from([1, 3, 5]));
        // Parent's range is now covered by the children.
        assert_eq!(idx.count(1) + idx.count(2), 6);
    }

    #[test]
    fn nested_splits_stay_disjoint() {
        let mut idx = NodeIndex::new(100, 15);
        idx.split(0, 1, 2, |i| i < 50);
        idx.split(1, 3, 4, |i| i < 25);
        idx.split(2, 5, 6, |i| i < 75);
        let collect = |n: u32| -> HashSet<u32> { idx.instances(n).iter().copied().collect() };
        let (a, b, c, d) = (collect(3), collect(4), collect(5), collect(6));
        assert_eq!(a.len() + b.len() + c.len() + d.len(), 100);
        assert!(a.iter().all(|&i| i < 25));
        assert!(b.iter().all(|&i| (25..50).contains(&i)));
        assert!(c.iter().all(|&i| (50..75).contains(&i)));
        assert!(d.iter().all(|&i| i >= 75));
    }

    #[test]
    fn all_left_and_all_right() {
        let mut idx = NodeIndex::new(4, 7);
        idx.split(0, 1, 2, |_| true);
        assert_eq!(idx.count(1), 4);
        assert_eq!(idx.count(2), 0);
        assert!(idx.is_materialized(2));

        let mut idx = NodeIndex::new(4, 7);
        idx.split(0, 1, 2, |_| false);
        assert_eq!(idx.count(1), 0);
        assert_eq!(idx.count(2), 4);
    }

    #[test]
    fn empty_node_splits_to_empty_children() {
        let mut idx = NodeIndex::new(4, 15);
        idx.split(0, 1, 2, |_| true);
        // node 2 is empty; splitting it materializes empty children.
        idx.split(2, 5, 6, |_| true);
        assert_eq!(idx.count(5), 0);
        assert_eq!(idx.count(6), 0);
        assert!(idx.is_materialized(5));
    }

    #[test]
    fn zero_instances() {
        let idx = NodeIndex::new(0, 3);
        assert_eq!(idx.count(0), 0);
        assert_eq!(idx.num_instances(), 0);
    }

    #[test]
    #[should_panic(expected = "no instance range")]
    fn splitting_unmaterialized_node_panics() {
        let mut idx = NodeIndex::new(4, 7);
        idx.split(5, 1, 2, |_| true);
    }

    // The fused layer kernel's bit-equality contract requires every node's
    // instance list to stay in ascending row order — i.e. the split must be
    // a stable partition, not the two-pointer swap that scrambles order.
    #[test]
    fn split_is_stable_and_preserves_ascending_order() {
        let mut idx = NodeIndex::new(64, 15);
        idx.split(0, 1, 2, |i| i % 3 == 0);
        idx.split(1, 3, 4, |i| i % 2 == 0);
        idx.split(2, 5, 6, |i| i % 5 < 2);
        // A split rearranges the parent's own range, so only the current
        // leaves are guaranteed ascending — which is all the fused kernel
        // ever builds from.
        for node in [3u32, 4, 5, 6] {
            let inst = idx.instances(node);
            assert!(
                inst.windows(2).all(|w| w[0] < w[1]),
                "node {node} not ascending: {inst:?}"
            );
        }
    }

    #[test]
    fn predicate_sees_instance_ids_not_positions() {
        let mut idx = NodeIndex::new(6, 7);
        idx.split(0, 1, 2, |i| i >= 3); // reverse order split
        let left: HashSet<u32> = idx.instances(1).iter().copied().collect();
        assert_eq!(left, HashSet::from([3, 4, 5]));
    }
}
