//! Structured observability for training runs.
//!
//! Three layers, all plain structs filled in by the trainer:
//!
//! * [`SpanTimer`] — wall-clock spans per execution-plan phase *per worker*.
//!   The distributed wall time of a phase is the max across workers (they
//!   run concurrently on separate machines); keeping every worker's time
//!   also exposes the *skew* (max − min), the straggler signal the paper's
//!   load-balancing sections care about.
//! * [`RoundRecord`] — per-boosting-round training telemetry: histogram
//!   bytes before/after quantization, quantization scales, chosen split
//!   gains, and instance counts per built node.
//! * [`RunReport`] — the assembled per-phase / per-round report attached to
//!   `TrainOutput`, serializable to JSON with a stable field order.
//!
//! Wall-clock fields vary run to run; [`RunReport::canonical_json`] omits
//! them so that two runs with the same config and seed produce *identical*
//! documents (the determinism tests diff exactly that form).

use std::time::Instant;

use dimboost_simnet::registry::MetricExport;
use dimboost_simnet::wire::SparseWireStats;
use dimboost_simnet::{
    CommLedger, CommStats, FaultSummary, FixedHistogram, MembershipSummary, Phase, TraceBus,
};

/// Accumulates per-phase, per-worker wall-clock seconds.
///
/// The running `total_secs` sums, per timed span, the maximum across
/// workers — the same quantity the old aggregate breakdown reported — while
/// the per-worker table feeds the per-phase max/skew in the run report.
#[derive(Debug, Clone)]
pub struct SpanTimer {
    num_workers: usize,
    total_secs: f64,
    /// `[phase][worker]` accumulated seconds.
    per_phase_worker: Vec<Vec<f64>>,
    /// Max-across-workers seconds accumulated per boosting round.
    round_secs: Vec<f64>,
    current_round: Option<usize>,
    /// Optional trace bus: every worker slice is mirrored as a Compute
    /// event (wall seconds annotated, zero simulated duration).
    trace: Option<TraceBus>,
}

impl SpanTimer {
    /// A timer for `num_workers` simulated workers.
    pub fn new(num_workers: usize) -> Self {
        Self {
            num_workers,
            total_secs: 0.0,
            per_phase_worker: vec![vec![0.0; num_workers]; Phase::COUNT],
            round_secs: Vec::new(),
            current_round: None,
            trace: None,
        }
    }

    /// Mirrors every subsequent timed span onto `bus` as Compute events and
    /// into its `wall/phase_secs/*` histograms.
    pub fn attach_trace(&mut self, bus: TraceBus) {
        self.trace = Some(bus);
    }

    /// Marks the start of boosting round `round`; subsequent spans also
    /// accrue to that round's compute total.
    pub fn begin_round(&mut self, round: usize) {
        self.current_round = Some(round);
        if self.round_secs.len() <= round {
            self.round_secs.resize(round + 1, 0.0);
        }
    }

    /// Times `f` once per worker slot under `phase`, recording each
    /// worker's wall time, and adds the maximum to the run total (workers
    /// run concurrently on separate machines in the real deployment).
    pub fn phase<W, T>(
        &mut self,
        phase: Phase,
        workers: &mut [W],
        mut f: impl FnMut(&mut W) -> T,
    ) -> Vec<T> {
        debug_assert_eq!(workers.len(), self.num_workers);
        let mut max = 0.0f64;
        let mut outs = Vec::with_capacity(workers.len());
        for (slot, w) in workers.iter_mut().enumerate() {
            let start = Instant::now();
            outs.push(f(w));
            let secs = start.elapsed().as_secs_f64();
            self.per_phase_worker[phase.index()][slot] += secs;
            if let Some(bus) = &self.trace {
                bus.on_compute(slot as u32, phase, secs);
            }
            max = max.max(secs);
        }
        self.total_secs += max;
        if let Some(round) = self.current_round {
            self.round_secs[round] += max;
        }
        outs
    }

    /// Total compute seconds (per span, the max across workers, summed).
    pub fn total_secs(&self) -> f64 {
        self.total_secs
    }

    /// Compute seconds accrued to round `round` (0.0 if never timed).
    pub fn round_secs(&self, round: usize) -> f64 {
        self.round_secs.get(round).copied().unwrap_or(0.0)
    }

    /// Per-worker accumulated seconds for one phase.
    pub fn worker_secs(&self, phase: Phase) -> &[f64] {
        &self.per_phase_worker[phase.index()]
    }

    /// `(max, skew)` across workers for one phase, where skew is max − min.
    pub fn phase_compute(&self, phase: Phase) -> (f64, f64) {
        let secs = self.worker_secs(phase);
        if secs.is_empty() {
            return (0.0, 0.0);
        }
        let max = secs.iter().cloned().fold(f64::MIN, f64::max);
        let min = secs.iter().cloned().fold(f64::MAX, f64::min);
        (max, max - min)
    }
}

/// Instance count of one tree node when its histogram was built, summed
/// across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInstances {
    /// Node id within its tree (heap order).
    pub node: u32,
    /// Instances that reached the node, across all shards.
    pub instances: u64,
}

/// Telemetry for one boosting round (all of the round's trees, so `k`
/// trees under softmax).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Zero-based boosting round.
    pub round: usize,
    /// Trees in the ensemble after this round.
    pub trees: usize,
    /// Mean training loss after this round.
    pub train_loss: f64,
    /// Wall-clock compute seconds accrued to this round (max across
    /// workers per span). Varies run to run; omitted from canonical JSON.
    pub compute_secs: f64,
    /// Histogram row bytes as full-precision `f32` (what an uncompressed
    /// push would have moved), summed over workers, nodes, and layers.
    pub hist_bytes_raw: u64,
    /// Histogram row bytes actually pushed (equals `hist_bytes_raw` at
    /// full precision; the quantized wire size under low precision).
    pub hist_bytes_wire: u64,
    /// Largest per-block quantization scale (max-abs `c`) observed this
    /// round; 0 when quantization is off.
    pub max_quant_scale: f32,
    /// Gain of every accepted split, in decision order.
    pub split_gains: Vec<f32>,
    /// Instance counts of the nodes whose histograms were built, in build
    /// order.
    pub node_instances: Vec<NodeInstances>,
    /// Per-encoding frame/byte tallies of the sparse histogram exchange
    /// (`hist_bytes_wire` split by the dense / bitmap / runs layout each
    /// message chose); `None` (and omitted from JSON) when the run used the
    /// dense exchange.
    pub sparse_frames: Option<SparseWireStats>,
    /// Quantized-accumulator telemetry (`Optimizations::quantized_hist`);
    /// `None` (and omitted from JSON) for f32-accumulator runs. Every field
    /// is a pure function of `(config, shards, layer widths)` — never of
    /// threads or batch size — so it survives the cross-thread-count
    /// `report_diff` gate.
    pub quant_hist: Option<QuantHistRecord>,
}

/// Telemetry of the quantized histogram accumulator for one round
/// (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantHistRecord {
    /// Effective fixed-point bit width (the configured `quant_hist_bits`
    /// after the per-shard overflow demotion; min across shards).
    pub bits: u8,
    /// Largest cache-tile size (in node slots) any layer of the round used
    /// (see `fused::quant_tile_nodes`).
    pub tile_nodes: u64,
}

impl RoundRecord {
    /// An empty record for `round`.
    pub fn new(round: usize) -> Self {
        Self {
            round,
            trees: 0,
            train_loss: 0.0,
            compute_secs: 0.0,
            hist_bytes_raw: 0,
            hist_bytes_wire: 0,
            max_quant_scale: 0.0,
            split_gains: Vec::new(),
            node_instances: Vec::new(),
            sparse_frames: None,
            quant_hist: None,
        }
    }
}

/// One phase's line in the run report: compute max/skew across workers and
/// the phase's slice of the communication ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Which phase.
    pub phase: Phase,
    /// Accumulated wall seconds of the slowest worker in this phase.
    pub compute_max_secs: f64,
    /// Median per-worker wall seconds (interpolated from a fixed-bucket
    /// histogram over the worker times).
    pub compute_p50_secs: f64,
    /// 99th-percentile per-worker wall seconds (≈ the straggler).
    pub compute_p99_secs: f64,
    /// Straggler skew: slowest minus fastest worker, in seconds.
    pub compute_skew_secs: f64,
    /// Communication attributed to this phase.
    pub comm: CommStats,
}

/// Run-level rollup of the sparse histogram exchange: what the dense
/// exchange would have moved, what the adaptive frames actually moved, and
/// how the messages split across the three layouts. Deterministic in
/// `(config, seed, shards)` — every field counts simulated wire bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsitySummary {
    /// Full-precision `f32` bytes the dense exchange would have pushed.
    pub raw_bytes: u64,
    /// Bytes the adaptive sparse frames actually pushed.
    pub wire_bytes: u64,
    /// `raw_bytes / wire_bytes` (0 when nothing was pushed).
    pub reduction_x: f64,
    /// Frame/byte tallies per encoding, summed over all rounds.
    pub frames: SparseWireStats,
}

impl SparsitySummary {
    /// Rolls up the per-round tallies; `None` if no round recorded sparse
    /// frames (the run used the dense exchange).
    pub fn from_rounds(rounds: &[RoundRecord]) -> Option<Self> {
        let mut frames = SparseWireStats::default();
        let mut raw_bytes = 0u64;
        let mut any = false;
        for r in rounds {
            if let Some(s) = &r.sparse_frames {
                frames.merge(s);
                raw_bytes += r.hist_bytes_raw;
                any = true;
            }
        }
        if !any {
            return None;
        }
        let wire_bytes = frames.total_bytes();
        Some(Self {
            raw_bytes,
            wire_bytes,
            reduction_x: if wire_bytes == 0 {
                0.0
            } else {
                raw_bytes as f64 / wire_bytes as f64
            },
            frames,
        })
    }
}

/// The structured result of a training run: per-phase compute and
/// communication plus per-round training telemetry.
///
/// Invariant (tested): the per-phase `comm` entries sum to exactly the
/// aggregate `CommStats` the breakdown reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Simulated worker count.
    pub workers: usize,
    /// Parameter-server count.
    pub servers: usize,
    /// Total compute seconds (max across workers per span, summed).
    pub compute_secs: f64,
    /// Aggregate communication over all phases.
    pub comm: CommStats,
    /// Per-phase breakdown, in execution-plan order; phases with no
    /// activity are omitted.
    pub phases: Vec<PhaseReport>,
    /// Per-round telemetry, one entry per boosting round trained.
    pub rounds: Vec<RoundRecord>,
    /// Flat metric exports (counters, gauges, histogram percentiles) from
    /// the run's metrics registry, sorted by name. Deterministic `sim/`
    /// metrics appear in the canonical document; wall-clock `wall/` metrics
    /// only in the full one.
    pub percentiles: Vec<MetricExport>,
    /// Fault-injection summary when the run executed under a
    /// [`dimboost_simnet::FaultPlan`]; `None` (and omitted from JSON) for
    /// clean runs. All fields land on the simulated clock, so the section
    /// is deterministic across reruns of the same plan.
    pub faults: Option<FaultSummary>,
    /// Elastic-membership summary when the run's fault plan scripted
    /// join/leave/speed/speculate events; `None` (and omitted from JSON)
    /// for fixed-membership runs. All fields land on the simulated clock,
    /// so the section is deterministic across reruns of the same plan.
    pub membership: Option<MembershipSummary>,
    /// The boosting round this run resumed from when it was restored from
    /// a checkpoint; `None` (omitted from JSON) for uninterrupted runs.
    pub resumed_from_round: Option<usize>,
    /// Sparse-exchange rollup when the run trained with `--sparse-wire`;
    /// `None` (and omitted from JSON) for dense-exchange runs. All fields
    /// count simulated wire bytes, so the section is deterministic.
    pub sparsity: Option<SparsitySummary>,
}

impl RunReport {
    /// Assembles a report from the trainer's span timer, the parameter
    /// server's ledger, and the collected round records.
    pub fn assemble(
        workers: usize,
        servers: usize,
        timer: &SpanTimer,
        ledger: &CommLedger,
        rounds: Vec<RoundRecord>,
    ) -> Self {
        Self::assemble_with_metrics(workers, servers, timer, ledger, rounds, Vec::new())
    }

    /// [`RunReport::assemble`] plus the run's flat metric exports (the
    /// `percentiles` section).
    pub fn assemble_with_metrics(
        workers: usize,
        servers: usize,
        timer: &SpanTimer,
        ledger: &CommLedger,
        rounds: Vec<RoundRecord>,
        percentiles: Vec<MetricExport>,
    ) -> Self {
        let phases = Phase::ALL
            .into_iter()
            .filter_map(|phase| {
                let (max, skew) = timer.phase_compute(phase);
                let comm = *ledger.phase(phase);
                if max == 0.0 && comm.is_empty() {
                    return None;
                }
                let (p50, p99) = worker_percentiles(timer.worker_secs(phase));
                Some(PhaseReport {
                    phase,
                    compute_max_secs: max,
                    compute_p50_secs: p50,
                    compute_p99_secs: p99,
                    compute_skew_secs: skew,
                    comm,
                })
            })
            .collect();
        let sparsity = SparsitySummary::from_rounds(&rounds);
        Self {
            workers,
            servers,
            compute_secs: timer.total_secs(),
            comm: ledger.total(),
            phases,
            rounds,
            percentiles,
            faults: None,
            membership: None,
            resumed_from_round: None,
            sparsity,
        }
    }

    /// This phase's report line, if the phase saw any activity.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// Full JSON document, wall-clock timings included.
    pub fn json(&self) -> String {
        self.to_json(true)
    }

    /// JSON with the wall-clock compute fields omitted: byte counts,
    /// packages, simulated time, scales, gains, and instance counts are all
    /// deterministic in `(config, seed, shards)`, so two identical runs
    /// produce byte-identical canonical documents.
    pub fn canonical_json(&self) -> String {
        self.to_json(false)
    }

    fn to_json(&self, timings: bool) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_field(&mut out, "workers", &self.workers.to_string(), true);
        push_field(&mut out, "servers", &self.servers.to_string(), false);
        if timings {
            push_field(&mut out, "compute_secs", &fmt_f64(self.compute_secs), false);
        }
        out.push_str(",\"comm\":");
        push_comm(&mut out, &self.comm);
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_field(&mut out, "phase", &format!("\"{}\"", p.phase.name()), true);
            if timings {
                push_field(
                    &mut out,
                    "compute_max_secs",
                    &fmt_f64(p.compute_max_secs),
                    false,
                );
                push_field(
                    &mut out,
                    "compute_p50_secs",
                    &fmt_f64(p.compute_p50_secs),
                    false,
                );
                push_field(
                    &mut out,
                    "compute_p99_secs",
                    &fmt_f64(p.compute_p99_secs),
                    false,
                );
                push_field(
                    &mut out,
                    "compute_skew_secs",
                    &fmt_f64(p.compute_skew_secs),
                    false,
                );
            }
            out.push_str(",\"comm\":");
            push_comm(&mut out, &p.comm);
            out.push('}');
        }
        out.push_str("],\"rounds\":[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_field(&mut out, "round", &r.round.to_string(), true);
            push_field(&mut out, "trees", &r.trees.to_string(), false);
            push_field(&mut out, "train_loss", &fmt_f64(r.train_loss), false);
            if timings {
                push_field(&mut out, "compute_secs", &fmt_f64(r.compute_secs), false);
            }
            push_field(
                &mut out,
                "hist_bytes_raw",
                &r.hist_bytes_raw.to_string(),
                false,
            );
            push_field(
                &mut out,
                "hist_bytes_wire",
                &r.hist_bytes_wire.to_string(),
                false,
            );
            push_field(
                &mut out,
                "max_quant_scale",
                &fmt_f32(r.max_quant_scale),
                false,
            );
            out.push_str(",\"split_gains\":[");
            for (j, g) in r.split_gains.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&fmt_f32(*g));
            }
            out.push_str("],\"node_instances\":[");
            for (j, n) in r.node_instances.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"node\":{},\"instances\":{}}}",
                    n.node, n.instances
                ));
            }
            out.push(']');
            if let Some(s) = &r.sparse_frames {
                out.push_str(",\"sparse_frames\":");
                push_sparse_frames(&mut out, s);
            }
            if let Some(q) = &r.quant_hist {
                // Deterministic in (config, shards, layer widths): safe for
                // canonical JSON and for cross-thread-count report diffs.
                out.push_str(&format!(
                    ",\"quant_hist\":{{\"bits\":{},\"tile_nodes\":{}}}",
                    q.bits, q.tile_nodes
                ));
            }
            out.push('}');
        }
        out.push_str("],\"percentiles\":[");
        let mut first_metric = true;
        for m in &self.percentiles {
            if !timings && !m.deterministic {
                continue;
            }
            if !first_metric {
                out.push(',');
            }
            first_metric = false;
            out.push('{');
            push_field(&mut out, "name", &format!("\"{}\"", m.name), true);
            push_field(&mut out, "kind", &format!("\"{}\"", m.kind), false);
            push_field(&mut out, "count", &m.count.to_string(), false);
            push_field(&mut out, "value", &fmt_f64(m.value), false);
            push_field(&mut out, "min", &fmt_f64(m.min), false);
            push_field(&mut out, "max", &fmt_f64(m.max), false);
            push_field(&mut out, "p50", &fmt_f64(m.p50), false);
            push_field(&mut out, "p95", &fmt_f64(m.p95), false);
            push_field(&mut out, "p99", &fmt_f64(m.p99), false);
            out.push('}');
        }
        out.push(']');
        if let Some(f) = &self.faults {
            out.push_str(",\"faults\":{");
            push_field(&mut out, "plan_seed", &f.plan_seed.to_string(), true);
            push_field(
                &mut out,
                "request_drops",
                &f.request_drops.to_string(),
                false,
            );
            push_field(&mut out, "ack_drops", &f.ack_drops.to_string(), false);
            push_field(&mut out, "duplicates", &f.duplicates.to_string(), false);
            push_field(&mut out, "dedup_hits", &f.dedup_hits.to_string(), false);
            push_field(&mut out, "retries", &f.retries.to_string(), false);
            push_field(
                &mut out,
                "forced_deliveries",
                &f.forced_deliveries.to_string(),
                false,
            );
            push_field(&mut out, "backoff_secs", &fmt_f64(f.backoff_secs), false);
            push_field(
                &mut out,
                "straggler_secs",
                &fmt_f64(f.straggler_secs),
                false,
            );
            push_field(
                &mut out,
                "outage_wait_secs",
                &fmt_f64(f.outage_wait_secs),
                false,
            );
            push_field(&mut out, "crashes", &f.crashes.to_string(), false);
            push_field(&mut out, "workers_lost", &f.workers_lost.to_string(), false);
            out.push('}');
        }
        if let Some(m) = &self.membership {
            out.push_str(",\"membership\":{");
            push_field(&mut out, "joins", &m.joins.to_string(), true);
            push_field(&mut out, "leaves", &m.leaves.to_string(), false);
            push_field(
                &mut out,
                "stripes_moved",
                &m.stripes_moved.to_string(),
                false,
            );
            push_field(&mut out, "epoch", &m.epoch.to_string(), false);
            push_field(
                &mut out,
                "speculative_backups",
                &m.speculative_backups.to_string(),
                false,
            );
            push_field(&mut out, "backup_wins", &m.backup_wins.to_string(), false);
            push_field(
                &mut out,
                "stale_rejects",
                &m.stale_rejects.to_string(),
                false,
            );
            push_field(&mut out, "handoff_secs", &fmt_f64(m.handoff_secs), false);
            push_field(&mut out, "reshard_secs", &fmt_f64(m.reshard_secs), false);
            push_field(&mut out, "elastic_secs", &fmt_f64(m.elastic_secs), false);
            push_field(
                &mut out,
                "speculation_saved_secs",
                &fmt_f64(m.speculation_saved_secs),
                false,
            );
            out.push('}');
        }
        if let Some(s) = &self.sparsity {
            out.push_str(",\"sparsity\":{");
            push_field(&mut out, "raw_bytes", &s.raw_bytes.to_string(), true);
            push_field(&mut out, "wire_bytes", &s.wire_bytes.to_string(), false);
            push_field(&mut out, "reduction_x", &fmt_f64(s.reduction_x), false);
            out.push_str(",\"frames\":");
            push_sparse_frames(&mut out, &s.frames);
            out.push('}');
        }
        if let Some(round) = self.resumed_from_round {
            push_field(&mut out, "resumed_from_round", &round.to_string(), false);
        }
        out.push('}');
        out
    }

    /// Multi-line human-readable summary (per-phase table), for the CLI.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run report: {} worker(s), {} server(s), compute {:.3}s, comm {} bytes / {} pkgs / {:.3}s simulated\n",
            self.workers,
            self.servers,
            self.compute_secs,
            self.comm.bytes,
            self.comm.packages,
            self.comm.sim_time.seconds(),
        ));
        out.push_str(
            "phase            compute-max  p50        p99        skew       comm-bytes  pkgs    sim-secs\n",
        );
        for p in &self.phases {
            out.push_str(&format!(
                "{:<16} {:>10.4}s {:>8.4}s {:>8.4}s {:>8.4}s {:>11} {:>6} {:>9.4}\n",
                p.phase.name(),
                p.compute_max_secs,
                p.compute_p50_secs,
                p.compute_p99_secs,
                p.compute_skew_secs,
                p.comm.bytes,
                p.comm.packages,
                p.comm.sim_time.seconds(),
            ));
        }
        if let Some(s) = &self.sparsity {
            out.push_str(&format!(
                "sparse exchange: {} raw -> {} wire bytes ({:.1}x smaller); frames dense/bitmap/runs = {}/{}/{}\n",
                s.raw_bytes,
                s.wire_bytes,
                s.reduction_x,
                s.frames.frames[0],
                s.frames.frames[1],
                s.frames.frames[2],
            ));
        }
        out
    }
}

/// `{"dense":…,"dense_bytes":…,"bitmap":…,…}` — one flat object per
/// [`SparseWireStats`], shared by the per-round and run-level sections.
fn push_sparse_frames(out: &mut String, s: &SparseWireStats) {
    out.push('{');
    push_field(out, "dense", &s.frames[0].to_string(), true);
    push_field(out, "dense_bytes", &s.bytes[0].to_string(), false);
    push_field(out, "bitmap", &s.frames[1].to_string(), false);
    push_field(out, "bitmap_bytes", &s.bytes[1].to_string(), false);
    push_field(out, "runs", &s.frames[2].to_string(), false);
    push_field(out, "runs_bytes", &s.bytes[2].to_string(), false);
    out.push('}');
}

/// Sum of the per-phase communication entries (should equal `comm`).
pub fn sum_phase_comm(report: &RunReport) -> CommStats {
    let mut total = CommStats::new();
    for p in &report.phases {
        total.absorb(&p.comm);
    }
    total
}

/// `(p50, p99)` of the per-worker wall seconds for one phase, estimated
/// through the same fixed-bucket histogram the metrics registry uses.
fn worker_percentiles(secs: &[f64]) -> (f64, f64) {
    let mut hist = FixedHistogram::log_spaced(1e-9, 1e4, 3);
    for &s in secs {
        // Zero (untimed slot) still counts: a worker that did no work in a
        // phase is the far end of the straggler distribution.
        hist.observe(s.max(0.0));
    }
    (hist.quantile(0.50), hist.quantile(0.99))
}

fn push_field(out: &mut String, key: &str, value: &str, first: bool) {
    if !first {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
}

fn push_comm(out: &mut String, c: &CommStats) {
    out.push_str(&format!(
        "{{\"bytes\":{},\"packages\":{},\"sim_time_secs\":{}}}",
        c.bytes,
        c.packages,
        fmt_f64(c.sim_time.seconds())
    ));
}

/// Shortest round-trip decimal form — `f64` Display is deterministic and
/// platform-independent, which the canonical JSON relies on.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn fmt_f32(v: f32) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_simnet::SimTime;

    fn sample_report() -> RunReport {
        let mut timer = SpanTimer::new(2);
        timer.begin_round(0);
        timer.phase(Phase::BuildHistogram, &mut [0u8, 1], |w| {
            // Unequal busy-wait so worker times differ measurably.
            let spin = 1_000 * (*w as u64 + 1);
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
        });
        let mut ledger = CommLedger::new();
        ledger.record(Phase::BuildHistogram, 1000, 4, SimTime(0.25));
        ledger.record(Phase::FindSplit, 96, 2, SimTime(0.01));
        let mut round = RoundRecord::new(0);
        round.trees = 1;
        round.train_loss = 0.5;
        round.compute_secs = timer.round_secs(0);
        round.hist_bytes_raw = 4000;
        round.hist_bytes_wire = 1000;
        round.max_quant_scale = 1.5;
        round.split_gains = vec![2.25, 0.5];
        round.node_instances = vec![NodeInstances {
            node: 0,
            instances: 100,
        }];
        RunReport::assemble(2, 2, &timer, &ledger, vec![round])
    }

    #[test]
    fn span_timer_tracks_max_and_skew() {
        let mut timer = SpanTimer::new(3);
        timer.phase(Phase::NewTree, &mut [0u32; 3], |_| {});
        let (max, skew) = timer.phase_compute(Phase::NewTree);
        assert!(max >= 0.0 && skew >= 0.0 && skew <= max);
        assert!(timer.total_secs() >= max);
        // Untimed phases are zero.
        assert_eq!(timer.phase_compute(Phase::Finish), (0.0, 0.0));
    }

    #[test]
    fn span_timer_accrues_rounds() {
        let mut timer = SpanTimer::new(1);
        timer.phase(Phase::CreateSketch, &mut [0u8], |_| {}); // pre-round
        timer.begin_round(0);
        timer.phase(Phase::NewTree, &mut [0u8], |_| {});
        timer.begin_round(1);
        timer.phase(Phase::NewTree, &mut [0u8], |_| {});
        assert!(timer.round_secs(0) >= 0.0);
        assert!(timer.round_secs(1) >= 0.0);
        assert!((timer.round_secs(0) + timer.round_secs(1)) <= timer.total_secs() + 1e-9);
        assert_eq!(timer.round_secs(7), 0.0);
    }

    #[test]
    fn report_phases_sum_to_total_comm() {
        let report = sample_report();
        assert_eq!(sum_phase_comm(&report), report.comm);
    }

    #[test]
    fn json_has_stable_shape() {
        let report = sample_report();
        let json = report.json();
        assert!(json.starts_with("{\"workers\":2,\"servers\":2,\"compute_secs\":"));
        assert!(json.contains("\"phase\":\"build_histogram\""));
        assert!(json.contains("\"hist_bytes_raw\":4000"));
        assert!(json.contains("\"split_gains\":[2.25,0.5]"));
        assert!(json.contains("{\"node\":0,\"instances\":100}"));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn canonical_json_omits_wall_clock() {
        let report = sample_report();
        let canonical = report.canonical_json();
        assert!(!canonical.contains("compute_secs"));
        assert!(!canonical.contains("compute_max_secs"));
        // But keeps all deterministic fields.
        assert!(canonical.contains("\"sim_time_secs\":0.25"));
        assert!(canonical.contains("\"train_loss\":0.5"));

        // Same data with different wall-clock values → same canonical form.
        let mut other = report.clone();
        other.compute_secs += 1.0;
        for p in &mut other.phases {
            p.compute_max_secs *= 2.0;
            p.compute_skew_secs += 0.1;
        }
        for r in &mut other.rounds {
            r.compute_secs += 3.0;
        }
        assert_eq!(other.canonical_json(), canonical);
        assert_ne!(other.json(), report.json());
    }

    #[test]
    fn quant_hist_section_only_when_present() {
        let plain = sample_report();
        assert!(!plain.json().contains("quant_hist"));
        assert!(!plain.canonical_json().contains("quant_hist"));

        let mut quantized = plain.clone();
        quantized.rounds[0].quant_hist = Some(QuantHistRecord {
            bits: 12,
            tile_nodes: 16,
        });
        let expect = "\"quant_hist\":{\"bits\":12,\"tile_nodes\":16}";
        // Deterministic telemetry → present in both timed and canonical JSON.
        assert!(quantized.json().contains(expect));
        assert!(quantized.canonical_json().contains(expect));
        for (open, close) in [('{', '}'), ('[', ']')] {
            let json = quantized.json();
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn summary_lists_active_phases() {
        let report = sample_report();
        let text = report.summary();
        assert!(text.contains("build_histogram"));
        assert!(text.contains("find_split"));
        assert!(!text.contains("pull_sketch"));
        assert!(text.contains("p50"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn phase_percentiles_bracket_max() {
        let report = sample_report();
        let p = report.phase(Phase::BuildHistogram).unwrap();
        assert!(p.compute_p50_secs <= p.compute_p99_secs + 1e-12);
        assert!(p.compute_p99_secs <= p.compute_max_secs + 1e-12);
        let json = report.json();
        assert!(json.contains("compute_p50_secs"));
        assert!(json.contains("compute_p99_secs"));
    }

    #[test]
    fn faults_section_appears_only_when_present() {
        let clean = sample_report();
        assert!(!clean.json().contains("\"faults\""));
        assert!(!clean.canonical_json().contains("resumed_from_round"));

        let mut faulted = clean.clone();
        faulted.faults = Some(FaultSummary {
            plan_seed: 42,
            request_drops: 3,
            retries: 4,
            backoff_secs: 0.125,
            ..FaultSummary::default()
        });
        faulted.resumed_from_round = Some(2);
        for json in [faulted.json(), faulted.canonical_json()] {
            assert!(json.contains("\"faults\":{\"plan_seed\":42,"), "{json}");
            assert!(json.contains("\"request_drops\":3"));
            assert!(json.contains("\"backoff_secs\":0.125"));
            assert!(json.contains("\"resumed_from_round\":2"));
            assert!(json.ends_with('}'));
            for (open, close) in [('{', '}'), ('[', ']')] {
                assert_eq!(json.matches(open).count(), json.matches(close).count());
            }
        }
    }

    #[test]
    fn membership_section_appears_only_when_present() {
        let clean = sample_report();
        assert!(!clean.json().contains("\"membership\""));

        let mut elastic = clean.clone();
        elastic.membership = Some(MembershipSummary {
            joins: 1,
            leaves: 2,
            stripes_moved: 3,
            epoch: 3,
            speculative_backups: 4,
            backup_wins: 2,
            stale_rejects: 1,
            handoff_secs: 0.5,
            reshard_secs: 1.0,
            elastic_secs: 0.25,
            speculation_saved_secs: 0.125,
        });
        for json in [elastic.json(), elastic.canonical_json()] {
            assert!(json.contains("\"membership\":{\"joins\":1,"), "{json}");
            assert!(json.contains("\"stripes_moved\":3"));
            assert!(json.contains("\"backup_wins\":2"));
            assert!(json.contains("\"speculation_saved_secs\":0.125"));
            for (open, close) in [('{', '}'), ('[', ']')] {
                assert_eq!(json.matches(open).count(), json.matches(close).count());
            }
        }
        // The elastic section is simulated-clock data: it survives into the
        // canonical document identically.
        assert!(elastic.canonical_json().contains("\"elastic_secs\":0.25"));
    }

    #[test]
    fn percentiles_section_filters_wall_metrics_from_canonical() {
        use dimboost_simnet::MetricsRegistry;

        let base = sample_report();
        let mut registry = MetricsRegistry::new();
        registry.counter_add("sim/ps_requests", 7);
        registry.observe("sim/ps_service_secs", 0.002);
        registry.observe("wall/phase_secs/build_histogram", 0.1);
        let mut report = base.clone();
        report.percentiles = registry.export();

        let full = report.json();
        assert!(full.contains("\"name\":\"sim/ps_requests\""));
        assert!(full.contains("\"name\":\"wall/phase_secs/build_histogram\""));
        assert!(full.contains("\"kind\":\"histogram\""));

        let canonical = report.canonical_json();
        assert!(canonical.contains("\"name\":\"sim/ps_requests\""));
        assert!(canonical.contains("\"p95\":"));
        assert!(!canonical.contains("wall/"));

        // Differing wall metrics do not perturb the canonical form.
        let mut other = report.clone();
        let mut reg2 = MetricsRegistry::new();
        reg2.counter_add("sim/ps_requests", 7);
        reg2.observe("sim/ps_service_secs", 0.002);
        reg2.observe("wall/phase_secs/build_histogram", 99.0);
        other.percentiles = reg2.export();
        assert_eq!(other.canonical_json(), canonical);
        assert_ne!(other.json(), full);
    }
}
