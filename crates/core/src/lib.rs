//! # dimboost-core
//!
//! The GBDT training system of *DimBoost: Boosting Gradient Boosting
//! Decision Tree to Higher Dimensions* (SIGMOD 2018), implemented from
//! scratch on top of the workspace's parameter-server ([`dimboost_ps`]) and
//! simulated-network ([`dimboost_simnet`]) substrates.
//!
//! The crate is organized around the paper's sections:
//!
//! | Paper | Module |
//! |---|---|
//! | §2.2 losses & gradients | [`loss`] |
//! | §2.2 Algorithm 1 (greedy splitting) | [`dimboost_ps::split`] (server-side UDF) |
//! | §5.1 Algorithm 2 (sparsity-aware histograms) | [`hist_build`] |
//! | §5.2 node-to-instance index | [`node_index`] |
//! | §5.2 parallel batch construction | [`parallel`] |
//! | §6.1 low-precision histograms | [`dimboost_ps::quantize`] |
//! | §6.2 round-robin task scheduler | [`scheduler`] |
//! | §6.3 two-phase split finding | wired up in [`trainer`] |
//! | §4.4 seven-phase worker plan | [`trainer`] |
//!
//! Every optimization is a toggle in [`Optimizations`], which is what the
//! Table 3 ablation benchmark flips one flag at a time.

pub mod binned;
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod checkpoint;
pub mod config;
pub mod cv;
pub mod fused;
pub mod hist_build;
pub mod loss;
pub mod meta;
pub mod metrics;
pub mod model;
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod model_io;
pub mod node_index;
pub mod parallel;
pub mod pool;
pub mod report;
pub mod scheduler;
pub mod trainer;
pub mod tree;

pub use checkpoint::{
    CheckpointError, CheckpointFingerprint, CheckpointOptions, TrainCheckpoint, CHECKPOINT_FILE,
};
pub use config::{GbdtConfig, LossKind, Optimizations};
pub use cv::{cross_validate, CvResult};
pub use loss::{loss_for, GradPair, Loss};
pub use meta::FeatureMeta;
pub use model::GbdtModel;
pub use model_io::{load_model, load_model_file, save_model, save_model_file, ModelIoError};
pub use node_index::NodeIndex;
pub use pool::WorkerPool;
pub use report::{NodeInstances, PhaseReport, QuantHistRecord, RoundRecord, RunReport, SpanTimer};
pub use scheduler::RoundRobinScheduler;
pub use trainer::{
    train_distributed, train_distributed_continue, train_distributed_resilient,
    train_distributed_with_eval, train_single_machine, EvalOptions, LossPoint, RobustOptions,
    RunBreakdown, TrainError, TrainOutput,
};
pub use tree::{Node, Tree};

// Re-export the PS-side pieces that form part of the public training API.
pub use dimboost_ps::split::{FinalSplit, PullSplitResult, SplitDecision};
pub use dimboost_ps::{NodeSplit, SplitParams};

// Re-export the simnet observability types surfaced by `TrainOutput` and
// `RunReport` so consumers need not depend on the simnet crate directly.
pub use dimboost_simnet::{
    FaultPlan, FaultSession, FaultSummary, MetricExport, Trace, TraceBus, TraceEvent,
};
