//! Binary model serialization — the FINISH phase's "leader worker outputs
//! the trained model".
//!
//! A compact, versioned little-endian format with no external codec
//! dependencies: header (magic, version, loss, η, M, T) followed by each
//! tree's full node array (one tagged 13-byte record per slot). Loading
//! validates structure via [`Tree::check_consistency`], so a corrupted file
//! cannot produce a silently-broken model.

use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::config::LossKind;
use crate::model::GbdtModel;
use crate::tree::{Node, Tree};

const MAGIC: &[u8; 8] = b"DIMBGBDT";
const VERSION: u32 = 1;

/// Errors from model (de)serialization.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the model magic.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// Structurally invalid content.
    Corrupt(String),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "I/O error: {e}"),
            ModelIoError::BadMagic => write!(f, "not a DimBoost model file (bad magic)"),
            ModelIoError::UnsupportedVersion(v) => write!(f, "unsupported model version {v}"),
            ModelIoError::Corrupt(msg) => write!(f, "corrupt model file: {msg}"),
        }
    }
}

impl std::error::Error for ModelIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Loss encoding: a tag byte plus a class-count word (1 for scalar losses).
/// Shared with the checkpoint format.
pub(crate) fn loss_tag(kind: LossKind) -> (u8, u32) {
    match kind {
        LossKind::Logistic => (0, 1),
        LossKind::Square => (1, 1),
        LossKind::Softmax { classes } => (2, classes),
    }
}

pub(crate) fn loss_from_tag(tag: u8, classes: u32) -> Result<LossKind, ModelIoError> {
    match tag {
        0 => Ok(LossKind::Logistic),
        1 => Ok(LossKind::Square),
        2 if classes >= 2 => Ok(LossKind::Softmax { classes }),
        2 => Err(ModelIoError::Corrupt(format!(
            "softmax with {classes} classes"
        ))),
        t => Err(ModelIoError::Corrupt(format!("unknown loss tag {t}"))),
    }
}

/// Serializes a model to bytes.
pub fn model_to_bytes(model: &GbdtModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        40 + model
            .trees()
            .iter()
            .map(|t| 8 + t.capacity() * 13)
            .sum::<usize>(),
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    let (tag, classes) = loss_tag(model.loss());
    buf.put_u8(tag);
    buf.put_u32_le(classes);
    buf.put_f32_le(model.learning_rate());
    buf.put_u64_le(model.num_features() as u64);
    buf.put_u32_le(model.num_trees() as u32);
    for tree in model.trees() {
        buf.put_u32_le(tree.max_depth() as u32);
        buf.put_u32_le(tree.capacity() as u32);
        for node in tree.nodes() {
            match *node {
                Node::Unused => {
                    buf.put_u8(0);
                    buf.put_u32_le(0);
                    buf.put_f32_le(0.0);
                    buf.put_f32_le(0.0);
                }
                Node::Internal {
                    feature,
                    threshold,
                    gain,
                    default_left,
                } => {
                    buf.put_u8(if default_left { 3 } else { 1 });
                    buf.put_u32_le(feature);
                    buf.put_f32_le(threshold);
                    buf.put_f32_le(gain);
                }
                Node::Leaf { weight } => {
                    buf.put_u8(2);
                    buf.put_u32_le(0);
                    buf.put_f32_le(weight);
                    buf.put_f32_le(0.0);
                }
            }
        }
    }
    buf.freeze()
}

/// Deserializes a model from bytes, validating structure.
pub fn model_from_bytes(mut bytes: Bytes) -> Result<GbdtModel, ModelIoError> {
    let need = |bytes: &Bytes, n: usize| -> Result<(), ModelIoError> {
        if bytes.remaining() < n {
            Err(ModelIoError::Corrupt("unexpected end of input".into()))
        } else {
            Ok(())
        }
    };
    need(&bytes, 8)?;
    let mut magic = [0u8; 8];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ModelIoError::BadMagic);
    }
    need(&bytes, 4 + 1 + 4 + 4 + 8 + 4)?;
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(ModelIoError::UnsupportedVersion(version));
    }
    let tag = bytes.get_u8();
    let classes = bytes.get_u32_le();
    let loss = loss_from_tag(tag, classes)?;
    let learning_rate = bytes.get_f32_le();
    if !learning_rate.is_finite() || learning_rate <= 0.0 {
        return Err(ModelIoError::Corrupt(format!(
            "bad learning rate {learning_rate}"
        )));
    }
    let num_features = bytes.get_u64_le() as usize;
    let num_trees = bytes.get_u32_le() as usize;
    if num_trees > 1_000_000 {
        return Err(ModelIoError::Corrupt(format!(
            "implausible tree count {num_trees}"
        )));
    }

    let mut trees = Vec::with_capacity(num_trees);
    for t in 0..num_trees {
        need(&bytes, 8)?;
        let max_depth = bytes.get_u32_le() as usize;
        let capacity = bytes.get_u32_le() as usize;
        if max_depth > 30 {
            return Err(ModelIoError::Corrupt(format!(
                "tree {t}: depth {max_depth} too large"
            )));
        }
        need(&bytes, capacity * 13)?;
        let mut nodes = Vec::with_capacity(capacity);
        for i in 0..capacity {
            let tag = bytes.get_u8();
            let feature = bytes.get_u32_le();
            let value = bytes.get_f32_le();
            let gain = bytes.get_f32_le();
            nodes.push(match tag {
                0 => Node::Unused,
                1 | 3 => {
                    if num_features > 0 && feature as usize >= num_features {
                        return Err(ModelIoError::Corrupt(format!(
                            "tree {t} node {i}: feature {feature} out of {num_features}"
                        )));
                    }
                    Node::Internal {
                        feature,
                        threshold: value,
                        gain,
                        default_left: tag == 3,
                    }
                }
                2 => Node::Leaf { weight: value },
                t => return Err(ModelIoError::Corrupt(format!("unknown node tag {t}"))),
            });
        }
        let tree = Tree::from_nodes(nodes, max_depth)
            .map_err(|e| ModelIoError::Corrupt(format!("tree {t}: {e}")))?;
        trees.push(tree);
    }
    Ok(GbdtModel::new(trees, learning_rate, loss, num_features))
}

/// Writes a model to any writer.
pub fn save_model<W: Write>(model: &GbdtModel, mut writer: W) -> Result<(), ModelIoError> {
    writer.write_all(&model_to_bytes(model))?;
    Ok(())
}

/// Reads a model from any reader.
pub fn load_model<R: Read>(mut reader: R) -> Result<GbdtModel, ModelIoError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    model_from_bytes(Bytes::from(buf))
}

/// Writes a model to a file.
pub fn save_model_file<P: AsRef<Path>>(model: &GbdtModel, path: P) -> Result<(), ModelIoError> {
    save_model(model, std::fs::File::create(path)?)
}

/// Reads a model from a file.
pub fn load_model_file<P: AsRef<Path>>(path: P) -> Result<GbdtModel, ModelIoError> {
    load_model(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_single_machine;
    use crate::GbdtConfig;
    use dimboost_data::synthetic::{generate, SparseGenConfig};

    fn trained_model() -> GbdtModel {
        let ds = generate(&SparseGenConfig::new(500, 60, 8, 7));
        let cfg = GbdtConfig {
            num_trees: 3,
            max_depth: 3,
            ..GbdtConfig::default()
        };
        train_single_machine(&ds, &cfg).unwrap()
    }

    #[test]
    fn roundtrip_preserves_model_exactly() {
        let model = trained_model();
        let bytes = model_to_bytes(&model);
        let back = model_from_bytes(bytes).unwrap();
        assert_eq!(model, back);
        // Predictions identical too.
        let ds = generate(&SparseGenConfig::new(100, 60, 8, 9));
        assert_eq!(model.predict_dataset(&ds), back.predict_dataset(&ds));
    }

    #[test]
    fn file_roundtrip() {
        let model = trained_model();
        let path = std::env::temp_dir().join("dimboost_model_io_test.bin");
        save_model_file(&model, &path).unwrap();
        let back = load_model_file(&path).unwrap();
        assert_eq!(model, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multiclass_roundtrip() {
        use dimboost_data::synthetic::LabelKind;
        let cfg_data = SparseGenConfig::new(600, 50, 8, 3)
            .with_label_kind(LabelKind::Multiclass { classes: 3 });
        let ds = generate(&cfg_data);
        let cfg = GbdtConfig {
            num_trees: 2,
            max_depth: 3,
            loss: crate::LossKind::Softmax { classes: 3 },
            ..GbdtConfig::default()
        };
        let model = train_single_machine(&ds, &cfg).unwrap();
        assert_eq!(model.num_trees(), 6);
        let back = model_from_bytes(model_to_bytes(&model)).unwrap();
        assert_eq!(model, back);
        assert_eq!(back.num_classes(), 3);
        assert_eq!(back.predict_dataset(&ds), model.predict_dataset(&ds));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = model_from_bytes(Bytes::from_static(b"NOTMODELextra...")).unwrap_err();
        assert!(matches!(err, ModelIoError::BadMagic));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = model_to_bytes(&trained_model());
        for cut in [4usize, 12, 20, 30, bytes.len() - 1] {
            let err = model_from_bytes(bytes.slice(0..cut)).unwrap_err();
            assert!(
                matches!(err, ModelIoError::Corrupt(_) | ModelIoError::BadMagic),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn rejects_future_version() {
        let mut raw = model_to_bytes(&trained_model()).to_vec();
        raw[8] = 99; // version LE byte
        let err = model_from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, ModelIoError::UnsupportedVersion(99)));
    }

    #[test]
    fn rejects_out_of_range_feature() {
        let mut raw = model_to_bytes(&trained_model()).to_vec();
        // Find the first internal node record and blow up its feature id.
        // Header = 8 magic + 4 ver + 1 tag + 4 classes + 4 lr + 8 M + 4 T
        // = 33 bytes, then per tree 8 bytes + records.
        let mut off = 33 + 8;
        loop {
            if raw[off] == 1 || raw[off] == 3 {
                raw[off + 1..off + 5].copy_from_slice(&u32::MAX.to_le_bytes());
                break;
            }
            off += 13;
        }
        let err = model_from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, ModelIoError::Corrupt(_)), "{err}");
    }

    #[test]
    fn rejects_structural_corruption() {
        let mut raw = model_to_bytes(&trained_model()).to_vec();
        // Turn the root of tree 0 into Unused: consistency check must fire.
        raw[33 + 8] = 0;
        let err = model_from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, ModelIoError::Corrupt(_)), "{err}");
    }

    #[test]
    fn error_display_and_source() {
        let e = ModelIoError::Corrupt("boom".into());
        assert!(e.to_string().contains("boom"));
        let io = ModelIoError::from(std::io::Error::other("x"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
