//! The round-robin task scheduler (Section 6.2, Figure 10).
//!
//! After local histograms are merged on the parameter server, the split of
//! each active tree node must be computed by *some* worker. The naive plan
//! appoints one agent worker for everything; the scheduler instead deals
//! active nodes round-robin — the `i`-th active node goes to worker
//! `i mod w` — so the pull-and-split load spreads evenly.

/// Assigns active tree nodes to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRobinScheduler {
    num_workers: usize,
    /// When `false` (ablation), worker 0 is the single agent for all nodes.
    round_robin: bool,
}

impl RoundRobinScheduler {
    /// A scheduler dealing nodes across `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        Self {
            num_workers,
            round_robin: true,
        }
    }

    /// The ablation configuration: every node goes to worker 0.
    pub fn single_agent(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        Self {
            num_workers,
            round_robin: false,
        }
    }

    /// Worker responsible for the `position`-th entry of the active-node
    /// state array.
    pub fn worker_for(&self, position: usize) -> usize {
        if self.round_robin {
            position % self.num_workers
        } else {
            0
        }
    }

    /// The positions (into the active-node array) assigned to `worker` —
    /// conceptually what a worker reads off the state array (Figure 10),
    /// computed directly as the stride `worker, worker + w, …` rather than
    /// by filtering every position.
    pub fn assignments(&self, worker: usize, num_active: usize) -> Vec<usize> {
        if !self.round_robin {
            return if worker == 0 {
                (0..num_active).collect()
            } else {
                Vec::new()
            };
        }
        if worker >= self.num_workers {
            return Vec::new();
        }
        (worker..num_active).step_by(self.num_workers).collect()
    }

    /// Maximum number of nodes any one worker is responsible for — the
    /// critical path length of the FIND_SPLIT pull phase.
    pub fn max_load(&self, num_active: usize) -> usize {
        if self.round_robin {
            num_active.div_ceil(self.num_workers)
        } else {
            num_active
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_deals_evenly() {
        let s = RoundRobinScheduler::new(3);
        assert_eq!(s.worker_for(0), 0);
        assert_eq!(s.worker_for(1), 1);
        assert_eq!(s.worker_for(2), 2);
        assert_eq!(s.worker_for(3), 0);
        assert_eq!(s.assignments(1, 7), vec![1, 4]);
        assert_eq!(s.assignments(0, 7), vec![0, 3, 6]);
    }

    #[test]
    fn every_node_has_exactly_one_owner() {
        let s = RoundRobinScheduler::new(4);
        let mut owned = [0u32; 10];
        for w in 0..4 {
            for pos in s.assignments(w, 10) {
                owned[pos] += 1;
            }
        }
        assert!(owned.iter().all(|&c| c == 1));
    }

    #[test]
    fn single_agent_overloads_worker_zero() {
        let s = RoundRobinScheduler::single_agent(5);
        assert_eq!(s.assignments(0, 8).len(), 8);
        assert!(s.assignments(1, 8).is_empty());
        assert_eq!(s.max_load(8), 8);
    }

    // The stride form must keep the filter-scan's implicit behaviors: a
    // worker index beyond the pool gets nothing, and zero active nodes
    // yield empty assignments everywhere.
    #[test]
    fn stride_edge_cases() {
        let s = RoundRobinScheduler::new(3);
        assert!(s.assignments(3, 7).is_empty());
        assert!(s.assignments(7, 7).is_empty());
        assert!(s.assignments(0, 0).is_empty());
        assert_eq!(s.assignments(2, 3), vec![2]);
        assert_eq!(s.assignments(2, 2), Vec::<usize>::new());
    }

    #[test]
    fn max_load_is_ceiling() {
        let s = RoundRobinScheduler::new(4);
        assert_eq!(s.max_load(8), 2);
        assert_eq!(s.max_load(9), 3);
        assert_eq!(s.max_load(0), 0);
        assert_eq!(s.max_load(1), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        RoundRobinScheduler::new(0);
    }
}
