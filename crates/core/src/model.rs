//! The trained ensemble: `ŷ_i = Σ_t η·f_t(x_i)` (Equation 1).

use dimboost_data::{Dataset, RowView};
use serde::{Deserialize, Serialize};

use crate::config::LossKind;
use crate::loss::loss_for;
use crate::tree::Tree;

/// A trained GBDT model: `T` regression trees combined with shrinkage `η`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtModel {
    trees: Vec<Tree>,
    learning_rate: f32,
    loss: LossKind,
    num_features: usize,
}

impl GbdtModel {
    /// Assembles a model from trained trees.
    pub fn new(trees: Vec<Tree>, learning_rate: f32, loss: LossKind, num_features: usize) -> Self {
        Self {
            trees,
            learning_rate,
            loss,
            num_features,
        }
    }

    /// The trees of the ensemble.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Shrinkage learning rate η.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// The loss the model was trained with.
    pub fn loss(&self) -> LossKind {
        self.loss
    }

    /// Dimensionality the model was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of score columns: 1 for scalar losses, `classes` for softmax.
    /// Trees are stored round-major: tree `i` contributes to class `i % K`.
    pub fn num_classes(&self) -> usize {
        self.loss.trees_per_round()
    }

    /// Per-class raw additive scores for one instance (length
    /// [`Self::num_classes`]).
    pub fn predict_scores(&self, row: &RowView<'_>) -> Vec<f32> {
        let k = self.num_classes();
        let mut scores = vec![0.0f32; k];
        for (i, tree) in self.trees.iter().enumerate() {
            scores[i % k] += self.learning_rate * tree.predict(row);
        }
        scores
    }

    /// Raw additive score for one instance (scalar losses).
    ///
    /// # Panics
    /// Panics for softmax models — use [`Self::predict_scores`].
    pub fn predict_raw(&self, row: &RowView<'_>) -> f32 {
        assert_eq!(
            self.num_classes(),
            1,
            "multiclass model: use predict_scores"
        );
        self.trees
            .iter()
            .map(|t| self.learning_rate * t.predict(row))
            .sum()
    }

    /// Per-class probabilities: sigmoid for logistic (`[1−p, p]` collapsed
    /// to `[p]`… returned as a single-element vec), softmax for multiclass,
    /// the raw value for square loss.
    pub fn predict_proba(&self, row: &RowView<'_>) -> Vec<f32> {
        match self.loss {
            LossKind::Softmax { .. } => {
                let mut scores = self.predict_scores(row);
                crate::loss::softmax_inplace(&mut scores);
                scores
            }
            kind => vec![loss_for(kind).transform(self.predict_raw(row))],
        }
    }

    /// Predicted class index: argmax class for softmax, `p ≥ 0.5` for
    /// logistic. Meaningless for square loss (returns 0).
    pub fn predict_class(&self, row: &RowView<'_>) -> usize {
        match self.loss {
            LossKind::Softmax { .. } => {
                let scores = self.predict_scores(row);
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            }
            LossKind::Logistic => usize::from(self.predict(row) >= 0.5),
            LossKind::Square => 0,
        }
    }

    /// Transformed prediction: probability of class 1 for logistic, value
    /// for square, predicted class index (as `f32`) for softmax.
    pub fn predict(&self, row: &RowView<'_>) -> f32 {
        match self.loss {
            LossKind::Softmax { .. } => self.predict_class(row) as f32,
            kind => loss_for(kind).transform(self.predict_raw(row)),
        }
    }

    /// Raw scores for every row of a dataset (scalar losses only).
    pub fn predict_raw_dataset(&self, dataset: &Dataset) -> Vec<f32> {
        (0..dataset.num_rows())
            .map(|i| self.predict_raw(&dataset.row(i)))
            .collect()
    }

    /// Transformed predictions for every row (see [`Self::predict`]).
    pub fn predict_dataset(&self, dataset: &Dataset) -> Vec<f32> {
        (0..dataset.num_rows())
            .map(|i| self.predict(&dataset.row(i)))
            .collect()
    }

    /// Per-class probabilities for every row.
    pub fn predict_proba_dataset(&self, dataset: &Dataset) -> Vec<Vec<f32>> {
        (0..dataset.num_rows())
            .map(|i| self.predict_proba(&dataset.row(i)))
            .collect()
    }

    /// Leaf indices reached by an instance, one per tree — the "GBDT as
    /// feature transformer" embedding (each tree one-hot encodes its leaf).
    pub fn predict_leaf_indices(&self, row: &RowView<'_>) -> Vec<u32> {
        self.trees.iter().map(|t| t.route(row, 0)).collect()
    }

    /// Gain-based feature importance: total objective gain contributed by
    /// splits on each feature, over all trees (length
    /// [`Self::num_features`]).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut importance = vec![0.0f64; self.num_features];
        for tree in &self.trees {
            for node in tree.nodes() {
                if let crate::tree::Node::Internal { feature, gain, .. } = *node {
                    if (feature as usize) < importance.len() {
                        importance[feature as usize] += gain as f64;
                    }
                }
            }
        }
        importance
    }

    /// Split-count feature importance: how many splits test each feature.
    pub fn feature_split_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_features];
        for tree in &self.trees {
            for node in tree.nodes() {
                if let crate::tree::Node::Internal { feature, .. } = *node {
                    if (feature as usize) < counts.len() {
                        counts[feature as usize] += 1;
                    }
                }
            }
        }
        counts
    }

    /// The `top_n` most important features by gain, descending, as
    /// `(feature, total gain)` pairs (zero-gain features omitted).
    pub fn top_features(&self, top_n: usize) -> Vec<(u32, f64)> {
        let mut pairs: Vec<(u32, f64)> = self
            .feature_importance()
            .into_iter()
            .enumerate()
            .filter(|&(_, g)| g > 0.0)
            .map(|(f, g)| (f as u32, g))
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(top_n);
        pairs
    }

    /// Structural sanity check over all trees, including the round-major
    /// grouping invariant for multiclass models.
    pub fn check_consistency(&self) -> Result<(), String> {
        let k = self.num_classes();
        if k > 1 && !self.trees.len().is_multiple_of(k) {
            return Err(format!(
                "{} trees do not divide into {k}-class rounds",
                self.trees.len()
            ));
        }
        for (t, tree) in self.trees.iter().enumerate() {
            tree.check_consistency()
                .map_err(|e| format!("tree {t}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Node;
    use dimboost_data::SparseInstance;

    fn toy_model() -> GbdtModel {
        let mut t1 = Tree::new(1);
        t1.set_internal(0, 0, 0.5);
        t1.set_leaf(1, -1.0);
        t1.set_leaf(2, 1.0);
        let mut t2 = Tree::new(1);
        t2.set_leaf(0, 0.5);
        GbdtModel::new(vec![t1, t2], 0.1, LossKind::Logistic, 2)
    }

    fn toy_data() -> Dataset {
        let insts = vec![
            SparseInstance::new(vec![0], vec![0.1]).unwrap(),
            SparseInstance::new(vec![0], vec![0.9]).unwrap(),
        ];
        Dataset::from_instances(&insts, vec![0.0, 1.0], 2).unwrap()
    }

    #[test]
    fn raw_prediction_is_shrunk_sum() {
        let m = toy_model();
        let ds = toy_data();
        // Row 0: tree1 -> -1.0, tree2 -> 0.5 => 0.1*(-0.5) = -0.05
        assert!((m.predict_raw(&ds.row(0)) + 0.05).abs() < 1e-6);
        assert!((m.predict_raw(&ds.row(1)) - 0.15).abs() < 1e-6);
    }

    #[test]
    fn logistic_transform_applied() {
        let m = toy_model();
        let ds = toy_data();
        let probs = m.predict_dataset(&ds);
        assert!(probs[0] < 0.5 && probs[1] > 0.5);
        let raw = m.predict_raw_dataset(&ds);
        assert!(raw[0] < 0.0 && raw[1] > 0.0);
    }

    #[test]
    fn square_loss_identity_transform() {
        let mut t = Tree::new(1);
        t.set_leaf(0, 2.0);
        let m = GbdtModel::new(vec![t], 0.5, LossKind::Square, 2);
        let ds = toy_data();
        assert_eq!(m.predict(&ds.row(0)), 1.0);
    }

    #[test]
    fn leaf_indices_are_valid_leaves() {
        let m = toy_model();
        let ds = toy_data();
        let leaves = m.predict_leaf_indices(&ds.row(0));
        assert_eq!(leaves.len(), 2);
        // Tree 0: value 0.1 <= 0.5 -> leaf 1; tree 1 is a root leaf.
        assert_eq!(leaves, vec![1, 0]);
        for (t, &leaf) in leaves.iter().enumerate() {
            assert!(matches!(m.trees()[t].node(leaf), Node::Leaf { .. }));
        }
    }

    #[test]
    fn feature_importance_sums_gains() {
        let mut t1 = Tree::new(2);
        t1.set_internal_with_gain(0, 0, 0.5, 3.0);
        t1.set_internal_with_gain(1, 2, 0.1, 1.5);
        t1.set_leaf(3, 0.0);
        t1.set_leaf(4, 0.0);
        t1.set_leaf(2, 0.0);
        let mut t2 = Tree::new(1);
        t2.set_internal_with_gain(0, 0, 0.7, 2.0);
        t2.set_leaf(1, 0.0);
        t2.set_leaf(2, 0.0);
        let m = GbdtModel::new(vec![t1, t2], 0.1, LossKind::Logistic, 4);
        let imp = m.feature_importance();
        assert_eq!(imp, vec![5.0, 0.0, 1.5, 0.0]);
        assert_eq!(m.feature_split_counts(), vec![2, 0, 1, 0]);
        assert_eq!(m.top_features(10), vec![(0, 5.0), (2, 1.5)]);
        assert_eq!(m.top_features(1), vec![(0, 5.0)]);
    }

    #[test]
    fn trained_model_importance_finds_informative_features() {
        use crate::trainer::train_single_machine;
        use crate::GbdtConfig;
        use dimboost_data::synthetic::{generate, SparseGenConfig};
        let mut cfg_data = SparseGenConfig::new(2_000, 100, 20, 3);
        cfg_data.informative = 5;
        cfg_data.informative_bias = 0.8;
        let ds = generate(&cfg_data);
        let cfg = GbdtConfig {
            num_trees: 5,
            learning_rate: 0.3,
            ..GbdtConfig::default()
        };
        let model = train_single_machine(&ds, &cfg).unwrap();
        let top = model.top_features(5);
        assert!(!top.is_empty());
        // Most of the gain should concentrate on few features.
        let total: f64 = model.feature_importance().iter().sum();
        let top_gain: f64 = top.iter().map(|&(_, g)| g).sum();
        assert!(top_gain > 0.5 * total, "top-5 hold {top_gain} of {total}");
    }

    #[test]
    fn tree_dump_renders_structure() {
        let mut t = Tree::new(1);
        t.set_internal_with_gain(0, 7, 0.5, 1.25);
        t.set_leaf(1, -0.5);
        t.set_leaf(2, 0.5);
        let dump = t.dump();
        assert!(dump.contains("f7 <= 0.5"), "{dump}");
        assert!(dump.contains("gain=1.2500"), "{dump}");
        assert!(dump.contains("leaf weight=-0.5000"), "{dump}");
        assert_eq!(dump.lines().count(), 3);
    }

    #[test]
    fn consistency_propagates_tree_errors() {
        let bad = Tree::new(1); // unused root
        let m = GbdtModel::new(vec![bad], 0.1, LossKind::Logistic, 2);
        assert!(m.check_consistency().unwrap_err().contains("tree 0"));
        assert!(toy_model().check_consistency().is_ok());
    }
}
