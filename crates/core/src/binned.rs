//! Pre-binned histogram construction (extension beyond the paper).
//!
//! Algorithm 2 binary-searches each nonzero value into its bucket on *every*
//! histogram build — once per tree layer. But split candidates are fixed
//! after PULL_SKETCH, so the bucket of a `(feature, value)` pair never
//! changes: it can be resolved once and reused. A [`BinnedShard`] stores,
//! for every nonzero entry of a worker's shard, the direct element offsets
//! of its G/H histogram cells plus its feature's zero-bucket cells, turning
//! the inner loop of histogram construction into four indexed adds with no
//! search at all. LightGBM and XGBoost-hist are built around the same idea.
//!
//! The trade-off is memory (12 bytes per nonzero plus per-feature tables)
//! and a one-time binning pass; it pays off whenever more than one layer of
//! histograms is built, i.e. always.

use dimboost_data::Dataset;

use crate::hist_build::new_row;
use crate::loss::GradPair;
use crate::meta::FeatureMeta;

/// A shard with every nonzero entry pre-resolved to histogram offsets.
///
/// ```
/// use dimboost_core::binned::BinnedShard;
/// use dimboost_core::hist_build::{build_row, new_row};
/// use dimboost_core::loss::GradPair;
/// use dimboost_core::FeatureMeta;
/// use dimboost_data::synthetic::{generate, SparseGenConfig};
/// use dimboost_sketch::SplitCandidates;
///
/// let ds = generate(&SparseGenConfig::new(100, 20, 5, 7));
/// let cands: Vec<_> = (0..20)
///     .map(|_| SplitCandidates::from_boundaries(vec![0.5, 1.0]))
///     .collect();
/// let meta = FeatureMeta::all_features(&cands);
/// let grads = vec![GradPair { g: 1.0, h: 0.5 }; 100];
/// let instances: Vec<u32> = (0..100).collect();
///
/// let binned = BinnedShard::build(&ds, &meta);
/// let mut fast = new_row(&meta);
/// binned.build_into(&instances, &grads, &mut fast);
/// // Bit-identical to Algorithm 2, with zero binary searches per build.
/// assert_eq!(fast, build_row(&ds, &instances, &grads, &meta, true));
/// ```
#[derive(Debug, Clone)]
pub struct BinnedShard {
    /// Row pointers into the entry arrays (only sampled-feature nonzeros).
    /// (`pub(crate)`: the layer-fused kernel in [`crate::fused`] walks the
    /// CSR arrays directly.)
    pub(crate) indptr: Vec<usize>,
    /// Direct element offset of the entry's G cell in a histogram row.
    pub(crate) g_elem: Vec<u32>,
    /// Direct element offset of the entry's H cell.
    pub(crate) h_elem: Vec<u32>,
    /// Sampled-feature index of the entry (for the zero-bucket subtraction).
    pub(crate) sf: Vec<u32>,
    /// Per sampled feature: element offset of the zero bucket's G cell.
    pub(crate) zero_g: Vec<u32>,
    /// Per sampled feature: element offset of the zero bucket's H cell.
    pub(crate) zero_h: Vec<u32>,
}

impl BinnedShard {
    /// Bins every sampled-feature nonzero of `shard` against `meta`'s
    /// candidates. One binary search per nonzero, once.
    pub fn build(shard: &Dataset, meta: &FeatureMeta) -> Self {
        let layout = meta.layout();
        let mut indptr = Vec::with_capacity(shard.num_rows() + 1);
        indptr.push(0usize);
        let mut g_elem = Vec::with_capacity(shard.nnz());
        let mut h_elem = Vec::with_capacity(shard.nnz());
        let mut sf_arr = Vec::with_capacity(shard.nnz());
        for (row, _) in shard.iter_rows() {
            for (f, v) in row.iter() {
                if let Some(sf) = meta.sampled_index(f) {
                    let bucket = meta.candidates(sf).bucket(v);
                    g_elem.push(layout.g_index(sf, bucket) as u32);
                    h_elem.push(layout.h_index(sf, bucket) as u32);
                    sf_arr.push(sf as u32);
                }
            }
            indptr.push(g_elem.len());
        }
        let zero_g = (0..meta.num_sampled())
            .map(|sf| layout.g_index(sf, meta.candidates(sf).zero_bucket()) as u32)
            .collect();
        let zero_h = (0..meta.num_sampled())
            .map(|sf| layout.h_index(sf, meta.candidates(sf).zero_bucket()) as u32)
            .collect();
        Self {
            indptr,
            g_elem,
            h_elem,
            sf: sf_arr,
            zero_g,
            zero_h,
        }
    }

    /// Rows covered by this binned shard.
    pub fn num_rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Stored (sampled) nonzero entries.
    pub fn nnz(&self) -> usize {
        self.g_elem.len()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + (self.g_elem.len() + self.h_elem.len() + self.sf.len()) * 4
            + (self.zero_g.len() + self.zero_h.len()) * 4
    }

    /// Algorithm 2 over pre-resolved offsets: identical output to
    /// `hist_build::build_sparse`, no binary searches.
    pub fn build_into(&self, instances: &[u32], grads: &[GradPair], out: &mut [f32]) {
        let mut sum_g = 0.0f64;
        let mut sum_h = 0.0f64;
        for &i in instances {
            let gp = grads[i as usize];
            sum_g += gp.g as f64;
            sum_h += gp.h as f64;
            let (lo, hi) = (self.indptr[i as usize], self.indptr[i as usize + 1]);
            for e in lo..hi {
                let sf = self.sf[e] as usize;
                out[self.g_elem[e] as usize] += gp.g;
                out[self.h_elem[e] as usize] += gp.h;
                out[self.zero_g[sf] as usize] -= gp.g;
                out[self.zero_h[sf] as usize] -= gp.h;
            }
        }
        for sf in 0..self.zero_g.len() {
            out[self.zero_g[sf] as usize] += sum_g as f32;
            out[self.zero_h[sf] as usize] += sum_h as f32;
        }
    }

    /// Batched parallel variant (Section 5.2's scheme over the binned data):
    /// instance batches of `batch_size` are **statically striped** over up
    /// to `threads` workers (thread `t` owns batches `t, t+threads, …`),
    /// each accumulating into a private partial row, merged in thread-index
    /// order at the end. See `crate::parallel` for the determinism
    /// rationale: the output is bit-identical across reruns for any fixed
    /// `(instances, threads, batch_size)`.
    pub fn build_row_batched(
        &self,
        instances: &[u32],
        grads: &[GradPair],
        meta: &FeatureMeta,
        batch_size: usize,
        threads: usize,
    ) -> Vec<f32> {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(threads > 0, "threads must be positive");
        let num_batches = instances.len().div_ceil(batch_size);
        let threads = threads.min(num_batches.max(1));
        if threads <= 1 {
            let mut out = new_row(meta);
            self.build_into(instances, grads, &mut out);
            return out;
        }
        // Static round-robin striping, same rule as
        // `parallel::build_row_batched`, executed on the persistent pool.
        let partials: Vec<Vec<f32>> = crate::pool::global().run(threads, |t| {
            let mut partial = new_row(meta);
            let mut b = t;
            while b < num_batches {
                let lo = b * batch_size;
                let hi = (lo + batch_size).min(instances.len());
                self.build_into(&instances[lo..hi], grads, &mut partial);
                b += threads;
            }
            partial
        });
        let mut iter = partials.into_iter();
        let mut out = iter.next().expect("at least one partial");
        for p in iter {
            for (o, v) in out.iter_mut().zip(&p) {
                *o += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist_build::build_row;
    use dimboost_data::synthetic::{generate, SparseGenConfig};
    use dimboost_sketch::SplitCandidates;

    fn setup(n: usize, m: usize) -> (Dataset, FeatureMeta, Vec<GradPair>) {
        let ds = generate(&SparseGenConfig::new(n, m, 10, 27));
        let cands: Vec<SplitCandidates> = (0..m)
            .map(|f| {
                SplitCandidates::from_boundaries(vec![-0.5, 0.2 + (f % 3) as f32 * 0.3, 1.0, 1.6])
            })
            .collect();
        let meta = FeatureMeta::all_features(&cands);
        let grads: Vec<GradPair> = (0..n)
            .map(|i| GradPair {
                g: ((i % 9) as f32 - 4.0) / 4.0,
                h: 0.1 + (i % 4) as f32 * 0.3,
            })
            .collect();
        (ds, meta, grads)
    }

    #[test]
    fn binned_matches_sparse_builder_exactly() {
        let (ds, meta, grads) = setup(400, 60);
        let binned = BinnedShard::build(&ds, &meta);
        assert_eq!(binned.num_rows(), 400);
        let instances: Vec<u32> = (0..400).collect();
        let reference = build_row(&ds, &instances, &grads, &meta, true);
        let mut out = new_row(&meta);
        binned.build_into(&instances, &grads, &mut out);
        assert_eq!(out, reference, "binned builder must be bit-identical");
    }

    #[test]
    fn binned_matches_on_instance_subsets() {
        let (ds, meta, grads) = setup(300, 40);
        let binned = BinnedShard::build(&ds, &meta);
        for range in [0..100u32, 50..220, 299..300, 0..0] {
            let instances: Vec<u32> = range.collect();
            let reference = build_row(&ds, &instances, &grads, &meta, true);
            let mut out = new_row(&meta);
            binned.build_into(&instances, &grads, &mut out);
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn binned_respects_feature_sampling() {
        let ds = generate(&SparseGenConfig::new(200, 50, 8, 5));
        let cands: Vec<SplitCandidates> = (0..50)
            .map(|_| SplitCandidates::from_boundaries(vec![0.5, 1.2]))
            .collect();
        let sampled = FeatureMeta::sample_features(50, 0.4, 7, 0);
        let meta = FeatureMeta::new(sampled, &cands);
        let binned = BinnedShard::build(&ds, &meta);
        // Binned entries only cover sampled features.
        assert!(binned.nnz() < ds.nnz());
        let grads = vec![GradPair { g: 1.0, h: 0.5 }; 200];
        let instances: Vec<u32> = (0..200).collect();
        let reference = build_row(&ds, &instances, &grads, &meta, true);
        let mut out = new_row(&meta);
        binned.build_into(&instances, &grads, &mut out);
        assert_eq!(out, reference);
    }

    #[test]
    fn batched_binned_matches_sequential() {
        let (ds, meta, grads) = setup(500, 30);
        let binned = BinnedShard::build(&ds, &meta);
        let instances: Vec<u32> = (0..500).collect();
        let mut reference = new_row(&meta);
        binned.build_into(&instances, &grads, &mut reference);
        for (batch, threads) in [(64, 4), (100, 2), (7, 8), (1000, 4)] {
            let out = binned.build_row_batched(&instances, &grads, &meta, batch, threads);
            if batch >= instances.len() {
                // One batch → one worker adding in sequential order: bit-equal.
                assert_eq!(out, reference);
            } else {
                for (a, b) in out.iter().zip(&reference) {
                    assert!((a - b).abs() < 1e-3, "{a} vs {b}");
                }
            }
        }
    }

    // Static striping makes the batched binned builder bit-deterministic:
    // reruns with a fixed (instances, threads, batch_size) must agree on
    // every f32 bit, for each multi-threaded configuration.
    #[test]
    fn batched_binned_repeat_runs_bit_identical() {
        let (ds, meta, grads) = setup(500, 30);
        let binned = BinnedShard::build(&ds, &meta);
        let instances: Vec<u32> = (0..500).collect();
        for threads in [2, 4, 8] {
            let first = binned.build_row_batched(&instances, &grads, &meta, 37, threads);
            for _ in 0..10 {
                let again = binned.build_row_batched(&instances, &grads, &meta, 37, threads);
                assert_eq!(again, first, "threads={threads}");
            }
        }
    }

    #[test]
    fn memory_accounting() {
        let (ds, meta, _) = setup(100, 20);
        let binned = BinnedShard::build(&ds, &meta);
        assert!(binned.memory_bytes() >= binned.nnz() * 12);
    }
}
