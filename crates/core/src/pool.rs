//! Persistent deterministic worker pool.
//!
//! Before this module, every batched histogram build and every batched
//! scoring call spawned its own set of scoped OS threads
//! (`std::thread::scope`), i.e. up to 2^d thread-pool spin-ups per tree
//! layer at depth `d`. The pool replaces those per-call spawns with a fixed
//! set of workers created **once per process** and reused across node
//! builds, layers, rounds, trees, and serving batches.
//!
//! # Determinism rule
//!
//! Work is described as `stripes` pure functions of a *logical stripe
//! index* — `f(0), f(1), …, f(stripes - 1)` — never of a physical thread.
//! Physical worker `p` of a pool of size `P` executes logical stripes
//! `p, p + P, p + 2P, …` in ascending order, and [`WorkerPool::run`]
//! returns the results indexed by stripe, so:
//!
//! * which stripe computes what is fixed by the stripe index alone;
//! * the returned `Vec` is in stripe order regardless of which physical
//!   thread finished first;
//! * the pool's own size `P` never appears in any result — callers pick
//!   `stripes` from their *configured* thread count, so results depend only
//!   on the caller's `(threads, batch_size)` configuration, exactly the
//!   bit-reproducibility contract of `crate::parallel`.
//!
//! OS scheduling can reorder *when* stripes run, never *what* they compute
//! or how results are merged.
//!
//! # Re-entrancy
//!
//! A `run` issued from inside a pool worker (nested parallelism) executes
//! its stripes inline, sequentially, on the calling worker — same results
//! (stripe functions are pure), no deadlock, no extra threads.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// How many [`WorkerPool`]s this process has ever constructed. Tests use
/// this to pin the "at most one pool per process" property of the hot
/// paths: a full training run plus a scoring run must not grow it by more
/// than one (the shared global pool).
static CONSTRUCTIONS: AtomicUsize = AtomicUsize::new(0);

/// Total pools constructed so far in this process.
pub fn pool_constructions() -> usize {
    CONSTRUCTIONS.load(Ordering::SeqCst)
}

thread_local! {
    /// True on pool worker threads; used to detect nested `run` calls.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A broadcast job: a type-erased `Fn(stripe_index)` shared by all workers.
///
/// The pointee lives on the stack of the thread blocked inside
/// [`WorkerPool::broadcast`], which does not return until every worker has
/// finished the job, so the erased lifetime is sound.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    stripes: usize,
}

// SAFETY: the pointee is `Sync` (shared by all workers by design) and
// outlives every access (see `Job` docs).
unsafe impl Send for Job {}

struct PoolState {
    /// Current job, if a broadcast is in flight.
    job: Option<Job>,
    /// Incremented per broadcast so workers can tell "new job" from a
    /// spurious wakeup of the same generation.
    epoch: u64,
    /// Workers that have not yet finished the current job.
    remaining: usize,
    /// Set once, on drop; workers exit their loop.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers: new job available (or shutdown).
    work_cv: Condvar,
    /// Signals the broadcaster: `remaining` reached zero.
    done_cv: Condvar,
}

/// A fixed-size persistent worker pool. See the module docs for the
/// determinism rule. Cheap to share (`Arc`); most callers use [`global`].
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes broadcasts from concurrent callers (e.g. parallel tests):
    /// the pool runs one job at a time, callers queue on this lock.
    broadcast_lock: Mutex<()>,
    size: usize,
}

impl WorkerPool {
    /// Spawns a pool of `size` workers (`size` is clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        CONSTRUCTIONS.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..size)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dimboost-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index, size))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            broadcast_lock: Mutex::new(()),
            size,
        }
    }

    /// Physical worker threads in this pool.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f(0), f(1), …, f(stripes - 1)` across the pool and returns the
    /// results **in stripe order**. Each stripe function must be a pure
    /// function of its stripe index (plus captured shared state) for the
    /// determinism rule to hold; under that contract the returned vector is
    /// identical whatever the pool size or OS schedule.
    ///
    /// `stripes <= 1`, a pool of one, and nested calls from a pool worker
    /// all run inline on the caller. Panics in a stripe are re-raised on
    /// the caller after all workers finish the broadcast.
    pub fn run<R, F>(&self, stripes: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if stripes == 0 {
            return Vec::new();
        }
        if stripes == 1 || self.size <= 1 || IN_POOL_WORKER.with(|w| w.get()) {
            return (0..stripes).map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..stripes).map(|_| Mutex::new(None)).collect();
        let panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let task = |stripe: usize| match catch_unwind(AssertUnwindSafe(|| f(stripe))) {
            Ok(result) => {
                *slots[stripe].lock().expect("stripe slot poisoned") = Some(result);
            }
            Err(payload) => {
                let mut guard = panic.lock().expect("panic slot poisoned");
                if guard.is_none() {
                    *guard = Some(payload);
                }
            }
        };
        self.broadcast(stripes, &task);
        if let Some(payload) = panic.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("stripe slot poisoned")
                    .expect("stripe produced no result")
            })
            .collect()
    }

    /// Hands `task` to every worker and blocks until all have finished
    /// their stripes. `task` must not unwind (callers wrap in
    /// `catch_unwind`).
    fn broadcast(&self, stripes: usize, task: &(dyn Fn(usize) + Sync)) {
        let _exclusive = self.broadcast_lock.lock().expect("broadcast lock poisoned");
        // Erase the borrow's lifetime: the pointee outlives this call, and
        // this call outlives every worker's use of it (we wait below).
        let task: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        state.job = Some(Job { task, stripes });
        state.epoch += 1;
        state.remaining = self.size;
        self.shared.work_cv.notify_all();
        while state.remaining > 0 {
            state = self
                .shared
                .done_cv
                .wait(state)
                .expect("pool state poisoned");
        }
        state.job = None;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize, size: usize) {
    IN_POOL_WORKER.with(|w| w.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let (task, stripes) = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    break;
                }
                state = shared.work_cv.wait(state).expect("pool state poisoned");
            }
            seen_epoch = state.epoch;
            let job = state.job.as_ref().expect("job present for new epoch");
            (job.task, job.stripes)
        };
        // Physical worker `index` executes logical stripes
        // index, index + size, … in ascending order.
        let mut stripe = index;
        while stripe < stripes {
            // SAFETY: see `Job` — the pointee outlives the broadcast, and
            // `task` never unwinds (wrapped in catch_unwind by `run`).
            unsafe { (*task)(stripe) };
            stripe += size;
        }
        let mut state = shared.state.lock().expect("pool state poisoned");
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// The process-wide shared pool, created on first use and reused by every
/// training and serving hot path. Sized from the machine's available
/// parallelism (clamped to 16): callers request any number of logical
/// stripes, so a caller's `--threads` above the pool size still computes
/// the configured striping — physical workers just each carry more stripes.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let size = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 16);
        WorkerPool::new(size)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_stripe_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run(13, |s| s * 10);
        assert_eq!(out, (0..13).map(|s| s * 10).collect::<Vec<_>>());
    }

    #[test]
    fn results_independent_of_pool_size() {
        let work = |s: usize| (0..=s).map(|v| v as f32 * 0.1).sum::<f32>();
        let reference: Vec<f32> = (0..9).map(work).collect();
        for size in [1, 2, 3, 8, 16] {
            let pool = WorkerPool::new(size);
            assert_eq!(pool.run(9, work), reference, "pool size {size}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_runs() {
        let pool = WorkerPool::new(3);
        for rep in 0..50 {
            let out = pool.run(7, |s| s + rep);
            assert_eq!(out, (0..7).map(|s| s + rep).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_runs_execute_inline() {
        let pool = Arc::new(WorkerPool::new(4));
        let inner = Arc::clone(&pool);
        // Each outer stripe issues a nested run; nested calls must complete
        // inline without deadlocking on the (busy) pool.
        let out = pool.run(4, move |s| inner.run(3, |t| s * 10 + t));
        assert_eq!(out[2], vec![20, 21, 22]);
    }

    #[test]
    fn zero_and_single_stripe() {
        let pool = WorkerPool::new(2);
        assert!(pool.run(0, |s| s).is_empty());
        assert_eq!(pool.run(1, |s| s + 1), vec![1]);
    }

    #[test]
    fn stripe_panic_propagates() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |s| {
                assert!(s != 2, "stripe 2 exploded");
                s
            })
        }));
        assert!(caught.is_err());
        // The pool survives a panicked job.
        assert_eq!(pool.run(2, |s| s), vec![0, 1]);
    }

    #[test]
    fn construction_counter_tracks_pools() {
        let before = pool_constructions();
        let _pool = WorkerPool::new(2);
        assert_eq!(pool_constructions(), before + 1);
    }

    #[test]
    fn global_pool_is_created_once() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(global().size() >= 1);
    }
}
