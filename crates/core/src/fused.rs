//! Layer-fused histogram construction.
//!
//! The per-node builders ([`crate::binned`], [`crate::parallel`]) make one
//! pass over each build node's instance list — up to 2^d passes per layer
//! at depth `d`, each historically spawning its own scoped threads. This
//! kernel instead makes **one** statically-striped pass over the whole
//! shard's binned CSR *in row order*, routing every row's contribution
//! through a per-instance node-position array into a contiguous
//! `[build_nodes × row_len]` histogram block — the level-synchronous scheme
//! GPU GBDT implementations use to process all nodes of a level in a
//! single data sweep.
//!
//! # Determinism and bit-equality contract
//!
//! Batches of rows are statically striped over logical stripes (stripe `t`
//! owns batches `t, t + threads, …`, executed on the persistent
//! [`crate::pool`]), each accumulating a private block; partial blocks are
//! merged elementwise in stripe order. Hence, like the per-node builders:
//!
//! * output is **bit-identical across reruns** for any fixed
//!   `(threads, batch_size)`;
//! * at `threads == 1` the kernel makes a single whole-shard pass with one
//!   zero-bucket deposit per node at the end — for each build node the f32
//!   addition sequence is then *exactly* the per-node
//!   [`BinnedShard::build_into`] sequence (instance lists are ascending by
//!   construction: [`crate::node_index`]'s split is stable), so every block
//!   row is bit-equal to the per-node path, no tolerances;
//! * across *different* thread counts only a float-associativity tolerance
//!   holds, same as the per-node batched builders.
//!
//! # Memory trade-off
//!
//! Every stripe carries a private block of `build_nodes × row_len × 4`
//! bytes. The trainer guards this with `GbdtConfig::fused_block_budget` and
//! falls back to per-node builds when `blocks × threads` would exceed it.

use dimboost_data::Dataset;

use crate::binned::BinnedShard;
use crate::loss::GradPair;
use crate::meta::FeatureMeta;
use crate::node_index::NodeIndex;
use crate::pool;
use crate::tree::Tree;

/// Position-array marker for rows that belong to no build node (not
/// sampled, routed to a finished leaf, or the large sibling under
/// histogram subtraction).
pub const NO_NODE: u32 = u32::MAX;

/// Per-instance routing for one layer: which build-node slot each shard
/// row contributes to, plus the per-slot instance counts (the same counts
/// the per-node path reports in telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerPositions {
    /// Per shard row: index into the layer's build-node list, or
    /// [`NO_NODE`].
    pub slots: Vec<u32>,
    /// Per build-node slot: number of contributing rows.
    pub counts: Vec<u64>,
}

/// Derives layer positions from the node-to-instance index (the fast
/// path). Rows absent from every build node's range — e.g. unsampled rows
/// or rows at non-build nodes — map to [`NO_NODE`].
pub fn positions_from_index(
    index: &NodeIndex,
    build_nodes: &[u32],
    num_rows: usize,
) -> LayerPositions {
    let mut slots = vec![NO_NODE; num_rows];
    let mut counts = vec![0u64; build_nodes.len()];
    for (slot, &node) in build_nodes.iter().enumerate() {
        let instances = index.instances(node);
        counts[slot] = instances.len() as u64;
        for &i in instances {
            slots[i as usize] = slot as u32;
        }
    }
    LayerPositions { slots, counts }
}

/// Derives layer positions by routing every (mask-included) row through
/// the partial tree — the `node_index = false` ablation path, fused
/// analogue of the trainer's `scan_instances`.
pub fn positions_from_scan(
    shard: &Dataset,
    tree: &Tree,
    build_nodes: &[u32],
    mask: Option<&[bool]>,
) -> LayerPositions {
    let capacity = build_nodes
        .iter()
        .map(|&n| n as usize + 1)
        .max()
        .unwrap_or(0);
    let mut slot_of = vec![NO_NODE; capacity];
    for (slot, &node) in build_nodes.iter().enumerate() {
        slot_of[node as usize] = slot as u32;
    }
    let num_rows = shard.num_rows();
    let mut slots = vec![NO_NODE; num_rows];
    let mut counts = vec![0u64; build_nodes.len()];
    for i in 0..num_rows {
        if mask.is_some_and(|m| !m[i]) {
            continue;
        }
        let node = tree.route(&shard.row(i), 0) as usize;
        if node < capacity && slot_of[node] != NO_NODE {
            let slot = slot_of[node];
            slots[i] = slot;
            counts[slot as usize] += 1;
        }
    }
    LayerPositions { slots, counts }
}

/// Builds the whole layer's histograms in one pass over `binned`'s CSR.
///
/// Returns the merged block, `num_slots × row_len` f32s; slot `s`'s
/// histogram row is `block[s * row_len..(s + 1) * row_len]`. See the
/// module docs for the determinism/bit-equality contract.
///
/// # Panics
/// Panics if `batch_size` or `threads` is zero, or if `positions.slots`
/// does not cover exactly `binned.num_rows()` rows.
pub fn build_layer(
    binned: &BinnedShard,
    positions: &LayerPositions,
    grads: &[GradPair],
    meta: &FeatureMeta,
    batch_size: usize,
    threads: usize,
) -> Vec<f32> {
    assert!(batch_size > 0, "batch_size must be positive");
    assert!(threads > 0, "threads must be positive");
    assert_eq!(
        positions.slots.len(),
        binned.num_rows(),
        "positions must cover every shard row"
    );
    let num_slots = positions.counts.len();
    let row_len = meta.layout().row_len();
    let num_rows = positions.slots.len();
    if num_slots == 0 {
        return Vec::new();
    }
    let num_batches = num_rows.div_ceil(batch_size);
    let threads = threads.min(num_batches.max(1));

    if threads <= 1 {
        // Single whole-shard pass with one zero-bucket deposit per node at
        // the end: for each build node this is exactly `build_into` over
        // its (ascending) instance list — the bit-equality anchor.
        let mut block = vec![0.0f32; num_slots * row_len];
        let mut sums = vec![(0.0f64, 0.0f64); num_slots];
        let mut touched = vec![false; num_slots];
        accumulate(
            binned,
            &positions.slots,
            grads,
            0,
            num_rows,
            row_len,
            &mut block,
            &mut sums,
            &mut touched,
        );
        deposit(binned, row_len, &mut block, &sums, &touched);
        return block;
    }

    // Static striping on the persistent pool: stripe `t` owns batches
    // t, t + threads, … in ascending order; partial blocks merge in stripe
    // order. Zero-bucket sums deposit at every batch boundary, mirroring
    // the per-node batched builders' per-batch `build_into` deposits.
    let partials: Vec<Vec<f32>> = pool::global().run(threads, |t| {
        let mut block = vec![0.0f32; num_slots * row_len];
        let mut sums = vec![(0.0f64, 0.0f64); num_slots];
        let mut touched = vec![false; num_slots];
        let mut b = t;
        while b < num_batches {
            let lo = b * batch_size;
            let hi = (lo + batch_size).min(num_rows);
            accumulate(
                binned,
                &positions.slots,
                grads,
                lo,
                hi,
                row_len,
                &mut block,
                &mut sums,
                &mut touched,
            );
            deposit(binned, row_len, &mut block, &sums, &touched);
            for s in 0..num_slots {
                sums[s] = (0.0, 0.0);
                touched[s] = false;
            }
            b += threads;
        }
        block
    });
    let mut iter = partials.into_iter();
    let mut out = iter.next().expect("at least one partial block");
    for partial in iter {
        for (o, v) in out.iter_mut().zip(&partial) {
            *o += v;
        }
    }
    out
}

/// Accumulates rows `lo..hi` into `block`, tracking per-slot f64 gradient
/// sums and which slots were touched (so deposits can skip silent slots —
/// their cells hold `+0.0` either way, bit-equal to depositing a zero sum).
#[allow(clippy::too_many_arguments)]
fn accumulate(
    binned: &BinnedShard,
    slots: &[u32],
    grads: &[GradPair],
    lo: usize,
    hi: usize,
    row_len: usize,
    block: &mut [f32],
    sums: &mut [(f64, f64)],
    touched: &mut [bool],
) {
    for (i, &slot) in slots.iter().enumerate().take(hi).skip(lo) {
        if slot == NO_NODE {
            continue;
        }
        let s = slot as usize;
        let gp = grads[i];
        sums[s].0 += gp.g as f64;
        sums[s].1 += gp.h as f64;
        touched[s] = true;
        let base = s * row_len;
        let (elo, ehi) = (binned.indptr[i], binned.indptr[i + 1]);
        for e in elo..ehi {
            let sf = binned.sf[e] as usize;
            block[base + binned.g_elem[e] as usize] += gp.g;
            block[base + binned.h_elem[e] as usize] += gp.h;
            block[base + binned.zero_g[sf] as usize] -= gp.g;
            block[base + binned.zero_h[sf] as usize] -= gp.h;
        }
    }
}

/// Deposits the accumulated zero-bucket sums for every touched slot, in
/// slot order (same order the per-node path deposits each node).
fn deposit(
    binned: &BinnedShard,
    row_len: usize,
    block: &mut [f32],
    sums: &[(f64, f64)],
    touched: &[bool],
) {
    for (s, &(sum_g, sum_h)) in sums.iter().enumerate() {
        if !touched[s] {
            continue;
        }
        let base = s * row_len;
        for sf in 0..binned.zero_g.len() {
            block[base + binned.zero_g[sf] as usize] += sum_g as f32;
            block[base + binned.zero_h[sf] as usize] += sum_h as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist_build::new_row;
    use dimboost_data::synthetic::{generate, SparseGenConfig};
    use dimboost_sketch::SplitCandidates;

    fn setup(n: usize, m: usize) -> (Dataset, FeatureMeta, Vec<GradPair>) {
        let ds = generate(&SparseGenConfig::new(n, m, 9, 41));
        let cands: Vec<SplitCandidates> = (0..m)
            .map(|f| SplitCandidates::from_boundaries(vec![-0.4, 0.3 + (f % 2) as f32 * 0.5, 1.3]))
            .collect();
        let meta = FeatureMeta::all_features(&cands);
        let grads: Vec<GradPair> = (0..n)
            .map(|i| GradPair {
                g: ((i % 11) as f32 - 5.0) / 3.0,
                h: 0.2 + (i % 3) as f32 * 0.4,
            })
            .collect();
        (ds, meta, grads)
    }

    /// Round-robin partition of rows into `nodes` slots, with every third
    /// row left out (NO_NODE) to exercise skipping.
    fn partition(num_rows: usize, nodes: usize) -> LayerPositions {
        let mut slots = vec![NO_NODE; num_rows];
        let mut counts = vec![0u64; nodes];
        for (i, slot) in slots.iter_mut().enumerate() {
            if i % 3 == 2 {
                continue;
            }
            let s = i % nodes;
            *slot = s as u32;
            counts[s] += 1;
        }
        LayerPositions { slots, counts }
    }

    fn per_node_reference(
        binned: &BinnedShard,
        positions: &LayerPositions,
        grads: &[GradPair],
        meta: &FeatureMeta,
    ) -> Vec<Vec<f32>> {
        (0..positions.counts.len())
            .map(|s| {
                let instances: Vec<u32> = positions
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|&(_, &slot)| slot == s as u32)
                    .map(|(i, _)| i as u32)
                    .collect();
                let mut row = new_row(meta);
                binned.build_into(&instances, grads, &mut row);
                row
            })
            .collect()
    }

    #[test]
    fn single_thread_bit_equals_per_node_build_into() {
        let (ds, meta, grads) = setup(400, 30);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = partition(400, 5);
        let reference = per_node_reference(&binned, &positions, &grads, &meta);
        let row_len = meta.layout().row_len();
        // Any batch size: the single-thread kernel ignores batching.
        for batch_size in [7, 64, 1000] {
            let block = build_layer(&binned, &positions, &grads, &meta, batch_size, 1);
            for (s, expected) in reference.iter().enumerate() {
                assert_eq!(
                    &block[s * row_len..(s + 1) * row_len],
                    expected.as_slice(),
                    "slot {s} batch {batch_size}"
                );
            }
        }
    }

    #[test]
    fn multithreaded_reruns_bit_identical_and_close_to_reference() {
        let (ds, meta, grads) = setup(500, 25);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = partition(500, 4);
        let reference = build_layer(&binned, &positions, &grads, &meta, 37, 1);
        for threads in [2, 4, 8] {
            let first = build_layer(&binned, &positions, &grads, &meta, 37, threads);
            for rep in 0..10 {
                let again = build_layer(&binned, &positions, &grads, &meta, 37, threads);
                assert_eq!(again, first, "threads={threads} rep={rep}");
            }
            for (i, (a, b)) in first.iter().zip(&reference).enumerate() {
                assert!((a - b).abs() < 1e-2, "elem {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn whole_shard_batch_multithreaded_is_bit_equal_to_reference() {
        // One batch → one stripe does all the work in row order: bit-equal
        // to the single-thread pass even with threads > 1 requested.
        let (ds, meta, grads) = setup(300, 20);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = partition(300, 3);
        let single = build_layer(&binned, &positions, &grads, &meta, 300, 1);
        let multi = build_layer(&binned, &positions, &grads, &meta, 300, 8);
        assert_eq!(single, multi);
    }

    #[test]
    fn positions_from_index_matches_manual_partition() {
        let index = NodeIndex::new(10, 7);
        let mut index = index;
        index.split(0, 1, 2, |i| i < 6);
        index.split(1, 3, 4, |i| i % 2 == 0);
        let positions = positions_from_index(&index, &[3, 4, 2], 10);
        assert_eq!(positions.counts, vec![3, 3, 4]);
        assert_eq!(positions.slots[0], 0); // row 0: even, < 6 → node 3
        assert_eq!(positions.slots[1], 1); // row 1: odd, < 6 → node 4
        assert_eq!(positions.slots[7], 2); // row 7: ≥ 6 → node 2
    }

    #[test]
    fn empty_build_set_yields_empty_block() {
        let (ds, meta, grads) = setup(50, 10);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = LayerPositions {
            slots: vec![NO_NODE; 50],
            counts: Vec::new(),
        };
        assert!(build_layer(&binned, &positions, &grads, &meta, 16, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "positions must cover")]
    fn rejects_mismatched_positions() {
        let (ds, meta, grads) = setup(50, 10);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = LayerPositions {
            slots: vec![NO_NODE; 10],
            counts: vec![0],
        };
        build_layer(&binned, &positions, &grads, &meta, 16, 1);
    }
}
