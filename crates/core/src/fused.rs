//! Layer-fused histogram construction.
//!
//! The per-node builders ([`crate::binned`], [`crate::parallel`]) make one
//! pass over each build node's instance list — up to 2^d passes per layer
//! at depth `d`, each historically spawning its own scoped threads. This
//! kernel instead makes **one** statically-striped pass over the whole
//! shard's binned CSR *in row order*, routing every row's contribution
//! through a per-instance node-position array into a contiguous
//! `[build_nodes × row_len]` histogram block — the level-synchronous scheme
//! GPU GBDT implementations use to process all nodes of a level in a
//! single data sweep.
//!
//! # Determinism and bit-equality contract
//!
//! Batches of rows are statically striped over logical stripes (stripe `t`
//! owns batches `t, t + threads, …`, executed on the persistent
//! [`crate::pool`]), each accumulating a private block; partial blocks are
//! merged elementwise in stripe order. Hence, like the per-node builders:
//!
//! * output is **bit-identical across reruns** for any fixed
//!   `(threads, batch_size)`;
//! * at `threads == 1` the kernel makes a single whole-shard pass with one
//!   zero-bucket deposit per node at the end — for each build node the f32
//!   addition sequence is then *exactly* the per-node
//!   [`BinnedShard::build_into`] sequence (instance lists are ascending by
//!   construction: [`crate::node_index`]'s split is stable), so every block
//!   row is bit-equal to the per-node path, no tolerances;
//! * across *different* thread counts only a float-associativity tolerance
//!   holds for the **f32** kernel — the quantized kernel below erases even
//!   that caveat.
//!
//! # Quantized variant
//!
//! [`build_layer_quantized`] replaces the f32 cells with packed fixed-point
//! integer cells ([`crate::hist_build`], DESIGN.md §15). Integer addition is
//! associative and commutative, so its output is bit-identical across **any**
//! `(threads, batch_size)` — and bit-identical to the per-node
//! [`crate::hist_build::build_quantized`] — not merely across reruns. The
//! node axis is additionally *tiled* so each stripe's working set
//! (`tile_nodes × pair_len` cells) stays L2-resident on wide layers; tiling
//! cannot affect the result, again by associativity.
//!
//! # Memory trade-off
//!
//! Every stripe carries a private block of `build_nodes × row_len × 4`
//! bytes. The trainer guards this with `GbdtConfig::fused_block_budget` and
//! falls back to per-node builds when `blocks × threads` would exceed it.
//! The quantized kernel is exempt: its per-stripe working set is capped at
//! [`QUANT_TILE_BUDGET_BYTES`] by construction.

use dimboost_data::Dataset;

use crate::binned::BinnedShard;
use crate::hist_build::{
    acc_mode_for, deposit_zero_sums, dequantize_cells_into, AccMode, PairCell, QuantBinned,
    QuantizedGrads,
};
use crate::loss::GradPair;
use crate::meta::FeatureMeta;
use crate::node_index::NodeIndex;
use crate::pool;
use crate::tree::Tree;

/// Position-array marker for rows that belong to no build node (not
/// sampled, routed to a finished leaf, or the large sibling under
/// histogram subtraction).
pub const NO_NODE: u32 = u32::MAX;

/// Per-instance routing for one layer: which build-node slot each shard
/// row contributes to, plus the per-slot instance counts (the same counts
/// the per-node path reports in telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerPositions {
    /// Per shard row: index into the layer's build-node list, or
    /// [`NO_NODE`].
    pub slots: Vec<u32>,
    /// Per build-node slot: number of contributing rows.
    pub counts: Vec<u64>,
}

/// Derives layer positions from the node-to-instance index (the fast
/// path). Rows absent from every build node's range — e.g. unsampled rows
/// or rows at non-build nodes — map to [`NO_NODE`].
pub fn positions_from_index(
    index: &NodeIndex,
    build_nodes: &[u32],
    num_rows: usize,
) -> LayerPositions {
    let mut slots = vec![NO_NODE; num_rows];
    let mut counts = vec![0u64; build_nodes.len()];
    for (slot, &node) in build_nodes.iter().enumerate() {
        let instances = index.instances(node);
        counts[slot] = instances.len() as u64;
        for &i in instances {
            slots[i as usize] = slot as u32;
        }
    }
    LayerPositions { slots, counts }
}

/// Derives layer positions by routing every (mask-included) row through
/// the partial tree — the `node_index = false` ablation path, fused
/// analogue of the trainer's `scan_instances`.
pub fn positions_from_scan(
    shard: &Dataset,
    tree: &Tree,
    build_nodes: &[u32],
    mask: Option<&[bool]>,
) -> LayerPositions {
    let capacity = build_nodes
        .iter()
        .map(|&n| n as usize + 1)
        .max()
        .unwrap_or(0);
    let mut slot_of = vec![NO_NODE; capacity];
    for (slot, &node) in build_nodes.iter().enumerate() {
        slot_of[node as usize] = slot as u32;
    }
    let num_rows = shard.num_rows();
    let mut slots = vec![NO_NODE; num_rows];
    let mut counts = vec![0u64; build_nodes.len()];
    for i in 0..num_rows {
        if mask.is_some_and(|m| !m[i]) {
            continue;
        }
        let node = tree.route(&shard.row(i), 0) as usize;
        if node < capacity && slot_of[node] != NO_NODE {
            let slot = slot_of[node];
            slots[i] = slot;
            counts[slot as usize] += 1;
        }
    }
    LayerPositions { slots, counts }
}

/// Builds the whole layer's histograms in one pass over `binned`'s CSR.
///
/// Returns the merged block, `num_slots × row_len` f32s; slot `s`'s
/// histogram row is `block[s * row_len..(s + 1) * row_len]`. See the
/// module docs for the determinism/bit-equality contract.
///
/// # Panics
/// Panics if `batch_size` or `threads` is zero, or if `positions.slots`
/// does not cover exactly `binned.num_rows()` rows.
pub fn build_layer(
    binned: &BinnedShard,
    positions: &LayerPositions,
    grads: &[GradPair],
    meta: &FeatureMeta,
    batch_size: usize,
    threads: usize,
) -> Vec<f32> {
    assert!(batch_size > 0, "batch_size must be positive");
    assert!(threads > 0, "threads must be positive");
    assert_eq!(
        positions.slots.len(),
        binned.num_rows(),
        "positions must cover every shard row"
    );
    let num_slots = positions.counts.len();
    let row_len = meta.layout().row_len();
    let num_rows = positions.slots.len();
    if num_slots == 0 {
        return Vec::new();
    }
    let num_batches = num_rows.div_ceil(batch_size);
    let threads = threads.min(num_batches.max(1));

    if threads <= 1 {
        // Single whole-shard pass with one zero-bucket deposit per node at
        // the end: for each build node this is exactly `build_into` over
        // its (ascending) instance list — the bit-equality anchor.
        let mut block = vec![0.0f32; num_slots * row_len];
        let mut sums = vec![(0.0f64, 0.0f64); num_slots];
        let mut touched = vec![false; num_slots];
        accumulate(
            binned,
            &positions.slots,
            grads,
            0,
            num_rows,
            row_len,
            &mut block,
            &mut sums,
            &mut touched,
        );
        deposit(binned, row_len, &mut block, &sums, &touched);
        return block;
    }

    // Static striping on the persistent pool: stripe `t` owns batches
    // t, t + threads, … in ascending order; partial blocks merge in stripe
    // order. Zero-bucket sums deposit at every batch boundary, mirroring
    // the per-node batched builders' per-batch `build_into` deposits.
    let partials: Vec<Vec<f32>> = pool::global().run(threads, |t| {
        let mut block = vec![0.0f32; num_slots * row_len];
        let mut sums = vec![(0.0f64, 0.0f64); num_slots];
        let mut touched = vec![false; num_slots];
        let mut b = t;
        while b < num_batches {
            let lo = b * batch_size;
            let hi = (lo + batch_size).min(num_rows);
            accumulate(
                binned,
                &positions.slots,
                grads,
                lo,
                hi,
                row_len,
                &mut block,
                &mut sums,
                &mut touched,
            );
            deposit(binned, row_len, &mut block, &sums, &touched);
            for s in 0..num_slots {
                sums[s] = (0.0, 0.0);
                touched[s] = false;
            }
            b += threads;
        }
        block
    });
    let mut iter = partials.into_iter();
    let mut out = iter.next().expect("at least one partial block");
    for partial in iter {
        for (o, v) in out.iter_mut().zip(&partial) {
            *o += v;
        }
    }
    out
}

/// Accumulates rows `lo..hi` into `block`, tracking per-slot f64 gradient
/// sums and which slots were touched (so deposits can skip silent slots —
/// their cells hold `+0.0` either way, bit-equal to depositing a zero sum).
#[allow(clippy::too_many_arguments)]
fn accumulate(
    binned: &BinnedShard,
    slots: &[u32],
    grads: &[GradPair],
    lo: usize,
    hi: usize,
    row_len: usize,
    block: &mut [f32],
    sums: &mut [(f64, f64)],
    touched: &mut [bool],
) {
    for (i, &slot) in slots.iter().enumerate().take(hi).skip(lo) {
        if slot == NO_NODE {
            continue;
        }
        let s = slot as usize;
        let gp = grads[i];
        sums[s].0 += gp.g as f64;
        sums[s].1 += gp.h as f64;
        touched[s] = true;
        let base = s * row_len;
        let (elo, ehi) = (binned.indptr[i], binned.indptr[i + 1]);
        for e in elo..ehi {
            let sf = binned.sf[e] as usize;
            block[base + binned.g_elem[e] as usize] += gp.g;
            block[base + binned.h_elem[e] as usize] += gp.h;
            block[base + binned.zero_g[sf] as usize] -= gp.g;
            block[base + binned.zero_h[sf] as usize] -= gp.h;
        }
    }
}

/// Deposits the accumulated zero-bucket sums for every touched slot, in
/// slot order (same order the per-node path deposits each node).
fn deposit(
    binned: &BinnedShard,
    row_len: usize,
    block: &mut [f32],
    sums: &[(f64, f64)],
    touched: &[bool],
) {
    for (s, &(sum_g, sum_h)) in sums.iter().enumerate() {
        if !touched[s] {
            continue;
        }
        let base = s * row_len;
        for sf in 0..binned.zero_g.len() {
            block[base + binned.zero_g[sf] as usize] += sum_g as f32;
            block[base + binned.zero_h[sf] as usize] += sum_h as f32;
        }
    }
}

// ---------------------------------------------------------------------------
// Quantized layer kernel (DESIGN.md §15)
// ---------------------------------------------------------------------------

/// Per-stripe working-set budget for the quantized kernel's node tiling —
/// sized for a typical L2 slice. Layers whose full packed block exceeds
/// this are swept in tiles of [`quant_tile_nodes`] node slots each.
pub const QUANT_TILE_BUDGET_BYTES: usize = 1 << 20;

/// Tile size (in node slots) for a quantized layer: the largest slot count
/// whose packed cells fit [`QUANT_TILE_BUDGET_BYTES`], at least 1. Sized
/// against the *wide* (8-byte) cell so the tile choice — which the trainer
/// reports in telemetry — is a pure function of the histogram row length
/// and the layer width, independent of data, threads, and accumulator mode
/// (a narrow tile simply uses at most half the budget).
pub fn quant_tile_nodes(pair_len: usize, num_slots: usize) -> usize {
    if num_slots == 0 {
        return 0;
    }
    (QUANT_TILE_BUDGET_BYTES / (pair_len * 8).max(1)).clamp(1, num_slots)
}

/// Telemetry from one quantized layer build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantLayerStats {
    /// Node slots per cache tile (see [`quant_tile_nodes`]).
    pub tile_nodes: usize,
    /// Accumulator width the layer ran at.
    pub mode: AccMode,
}

/// Quantized layer-fused histogram build: one statically-striped pass per
/// cache tile over `binned`'s CSR, accumulating packed integer cells.
///
/// Returns the dequantized `num_slots × row_len` f32 block (same shape as
/// [`build_layer`]) plus tiling/mode telemetry. Because every integer sum is
/// exact and order-free, the block is bit-identical for **any**
/// `(threads, batch_size)` and bit-identical to running
/// [`crate::hist_build::build_quantized`] per node slot.
///
/// The accumulator width is chosen per layer by [`acc_mode_for`] from the
/// largest build node (`positions.counts`) and the code magnitude bound —
/// the overflow promotion rule documented in DESIGN.md §15.
///
/// # Panics
/// Panics if `batch_size` or `threads` is zero, or if `positions.slots`
/// does not cover exactly `binned.num_rows()` rows.
pub fn build_layer_quantized(
    binned: &BinnedShard,
    qb: &QuantBinned,
    positions: &LayerPositions,
    grads: &QuantizedGrads,
    meta: &FeatureMeta,
    batch_size: usize,
    threads: usize,
) -> (Vec<f32>, QuantLayerStats) {
    assert!(batch_size > 0, "batch_size must be positive");
    assert!(threads > 0, "threads must be positive");
    assert_eq!(
        positions.slots.len(),
        binned.num_rows(),
        "positions must cover every shard row"
    );
    let num_slots = positions.counts.len();
    let tile_nodes = quant_tile_nodes(qb.pair_len(), num_slots);
    if num_slots == 0 {
        return (
            Vec::new(),
            QuantLayerStats {
                tile_nodes: 0,
                mode: AccMode::Wide,
            },
        );
    }
    let max_rows = positions.counts.iter().copied().max().unwrap_or(0);
    let mode = acc_mode_for(max_rows, grads.max_code());
    let block = match mode {
        AccMode::Narrow => quantized_block::<i32>(
            binned, qb, positions, grads, meta, batch_size, threads, tile_nodes,
        ),
        AccMode::Wide => quantized_block::<i64>(
            binned, qb, positions, grads, meta, batch_size, threads, tile_nodes,
        ),
    };
    (block, QuantLayerStats { tile_nodes, mode })
}

/// Generic tiled sweep. Each tile covers node slots `[tile_lo, tile_hi)`;
/// stripes accumulate private packed cells plus per-slot code sums over
/// their batches, partials merge with wrapping adds (order irrelevant),
/// then one zero-bucket deposit and one dequantize pass per slot.
#[allow(clippy::too_many_arguments)]
fn quantized_block<C: PairCell>(
    binned: &BinnedShard,
    qb: &QuantBinned,
    positions: &LayerPositions,
    grads: &QuantizedGrads,
    meta: &FeatureMeta,
    batch_size: usize,
    threads: usize,
    tile_nodes: usize,
) -> Vec<f32> {
    let num_slots = positions.counts.len();
    let row_len = meta.layout().row_len();
    let pair_len = qb.pair_len();
    let num_rows = positions.slots.len();
    let num_batches = num_rows.div_ceil(batch_size);
    let threads = threads.min(num_batches.max(1));
    let mut out = vec![0.0f32; num_slots * row_len];

    let mut tile_lo = 0usize;
    while tile_lo < num_slots {
        let tile_hi = (tile_lo + tile_nodes).min(num_slots);
        let tile_n = tile_hi - tile_lo;
        let stripe = |t: usize| -> (Vec<C>, Vec<(i64, i64)>) {
            let mut cells = vec![C::ZERO; tile_n * pair_len];
            let mut sums = vec![(0i64, 0i64); tile_n];
            let mut b = t;
            while b < num_batches {
                let lo = b * batch_size;
                let hi = (lo + batch_size).min(num_rows);
                accumulate_tile::<C>(
                    binned,
                    qb,
                    grads,
                    &positions.slots,
                    lo,
                    hi,
                    tile_lo,
                    tile_hi,
                    pair_len,
                    &mut cells,
                    &mut sums,
                );
                b += threads;
            }
            (cells, sums)
        };
        let (mut cells, sums) = if threads <= 1 {
            stripe(0)
        } else {
            let mut partials = pool::global().run(threads, stripe).into_iter();
            let (mut cells, mut sums) = partials.next().expect("at least one stripe");
            for (pc, ps) in partials {
                for (c, v) in cells.iter_mut().zip(pc) {
                    *c = c.add(v);
                }
                for (s, v) in sums.iter_mut().zip(ps) {
                    s.0 += v.0;
                    s.1 += v.1;
                }
            }
            (cells, sums)
        };
        for s in 0..tile_n {
            let cell_row = &mut cells[s * pair_len..(s + 1) * pair_len];
            // Depositing a zero sum is the integer identity, so untouched
            // slots need no skip logic (unlike the f32 ±0.0 subtlety).
            deposit_zero_sums::<C>(&qb.zero_pair, sums[s].0, sums[s].1, cell_row);
            let slot = tile_lo + s;
            dequantize_cells_into::<C>(
                cell_row,
                meta,
                grads,
                &mut out[slot * row_len..(slot + 1) * row_len],
            );
        }
        tile_lo = tile_hi;
    }
    out
}

/// Accumulates rows `lo..hi` whose slot falls inside the current tile.
/// 2 wrapping read-modify-writes per CSR entry.
#[allow(clippy::too_many_arguments)]
fn accumulate_tile<C: PairCell>(
    binned: &BinnedShard,
    qb: &QuantBinned,
    grads: &QuantizedGrads,
    slots: &[u32],
    lo: usize,
    hi: usize,
    tile_lo: usize,
    tile_hi: usize,
    pair_len: usize,
    cells: &mut [C],
    sums: &mut [(i64, i64)],
) {
    for (i, &slot) in slots.iter().enumerate().take(hi).skip(lo) {
        if slot == NO_NODE {
            continue;
        }
        let s = slot as usize;
        if s < tile_lo || s >= tile_hi {
            continue;
        }
        let rel = s - tile_lo;
        let (gc, hc) = grads.codes(i);
        sums[rel].0 += gc;
        sums[rel].1 += hc;
        let base = rel * pair_len;
        let packed = C::pack(gc, hc);
        for e in binned.indptr[i]..binned.indptr[i + 1] {
            let p = base + qb.pair_elem[e] as usize;
            cells[p] = cells[p].add(packed);
            let z = base + qb.zero_elem[e] as usize;
            cells[z] = cells[z].sub(packed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist_build::new_row;
    use dimboost_data::synthetic::{generate, SparseGenConfig};
    use dimboost_sketch::SplitCandidates;

    fn setup(n: usize, m: usize) -> (Dataset, FeatureMeta, Vec<GradPair>) {
        let ds = generate(&SparseGenConfig::new(n, m, 9, 41));
        let cands: Vec<SplitCandidates> = (0..m)
            .map(|f| SplitCandidates::from_boundaries(vec![-0.4, 0.3 + (f % 2) as f32 * 0.5, 1.3]))
            .collect();
        let meta = FeatureMeta::all_features(&cands);
        let grads: Vec<GradPair> = (0..n)
            .map(|i| GradPair {
                g: ((i % 11) as f32 - 5.0) / 3.0,
                h: 0.2 + (i % 3) as f32 * 0.4,
            })
            .collect();
        (ds, meta, grads)
    }

    /// Round-robin partition of rows into `nodes` slots, with every third
    /// row left out (NO_NODE) to exercise skipping.
    fn partition(num_rows: usize, nodes: usize) -> LayerPositions {
        let mut slots = vec![NO_NODE; num_rows];
        let mut counts = vec![0u64; nodes];
        for (i, slot) in slots.iter_mut().enumerate() {
            if i % 3 == 2 {
                continue;
            }
            let s = i % nodes;
            *slot = s as u32;
            counts[s] += 1;
        }
        LayerPositions { slots, counts }
    }

    fn per_node_reference(
        binned: &BinnedShard,
        positions: &LayerPositions,
        grads: &[GradPair],
        meta: &FeatureMeta,
    ) -> Vec<Vec<f32>> {
        (0..positions.counts.len())
            .map(|s| {
                let instances: Vec<u32> = positions
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|&(_, &slot)| slot == s as u32)
                    .map(|(i, _)| i as u32)
                    .collect();
                let mut row = new_row(meta);
                binned.build_into(&instances, grads, &mut row);
                row
            })
            .collect()
    }

    #[test]
    fn single_thread_bit_equals_per_node_build_into() {
        let (ds, meta, grads) = setup(400, 30);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = partition(400, 5);
        let reference = per_node_reference(&binned, &positions, &grads, &meta);
        let row_len = meta.layout().row_len();
        // Any batch size: the single-thread kernel ignores batching.
        for batch_size in [7, 64, 1000] {
            let block = build_layer(&binned, &positions, &grads, &meta, batch_size, 1);
            for (s, expected) in reference.iter().enumerate() {
                assert_eq!(
                    &block[s * row_len..(s + 1) * row_len],
                    expected.as_slice(),
                    "slot {s} batch {batch_size}"
                );
            }
        }
    }

    #[test]
    fn multithreaded_reruns_bit_identical_and_close_to_reference() {
        let (ds, meta, grads) = setup(500, 25);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = partition(500, 4);
        let reference = build_layer(&binned, &positions, &grads, &meta, 37, 1);
        for threads in [2, 4, 8] {
            let first = build_layer(&binned, &positions, &grads, &meta, 37, threads);
            for rep in 0..10 {
                let again = build_layer(&binned, &positions, &grads, &meta, 37, threads);
                assert_eq!(again, first, "threads={threads} rep={rep}");
            }
            for (i, (a, b)) in first.iter().zip(&reference).enumerate() {
                assert!((a - b).abs() < 1e-2, "elem {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn whole_shard_batch_multithreaded_is_bit_equal_to_reference() {
        // One batch → one stripe does all the work in row order: bit-equal
        // to the single-thread pass even with threads > 1 requested.
        let (ds, meta, grads) = setup(300, 20);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = partition(300, 3);
        let single = build_layer(&binned, &positions, &grads, &meta, 300, 1);
        let multi = build_layer(&binned, &positions, &grads, &meta, 300, 8);
        assert_eq!(single, multi);
    }

    #[test]
    fn positions_from_index_matches_manual_partition() {
        let index = NodeIndex::new(10, 7);
        let mut index = index;
        index.split(0, 1, 2, |i| i < 6);
        index.split(1, 3, 4, |i| i % 2 == 0);
        let positions = positions_from_index(&index, &[3, 4, 2], 10);
        assert_eq!(positions.counts, vec![3, 3, 4]);
        assert_eq!(positions.slots[0], 0); // row 0: even, < 6 → node 3
        assert_eq!(positions.slots[1], 1); // row 1: odd, < 6 → node 4
        assert_eq!(positions.slots[7], 2); // row 7: ≥ 6 → node 2
    }

    #[test]
    fn empty_build_set_yields_empty_block() {
        let (ds, meta, grads) = setup(50, 10);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = LayerPositions {
            slots: vec![NO_NODE; 50],
            counts: Vec::new(),
        };
        assert!(build_layer(&binned, &positions, &grads, &meta, 16, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "positions must cover")]
    fn rejects_mismatched_positions() {
        let (ds, meta, grads) = setup(50, 10);
        let binned = BinnedShard::build(&ds, &meta);
        let positions = LayerPositions {
            slots: vec![NO_NODE; 10],
            counts: vec![0],
        };
        build_layer(&binned, &positions, &grads, &meta, 16, 1);
    }

    // --- quantized layer kernel ---

    use crate::hist_build::build_quantized;

    fn quant_setup(
        n: usize,
        m: usize,
        bits: u8,
    ) -> (BinnedShard, QuantBinned, QuantizedGrads, FeatureMeta) {
        let (ds, meta, grads) = setup(n, m);
        let binned = BinnedShard::build(&ds, &meta);
        let qb = QuantBinned::build(&binned, &meta);
        let qg = QuantizedGrads::quantize(&grads, bits);
        (binned, qb, qg, meta)
    }

    #[test]
    fn quantized_layer_bit_equals_per_node_for_any_threads_and_batch() {
        let (binned, qb, qg, meta) = quant_setup(400, 30, 12);
        let positions = partition(400, 5);
        let row_len = meta.layout().row_len();
        let max_rows = positions.counts.iter().copied().max().unwrap();
        let mode = acc_mode_for(max_rows, qg.max_code());
        let reference: Vec<Vec<f32>> = (0..positions.counts.len())
            .map(|s| {
                let instances: Vec<u32> = positions
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|&(_, &slot)| slot == s as u32)
                    .map(|(i, _)| i as u32)
                    .collect();
                build_quantized(&binned, &qb, &instances, &qg, &meta, mode)
            })
            .collect();
        for threads in [1usize, 2, 3, 8] {
            for batch_size in [7usize, 64, 1000] {
                let (block, stats) = build_layer_quantized(
                    &binned, &qb, &positions, &qg, &meta, batch_size, threads,
                );
                assert_eq!(stats.mode, mode);
                for (s, expected) in reference.iter().enumerate() {
                    // assert_eq on f32 bits: integer accumulation makes the
                    // fused block independent of threads AND batch size, and
                    // structurally equal to the per-node quantized build.
                    assert_eq!(
                        &block[s * row_len..(s + 1) * row_len],
                        expected.as_slice(),
                        "slot {s} threads={threads} batch={batch_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_tiling_does_not_change_the_block() {
        let (binned, qb, qg, meta) = quant_setup(300, 25, 10);
        let positions = partition(300, 6);
        // Reference: one tile covering all slots.
        let whole = quantized_block::<i64>(&binned, &qb, &positions, &qg, &meta, 37, 4, 6);
        for tile in [1usize, 2, 4, 5] {
            let tiled = quantized_block::<i64>(&binned, &qb, &positions, &qg, &meta, 37, 4, tile);
            assert_eq!(tiled, whole, "tile={tile}");
        }
    }

    #[test]
    fn quant_tile_heuristic_fits_budget_and_covers_edge_cases() {
        // pair_len 2000 → wide cells 16 000 B per slot → ⌊1 MiB / 16 000⌋
        // = 65 slots per tile.
        assert_eq!(quant_tile_nodes(2000, 100), 65);
        // Huge rows never drop below one slot per tile.
        assert_eq!(quant_tile_nodes(10_000_000, 4), 1);
        // Small layers are a single tile.
        assert_eq!(quant_tile_nodes(50, 8), 8);
        assert_eq!(quant_tile_nodes(0, 8), 8);
        assert_eq!(quant_tile_nodes(2000, 0), 0);
        // Reported tile matches what the kernel actually uses.
        let (binned, qb, qg, meta) = quant_setup(100, 20, 8);
        let positions = partition(100, 4);
        let (_, stats) = build_layer_quantized(&binned, &qb, &positions, &qg, &meta, 32, 2);
        assert_eq!(stats.tile_nodes, quant_tile_nodes(qb.pair_len(), 4));
    }

    #[test]
    fn quantized_layer_narrow_mode_engages_and_matches_wide() {
        // 8-bit codes, ≤ 160 rows per slot → 160 · 127 ≪ 32 767: narrow.
        let (binned, qb, qg, meta) = quant_setup(300, 20, 8);
        let positions = partition(300, 2);
        let (block, stats) = build_layer_quantized(&binned, &qb, &positions, &qg, &meta, 64, 4);
        assert_eq!(stats.mode, AccMode::Narrow);
        let wide = quantized_block::<i64>(
            &binned,
            &qb,
            &positions,
            &qg,
            &meta,
            64,
            4,
            stats.tile_nodes,
        );
        assert_eq!(block, wide);
    }

    #[test]
    fn quantized_empty_build_set_yields_empty_block() {
        let (binned, qb, qg, meta) = quant_setup(50, 10, 8);
        let positions = LayerPositions {
            slots: vec![NO_NODE; 50],
            counts: Vec::new(),
        };
        let (block, stats) = build_layer_quantized(&binned, &qb, &positions, &qg, &meta, 16, 4);
        assert!(block.is_empty());
        assert_eq!(stats.tile_nodes, 0);
    }
}
