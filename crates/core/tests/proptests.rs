//! Property-based tests for the core GBDT machinery.

use dimboost_core::hist_build::build_row;
use dimboost_core::loss::{loss_for, GradPair};
use dimboost_core::{FeatureMeta, GbdtConfig, LossKind, NodeIndex, RoundRobinScheduler, Tree};
use dimboost_data::{Dataset, SparseInstance};
use dimboost_sketch::SplitCandidates;
use proptest::collection::vec;
use proptest::prelude::*;

/// Small random sparse dataset with gradient pairs.
fn arb_dataset_grads() -> impl Strategy<Value = (Dataset, Vec<GradPair>)> {
    (1usize..30, 2usize..20).prop_flat_map(|(rows, features)| {
        let row_strategy = vec((0u32..features as u32, -3.0f32..3.0), 0..features);
        (
            vec(row_strategy, rows..=rows),
            vec((-5.0f32..5.0, 0.01f32..3.0), rows..=rows),
        )
            .prop_map(move |(raw, gh)| {
                let mut instances = Vec::new();
                for pairs in raw {
                    let mut pairs = pairs;
                    pairs.sort_unstable_by_key(|&(i, _)| i);
                    pairs.dedup_by_key(|&mut (i, _)| i);
                    instances.push(SparseInstance::from_pairs(pairs).unwrap());
                }
                let labels = vec![0.0; instances.len()];
                let ds = Dataset::from_instances(&instances, labels, features).unwrap();
                let grads = gh.into_iter().map(|(g, h)| GradPair { g, h }).collect();
                (ds, grads)
            })
    })
}

fn meta_for(ds: &Dataset, bounds: &[f32]) -> FeatureMeta {
    let cands: Vec<SplitCandidates> = (0..ds.num_features())
        .map(|_| SplitCandidates::from_boundaries(bounds.to_vec()))
        .collect();
    FeatureMeta::all_features(&cands)
}

proptest! {
    /// Algorithm 2 (sparse) and the traditional dense pass agree on any
    /// input — the core equivalence claim of Section 5.1.
    #[test]
    fn sparse_dense_equivalence((ds, grads) in arb_dataset_grads(), b1 in -2.0f32..0.0, b2 in 0.01f32..2.0) {
        let meta = meta_for(&ds, &[b1, b2]);
        let instances: Vec<u32> = (0..ds.num_rows() as u32).collect();
        let sparse = build_row(&ds, &instances, &grads, &meta, true);
        let dense = build_row(&ds, &instances, &grads, &meta, false);
        for (i, (s, d)) in sparse.iter().zip(&dense).enumerate() {
            prop_assert!((s - d).abs() < 1e-3, "elem {}: {} vs {}", i, s, d);
        }
    }

    /// Per-feature bucket sums always equal the gradient totals.
    #[test]
    fn histogram_mass_conservation((ds, grads) in arb_dataset_grads()) {
        let meta = meta_for(&ds, &[0.5, 1.0]);
        let instances: Vec<u32> = (0..ds.num_rows() as u32).collect();
        let row = build_row(&ds, &instances, &grads, &meta, true);
        let layout = meta.layout();
        let total_g: f32 = grads.iter().map(|p| p.g).sum();
        let total_h: f32 = grads.iter().map(|p| p.h).sum();
        for sf in 0..meta.num_sampled() {
            let g: f32 = (0..layout.num_buckets(sf)).map(|k| row[layout.g_index(sf, k)]).sum();
            let h: f32 = (0..layout.num_buckets(sf)).map(|k| row[layout.h_index(sf, k)]).sum();
            prop_assert!((g - total_g).abs() < 1e-2, "feature {}: G {} vs {}", sf, g, total_g);
            prop_assert!((h - total_h).abs() < 1e-2, "feature {}: H {} vs {}", sf, h, total_h);
        }
    }

    /// NodeIndex splits preserve the instance multiset and respect the
    /// predicate, for arbitrary split sequences.
    #[test]
    fn node_index_invariants(n in 1usize..200, splits in vec(any::<u64>(), 0..6)) {
        let mut idx = NodeIndex::new(n, 127);
        let mut frontier = vec![0u32];
        for (step, salt) in splits.iter().enumerate() {
            let Some(&node) = frontier.get(step % frontier.len().max(1)) else { break };
            if !idx.is_materialized(node) { continue }
            let (lc, rc) = (Tree::left_child(node), Tree::right_child(node));
            if rc as usize >= 127 { break }
            let before: Vec<u32> = idx.instances(node).to_vec();
            let pred = |i: u32| (i as u64).wrapping_mul(*salt) % 3 != 0;
            idx.split(node, lc, rc, pred);
            let mut after: Vec<u32> = idx.instances(lc).to_vec();
            after.extend_from_slice(idx.instances(rc));
            let mut b = before.clone();
            let mut a = after.clone();
            b.sort_unstable();
            a.sort_unstable();
            prop_assert_eq!(a, b, "split lost or duplicated instances");
            prop_assert!(idx.instances(lc).iter().all(|&i| pred(i)));
            prop_assert!(idx.instances(rc).iter().all(|&i| !pred(i)));
            frontier.push(lc);
            frontier.push(rc);
        }
    }

    /// The scheduler covers every position exactly once, and round-robin
    /// load never exceeds ceil(n/w).
    #[test]
    fn scheduler_exact_cover(w in 1usize..16, n in 0usize..100) {
        let s = RoundRobinScheduler::new(w);
        let mut owners = vec![0usize; n];
        for worker in 0..w {
            for pos in s.assignments(worker, n) {
                owners[pos] += 1;
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1));
        for worker in 0..w {
            prop_assert!(s.assignments(worker, n).len() <= s.max_load(n));
        }
    }

    /// Tree routing is consistent with predict: the routed node's leaf
    /// weight is the prediction.
    #[test]
    fn route_predict_consistency(vals in vec(0.0f32..1.0, 1..20), t1 in 0.1f32..0.9, t2 in 0.1f32..0.9) {
        let mut tree = Tree::new(2);
        tree.set_internal(0, 0, t1);
        tree.set_internal(1, 0, t1 * t2);
        tree.set_leaf(3, -2.0);
        tree.set_leaf(4, -1.0);
        tree.set_leaf(2, 1.0);
        prop_assert!(tree.check_consistency().is_ok());
        for v in vals {
            let inst = SparseInstance::new(vec![0], vec![v]).unwrap();
            let ds = Dataset::from_instances(&[inst], vec![0.0], 1).unwrap();
            let row = ds.row(0);
            let leaf = tree.route(&row, 0);
            let expected = match tree.node(leaf) {
                dimboost_core::Node::Leaf { weight } => weight,
                _ => f32::NAN,
            };
            prop_assert_eq!(tree.predict(&row), expected);
        }
    }

    /// Losses are non-negative with correct-sign gradients.
    #[test]
    fn loss_properties(score in -10.0f32..10.0, label_bit in any::<bool>()) {
        let label = if label_bit { 1.0 } else { 0.0 };
        for kind in [LossKind::Logistic, LossKind::Square] {
            let l = loss_for(kind);
            prop_assert!(l.loss(score, label) >= 0.0);
            let gp = l.grad(score, label);
            prop_assert!(gp.h > 0.0);
            // Gradient sign: g > 0 exactly when the transformed prediction
            // overshoots the label (g = p − y for logistic, ŷ − y for square).
            let overshoot = l.transform(score) - label;
            if overshoot.abs() > 1e-4 {
                prop_assert_eq!(gp.g > 0.0, overshoot > 0.0);
            }
        }
    }

    /// Config validation accepts every config the strategy builds.
    #[test]
    fn generated_configs_validate(
        trees in 1usize..30,
        depth in 1usize..10,
        k in 1usize..64,
        ratio in 0.01f64..1.0,
        bits in 2u8..16,
    ) {
        let config = GbdtConfig {
            num_trees: trees,
            max_depth: depth,
            num_candidates: k,
            feature_sample_ratio: ratio,
            compress_bits: bits,
            ..GbdtConfig::default()
        };
        prop_assert!(config.validate().is_ok());
    }
}
