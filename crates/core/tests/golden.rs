//! Golden-model test: a tiny dataset whose optimal tree can be computed by
//! hand from the paper's equations (Section 2.2), checked digit-for-digit
//! against the trainer.
//!
//! Setup: one feature, four instances `x = [1, 2, 3, 4]` with square-loss
//! targets `y = [1, 1, 3, 3]`, one tree of depth 1, `λ = 1`, `γ = 0`,
//! `η = 1`, no compression.
//!
//! At the root, square loss at score 0 gives `g_i = −y_i`, `h_i = 1`, so
//! `G = −8`, `H = 4` and the parent objective is `G²/(H+λ) = 64/5 = 12.8`.
//! Scanning split candidates (the 1/2/3/4 quantiles plus the mandatory 0):
//!
//! | threshold | G_L, H_L | gain = ½(G_L²/(H_L+λ) + G_R²/(H_R+λ) − 12.8) |
//! |---|---|---|
//! | ≤ 0 | 0, 0   | 0 |
//! | ≤ 1 | −1, 1  | ½(1/2 + 49/4 − 12.8) = −0.025 |
//! | ≤ 2 | −2, 2  | ½(4/3 + 36/3 − 12.8) = **4/15 ≈ 0.2667** |
//! | ≤ 3 | −5, 3  | ½(25/4 + 9/2 − 12.8) = −1.025 |
//!
//! The winner is `x ≤ 2` with gain 4/15; leaf weights are
//! `−G_L/(H_L+λ) = 2/3` (left) and `−G_R/(H_R+λ) = 2` (right), and the
//! resulting mean training loss is `½·(2·(1/3)² + 2·1²)/4 = 5/18`.

use dimboost_core::{train_distributed, GbdtConfig, LossKind, Node, Optimizations, Tree};
use dimboost_data::{Dataset, SparseInstance};
use dimboost_ps::PsConfig;
use dimboost_simnet::CostModel;

fn golden_dataset() -> Dataset {
    let instances: Vec<SparseInstance> = [1.0f32, 2.0, 3.0, 4.0]
        .iter()
        .map(|&v| SparseInstance::new(vec![0], vec![v]).unwrap())
        .collect();
    Dataset::from_instances(&instances, vec![1.0, 1.0, 3.0, 3.0], 1).unwrap()
}

fn golden_config() -> GbdtConfig {
    GbdtConfig {
        num_trees: 1,
        max_depth: 1,
        num_candidates: 4,
        learning_rate: 1.0,
        lambda: 1.0,
        gamma: 0.0,
        min_child_weight: 0.0,
        loss: LossKind::Square,
        sketch_eps: 0.01,
        opts: Optimizations {
            low_precision: false,
            ..Optimizations::ALL
        },
        ..GbdtConfig::default()
    }
}

fn assert_golden_tree(tree: &Tree) {
    match tree.node(0) {
        Node::Internal {
            feature,
            threshold,
            gain,
            ..
        } => {
            assert_eq!(feature, 0);
            assert!((threshold - 2.0).abs() < 1e-6, "threshold {threshold}");
            assert!((gain as f64 - 4.0 / 15.0).abs() < 1e-5, "gain {gain}");
        }
        other => panic!("root should be the hand-computed split, got {other:?}"),
    }
    match tree.node(1) {
        Node::Leaf { weight } => {
            assert!(
                (weight as f64 - 2.0 / 3.0).abs() < 1e-6,
                "left weight {weight}"
            )
        }
        other => panic!("left child should be a leaf, got {other:?}"),
    }
    match tree.node(2) {
        Node::Leaf { weight } => {
            assert!((weight as f64 - 2.0).abs() < 1e-6, "right weight {weight}")
        }
        other => panic!("right child should be a leaf, got {other:?}"),
    }
}

#[test]
fn trainer_reproduces_hand_computed_tree() {
    let ds = golden_dataset();
    let ps = PsConfig {
        num_servers: 1,
        num_partitions: 0,
        cost_model: CostModel::FREE,
    };
    let out = train_distributed(std::slice::from_ref(&ds), &golden_config(), ps).unwrap();

    assert_eq!(out.model.num_trees(), 1);
    assert_golden_tree(&out.model.trees()[0]);

    // Predictions: η = 1, so exactly the leaf weights.
    let preds = out.model.predict_dataset(&ds);
    assert!((preds[0] as f64 - 2.0 / 3.0).abs() < 1e-6);
    assert!((preds[1] as f64 - 2.0 / 3.0).abs() < 1e-6);
    assert!((preds[2] as f64 - 2.0).abs() < 1e-6);
    assert!((preds[3] as f64 - 2.0).abs() < 1e-6);

    // Mean training loss ½Σ(y−ŷ)²/4 = 5/18.
    let loss = out.loss_curve.last().unwrap().train_loss;
    assert!((loss - 5.0 / 18.0).abs() < 1e-6, "train loss {loss}");

    // Feature importance is exactly the split gain on feature 0.
    let imp = out.model.feature_importance();
    assert!((imp[0] - 4.0 / 15.0).abs() < 1e-5, "importance {imp:?}");
}

#[test]
fn golden_tree_survives_distribution_and_every_optimization() {
    // Sharding the four instances across two workers and flipping every
    // exact optimization toggle must not change the tree. (Low precision is
    // the one *approximate* optimization — ±1/3 of a block's scale does not
    // hit an 8-bit level exactly — so it stays off here and is checked with
    // a tolerance below.)
    let ds = golden_dataset();
    let shard_a = ds.subset(&[0, 3]);
    let shard_b = ds.subset(&[1, 2]);
    for opts in [
        Optimizations {
            low_precision: false,
            ..Optimizations::ALL
        },
        Optimizations::NONE,
        Optimizations {
            hist_subtraction: true,
            low_precision: false,
            ..Optimizations::ALL
        },
    ] {
        let mut config = golden_config();
        config.opts = opts;
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let out = train_distributed(&[shard_a.clone(), shard_b.clone()], &config, ps).unwrap();
        assert_golden_tree(&out.model.trees()[0]);
    }

    // Low precision: same split point, gain within one quantization step.
    let mut config = golden_config();
    config.opts = Optimizations::ALL;
    let ps = PsConfig {
        num_servers: 2,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    };
    let out = train_distributed(&[shard_a, shard_b], &config, ps).unwrap();
    match out.model.trees()[0].node(0) {
        Node::Internal {
            feature,
            threshold,
            gain,
            ..
        } => {
            assert_eq!(feature, 0);
            assert!((threshold - 2.0).abs() < 1e-6, "threshold {threshold}");
            assert!((gain as f64 - 4.0 / 15.0).abs() < 0.05, "gain {gain}");
        }
        other => panic!("expected golden split under quantization, got {other:?}"),
    }
}
