//! Command-line interface for the DimBoost reproduction.
//!
//! Subcommands:
//!
//! * `train` — train a model on a LibSVM file (optionally on a simulated
//!   multi-worker cluster) and save it.
//! * `predict` — score a LibSVM/CSV file with a saved model through the
//!   compiled inference engine (`dimboost-predict`).
//! * `bench` — serving throughput benchmark: repeated scoring runs plus a
//!   JSON serving report gateable by `report_diff`.
//! * `serve-sim` — open-loop traffic simulation over one or more saved
//!   models (`dimboost-serving`): seeded arrivals, SLO batching, load
//!   shedding, hot-swap, and a canonical `serving_sim` report.
//! * `analyze` — profile a recorded trace (train events-text or serve-sim)
//!   into a canonical `trace_profile` report: critical-path decomposition,
//!   utilization/wait split, SLO breakdown, folded flamegraph stacks.
//! * `evaluate` — report error / log-loss / AUC of a model on a file.
//! * `gen` — write a synthetic dataset in LibSVM format.
//!
//! Argument parsing is hand-rolled (`--flag value` pairs) to stay within the
//! workspace's dependency allowlist; [`parse_args`] is a pure function so
//! the whole surface is unit-testable.

use std::path::PathBuf;

use dimboost_core::metrics::{
    auc, classification_error, log_loss, multiclass_error, multiclass_log_loss, rmse,
};
use dimboost_core::{
    load_model_file, save_model_file, CheckpointOptions, FaultPlan, GbdtConfig, LossKind,
    RobustOptions, TrainCheckpoint, TrainError,
};
use dimboost_data::csv::{read_csv_file, CsvOptions};
use dimboost_data::libsvm::{read_libsvm_file, write_libsvm, LibsvmOptions};
use dimboost_data::partition::{partition_rows, train_test_split};
use dimboost_data::synthetic::{generate, SparseGenConfig};
use dimboost_data::Dataset;
use dimboost_predict::{score_raw, score_transformed, BenchOptions, CompiledModel, EngineConfig};
use dimboost_ps::PsConfig;
use dimboost_serving::{
    analyze_serve_trace, is_serve_trace, poisson_arrivals, run_serve_sim, ModelSwap,
    ServeSimConfig, TenantSpec,
};
use dimboost_simnet::{analyze_trace, CostModel, Trace};

/// A fully-parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Train a model from a LibSVM file (boxed: much larger than the rest).
    Train(Box<TrainArgs>),
    /// Score a LibSVM/CSV file with a saved model.
    Predict(PredictArgs),
    /// Serving throughput benchmark over a saved model.
    Bench(BenchArgs),
    /// Open-loop traffic simulation over saved models.
    ServeSim(ServeSimArgs),
    /// Profile a recorded trace into a canonical trace_profile report.
    Analyze(AnalyzeArgs),
    /// Evaluate a saved model on a LibSVM file.
    Evaluate(EvalArgs),
    /// Generate a synthetic LibSVM dataset.
    Gen(GenArgs),
    /// Print a saved model's structure and feature importance.
    Inspect(InspectArgs),
    /// Print usage.
    Help,
}

/// Arguments for `train`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainArgs {
    /// Input LibSVM file.
    pub data: PathBuf,
    /// Output model path.
    pub model: PathBuf,
    /// Simulated worker count.
    pub workers: usize,
    /// Parameter-server count (0 = same as workers).
    pub servers: usize,
    /// Fraction held out for a test report after training.
    pub test_fraction: f64,
    /// Feature indices in the file start at 0 instead of 1.
    pub zero_based: bool,
    /// Stop after this many rounds without held-out improvement.
    pub early_stop: Option<usize>,
    /// Write the JSON run report (per-phase compute/comm, per-round
    /// telemetry) here after training.
    pub report: Option<PathBuf>,
    /// Write the canonical (timing-free, rerun-stable) run report here.
    pub report_canonical: Option<PathBuf>,
    /// Write a Chrome-trace-event JSON of the run (load in Perfetto or
    /// `chrome://tracing`) and print the plain-text timeline summary.
    pub trace: Option<PathBuf>,
    /// Write the canonical trace: pure simulated clock, no wall-clock
    /// annotations, byte-identical across reruns.
    pub trace_canonical: Option<PathBuf>,
    /// Write the events-text trace: the exact event stream with
    /// shortest-round-trip f64s, parseable back bit-exactly by `analyze`.
    pub trace_events: Option<PathBuf>,
    /// Profile the run's trace in-process and write the canonical
    /// `trace_profile` JSON here (same bytes `analyze` produces offline).
    pub profile: Option<PathBuf>,
    /// Deterministic fault plan file injected into the simulated cluster.
    pub fault_plan: Option<PathBuf>,
    /// Directory for the rolling training checkpoint.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in boosting rounds (requires `--checkpoint-dir`).
    pub checkpoint_every: usize,
    /// Resume from the checkpoint in `--checkpoint-dir`.
    pub resume: bool,
    /// Hyper-parameters.
    pub config: GbdtConfig,
}

/// Arguments for `predict`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictArgs {
    /// Input LibSVM (or, with `csv`, CSV) file.
    pub data: PathBuf,
    /// Saved model path.
    pub model: PathBuf,
    /// Where to write predictions (stdout when `None`).
    pub output: Option<PathBuf>,
    /// Emit raw additive scores instead of transformed predictions
    /// (multiclass models emit `K` space-separated scores per row).
    pub raw: bool,
    /// Feature indices in the file start at 0 instead of 1.
    pub zero_based: bool,
    /// Parse the input as CSV (label in column 0) instead of LibSVM.
    pub csv: bool,
    /// Scoring threads.
    pub threads: usize,
    /// Rows per scoring batch.
    pub batch_size: usize,
}

/// Arguments for `bench`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Input LibSVM (or, with `csv`, CSV) file.
    pub data: PathBuf,
    /// Saved model path.
    pub model: PathBuf,
    /// Scoring threads.
    pub threads: usize,
    /// Rows per scoring batch.
    pub batch_size: usize,
    /// Timed full-dataset scoring repeats.
    pub repeats: usize,
    /// Emit raw per-class scores instead of transformed predictions.
    pub raw: bool,
    /// Feature indices in the file start at 0 instead of 1.
    pub zero_based: bool,
    /// Parse the input as CSV (label in column 0) instead of LibSVM.
    pub csv: bool,
    /// Where to write the scores of the final repeat.
    pub scores: Option<PathBuf>,
    /// Write the timed JSON serving report here.
    pub report: Option<PathBuf>,
    /// Write the canonical (timing-free, rerun-stable) serving report here.
    pub report_canonical: Option<PathBuf>,
}

/// Arguments for `serve-sim`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSimArgs {
    /// Input LibSVM (or, with `csv`, CSV) file whose rows the simulated
    /// requests score.
    pub data: PathBuf,
    /// Saved model paths, one per tenant (repeat `--model`).
    pub models: Vec<PathBuf>,
    /// Requests in the arrival schedule.
    pub requests: usize,
    /// Mean arrival rate, requests per simulated second (all tenants).
    pub rate: f64,
    /// Seed for the arrival schedule.
    pub seed: u64,
    /// Per-tenant queue capacity (arrivals beyond it are shed).
    pub queue_cap: usize,
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// Latency SLO in simulated seconds.
    pub slo: f64,
    /// Fixed service cost per batch, simulated seconds.
    pub service_fixed: f64,
    /// Incremental service cost per batched request, simulated seconds.
    pub service_per_row: f64,
    /// Stop the simulation at this simulated time (default: drain).
    pub horizon: Option<f64>,
    /// Simulated time of the scripted model swap.
    pub swap_at: Option<f64>,
    /// Tenant index whose model the swap replaces.
    pub swap_tenant: usize,
    /// Replacement model file for the swap.
    pub swap_model: Option<PathBuf>,
    /// Checkpoint directory to load the replacement model from (the
    /// checkpointed model swaps in mid-stream).
    pub swap_checkpoint: Option<PathBuf>,
    /// Feature indices in the file start at 0 instead of 1.
    pub zero_based: bool,
    /// Parse the input as CSV (label in column 0) instead of LibSVM.
    pub csv: bool,
    /// Write the timed JSON serving-sim report here.
    pub report: Option<PathBuf>,
    /// Write the canonical (timing-free, rerun-stable) report here.
    pub report_canonical: Option<PathBuf>,
    /// Write the deterministic plain-text event trace here.
    pub trace: Option<PathBuf>,
    /// Profile the run's trace in-process and write the canonical
    /// `trace_profile` JSON here (same bytes `analyze` produces offline).
    pub profile: Option<PathBuf>,
}

/// Arguments for `analyze`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeArgs {
    /// Trace file to profile: a train events-text trace
    /// (`train --trace-events`) or a serve-sim trace (`serve-sim --trace`),
    /// distinguished by their header lines.
    pub trace: PathBuf,
    /// Write the canonical `trace_profile` JSON here.
    pub out: Option<PathBuf>,
    /// Write folded flamegraph stacks here.
    pub folded: Option<PathBuf>,
    /// Rows in the printed summary table.
    pub top: usize,
}

/// Arguments for `evaluate`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalArgs {
    /// Input LibSVM file.
    pub data: PathBuf,
    /// Saved model path.
    pub model: PathBuf,
    /// Feature indices in the file start at 0 instead of 1.
    pub zero_based: bool,
}

/// Arguments for `inspect`.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectArgs {
    /// Saved model path.
    pub model: PathBuf,
    /// How many top features to list.
    pub top: usize,
    /// Dump the full structure of tree `i`.
    pub dump_tree: Option<usize>,
}

/// Arguments for `gen`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenArgs {
    /// Output LibSVM path.
    pub out: PathBuf,
    /// Rows to generate.
    pub rows: usize,
    /// Feature count.
    pub features: usize,
    /// Average nonzeros per row.
    pub nnz: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Usage text.
pub const USAGE: &str = "\
dimboost — DimBoost (SIGMOD'18) GBDT trainer

USAGE:
  dimboost train --data <libsvm> --model <out> [--trees N] [--depth D]
                 [--lr F] [--workers W] [--servers P] [--candidates K]
                 [--feature-sample F] [--row-sample F] [--bits N]
                 [--loss logistic|square|softmax --classes K] [--seed N] [--test-fraction F]
                 [--zero-based] [--default-direction] [--pre-binning]
                 [--hist-subtraction] [--fused-layer] [--sparse-wire]
                 [--quantized-hist] [--quant-hist-bits N]
                 [--early-stop R] [--report <json>]
                 [--report-canonical <json>] [--trace <json>]
                 [--trace-canonical <json>] [--trace-events <path>]
                 [--profile <json>] [--fault-plan <file>]
                 [--checkpoint-dir <dir>] [--checkpoint-every N] [--resume]
                 [--threads Q] [--batch-size B]
  dimboost predict --data <libsvm|csv> --model <file> [--output <path>] [--raw]
                 [--zero-based] [--csv] [--threads Q] [--batch-size B]
  dimboost bench --data <libsvm|csv> --model <file> [--threads Q]
                 [--batch-size B] [--repeats R] [--raw] [--zero-based] [--csv]
                 [--scores <path>] [--report <json>] [--report-canonical <json>]
  dimboost serve-sim --data <libsvm|csv> --model <file> [--model <file> ...]
                 [--requests N] [--rate RPS] [--seed N] [--queue-cap N]
                 [--max-batch N] [--slo SECS] [--service-fixed SECS]
                 [--service-per-row SECS] [--horizon SECS]
                 [--swap-at SECS (--swap-model <file> | --swap-checkpoint <dir>)]
                 [--swap-tenant I] [--zero-based] [--csv] [--report <json>]
                 [--report-canonical <json>] [--trace <path>]
                 [--profile <json>]
  dimboost analyze --trace <path> [--out <json>] [--folded <path>] [--top N]
  dimboost evaluate --data <libsvm> --model <file> [--zero-based]
  dimboost gen --out <path> --rows N --features M --nnz Z [--seed N]
  dimboost inspect --model <file> [--top N] [--dump-tree I]
  dimboost help

`predict` and `bench` score through the compiled inference engine
(struct-of-arrays trees, statically striped batches): output bytes are
bit-identical across reruns for any `--threads`/`--batch-size`, and equal
to the interpreted evaluation path. `--threads`/`--batch-size` on `train`
control the batched histogram builder the same way. `--fused-layer`
builds all of a layer's node histograms in one pass over the pre-binned
shard (implies the binned representation); reruns stay bit-identical for
fixed `--threads`/`--batch-size`. `--quantized-hist` accumulates
histograms as packed fixed-point integers (`--quant-hist-bits` codes,
default 12): integer addition is associative, so the learned model bytes
are bit-identical across **any** `--threads`/`--batch-size` — and across
the per-node vs `--fused-layer` paths — not just across reruns of one
configuration. `--sparse-wire` ships histogram pushes
as density-adaptive sparse frames (dense / bitmap / runs, smallest per
message; composes with `--bits` low precision): the learned model is
bit-identical to the dense exchange while `hist_bytes_wire` and the
BUILD_HISTOGRAM exchange charge track the true frame bytes, reported in
the `sparsity` section.

`serve-sim` replays an open-loop Poisson arrival stream (seeded, pure in
`--seed`) against one tenant per `--model` on the simulated clock: bounded
queues shed at admission, batches dispatch when full or when the oldest
request's SLO slack expires, and `--swap-at` hot-swaps a tenant's model
(from a file or a training checkpoint) atomically between batches. The
canonical report and event trace are byte-identical across reruns.

`analyze` profiles a recorded trace — a train events-text trace
(`train --trace-events`) or a serve-sim trace (`serve-sim --trace`),
told apart by their headers — into a canonical `trace_profile` report:
critical-path decomposition attributed per (track, phase) with the
`critical_path_total == final sim time` identity checked bit-exactly,
busy/idle/blocked utilization, PS queue-wait vs service split, fault
stretch, and per-tenant SLO breakdown for serving traces. `--folded`
writes flamegraph-ready folded stacks. `--profile` on `train` and
`serve-sim` emits the same bytes in-process.

A `--fault-plan` file scripts deterministic faults (stragglers, message
drops, duplicates, server outages, a crash, permanent worker losses) into
the simulated cluster; faults change timing only, never the learned model.
A run that crashes under the plan exits with status 3 after writing its
checkpoint; rerun with `--resume` to continue it bit-exactly.

The same file scripts elastic membership: `join worker=N round=R` adds a
machine at a round boundary, `leave worker=N round=R policy=handoff|
redistribute` retires one (handoff charges a warm stripe transfer,
redistribute a 2x cold re-shard), `speed worker=N factor=F` makes a
machine chronically slow, and `speculate threshold=F` launches a backup
copy of the slowest machine's work whenever a round runs more than F
times the median, keeping the faster finisher. Logical data stripes are
fixed for the whole run and re-sharded deterministically, so any
membership schedule yields byte-identical model, ledger, and loss curve
to the fixed-membership run — only simulated time stretches, reported
under `membership` in the report and on the membership trace track.
";

fn take_value<'a>(flag: &str, iter: &mut std::slice::Iter<'a, String>) -> Result<&'a str, String> {
    iter.next()
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing value for {flag}"))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value {value:?} for {flag}"))
}

/// Parses a raw argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "train" => parse_train(rest).map(|args| Command::Train(Box::new(args))),
        "predict" => parse_predict(rest).map(Command::Predict),
        "bench" => parse_bench(rest).map(Command::Bench),
        "serve-sim" => parse_serve_sim(rest).map(Command::ServeSim),
        "analyze" => parse_analyze(rest).map(Command::Analyze),
        "evaluate" => parse_evaluate(rest).map(Command::Evaluate),
        "gen" => parse_gen(rest).map(Command::Gen),
        "inspect" => parse_inspect(rest).map(Command::Inspect),
        other => Err(format!(
            "unknown subcommand {other:?} (try `dimboost help`)"
        )),
    }
}

fn parse_train(args: &[String]) -> Result<TrainArgs, String> {
    let mut data = None;
    let mut model = None;
    let mut workers = 1usize;
    let mut servers = 0usize;
    let mut test_fraction = 0.0f64;
    let mut zero_based = false;
    let mut early_stop: Option<usize> = None;
    let mut report: Option<PathBuf> = None;
    let mut report_canonical: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut trace_canonical: Option<PathBuf> = None;
    let mut trace_events: Option<PathBuf> = None;
    let mut profile: Option<PathBuf> = None;
    let mut fault_plan: Option<PathBuf> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_every = 1usize;
    let mut resume = false;
    let mut config = GbdtConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--model" => model = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--trees" => config.num_trees = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--depth" => config.max_depth = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--lr" => config.learning_rate = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--workers" => workers = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--servers" => servers = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--candidates" => {
                config.num_candidates = parse_num(flag, take_value(flag, &mut iter)?)?
            }
            "--feature-sample" => {
                config.feature_sample_ratio = parse_num(flag, take_value(flag, &mut iter)?)?
            }
            "--row-sample" => {
                config.instance_sample_ratio = parse_num(flag, take_value(flag, &mut iter)?)?
            }
            "--bits" => config.compress_bits = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--loss" => {
                config.loss = match take_value(flag, &mut iter)? {
                    "logistic" => LossKind::Logistic,
                    "square" => LossKind::Square,
                    "softmax" => LossKind::Softmax { classes: 0 },
                    other => return Err(format!("unknown loss {other:?}")),
                }
            }
            "--classes" => {
                let classes: u32 = parse_num(flag, take_value(flag, &mut iter)?)?;
                config.loss = LossKind::Softmax { classes };
            }
            "--seed" => config.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--test-fraction" => test_fraction = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--zero-based" => zero_based = true,
            "--default-direction" => config.learn_default_direction = true,
            "--pre-binning" => config.opts.pre_binning = true,
            "--hist-subtraction" => config.opts.hist_subtraction = true,
            "--fused-layer" => config.opts.fused_layer = true,
            "--sparse-wire" => config.opts.sparse_wire = true,
            "--quantized-hist" => config.opts.quantized_hist = true,
            "--quant-hist-bits" => {
                config.quant_hist_bits = parse_num(flag, take_value(flag, &mut iter)?)?
            }
            "--early-stop" => early_stop = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
            "--report" => report = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--report-canonical" => {
                report_canonical = Some(PathBuf::from(take_value(flag, &mut iter)?))
            }
            "--trace" => trace = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--trace-canonical" => {
                trace_canonical = Some(PathBuf::from(take_value(flag, &mut iter)?))
            }
            "--trace-events" => trace_events = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--profile" => profile = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--fault-plan" => fault_plan = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--checkpoint-dir" => {
                checkpoint_dir = Some(PathBuf::from(take_value(flag, &mut iter)?))
            }
            "--checkpoint-every" => {
                checkpoint_every = parse_num(flag, take_value(flag, &mut iter)?)?
            }
            "--resume" => resume = true,
            "--threads" => config.num_threads = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--batch-size" => config.batch_size = parse_num(flag, take_value(flag, &mut iter)?)?,
            other => return Err(format!("unknown flag {other:?} for train")),
        }
    }
    config.collect_trace =
        trace.is_some() || trace_canonical.is_some() || trace_events.is_some() || profile.is_some();
    if matches!(config.loss, LossKind::Softmax { classes: 0 }) {
        return Err("--loss softmax requires --classes K".into());
    }
    if early_stop.is_some() && test_fraction <= 0.0 {
        return Err("--early-stop requires --test-fraction > 0".into());
    }
    if checkpoint_dir.is_none() && (resume || checkpoint_every != 1) {
        return Err("--resume and --checkpoint-every require --checkpoint-dir".into());
    }
    if checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    // Catch `--threads 0` / `--batch-size 0` here, at parse time, like
    // `predict` and `bench` do — not as a downstream config error.
    if config.num_threads == 0 || config.batch_size == 0 {
        return Err("--threads and --batch-size must be positive".into());
    }
    Ok(TrainArgs {
        data: data.ok_or("train requires --data")?,
        model: model.ok_or("train requires --model")?,
        workers: workers.max(1),
        servers,
        test_fraction,
        zero_based,
        early_stop,
        report,
        report_canonical,
        trace,
        trace_canonical,
        trace_events,
        profile,
        fault_plan,
        checkpoint_dir,
        checkpoint_every,
        resume,
        config,
    })
}

fn parse_predict(args: &[String]) -> Result<PredictArgs, String> {
    let mut data = None;
    let mut model = None;
    let mut output = None;
    let mut raw = false;
    let mut zero_based = false;
    let mut csv = false;
    let engine = EngineConfig::default();
    let mut threads = engine.threads;
    let mut batch_size = engine.batch_size;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--model" => model = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--output" => output = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--raw" => raw = true,
            "--zero-based" => zero_based = true,
            "--csv" => csv = true,
            "--threads" => threads = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--batch-size" => batch_size = parse_num(flag, take_value(flag, &mut iter)?)?,
            other => return Err(format!("unknown flag {other:?} for predict")),
        }
    }
    if threads == 0 || batch_size == 0 {
        return Err("--threads and --batch-size must be positive".into());
    }
    Ok(PredictArgs {
        data: data.ok_or("predict requires --data")?,
        model: model.ok_or("predict requires --model")?,
        output,
        raw,
        zero_based,
        csv,
        threads,
        batch_size,
    })
}

fn parse_bench(args: &[String]) -> Result<BenchArgs, String> {
    let mut data = None;
    let mut model = None;
    let mut raw = false;
    let mut zero_based = false;
    let mut csv = false;
    let engine = EngineConfig::default();
    let mut threads = engine.threads;
    let mut batch_size = engine.batch_size;
    let mut repeats = 3usize;
    let mut scores = None;
    let mut report = None;
    let mut report_canonical = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--model" => model = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--threads" => threads = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--batch-size" => batch_size = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--repeats" => repeats = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--raw" => raw = true,
            "--zero-based" => zero_based = true,
            "--csv" => csv = true,
            "--scores" => scores = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--report" => report = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--report-canonical" => {
                report_canonical = Some(PathBuf::from(take_value(flag, &mut iter)?))
            }
            other => return Err(format!("unknown flag {other:?} for bench")),
        }
    }
    if threads == 0 || batch_size == 0 || repeats == 0 {
        return Err("--threads, --batch-size, and --repeats must be positive".into());
    }
    Ok(BenchArgs {
        data: data.ok_or("bench requires --data")?,
        model: model.ok_or("bench requires --model")?,
        threads,
        batch_size,
        repeats,
        raw,
        zero_based,
        csv,
        scores,
        report,
        report_canonical,
    })
}

fn parse_serve_sim(args: &[String]) -> Result<ServeSimArgs, String> {
    let mut data = None;
    let mut models: Vec<PathBuf> = Vec::new();
    let mut requests = 1_000usize;
    let mut rate = 500.0f64;
    let mut seed = 42u64;
    let mut queue_cap = 256usize;
    let mut max_batch = 16usize;
    let mut slo = 0.05f64;
    let mut service_fixed = 1e-4f64;
    let mut service_per_row = 1e-5f64;
    let mut horizon: Option<f64> = None;
    let mut swap_at: Option<f64> = None;
    let mut swap_tenant = 0usize;
    let mut swap_model: Option<PathBuf> = None;
    let mut swap_checkpoint: Option<PathBuf> = None;
    let mut zero_based = false;
    let mut csv = false;
    let mut report = None;
    let mut report_canonical = None;
    let mut trace = None;
    let mut profile = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--model" => models.push(PathBuf::from(take_value(flag, &mut iter)?)),
            "--requests" => requests = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--rate" => rate = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--queue-cap" => queue_cap = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--max-batch" => max_batch = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--slo" => slo = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--service-fixed" => service_fixed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--service-per-row" => service_per_row = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--horizon" => horizon = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
            "--swap-at" => swap_at = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
            "--swap-tenant" => swap_tenant = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--swap-model" => swap_model = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--swap-checkpoint" => {
                swap_checkpoint = Some(PathBuf::from(take_value(flag, &mut iter)?))
            }
            "--zero-based" => zero_based = true,
            "--csv" => csv = true,
            "--report" => report = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--report-canonical" => {
                report_canonical = Some(PathBuf::from(take_value(flag, &mut iter)?))
            }
            "--trace" => trace = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--profile" => profile = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            other => return Err(format!("unknown flag {other:?} for serve-sim")),
        }
    }
    // Degenerate knobs are caught here, at parse time, with the flag named
    // in the message — never as a downstream simulation assert.
    if models.is_empty() {
        return Err("serve-sim requires at least one --model".into());
    }
    if requests == 0 {
        return Err("--requests must be positive".into());
    }
    if rate <= 0.0 || !rate.is_finite() {
        return Err("--rate must be positive".into());
    }
    if queue_cap == 0 || max_batch == 0 {
        return Err("--queue-cap and --max-batch must be positive".into());
    }
    if slo <= 0.0 || !slo.is_finite() {
        return Err("--slo must be positive".into());
    }
    if service_fixed < 0.0 || service_per_row < 0.0 {
        return Err("--service-fixed and --service-per-row must not be negative".into());
    }
    if let Some(h) = horizon {
        if h.is_nan() || h <= 0.0 {
            return Err("--horizon must be positive".into());
        }
    }
    let swap_sources = usize::from(swap_model.is_some()) + usize::from(swap_checkpoint.is_some());
    match (swap_at, swap_sources) {
        (Some(_), 1) | (None, 0) => {}
        (Some(_), _) => {
            return Err(
                "--swap-at requires exactly one of --swap-model or --swap-checkpoint".into(),
            )
        }
        (None, _) => {
            return Err("--swap-model/--swap-checkpoint requires --swap-at".into());
        }
    }
    if swap_at.is_some() && swap_tenant >= models.len() {
        return Err(format!(
            "--swap-tenant {swap_tenant} out of range for {} model(s)",
            models.len()
        ));
    }
    Ok(ServeSimArgs {
        data: data.ok_or("serve-sim requires --data")?,
        models,
        requests,
        rate,
        seed,
        queue_cap,
        max_batch,
        slo,
        service_fixed,
        service_per_row,
        horizon,
        swap_at,
        swap_tenant,
        swap_model,
        swap_checkpoint,
        zero_based,
        csv,
        report,
        report_canonical,
        trace,
        profile,
    })
}

fn parse_analyze(args: &[String]) -> Result<AnalyzeArgs, String> {
    let mut trace = None;
    let mut out = None;
    let mut folded = None;
    let mut top = 10usize;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--trace" => trace = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--folded" => folded = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--top" => top = parse_num(flag, take_value(flag, &mut iter)?)?,
            other => return Err(format!("unknown flag {other:?} for analyze")),
        }
    }
    if top == 0 {
        return Err("--top must be positive".into());
    }
    Ok(AnalyzeArgs {
        trace: trace.ok_or("analyze requires --trace")?,
        out,
        folded,
        top,
    })
}

fn parse_evaluate(args: &[String]) -> Result<EvalArgs, String> {
    let mut data = None;
    let mut model = None;
    let mut zero_based = false;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--model" => model = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--zero-based" => zero_based = true,
            other => return Err(format!("unknown flag {other:?} for evaluate")),
        }
    }
    Ok(EvalArgs {
        data: data.ok_or("evaluate requires --data")?,
        model: model.ok_or("evaluate requires --model")?,
        zero_based,
    })
}

fn parse_gen(args: &[String]) -> Result<GenArgs, String> {
    let mut out = None;
    let mut rows = 1_000usize;
    let mut features = 100usize;
    let mut nnz = 10usize;
    let mut seed = 42u64;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--rows" => rows = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--features" => features = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--nnz" => nnz = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--seed" => seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            other => return Err(format!("unknown flag {other:?} for gen")),
        }
    }
    Ok(GenArgs {
        out: out.ok_or("gen requires --out")?,
        rows,
        features,
        nnz,
        seed,
    })
}

fn parse_inspect(args: &[String]) -> Result<InspectArgs, String> {
    let mut model = None;
    let mut top = 10usize;
    let mut dump_tree = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--model" => model = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--top" => top = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--dump-tree" => dump_tree = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
            other => return Err(format!("unknown flag {other:?} for inspect")),
        }
    }
    Ok(InspectArgs {
        model: model.ok_or("inspect requires --model")?,
        top,
        dump_tree,
    })
}

fn libsvm_opts(zero_based: bool, num_features: Option<usize>) -> LibsvmOptions {
    LibsvmOptions {
        one_based: !zero_based,
        num_features,
        binarize_labels: true,
    }
}

/// Loads a scoring input (LibSVM by default, CSV with `csv`). Labels are
/// kept as-is — scoring ignores them.
fn read_scoring_data(
    path: &std::path::Path,
    csv: bool,
    zero_based: bool,
    num_features: usize,
) -> Result<Dataset, String> {
    if csv {
        let opts = CsvOptions {
            binarize_labels: false,
            ..CsvOptions::default()
        };
        read_csv_file(path, opts).map_err(|e| e.to_string())
    } else {
        let mut opts = libsvm_opts(zero_based, Some(num_features));
        opts.binarize_labels = false;
        read_libsvm_file(path, opts).map_err(|e| e.to_string())
    }
}

/// Renders scores one row per line; rows wider than one score (raw
/// multiclass) are space-separated. `f32` Display is shortest-round-trip,
/// so the text is a faithful, deterministic encoding of the score bits.
fn scores_text(scores: &[f32], width: usize) -> String {
    let mut text = String::with_capacity(scores.len() * 10);
    for row in scores.chunks(width.max(1)) {
        for (i, s) in row.iter().enumerate() {
            if i > 0 {
                text.push(' ');
            }
            text.push_str(&format!("{s}"));
        }
        text.push('\n');
    }
    text
}

/// A runtime failure, carrying the process exit status to report.
///
/// Most failures exit with status 1; a *simulated* worker crash injected by
/// a fault plan exits with status 3 so scripts can tell "the run died as
/// scripted — resume it" apart from a genuine error.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    /// Human-readable message (printed to stderr by the binary).
    pub message: String,
    /// Process exit status (1 = error, 3 = simulated crash).
    pub exit_code: i32,
}

impl CliError {
    /// Substring test on the message, mirroring `str::contains` so error
    /// assertions read the same as they did when `run` returned `String`.
    pub fn contains(&self, needle: &str) -> bool {
        self.message.contains(needle)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError {
            message,
            exit_code: 1,
        }
    }
}

/// Executes a parsed command, writing human-readable output to stdout.
pub fn run(command: Command) -> Result<(), CliError> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Inspect(args) => {
            let model = load_model_file(&args.model).map_err(|e| e.to_string())?;
            println!(
                "model: {} trees (depth <= {}), {} features, {} classes, lr {}, loss {:?}",
                model.num_trees(),
                model
                    .trees()
                    .iter()
                    .map(|t| t.max_depth())
                    .max()
                    .unwrap_or(0),
                model.num_features(),
                model.num_classes(),
                model.learning_rate(),
                model.loss()
            );
            let leaves: usize = model.trees().iter().map(|t| t.num_leaves()).sum();
            let splits: usize = model.trees().iter().map(|t| t.num_internal()).sum();
            println!("totals: {splits} splits, {leaves} leaves");
            println!("top features by gain:");
            for (f, g) in model.top_features(args.top) {
                println!("  f{f:<8} gain {g:.4}");
            }
            if let Some(i) = args.dump_tree {
                let tree = model
                    .trees()
                    .get(i)
                    .ok_or_else(|| format!("tree {i} out of {}", model.num_trees()))?;
                println!(
                    "
tree {i}:
{}",
                    tree.dump()
                );
            }
            Ok(())
        }
        Command::Gen(args) => {
            let ds = generate(&SparseGenConfig::new(
                args.rows,
                args.features,
                args.nnz,
                args.seed,
            ));
            let file =
                std::fs::File::create(&args.out).map_err(|e| format!("create output: {e}"))?;
            write_libsvm(file, &ds).map_err(|e| e.to_string())?;
            println!(
                "wrote {} rows x {} features ({} nonzeros) to {}",
                ds.num_rows(),
                ds.num_features(),
                ds.nnz(),
                args.out.display()
            );
            Ok(())
        }
        Command::Train(args) => {
            let mut opts = libsvm_opts(args.zero_based, None);
            if !matches!(args.config.loss, LossKind::Logistic) {
                // Square keeps raw targets; softmax keeps class indices.
                opts.binarize_labels = false;
            }
            let full = read_libsvm_file(&args.data, opts).map_err(|e| e.to_string())?;
            println!(
                "loaded {} rows x {} features from {}",
                full.num_rows(),
                full.num_features(),
                args.data.display()
            );
            let (train, test) = if args.test_fraction > 0.0 {
                let (tr, te) = train_test_split(&full, args.test_fraction, args.config.seed)
                    .map_err(|e| e.to_string())?;
                (tr, Some(te))
            } else {
                (full, None)
            };
            let shards = partition_rows(&train, args.workers).map_err(|e| e.to_string())?;
            let servers = if args.servers == 0 {
                args.workers
            } else {
                args.servers
            };
            let ps = PsConfig {
                num_servers: servers,
                num_partitions: 0,
                cost_model: CostModel::GIGABIT_LAN,
            };
            let fault_plan = match &args.fault_plan {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("read fault plan {}: {e}", path.display()))?;
                    Some(
                        FaultPlan::parse(&text)
                            .map_err(|e| format!("fault plan {}: {e}", path.display()))?,
                    )
                }
                None => None,
            };
            let checkpoint = args.checkpoint_dir.as_ref().map(|dir| {
                let mut ck = CheckpointOptions::new(dir.clone());
                ck.every = args.checkpoint_every;
                ck
            });
            let robust = RobustOptions {
                fault_plan,
                checkpoint,
                resume: args.resume,
            };
            let ev = match (&test, args.early_stop) {
                (Some(test), Some(rounds)) => Some(dimboost_core::EvalOptions {
                    dataset: test,
                    early_stopping_rounds: Some(rounds),
                }),
                _ => None,
            };
            let out =
                dimboost_core::train_distributed_resilient(&shards, &args.config, ps, ev, &robust)
                    .map_err(|e| CliError {
                        message: e.to_string(),
                        exit_code: match e {
                            TrainError::Crashed { .. } => 3,
                            _ => 1,
                        },
                    })?;
            if let Some(round) = out.report.resumed_from_round {
                println!("resumed from checkpoint at round {round}");
            }
            if let Some(best) = out.best_iteration {
                println!(
                    "early stopping: best round {best}, kept {} trees",
                    out.model.num_trees()
                );
            }
            println!(
                "trained {} trees; compute {:.2}s, simulated comm {:.2}s ({} bytes)",
                out.model.num_trees(),
                out.breakdown.compute_secs,
                out.breakdown.comm.sim_time.seconds(),
                out.breakdown.comm.bytes
            );
            print!("{}", out.report.summary());
            if let Some(f) = &out.report.faults {
                println!(
                    "faults (plan seed {}): {} retries, {} request drops, {} ack drops, \
                     {} duplicates ({} deduplicated), {} forced deliveries",
                    f.plan_seed,
                    f.retries,
                    f.request_drops,
                    f.ack_drops,
                    f.duplicates,
                    f.dedup_hits,
                    f.forced_deliveries
                );
            }
            if let Some(m) = &out.report.membership {
                println!(
                    "membership: {} joins, {} leaves, {} stripes moved (epoch {}); \
                     handoff {:.2}s, re-shard {:.2}s, dilation {:.2}s; \
                     {} backups ({} wins, {:.2}s saved), {} stale pushes rejected",
                    m.joins,
                    m.leaves,
                    m.stripes_moved,
                    m.epoch,
                    m.handoff_secs,
                    m.reshard_secs,
                    m.elastic_secs,
                    m.speculative_backups,
                    m.backup_wins,
                    m.speculation_saved_secs,
                    m.stale_rejects
                );
            }
            // Save the model before the (optional) report: an unwritable
            // report path must not discard the training run's primary
            // artifact.
            save_model_file(&out.model, &args.model).map_err(|e| e.to_string())?;
            println!("model saved to {}", args.model.display());
            if let Some(path) = &args.report {
                std::fs::write(path, out.report.json())
                    .map_err(|e| format!("write report: {e}"))?;
                println!("run report written to {}", path.display());
            }
            if let Some(path) = &args.report_canonical {
                std::fs::write(path, out.report.canonical_json())
                    .map_err(|e| format!("write canonical report: {e}"))?;
                println!("canonical report written to {}", path.display());
            }
            if let Some(trace) = &out.trace {
                print!("{}", trace.timeline());
                if let Some(path) = &args.trace {
                    std::fs::write(path, trace.chrome_json())
                        .map_err(|e| format!("write trace: {e}"))?;
                    println!("trace written to {} (load in Perfetto)", path.display());
                }
                if let Some(path) = &args.trace_canonical {
                    std::fs::write(path, trace.canonical_chrome_json())
                        .map_err(|e| format!("write canonical trace: {e}"))?;
                    println!("canonical trace written to {}", path.display());
                }
                if let Some(path) = &args.trace_events {
                    std::fs::write(path, trace.events_text())
                        .map_err(|e| format!("write events trace: {e}"))?;
                    println!("events trace written to {}", path.display());
                }
                if let Some(path) = &args.profile {
                    // Same analyzer `analyze` runs offline, so the two
                    // paths produce byte-identical profiles.
                    let profile =
                        analyze_trace(trace).map_err(|e| format!("profile trace: {e}"))?;
                    std::fs::write(path, profile.canonical_json())
                        .map_err(|e| format!("write profile: {e}"))?;
                    println!("trace profile written to {}", path.display());
                }
            }
            if let Some(last) = out.loss_curve.last() {
                println!("final train loss: {:.5}", last.train_loss);
            }
            if let Some(test) = test {
                let probs = out.model.predict_dataset(&test);
                match args.config.loss {
                    LossKind::Logistic => println!(
                        "held-out: error {:.4}, logloss {:.4}, auc {:.4}",
                        classification_error(&probs, test.labels()),
                        log_loss(&probs, test.labels()),
                        auc(&probs, test.labels())
                    ),
                    LossKind::Square => {
                        println!("held-out rmse: {:.4}", rmse(&probs, test.labels()))
                    }
                    LossKind::Softmax { .. } => {
                        let probas = out.model.predict_proba_dataset(&test);
                        println!(
                            "held-out: error {:.4}, mlogloss {:.4}",
                            multiclass_error(&probs, test.labels()),
                            multiclass_log_loss(&probas, test.labels())
                        );
                    }
                }
            }
            Ok(())
        }
        Command::Predict(args) => {
            let model = load_model_file(&args.model).map_err(|e| e.to_string())?;
            let ds =
                read_scoring_data(&args.data, args.csv, args.zero_based, model.num_features())?;
            // Compiled-engine scores are bit-equal to the interpreted path,
            // so swapping the predict implementation changes no output byte.
            let compiled = CompiledModel::compile(&model);
            let engine = EngineConfig {
                threads: args.threads,
                batch_size: args.batch_size,
            };
            let (preds, width) = if args.raw {
                let k = compiled.num_classes();
                (score_raw(&compiled, &ds, &engine), k)
            } else {
                (score_transformed(&compiled, &ds, &engine), 1)
            };
            let text = scores_text(&preds, width);
            match args.output {
                Some(path) => {
                    std::fs::write(&path, text).map_err(|e| format!("write output: {e}"))?;
                    println!(
                        "wrote {} predictions to {}",
                        preds.len() / width,
                        path.display()
                    );
                }
                None => print!("{text}"),
            }
            Ok(())
        }
        Command::Bench(args) => {
            let model = load_model_file(&args.model).map_err(|e| e.to_string())?;
            let ds =
                read_scoring_data(&args.data, args.csv, args.zero_based, model.num_features())?;
            let compiled = CompiledModel::compile(&model);
            let opts = BenchOptions {
                engine: EngineConfig {
                    threads: args.threads,
                    batch_size: args.batch_size,
                },
                repeats: args.repeats,
                raw: args.raw,
            };
            let (scores, report) = dimboost_predict::run_serving_bench(&compiled, &ds, &opts);
            println!("{}", report.summary());
            if let Some(path) = &args.scores {
                let width = if args.raw { compiled.num_classes() } else { 1 };
                std::fs::write(path, scores_text(&scores, width))
                    .map_err(|e| format!("write scores: {e}"))?;
                println!("scores written to {}", path.display());
            }
            if let Some(path) = &args.report {
                std::fs::write(path, report.json(true))
                    .map_err(|e| format!("write serving report: {e}"))?;
                println!("serving report written to {}", path.display());
            }
            if let Some(path) = &args.report_canonical {
                std::fs::write(path, report.canonical_json())
                    .map_err(|e| format!("write canonical serving report: {e}"))?;
                println!("canonical serving report written to {}", path.display());
            }
            Ok(())
        }
        Command::ServeSim(args) => {
            let mut compiled: Vec<CompiledModel> = Vec::new();
            for path in &args.models {
                let model = load_model_file(path).map_err(|e| e.to_string())?;
                compiled.push(CompiledModel::compile(&model));
            }
            let swap_replacement = match (&args.swap_model, &args.swap_checkpoint) {
                (Some(path), None) => {
                    let model = load_model_file(path).map_err(|e| e.to_string())?;
                    Some((CompiledModel::compile(&model), path.display().to_string()))
                }
                (None, Some(dir)) => {
                    // The hot-swap source can be a live training checkpoint:
                    // the checkpointed model loads and swaps in mid-stream.
                    let ck = TrainCheckpoint::load_from_dir(dir)
                        .map_err(|e| format!("load swap checkpoint: {e}"))?;
                    Some((
                        CompiledModel::compile(&ck.model),
                        format!("checkpoint:{}@round{}", dir.display(), ck.next_round),
                    ))
                }
                _ => None,
            };
            let num_features = compiled
                .iter()
                .chain(swap_replacement.iter().map(|(m, _)| m))
                .map(|m| m.num_features())
                .max()
                .unwrap_or(0);
            let ds = read_scoring_data(&args.data, args.csv, args.zero_based, num_features)?;
            if ds.num_rows() == 0 {
                return Err(format!("{} has no rows to serve", args.data.display()).into());
            }
            let tenants: Vec<TenantSpec> = compiled
                .into_iter()
                .enumerate()
                .map(|(i, model)| TenantSpec {
                    name: format!("tenant{i}"),
                    model,
                })
                .collect();
            let swaps: Vec<ModelSwap> = match (args.swap_at, swap_replacement) {
                (Some(at_secs), Some((model, label))) => vec![ModelSwap {
                    at_secs,
                    tenant: args.swap_tenant,
                    label,
                    model,
                }],
                _ => Vec::new(),
            };
            let config = ServeSimConfig {
                seed: args.seed,
                queue_capacity: args.queue_cap,
                max_batch: args.max_batch,
                slo_secs: args.slo,
                service_fixed_secs: args.service_fixed,
                service_per_row_secs: args.service_per_row,
                horizon_secs: args.horizon,
            };
            let arrivals = poisson_arrivals(
                args.seed,
                args.requests,
                args.rate,
                tenants.len(),
                ds.num_rows(),
            );
            let result = run_serve_sim(&tenants, &swaps, &ds, &arrivals, &config);
            println!("{}", result.report.summary());
            if let Some(path) = &args.report {
                std::fs::write(path, result.report.json(true))
                    .map_err(|e| format!("write serve-sim report: {e}"))?;
                println!("serve-sim report written to {}", path.display());
            }
            if let Some(path) = &args.report_canonical {
                std::fs::write(path, result.report.canonical_json())
                    .map_err(|e| format!("write canonical serve-sim report: {e}"))?;
                println!("canonical serve-sim report written to {}", path.display());
            }
            if let Some(path) = &args.trace {
                std::fs::write(path, &result.trace)
                    .map_err(|e| format!("write serve-sim trace: {e}"))?;
                println!("serve-sim trace written to {}", path.display());
            }
            if let Some(path) = &args.profile {
                // Profile the run's own trace text — the same analyzer
                // `analyze` runs offline, so the bytes match exactly.
                let profile = analyze_serve_trace(&result.trace)
                    .map_err(|e| format!("profile serve-sim trace: {e}"))?;
                std::fs::write(path, profile.canonical_json())
                    .map_err(|e| format!("write serve-sim profile: {e}"))?;
                println!("serve-sim profile written to {}", path.display());
            }
            Ok(())
        }
        Command::Analyze(args) => {
            let text = std::fs::read_to_string(&args.trace)
                .map_err(|e| format!("read trace {}: {e}", args.trace.display()))?;
            // The header line says which analyzer owns the trace.
            let (json, stacks, summary) = if is_serve_trace(&text) {
                let p = analyze_serve_trace(&text).map_err(|e| e.to_string())?;
                (p.canonical_json(), p.folded_stacks(), p.summary(args.top))
            } else {
                let trace = Trace::parse_events_text(&text)
                    .map_err(|e| format!("{}: {e}", args.trace.display()))?;
                let p = analyze_trace(&trace).map_err(|e| e.to_string())?;
                (p.canonical_json(), p.folded_stacks(), p.summary(args.top))
            };
            if let Some(path) = &args.out {
                std::fs::write(path, &json).map_err(|e| format!("write profile: {e}"))?;
                println!("trace profile written to {}", path.display());
            }
            if let Some(path) = &args.folded {
                std::fs::write(path, &stacks).map_err(|e| format!("write folded stacks: {e}"))?;
                println!("folded stacks written to {}", path.display());
            }
            print!("{summary}");
            Ok(())
        }
        Command::Evaluate(args) => {
            let model = load_model_file(&args.model).map_err(|e| e.to_string())?;
            let mut opts = libsvm_opts(args.zero_based, Some(model.num_features()));
            if !matches!(model.loss(), LossKind::Logistic) {
                opts.binarize_labels = false;
            }
            let ds = read_libsvm_file(&args.data, opts).map_err(|e| e.to_string())?;
            let probs = model.predict_dataset(&ds);
            match model.loss() {
                LossKind::Logistic => {
                    println!("error:   {:.4}", classification_error(&probs, ds.labels()));
                    println!("logloss: {:.4}", log_loss(&probs, ds.labels()));
                    println!("auc:     {:.4}", auc(&probs, ds.labels()));
                }
                LossKind::Square => {
                    println!("rmse: {:.4}", rmse(&probs, ds.labels()));
                }
                LossKind::Softmax { .. } => {
                    let probas = model.predict_proba_dataset(&ds);
                    println!("error:    {:.4}", multiclass_error(&probs, ds.labels()));
                    println!("mlogloss: {:.4}", multiclass_log_loss(&probas, ds.labels()));
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_help_and_empty() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strs(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&strs(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_unknown_subcommand_and_flags() {
        assert!(parse_args(&strs(&["explode"])).is_err());
        assert!(parse_args(&strs(&["train", "--data", "x", "--model", "y", "--what"])).is_err());
        assert!(parse_args(&strs(&["predict", "--data", "x"])).is_err());
    }

    #[test]
    fn parses_full_train_invocation() {
        let cmd = parse_args(&strs(&[
            "train",
            "--data",
            "d.libsvm",
            "--model",
            "m.bin",
            "--trees",
            "7",
            "--depth",
            "3",
            "--lr",
            "0.2",
            "--workers",
            "4",
            "--servers",
            "2",
            "--candidates",
            "15",
            "--feature-sample",
            "0.8",
            "--row-sample",
            "0.5",
            "--bits",
            "4",
            "--loss",
            "square",
            "--seed",
            "9",
            "--test-fraction",
            "0.1",
            "--zero-based",
        ]))
        .unwrap();
        let Command::Train(args) = cmd else {
            panic!("expected train")
        };
        assert_eq!(args.data, PathBuf::from("d.libsvm"));
        assert_eq!(args.config.num_trees, 7);
        assert_eq!(args.config.max_depth, 3);
        assert_eq!(args.config.learning_rate, 0.2);
        assert_eq!(args.workers, 4);
        assert_eq!(args.servers, 2);
        assert_eq!(args.config.num_candidates, 15);
        assert_eq!(args.config.feature_sample_ratio, 0.8);
        assert_eq!(args.config.instance_sample_ratio, 0.5);
        assert_eq!(args.config.compress_bits, 4);
        assert_eq!(args.config.loss, LossKind::Square);
        assert_eq!(args.config.seed, 9);
        assert_eq!(args.test_fraction, 0.1);
        assert!(args.zero_based);
    }

    #[test]
    fn train_requires_data_and_model() {
        assert!(parse_args(&strs(&["train", "--model", "m"])).is_err());
        assert!(parse_args(&strs(&["train", "--data", "d"])).is_err());
        assert!(parse_args(&strs(&["train", "--data"])).is_err()); // missing value
    }

    #[test]
    fn rejects_bad_numbers_and_loss() {
        assert!(parse_args(&strs(&[
            "train", "--data", "d", "--model", "m", "--trees", "x"
        ]))
        .is_err());
        assert!(parse_args(&strs(&[
            "train", "--data", "d", "--model", "m", "--loss", "hinge"
        ]))
        .is_err());
    }

    #[test]
    fn end_to_end_gen_train_predict_evaluate() {
        let dir = std::env::temp_dir();
        let data = dir.join("dimboost_cli_test.libsvm");
        let model = dir.join("dimboost_cli_test.model");
        let preds = dir.join("dimboost_cli_test.preds");
        let report = dir.join("dimboost_cli_test.report.json");

        run(parse_args(&strs(&[
            "gen",
            "--out",
            data.to_str().unwrap(),
            "--rows",
            "600",
            "--features",
            "80",
            "--nnz",
            "8",
            "--seed",
            "5",
        ]))
        .unwrap())
        .unwrap();

        run(parse_args(&strs(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--trees",
            "4",
            "--depth",
            "3",
            "--lr",
            "0.3",
            "--workers",
            "2",
            "--test-fraction",
            "0.2",
            "--report",
            report.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.starts_with("{\"workers\":2,"), "{json}");
        assert!(json.contains("\"phase\":\"build_histogram\""));
        assert!(json.contains("\"rounds\":[{\"round\":0,"));

        run(parse_args(&strs(&[
            "predict",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--output",
            preds.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        let lines = std::fs::read_to_string(&preds).unwrap();
        assert_eq!(lines.lines().count(), 600);
        assert!(lines.lines().all(|l| {
            let p: f32 = l.parse().unwrap();
            (0.0..=1.0).contains(&p)
        }));

        run(parse_args(&strs(&[
            "evaluate",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();

        for f in [&data, &model, &preds, &report] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn train_writes_trace_artifacts() {
        let dir = std::env::temp_dir();
        let data = dir.join("dimboost_cli_trace.libsvm");
        let model = dir.join("dimboost_cli_trace.model");
        let trace = dir.join("dimboost_cli_trace.trace.json");
        let canon = dir.join("dimboost_cli_trace.canonical.json");
        let report_canon = dir.join("dimboost_cli_trace.report.json");

        run(parse_args(&strs(&[
            "gen",
            "--out",
            data.to_str().unwrap(),
            "--rows",
            "400",
            "--features",
            "50",
            "--nnz",
            "6",
        ]))
        .unwrap())
        .unwrap();

        let cmd = parse_args(&strs(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--trees",
            "2",
            "--depth",
            "3",
            "--workers",
            "3",
            "--trace",
            trace.to_str().unwrap(),
            "--trace-canonical",
            canon.to_str().unwrap(),
            "--report-canonical",
            report_canon.to_str().unwrap(),
        ]))
        .unwrap();
        let Command::Train(args) = &cmd else { panic!() };
        assert!(args.config.collect_trace);
        run(cmd.clone()).unwrap();

        let full = std::fs::read_to_string(&trace).unwrap();
        assert!(full.starts_with('['), "{full}");
        assert!(full.contains("\"thread_name\""));
        assert!(full.contains("\"wall_ms\""));
        let canonical = std::fs::read_to_string(&canon).unwrap();
        assert!(!canonical.contains("wall_ms"));
        // Canonical artifacts are rerun-stable: train again, compare bytes.
        run(cmd).unwrap();
        assert_eq!(canonical, std::fs::read_to_string(&canon).unwrap());
        let report = std::fs::read_to_string(&report_canon).unwrap();
        assert!(report.contains("\"percentiles\":["), "{report}");

        for f in [&data, &model, &trace, &canon, &report_canon] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn parses_analyze() {
        let cmd = parse_args(&strs(&[
            "analyze", "--trace", "t.events", "--out", "p.json", "--folded", "s.folded", "--top",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Analyze(AnalyzeArgs {
                trace: "t.events".into(),
                out: Some("p.json".into()),
                folded: Some("s.folded".into()),
                top: 5,
            })
        );
        // Missing/malformed trace path and degenerate --top are parse-time
        // usage errors (exit 2 through the binary).
        assert!(parse_args(&strs(&["analyze"])).is_err());
        assert!(parse_args(&strs(&["analyze", "--trace"])).is_err());
        assert!(parse_args(&strs(&["analyze", "--trace", "t", "--top", "0"])).is_err());
        assert!(parse_args(&strs(&["analyze", "--trace", "t", "--what"])).is_err());
    }

    #[test]
    fn analyze_matches_in_process_profiles_for_train_and_serve() {
        let dir = std::env::temp_dir();
        let data = dir.join("dimboost_cli_analyze.libsvm");
        let model = dir.join("dimboost_cli_analyze.model");
        let events = dir.join("dimboost_cli_analyze.events");
        let profile = dir.join("dimboost_cli_analyze.profile.json");
        let offline = dir.join("dimboost_cli_analyze.offline.json");
        let folded = dir.join("dimboost_cli_analyze.folded");
        let strace = dir.join("dimboost_cli_analyze.serve.trace");
        let sprofile = dir.join("dimboost_cli_analyze.serve.profile.json");
        let soffline = dir.join("dimboost_cli_analyze.serve.offline.json");

        run(parse_args(&strs(&[
            "gen",
            "--out",
            data.to_str().unwrap(),
            "--rows",
            "400",
            "--features",
            "50",
            "--nnz",
            "6",
        ]))
        .unwrap())
        .unwrap();

        // Train with both the events-text trace and the in-process profile.
        let cmd = parse_args(&strs(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--trees",
            "2",
            "--depth",
            "3",
            "--workers",
            "3",
            "--servers",
            "2",
            "--trace-events",
            events.to_str().unwrap(),
            "--profile",
            profile.to_str().unwrap(),
        ]))
        .unwrap();
        let Command::Train(args) = &cmd else { panic!() };
        assert!(args.config.collect_trace, "--profile must imply the trace");
        run(cmd).unwrap();

        // Offline analysis of the events trace must produce the same bytes
        // as the in-process profile.
        run(parse_args(&strs(&[
            "analyze",
            "--trace",
            events.to_str().unwrap(),
            "--out",
            offline.to_str().unwrap(),
            "--folded",
            folded.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        let in_process = std::fs::read_to_string(&profile).unwrap();
        assert!(in_process.starts_with("{\n  \"kind\": \"trace_profile\""));
        assert!(in_process.contains("\"source\": \"train\""));
        assert_eq!(in_process, std::fs::read_to_string(&offline).unwrap());
        let stacks = std::fs::read_to_string(&folded).unwrap();
        assert!(stacks.contains("net;build_histogram;"), "{stacks}");

        // Same contract for serve-sim traces.
        run(parse_args(&strs(&[
            "serve-sim",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--requests",
            "200",
            "--rate",
            "4000",
            "--trace",
            strace.to_str().unwrap(),
            "--profile",
            sprofile.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        run(parse_args(&strs(&[
            "analyze",
            "--trace",
            strace.to_str().unwrap(),
            "--out",
            soffline.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        let in_process = std::fs::read_to_string(&sprofile).unwrap();
        assert!(in_process.contains("\"source\": \"serve_sim\""));
        assert_eq!(in_process, std::fs::read_to_string(&soffline).unwrap());

        // A missing trace file is a runtime error, not a panic.
        let err = run(Command::Analyze(AnalyzeArgs {
            trace: dir.join("dimboost_cli_analyze.nope"),
            out: None,
            folded: None,
            top: 10,
        }))
        .unwrap_err();
        assert!(err.contains("read trace"), "{err}");

        for f in [
            &data, &model, &events, &profile, &offline, &folded, &strace, &sprofile, &soffline,
        ] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn parses_inspect() {
        let cmd = parse_args(&strs(&[
            "inspect",
            "--model",
            "m.bin",
            "--top",
            "3",
            "--dump-tree",
            "1",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Inspect(InspectArgs {
                model: "m.bin".into(),
                top: 3,
                dump_tree: Some(1)
            })
        );
        assert!(parse_args(&strs(&["inspect"])).is_err());
    }

    #[test]
    fn inspect_runs_on_trained_model() {
        let dir = std::env::temp_dir();
        let data = dir.join("dimboost_cli_inspect.libsvm");
        let model = dir.join("dimboost_cli_inspect.model");
        run(parse_args(&strs(&[
            "gen",
            "--out",
            data.to_str().unwrap(),
            "--rows",
            "300",
            "--features",
            "40",
            "--nnz",
            "6",
        ]))
        .unwrap())
        .unwrap();
        run(parse_args(&strs(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--trees",
            "2",
            "--depth",
            "3",
        ]))
        .unwrap())
        .unwrap();
        run(parse_args(&strs(&[
            "inspect",
            "--model",
            model.to_str().unwrap(),
            "--top",
            "5",
            "--dump-tree",
            "0",
        ]))
        .unwrap())
        .unwrap();
        // Out-of-range tree index is a clean error.
        let err = run(Command::Inspect(InspectArgs {
            model: model.clone(),
            top: 3,
            dump_tree: Some(99),
        }))
        .unwrap_err();
        assert!(err.contains("out of"), "{err}");
        for f in [&data, &model] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn parses_extension_flags() {
        let cmd = parse_args(&strs(&[
            "train",
            "--data",
            "d",
            "--model",
            "m",
            "--pre-binning",
            "--hist-subtraction",
            "--fused-layer",
            "--sparse-wire",
            "--quantized-hist",
            "--quant-hist-bits",
            "10",
            "--default-direction",
            "--early-stop",
            "3",
            "--test-fraction",
            "0.1",
        ]))
        .unwrap();
        let Command::Train(args) = cmd else { panic!() };
        assert!(args.config.opts.pre_binning);
        assert!(args.config.opts.hist_subtraction);
        assert!(args.config.opts.fused_layer);
        assert!(args.config.opts.sparse_wire);
        assert!(args.config.opts.quantized_hist);
        assert_eq!(args.config.quant_hist_bits, 10);
        assert!(args.config.learn_default_direction);
        assert_eq!(args.early_stop, Some(3));
        // Early stopping without a held-out fraction is rejected.
        assert!(parse_args(&strs(&[
            "train",
            "--data",
            "d",
            "--model",
            "m",
            "--early-stop",
            "3",
        ]))
        .is_err());
    }

    #[test]
    fn parses_softmax_and_requires_classes() {
        let cmd = parse_args(&strs(&[
            "train",
            "--data",
            "d",
            "--model",
            "m",
            "--loss",
            "softmax",
            "--classes",
            "4",
        ]))
        .unwrap();
        let Command::Train(args) = cmd else { panic!() };
        assert_eq!(args.config.loss, LossKind::Softmax { classes: 4 });
        // --classes alone also selects softmax.
        let cmd = parse_args(&strs(&[
            "train",
            "--data",
            "d",
            "--model",
            "m",
            "--classes",
            "3",
        ]))
        .unwrap();
        let Command::Train(args) = cmd else { panic!() };
        assert_eq!(args.config.loss, LossKind::Softmax { classes: 3 });
        // softmax without classes is an error.
        assert!(parse_args(&strs(&[
            "train", "--data", "d", "--model", "m", "--loss", "softmax"
        ]))
        .is_err());
    }

    #[test]
    fn predict_with_missing_model_fails_cleanly() {
        let err = run(Command::Predict(PredictArgs {
            data: "nonexistent.libsvm".into(),
            model: "nonexistent.model".into(),
            output: None,
            raw: false,
            zero_based: false,
            csv: false,
            threads: 2,
            batch_size: 64,
        }))
        .unwrap_err();
        assert!(err.contains("I/O error"), "{err}");
        assert_eq!(err.exit_code, 1);
    }

    #[test]
    fn parses_predict_and_bench_flags() {
        let cmd = parse_args(&strs(&[
            "predict",
            "--data",
            "d.csv",
            "--model",
            "m.bin",
            "--csv",
            "--raw",
            "--threads",
            "8",
            "--batch-size",
            "256",
        ]))
        .unwrap();
        let Command::Predict(args) = cmd else {
            panic!()
        };
        assert!(args.csv && args.raw);
        assert_eq!((args.threads, args.batch_size), (8, 256));

        let cmd = parse_args(&strs(&[
            "bench",
            "--data",
            "d.libsvm",
            "--model",
            "m.bin",
            "--threads",
            "4",
            "--batch-size",
            "128",
            "--repeats",
            "5",
            "--scores",
            "s.txt",
            "--report",
            "r.json",
            "--report-canonical",
            "rc.json",
        ]))
        .unwrap();
        let Command::Bench(args) = cmd else { panic!() };
        assert_eq!((args.threads, args.batch_size, args.repeats), (4, 128, 5));
        assert_eq!(args.scores, Some(PathBuf::from("s.txt")));
        assert_eq!(args.report, Some(PathBuf::from("r.json")));
        assert_eq!(args.report_canonical, Some(PathBuf::from("rc.json")));

        // Degenerate values are rejected at parse time.
        assert!(parse_args(&strs(&[
            "predict",
            "--data",
            "d",
            "--model",
            "m",
            "--threads",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&strs(&[
            "bench",
            "--data",
            "d",
            "--model",
            "m",
            "--repeats",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&strs(&["bench", "--data", "d"])).is_err());
    }

    #[test]
    fn parses_serve_sim_flags_and_validates_knobs() {
        let cmd = parse_args(&strs(&[
            "serve-sim",
            "--data",
            "d.libsvm",
            "--model",
            "a.json",
            "--model",
            "b.json",
            "--requests",
            "200",
            "--rate",
            "800",
            "--seed",
            "7",
            "--queue-cap",
            "32",
            "--max-batch",
            "8",
            "--slo",
            "0.02",
            "--service-fixed",
            "0.001",
            "--service-per-row",
            "0.0001",
            "--horizon",
            "1.5",
            "--swap-at",
            "0.5",
            "--swap-tenant",
            "1",
            "--swap-model",
            "c.json",
            "--report-canonical",
            "rc.json",
            "--trace",
            "t.txt",
        ]))
        .unwrap();
        let Command::ServeSim(args) = cmd else {
            panic!()
        };
        assert_eq!(args.models.len(), 2);
        assert_eq!((args.requests, args.seed), (200, 7));
        assert_eq!((args.queue_cap, args.max_batch), (32, 8));
        assert_eq!(args.rate, 800.0);
        assert_eq!(args.slo, 0.02);
        assert_eq!(args.horizon, Some(1.5));
        assert_eq!(args.swap_at, Some(0.5));
        assert_eq!(args.swap_tenant, 1);
        assert_eq!(args.swap_model, Some(PathBuf::from("c.json")));
        assert_eq!(args.report_canonical, Some(PathBuf::from("rc.json")));
        assert_eq!(args.trace, Some(PathBuf::from("t.txt")));

        let base = ["serve-sim", "--data", "d", "--model", "m"];
        let with = |extra: &[&str]| {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend_from_slice(extra);
            parse_args(&strs(&argv))
        };
        assert!(with(&[]).is_ok());
        assert!(with(&["--requests", "0"]).is_err());
        assert!(with(&["--rate", "0"]).is_err());
        assert!(with(&["--rate", "inf"]).is_err());
        assert!(with(&["--queue-cap", "0"]).is_err());
        assert!(with(&["--max-batch", "0"]).is_err());
        assert!(with(&["--slo", "0"]).is_err());
        assert!(with(&["--service-per-row", "-1"]).is_err());
        assert!(with(&["--horizon", "0"]).is_err());
        // Swap flags must come as a consistent set.
        assert!(with(&["--swap-at", "0.5"]).is_err());
        assert!(with(&["--swap-model", "b.json"]).is_err());
        assert!(with(&["--swap-checkpoint", "ck"]).is_err());
        assert!(with(&[
            "--swap-at",
            "0.5",
            "--swap-model",
            "b",
            "--swap-checkpoint",
            "ck"
        ])
        .is_err());
        // Swap tenant must name a loaded model.
        assert!(with(&[
            "--swap-at",
            "0.5",
            "--swap-model",
            "b",
            "--swap-tenant",
            "1"
        ])
        .is_err());
        assert!(parse_args(&strs(&["serve-sim", "--data", "d"])).is_err());
        assert!(parse_args(&strs(&["serve-sim", "--model", "m"])).is_err());
    }

    #[test]
    fn serve_sim_end_to_end_is_rerun_stable_and_swaps_from_checkpoint() {
        let dir = std::env::temp_dir().join("dimboost_cli_serve_sim");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.libsvm");
        let model_a = dir.join("a.model");
        let ckpts = dir.join("ckpts");

        run(parse_args(&strs(&[
            "gen",
            "--out",
            data.to_str().unwrap(),
            "--rows",
            "300",
            "--features",
            "40",
            "--nnz",
            "6",
            "--seed",
            "3",
        ]))
        .unwrap())
        .unwrap();
        run(parse_args(&strs(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model_a.to_str().unwrap(),
            "--trees",
            "3",
            "--depth",
            "3",
        ]))
        .unwrap())
        .unwrap();
        // A second, different model left behind as a *checkpoint* — the
        // swap source exercises the load-a-checkpoint-mid-stream path.
        let plan = dir.join("plan.txt");
        std::fs::write(&plan, "seed 1\ncrash round=2\n").unwrap();
        let err = run(parse_args(&strs(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            dir.join("b.model").to_str().unwrap(),
            "--trees",
            "5",
            "--depth",
            "2",
            "--seed",
            "99",
            "--fault-plan",
            plan.to_str().unwrap(),
            "--checkpoint-dir",
            ckpts.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.exit_code, 3, "{err}");

        let serve = |tag: &str| {
            let canon = dir.join(format!("canon_{tag}.json"));
            let trace = dir.join(format!("trace_{tag}.txt"));
            run(parse_args(&strs(&[
                "serve-sim",
                "--data",
                data.to_str().unwrap(),
                "--model",
                model_a.to_str().unwrap(),
                "--requests",
                "300",
                "--rate",
                "4000",
                "--seed",
                "21",
                "--queue-cap",
                "64",
                "--max-batch",
                "8",
                "--slo",
                "0.01",
                "--swap-at",
                "0.03",
                "--swap-checkpoint",
                ckpts.to_str().unwrap(),
                "--report",
                dir.join(format!("timed_{tag}.json")).to_str().unwrap(),
                "--report-canonical",
                canon.to_str().unwrap(),
                "--trace",
                trace.to_str().unwrap(),
            ]))
            .unwrap())
            .unwrap();
            (
                std::fs::read_to_string(canon).unwrap(),
                std::fs::read_to_string(trace).unwrap(),
            )
        };
        let (canon_a, trace_a) = serve("a");
        let (canon_b, trace_b) = serve("b");
        assert_eq!(canon_a, canon_b, "canonical serve-sim reports must match");
        assert_eq!(trace_a, trace_b, "serve-sim traces must match");
        assert!(
            canon_a.starts_with("{\"kind\":\"serving_sim\""),
            "{canon_a}"
        );
        assert!(canon_a.contains("\"swaps\":1"), "{canon_a}");
        assert!(!canon_a.contains("wall"), "{canon_a}");
        assert!(trace_a.contains("swap t="), "{trace_a}");
        let timed = std::fs::read_to_string(dir.join("timed_a.json")).unwrap();
        assert!(timed.contains("\"wall_secs\":"), "{timed}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_parses_threading_flags() {
        let cmd = parse_args(&strs(&[
            "train",
            "--data",
            "d",
            "--model",
            "m",
            "--threads",
            "6",
            "--batch-size",
            "500",
        ]))
        .unwrap();
        let Command::Train(args) = cmd else { panic!() };
        assert_eq!(args.config.num_threads, 6);
        assert_eq!(args.config.batch_size, 500);
    }

    #[test]
    fn bench_end_to_end_is_rerun_stable() {
        let dir = std::env::temp_dir().join("dimboost_cli_bench");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.libsvm");
        let model = dir.join("model.bin");

        run(parse_args(&strs(&[
            "gen",
            "--out",
            data.to_str().unwrap(),
            "--rows",
            "500",
            "--features",
            "60",
            "--nnz",
            "8",
            "--seed",
            "13",
        ]))
        .unwrap())
        .unwrap();
        run(parse_args(&strs(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--trees",
            "3",
            "--depth",
            "3",
        ]))
        .unwrap())
        .unwrap();

        let bench = |tag: &str| {
            let scores = dir.join(format!("scores_{tag}.txt"));
            let canon = dir.join(format!("report_{tag}.json"));
            run(parse_args(&strs(&[
                "bench",
                "--data",
                data.to_str().unwrap(),
                "--model",
                model.to_str().unwrap(),
                "--threads",
                "4",
                "--batch-size",
                "64",
                "--repeats",
                "2",
                "--scores",
                scores.to_str().unwrap(),
                "--report",
                dir.join(format!("timed_{tag}.json")).to_str().unwrap(),
                "--report-canonical",
                canon.to_str().unwrap(),
            ]))
            .unwrap())
            .unwrap();
            (
                std::fs::read_to_string(scores).unwrap(),
                std::fs::read_to_string(canon).unwrap(),
            )
        };
        let (scores_a, canon_a) = bench("a");
        let (scores_b, canon_b) = bench("b");
        // The repo-wide serving determinism gate, in-process form: score
        // bytes and canonical serving reports are rerun-identical.
        assert_eq!(scores_a, scores_b);
        assert_eq!(canon_a, canon_b);
        assert_eq!(scores_a.lines().count(), 500);
        assert!(canon_a.contains("\"kind\":\"serving\""), "{canon_a}");
        assert!(canon_a.contains("\"score_checksum\":"), "{canon_a}");
        assert!(!canon_a.contains("compute_secs"), "{canon_a}");
        // Scores match the predict subcommand (same engine, same bits).
        let preds = dir.join("preds.txt");
        run(parse_args(&strs(&[
            "predict",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--threads",
            "2",
            "--batch-size",
            "100",
            "--output",
            preds.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        assert_eq!(std::fs::read_to_string(&preds).unwrap(), scores_a);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_raw_multiclass_emits_k_scores_per_row() {
        let dir = std::env::temp_dir().join("dimboost_cli_multiclass");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.bin");
        // Small three-class LibSVM data (+0.01 keeps every value nonzero so
        // the sparse encoding stores all three features).
        let libsvm = dir.join("data.libsvm");
        let mut text = String::new();
        for i in 0..90 {
            text.push_str(&format!(
                "{} 1:{} 2:{} 3:{}\n",
                i % 3,
                (i % 7) as f32 * 0.5 + 0.01,
                ((i + 2) % 5) as f32 * 0.25 + 0.01,
                (i % 2) as f32 + 0.01
            ));
        }
        std::fs::write(&libsvm, text).unwrap();
        run(parse_args(&strs(&[
            "train",
            "--data",
            libsvm.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--trees",
            "6",
            "--depth",
            "2",
            "--classes",
            "3",
        ]))
        .unwrap())
        .unwrap();
        let preds = dir.join("raw.txt");
        run(parse_args(&strs(&[
            "predict",
            "--data",
            libsvm.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--raw",
            "--output",
            preds.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        let text = std::fs::read_to_string(&preds).unwrap();
        assert_eq!(text.lines().count(), 90);
        // The old interpreter path panicked on multiclass --raw; the
        // compiled engine emits K space-separated scores per row.
        assert!(text.lines().all(|l| l.split(' ').count() == 3), "{text}");

        // The same rows as CSV (label column first) score identically.
        let csv = dir.join("data.csv");
        let mut csv_text = String::from("label,f0,f1,f2\n");
        for i in 0..90 {
            csv_text.push_str(&format!(
                "{},{},{},{}\n",
                i % 3,
                (i % 7) as f32 * 0.5 + 0.01,
                ((i + 2) % 5) as f32 * 0.25 + 0.01,
                (i % 2) as f32 + 0.01
            ));
        }
        std::fs::write(&csv, csv_text).unwrap();
        let csv_preds = dir.join("raw_csv.txt");
        run(parse_args(&strs(&[
            "predict",
            "--data",
            csv.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--raw",
            "--csv",
            "--output",
            csv_preds.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        assert_eq!(std::fs::read_to_string(&csv_preds).unwrap(), text);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_robustness_flags() {
        let cmd = parse_args(&strs(&[
            "train",
            "--data",
            "d",
            "--model",
            "m",
            "--fault-plan",
            "plan.txt",
            "--checkpoint-dir",
            "ckpts",
            "--checkpoint-every",
            "2",
            "--resume",
        ]))
        .unwrap();
        let Command::Train(args) = cmd else { panic!() };
        assert_eq!(args.fault_plan, Some(PathBuf::from("plan.txt")));
        assert_eq!(args.checkpoint_dir, Some(PathBuf::from("ckpts")));
        assert_eq!(args.checkpoint_every, 2);
        assert!(args.resume);
        // --resume / --checkpoint-every need somewhere to put checkpoints.
        for extra in [&["--resume"][..], &["--checkpoint-every", "2"][..]] {
            let mut argv = vec!["train", "--data", "d", "--model", "m"];
            argv.extend_from_slice(extra);
            let err = parse_args(&strs(&argv)).unwrap_err();
            assert!(err.contains("--checkpoint-dir"), "{err}");
        }
        assert!(parse_args(&strs(&[
            "train",
            "--data",
            "d",
            "--model",
            "m",
            "--checkpoint-dir",
            "c",
            "--checkpoint-every",
            "0",
        ]))
        .is_err());
    }

    #[test]
    fn train_with_missing_fault_plan_fails_cleanly() {
        let dir = std::env::temp_dir();
        let data = dir.join("dimboost_cli_badplan.libsvm");
        run(parse_args(&strs(&[
            "gen",
            "--out",
            data.to_str().unwrap(),
            "--rows",
            "100",
            "--features",
            "20",
            "--nnz",
            "4",
        ]))
        .unwrap())
        .unwrap();
        let err = run(parse_args(&strs(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            dir.join("dimboost_cli_badplan.model").to_str().unwrap(),
            "--fault-plan",
            dir.join("dimboost_cli_no_such_plan.txt").to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("read fault plan"), "{err}");
        assert_eq!(err.exit_code, 1);
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn end_to_end_crash_and_resume_matches_clean_run() {
        let dir = std::env::temp_dir().join("dimboost_cli_crash_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.libsvm");
        let clean_model = dir.join("clean.model");
        let faulted_model = dir.join("faulted.model");
        let plan = dir.join("plan.txt");
        let ckpts = dir.join("ckpts");

        run(parse_args(&strs(&[
            "gen",
            "--out",
            data.to_str().unwrap(),
            "--rows",
            "400",
            "--features",
            "60",
            "--nnz",
            "6",
            "--seed",
            "11",
        ]))
        .unwrap())
        .unwrap();

        let train_argv = |model: &std::path::Path, extra: &[&str]| {
            let mut argv = vec![
                "train".to_string(),
                "--data".into(),
                data.to_str().unwrap().into(),
                "--model".into(),
                model.to_str().unwrap().into(),
                "--trees".into(),
                "5".into(),
                "--depth".into(),
                "3".into(),
                "--workers".into(),
                "2".into(),
                "--seed".into(),
                "7".into(),
            ];
            argv.extend(extra.iter().map(|s| s.to_string()));
            parse_args(&argv).unwrap()
        };

        // Reference: uninterrupted run, no faults.
        run(train_argv(&clean_model, &[])).unwrap();

        // Faulted run: drops + a straggler + a scripted crash at round 3.
        std::fs::write(
            &plan,
            "seed 42\ndrop 0.2\nack_drop 0.1\ndup 0.1\n\
             straggler worker=1 factor=2.5 phase=build_histogram\n\
             crash round=3\n",
        )
        .unwrap();
        let plan_s = plan.to_str().unwrap();
        let ckpt_s = ckpts.to_str().unwrap();
        let err = run(train_argv(
            &faulted_model,
            &["--fault-plan", plan_s, "--checkpoint-dir", ckpt_s],
        ))
        .unwrap_err();
        assert_eq!(err.exit_code, 3, "{err}");
        assert!(err.contains("simulated worker crash at round 3"), "{err}");

        // Resume from the crash-time checkpoint under the same fault plan.
        run(train_argv(
            &faulted_model,
            &[
                "--fault-plan",
                plan_s,
                "--checkpoint-dir",
                ckpt_s,
                "--resume",
            ],
        ))
        .unwrap();

        // Exactness invariant: faults + crash + resume change timing only,
        // never the learned model.
        let clean = std::fs::read(&clean_model).unwrap();
        let faulted = std::fs::read(&faulted_model).unwrap();
        assert_eq!(clean, faulted, "faulted model diverged from clean run");

        std::fs::remove_dir_all(&dir).ok();
    }
}
