//! The `dimboost` binary: thin wrapper over [`dimboost_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match dimboost_cli::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", dimboost_cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = dimboost_cli::run(command) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code);
    }
}
