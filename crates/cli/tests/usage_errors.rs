//! Drives the actual `dimboost` binary with malformed arguments and pins
//! the contract scripts rely on: a usage error is caught at *parse* time,
//! exits with status 2 (distinct from runtime errors' 1 and simulated
//! crashes' 3), and prints a friendly message — never a panic, a silent
//! hang, or a downstream engine assertion.

use std::process::{Command, Output};

fn dimboost(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dimboost"))
        .args(args)
        .output()
        .expect("failed to spawn the dimboost binary")
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = dimboost(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "{args:?} stderr missing {needle:?}: {stderr}"
    );
    assert!(
        stderr.contains("USAGE"),
        "{args:?} stderr should include the usage text: {stderr}"
    );
}

#[test]
fn zero_threads_and_batch_size_are_parse_time_errors() {
    for sub in ["predict", "bench"] {
        assert_usage_error(
            &[
                sub,
                "--data",
                "d.libsvm",
                "--model",
                "m.json",
                "--threads",
                "0",
            ],
            "must be positive",
        );
        assert_usage_error(
            &[
                sub,
                "--data",
                "d.libsvm",
                "--model",
                "m.json",
                "--batch-size",
                "0",
            ],
            "must be positive",
        );
    }
    assert_usage_error(
        &[
            "train",
            "--data",
            "d.libsvm",
            "--model",
            "m.json",
            "--threads",
            "0",
        ],
        "must be positive",
    );
    assert_usage_error(
        &[
            "train",
            "--data",
            "d.libsvm",
            "--model",
            "m.json",
            "--batch-size",
            "0",
        ],
        "must be positive",
    );
    assert_usage_error(
        &[
            "bench",
            "--data",
            "d.libsvm",
            "--model",
            "m.json",
            "--repeats",
            "0",
        ],
        "must be positive",
    );
}

#[test]
fn serve_sim_validates_its_knobs_at_parse_time() {
    let base = ["serve-sim", "--data", "d.libsvm", "--model", "m.json"];
    for (flag, bad, needle) in [
        ("--requests", "0", "must be positive"),
        ("--rate", "0", "--rate must be positive"),
        ("--queue-cap", "0", "must be positive"),
        ("--max-batch", "0", "must be positive"),
        ("--slo", "0", "--slo must be positive"),
        ("--service-per-row", "-1", "must not be negative"),
    ] {
        let mut args: Vec<&str> = base.to_vec();
        args.extend([flag, bad]);
        assert_usage_error(&args, needle);
    }
    // A swap needs both a time and exactly one model source.
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--swap-at", "0.5"]);
    assert_usage_error(&args, "--swap-at requires");
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--swap-model", "b.json"]);
    assert_usage_error(&args, "requires --swap-at");
}

#[test]
fn analyze_validates_its_trace_path_and_top_at_parse_time() {
    // Missing trace path entirely.
    assert_usage_error(&["analyze"], "analyze requires --trace");
    // Malformed trace path: the flag with no value.
    assert_usage_error(&["analyze", "--trace"], "missing value");
    // Degenerate summary size.
    assert_usage_error(
        &["analyze", "--trace", "t.events", "--top", "0"],
        "--top must be positive",
    );
    assert_usage_error(
        &["analyze", "--trace", "t.events", "--top", "x"],
        "invalid value",
    );
    assert_usage_error(&["analyze", "--trace", "t.events", "--wat"], "unknown flag");
    // A well-formed invocation naming a nonexistent trace file fails at
    // run time with status 1, like every other subcommand.
    let out = dimboost(&["analyze", "--trace", "definitely_missing.events"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("read trace"), "{stderr}");
}

#[test]
fn unknown_flags_and_missing_values_exit_two() {
    assert_usage_error(
        &["predict", "--data", "d", "--model", "m", "--wat"],
        "unknown flag",
    );
    assert_usage_error(&["bench", "--data"], "missing value");
    assert_usage_error(&["explode"], "unknown subcommand");
}

#[test]
fn runtime_errors_still_exit_one() {
    // A well-formed invocation that fails at run time (missing model file)
    // must keep exit status 1 — scripts tell usage errors and runtime
    // failures apart by status.
    let out = dimboost(&[
        "predict",
        "--data",
        "definitely_missing.libsvm",
        "--model",
        "definitely_missing.json",
    ]);
    assert_eq!(out.status.code(), Some(1));
}
