//! Pins the tentpole guarantee: compiled-engine scores are **bit-equal**
//! to the interpreted `Tree` evaluation path on every loss.
//!
//! No tolerances anywhere in this file. The compiled traversal performs the
//! same f32 comparisons on the same values as `Tree::route`, and the score
//! accumulation adds `η·ω` terms in the same tree order as the interpreter,
//! so every assertion is exact `==` on f32 bits — any divergence, down to
//! one ulp, is a compiler bug.

use dimboost_core::{train_single_machine, GbdtConfig, GbdtModel, LossKind};
use dimboost_data::synthetic::{generate, LabelKind, SparseGenConfig};
use dimboost_data::Dataset;
use dimboost_predict::{score_raw, score_transformed, CompiledModel, EngineConfig};

fn trained(loss: LossKind, seed: u64) -> (GbdtModel, Dataset) {
    let mut gen = SparseGenConfig::new(400, 50, 10, seed);
    if let LossKind::Softmax { classes } = loss {
        gen.label_kind = LabelKind::Multiclass { classes };
    }
    let ds = generate(&gen);
    let cfg = GbdtConfig {
        num_trees: 6,
        max_depth: 4,
        loss,
        ..GbdtConfig::default()
    };
    let model = train_single_machine(&ds, &cfg).unwrap();
    (model, ds)
}

fn assert_bit_equal(model: &GbdtModel, ds: &Dataset) {
    let compiled = CompiledModel::compile(model);
    let k = model.num_classes();
    for i in 0..ds.num_rows() {
        let row = ds.row(i);
        // Per-class raw scores.
        let mut raw = vec![0.0f32; k];
        compiled.score_into(&row, &mut raw);
        assert_eq!(raw, model.predict_scores(&row), "row {i} raw scores");
        if k == 1 {
            assert_eq!(compiled.predict_raw(&row), model.predict_raw(&row));
        }
        // Transformed prediction and probabilities.
        assert_eq!(compiled.predict(&row), model.predict(&row), "row {i}");
        assert_eq!(compiled.predict_proba(&row), model.predict_proba(&row));
    }
    // The batch engine must agree with both, for every threading config.
    let transformed_ref = model.predict_dataset(ds);
    for threads in [1, 2, 4, 8] {
        let cfg = EngineConfig {
            threads,
            batch_size: 33,
        };
        assert_eq!(score_transformed(&compiled, ds, &cfg), transformed_ref);
        let raw = score_raw(&compiled, ds, &cfg);
        for i in 0..ds.num_rows() {
            assert_eq!(raw[i * k..(i + 1) * k], model.predict_scores(&ds.row(i)));
        }
    }
}

#[test]
fn binary_logistic_scores_bit_equal() {
    let (model, ds) = trained(LossKind::Logistic, 21);
    assert_bit_equal(&model, &ds);
}

#[test]
fn regression_square_scores_bit_equal() {
    let (model, ds) = trained(LossKind::Square, 22);
    assert_bit_equal(&model, &ds);
}

#[test]
fn multiclass_softmax_scores_bit_equal() {
    let (model, ds) = trained(LossKind::Softmax { classes: 4 }, 23);
    assert_bit_equal(&model, &ds);
}

#[test]
fn compiled_agrees_on_unseen_data() {
    // Score a dataset the model never saw (different seed and density):
    // routing must agree on rows with unseen sparsity patterns too.
    let (model, _) = trained(LossKind::Logistic, 24);
    let other = generate(&SparseGenConfig::new(300, 50, 25, 99));
    assert_bit_equal(&model, &other);
}
