//! A trained ensemble compiled to flat struct-of-arrays form.
//!
//! The interpreted [`Tree`] stores a full implicit heap (`2^(depth+1)−1`
//! enum slots per tree) and matches on the `Node` tag at every step. The
//! compiled form keeps only reachable nodes, contiguously per tree in BFS
//! order, split across parallel arrays so the traversal loop reads exactly
//! the bytes it needs:
//!
//! | array     | internal node          | leaf            |
//! |-----------|------------------------|-----------------|
//! | `feature` | tested feature id      | 0 (unused)      |
//! | `value`   | split threshold        | leaf weight `ω` |
//! | `left`    | left child index       | 0 (unused)      |
//! | `right`   | right child index      | 0 (unused)      |
//! | `flags`   | bit1 = default-left    | bit0 = leaf     |
//!
//! Child indices are **global** (into the shared arrays), so a traversal
//! never needs the tree id after starting at its root. `Unused` slots a
//! malformed tree can route into are compiled to weight-0 leaves, which is
//! exactly what [`Tree::predict`] returns for them — compilation never
//! changes a prediction, bit for bit.

use dimboost_core::loss::softmax_inplace;
use dimboost_core::{loss_for, GbdtModel, LossKind, Node, Tree};
use dimboost_data::RowView;

/// `flags` bit marking a leaf.
const FLAG_LEAF: u8 = 1;
/// `flags` bit sending zero (absent) feature values left.
const FLAG_DEFAULT_LEFT: u8 = 2;

/// A [`GbdtModel`] compiled into flat struct-of-arrays node storage.
///
/// Scores are bit-equal to the interpreted model: the traversal performs
/// the same `v == 0.0` / `v <= threshold` comparisons on the same f32
/// values, and the per-class accumulation adds `η·ω` terms in the same
/// tree order as [`GbdtModel::predict_scores`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    /// Tree `t` occupies node indices `tree_offsets[t]..tree_offsets[t+1]`;
    /// its root is `tree_offsets[t]`. Length `num_trees + 1`.
    tree_offsets: Vec<u32>,
    feature: Vec<u32>,
    value: Vec<f32>,
    left: Vec<u32>,
    right: Vec<u32>,
    flags: Vec<u8>,
    learning_rate: f32,
    loss: LossKind,
    num_features: usize,
}

impl CompiledModel {
    /// Compiles a trained model. Each tree is walked breadth-first from its
    /// root; only reachable nodes are emitted.
    pub fn compile(model: &GbdtModel) -> Self {
        let mut c = CompiledModel {
            tree_offsets: Vec::with_capacity(model.num_trees() + 1),
            feature: Vec::new(),
            value: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            flags: Vec::new(),
            learning_rate: model.learning_rate(),
            loss: model.loss(),
            num_features: model.num_features(),
        };
        c.tree_offsets.push(0);
        for tree in model.trees() {
            c.compile_tree(tree);
            c.tree_offsets.push(c.feature.len() as u32);
        }
        c
    }

    fn compile_tree(&mut self, tree: &Tree) {
        let base = self.feature.len() as u32;
        // BFS order: when slot `i` of `order` is processed, its children (if
        // any) are appended at slots `order.len()` and `order.len() + 1`, so
        // their compiled indices are known before they are visited.
        let mut order: Vec<u32> = vec![0];
        let mut i = 0;
        while i < order.len() {
            match tree.node(order[i]) {
                Node::Internal {
                    feature,
                    threshold,
                    default_left,
                    ..
                } => {
                    let child = base + order.len() as u32;
                    order.push(Tree::left_child(order[i]));
                    order.push(Tree::right_child(order[i]));
                    self.feature.push(feature);
                    self.value.push(threshold);
                    self.left.push(child);
                    self.right.push(child + 1);
                    self.flags
                        .push(if default_left { FLAG_DEFAULT_LEFT } else { 0 });
                }
                Node::Leaf { weight } => self.push_leaf(weight),
                // Routing into an Unused slot predicts 0.0 in the
                // interpreter; a weight-0 leaf is bit-identical.
                Node::Unused => self.push_leaf(0.0),
            }
            i += 1;
        }
    }

    fn push_leaf(&mut self, weight: f32) {
        self.feature.push(0);
        self.value.push(weight);
        self.left.push(0);
        self.right.push(0);
        self.flags.push(FLAG_LEAF);
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.tree_offsets.len() - 1
    }

    /// Total compiled nodes across all trees.
    pub fn num_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Number of score columns (1 for scalar losses, `classes` for softmax).
    pub fn num_classes(&self) -> usize {
        self.loss.trees_per_round()
    }

    /// The loss the model was trained with.
    pub fn loss(&self) -> LossKind {
        self.loss
    }

    /// Shrinkage learning rate η.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Dimensionality the model was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Approximate memory footprint of the node arrays in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tree_offsets.len() * 4 + self.feature.len() * 17
    }

    /// Unshrunk leaf weight tree `t` predicts for `row`. The traversal
    /// replicates [`Tree::route`]'s comparisons exactly.
    #[inline]
    fn leaf_value(&self, t: usize, row: &RowView<'_>) -> f32 {
        let mut n = self.tree_offsets[t] as usize;
        loop {
            let flags = self.flags[n];
            if flags & FLAG_LEAF != 0 {
                return self.value[n];
            }
            let v = row.get(self.feature[n]);
            let go_left = if v == 0.0 {
                flags & FLAG_DEFAULT_LEFT != 0
            } else {
                v <= self.value[n]
            };
            n = if go_left { self.left[n] } else { self.right[n] } as usize;
        }
    }

    /// Accumulates per-class raw scores for one instance into `scores`
    /// (length [`Self::num_classes`], zeroed by the caller). Mirrors
    /// [`GbdtModel::predict_scores`]: tree `i` contributes `η·ω` to class
    /// `i % K`, in tree order.
    pub fn score_into(&self, row: &RowView<'_>, scores: &mut [f32]) {
        let k = self.num_classes();
        debug_assert_eq!(scores.len(), k);
        for t in 0..self.num_trees() {
            scores[t % k] += self.learning_rate * self.leaf_value(t, row);
        }
    }

    /// Raw additive score for one instance (scalar losses).
    ///
    /// # Panics
    /// Panics for softmax models — use [`Self::score_into`].
    pub fn predict_raw(&self, row: &RowView<'_>) -> f32 {
        assert_eq!(self.num_classes(), 1, "multiclass model: use score_into");
        let mut score = [0.0f32];
        self.score_into(row, &mut score);
        score[0]
    }

    /// Transformed prediction, matching [`GbdtModel::predict`] bit for bit:
    /// predicted class index (as `f32`) for softmax, `loss.transform(raw)`
    /// otherwise.
    pub fn predict(&self, row: &RowView<'_>) -> f32 {
        match self.loss {
            LossKind::Softmax { .. } => {
                let mut scores = vec![0.0f32; self.num_classes()];
                self.score_into(row, &mut scores);
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c)
                    .unwrap_or(0) as f32
            }
            kind => loss_for(kind).transform(self.predict_raw(row)),
        }
    }

    /// Per-class probabilities, matching [`GbdtModel::predict_proba`].
    pub fn predict_proba(&self, row: &RowView<'_>) -> Vec<f32> {
        match self.loss {
            LossKind::Softmax { .. } => {
                let mut scores = vec![0.0f32; self.num_classes()];
                self.score_into(row, &mut scores);
                softmax_inplace(&mut scores);
                scores
            }
            kind => vec![loss_for(kind).transform(self.predict_raw(row))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model(loss: LossKind) -> GbdtModel {
        let mut t1 = Tree::new(2);
        t1.set_internal_full(0, 3, 0.5, 1.0, false);
        t1.set_internal(1, 1, 1.2);
        t1.set_leaf(3, -1.0);
        t1.set_leaf(4, 0.25);
        t1.set_leaf(2, 1.5);
        let mut t2 = Tree::new(1);
        t2.set_leaf(0, 0.5);
        let trees = match loss {
            LossKind::Softmax { classes } => {
                let mut ts = Vec::new();
                for _ in 0..classes {
                    ts.push(t1.clone());
                }
                ts
            }
            _ => vec![t1, t2],
        };
        GbdtModel::new(trees, 0.3, loss, 8)
    }

    #[test]
    fn compiles_only_reachable_nodes() {
        let m = toy_model(LossKind::Logistic);
        let c = CompiledModel::compile(&m);
        // Tree 1: 5 live nodes; tree 2: a root leaf. The interpreted trees
        // hold 7 + 3 enum slots; the compiled form drops the unused ones.
        assert_eq!(c.num_trees(), 2);
        assert_eq!(c.num_nodes(), 6);
        assert!(c.memory_bytes() < 200);
    }

    #[test]
    fn unused_root_predicts_zero_like_interpreter() {
        let dead = Tree::new(1); // all Unused
        let m = GbdtModel::new(vec![dead], 0.5, LossKind::Square, 4);
        let c = CompiledModel::compile(&m);
        let ds = dimboost_data::synthetic::generate(
            &dimboost_data::synthetic::SparseGenConfig::new(5, 4, 2, 1),
        );
        for i in 0..ds.num_rows() {
            assert_eq!(c.predict_raw(&ds.row(i)), m.predict_raw(&ds.row(i)));
            assert_eq!(c.predict_raw(&ds.row(i)), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "multiclass")]
    fn raw_rejects_multiclass() {
        let m = toy_model(LossKind::Softmax { classes: 3 });
        let c = CompiledModel::compile(&m);
        let ds = dimboost_data::synthetic::generate(
            &dimboost_data::synthetic::SparseGenConfig::new(1, 8, 3, 1),
        );
        c.predict_raw(&ds.row(0));
    }

    #[test]
    fn metadata_round_trips() {
        let m = toy_model(LossKind::Softmax { classes: 3 });
        let c = CompiledModel::compile(&m);
        assert_eq!(c.num_classes(), 3);
        assert_eq!(c.learning_rate(), 0.3);
        assert_eq!(c.num_features(), 8);
        assert_eq!(c.loss(), LossKind::Softmax { classes: 3 });
    }
}
