//! The serving benchmark and its JSON report.
//!
//! [`ServingReport`] follows the training `RunReport`'s canonical-vs-timed
//! scheme: every structural field (row/tree/thread counts, batch layout,
//! the FNV-1a checksum over the emitted score bytes, `sim/serving/*`
//! metrics) is a pure function of `(model, data, config)` and appears in
//! the canonical JSON; wall-clock measurements live in the top-level
//! `compute_secs` field and `wall/serving/*` percentile entries, both of
//! which `report_diff`'s built-in rules ignore. Two bench runs of the same
//! model and data must therefore produce byte-identical canonical reports
//! and a `report_diff` exit status of 0 — ci.sh enforces exactly that.

use std::time::Instant;

use dimboost_data::Dataset;
use dimboost_simnet::{MetricExport, MetricsRegistry};

use crate::compiled::CompiledModel;
use crate::engine::{score_with_metrics, EngineConfig, ScoreKind};

/// Options for [`run_serving_bench`].
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Engine configuration (threads, batch size).
    pub engine: EngineConfig,
    /// How many times to score the full dataset (all repeats timed).
    pub repeats: usize,
    /// Emit raw per-class scores instead of transformed predictions.
    pub raw: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            repeats: 3,
            raw: false,
        }
    }
}

/// Result of one serving benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Rows scored per repeat.
    pub rows: usize,
    /// Dataset feature dimensionality.
    pub features: usize,
    /// Model score columns.
    pub classes: usize,
    /// Trees in the compiled model.
    pub trees: usize,
    /// Total compiled nodes.
    pub nodes: usize,
    /// Worker threads requested.
    pub threads: usize,
    /// Rows per batch.
    pub batch_size: usize,
    /// Batches per repeat.
    pub batches: usize,
    /// Number of timed repeats.
    pub repeats: usize,
    /// `"raw"` or `"transformed"` — which scores were emitted.
    pub score_kind: &'static str,
    /// FNV-1a 64 checksum over the emitted scores' little-endian bytes.
    /// Deterministic: pins the exact output bits into the canonical report.
    pub score_checksum: u64,
    /// Total wall seconds across all repeats (ignored by `report_diff`).
    pub compute_secs: f64,
    /// Metric exports from the serving registry (`sim/` canonical,
    /// `wall/` timings-only).
    pub percentiles: Vec<MetricExport>,
}

/// Scores `data` with `model` `opts.repeats` times and reports throughput.
///
/// Returns the scores of the final repeat (all repeats are asserted
/// bit-identical — the engine's striping makes this structural, and the
/// bench doubles as a runtime determinism gate) plus the filled report.
pub fn run_serving_bench(
    model: &CompiledModel,
    data: &Dataset,
    opts: &BenchOptions,
) -> (Vec<f32>, ServingReport) {
    assert!(opts.repeats > 0, "repeats must be positive");
    let kind = if opts.raw {
        ScoreKind::Raw
    } else {
        ScoreKind::Transformed
    };
    let mut registry = MetricsRegistry::new();
    let mut compute_secs = 0.0f64;
    let mut scores: Vec<f32> = Vec::new();
    for rep in 0..opts.repeats {
        let start = Instant::now();
        let out = score_with_metrics(model, data, &opts.engine, kind, &mut registry);
        let secs = start.elapsed().as_secs_f64();
        compute_secs += secs;
        registry.observe("wall/serving/repeat_secs", secs);
        if rep > 0 {
            assert_eq!(
                out, scores,
                "serving repeat {rep} diverged from repeat 0 — engine determinism broken"
            );
        }
        scores = out;
    }
    registry.counter_add("sim/serving/repeats", opts.repeats as u64);
    if compute_secs > 0.0 {
        registry.gauge_set(
            "wall/serving/rows_per_sec",
            (data.num_rows() * opts.repeats) as f64 / compute_secs,
        );
    }
    let report = ServingReport {
        rows: data.num_rows(),
        features: data.num_features(),
        classes: model.num_classes(),
        trees: model.num_trees(),
        nodes: model.num_nodes(),
        threads: opts.engine.threads,
        batch_size: opts.engine.batch_size,
        batches: data.num_rows().div_ceil(opts.engine.batch_size),
        repeats: opts.repeats,
        score_kind: if opts.raw { "raw" } else { "transformed" },
        score_checksum: fnv1a64(&scores),
        compute_secs,
        percentiles: registry.export(),
    };
    (scores, report)
}

/// FNV-1a 64 over the little-endian bytes of `scores`.
fn fnv1a64(scores: &[f32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for s in scores {
        for b in s.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

impl ServingReport {
    /// Serializes to JSON. With `timings`, wall-clock content
    /// (`compute_secs`, `wall/` percentile entries) is included; without,
    /// the document is canonical — bit-identical across reruns.
    pub fn json(&self, timings: bool) -> String {
        let mut out = String::from("{");
        push_field(&mut out, "kind", "\"serving\"", true);
        push_field(&mut out, "rows", &self.rows.to_string(), false);
        push_field(&mut out, "features", &self.features.to_string(), false);
        push_field(&mut out, "classes", &self.classes.to_string(), false);
        push_field(&mut out, "trees", &self.trees.to_string(), false);
        push_field(&mut out, "nodes", &self.nodes.to_string(), false);
        push_field(&mut out, "threads", &self.threads.to_string(), false);
        push_field(&mut out, "batch_size", &self.batch_size.to_string(), false);
        push_field(&mut out, "batches", &self.batches.to_string(), false);
        push_field(&mut out, "repeats", &self.repeats.to_string(), false);
        push_field(
            &mut out,
            "score_kind",
            &format!("\"{}\"", self.score_kind),
            false,
        );
        push_field(
            &mut out,
            "score_checksum",
            &self.score_checksum.to_string(),
            false,
        );
        if timings {
            push_field(&mut out, "compute_secs", &fmt_f64(self.compute_secs), false);
        }
        out.push_str(",\"percentiles\":[");
        let mut first = true;
        for m in &self.percentiles {
            if !timings && !m.deterministic {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push('{');
            push_field(&mut out, "name", &format!("\"{}\"", m.name), true);
            push_field(&mut out, "kind", &format!("\"{}\"", m.kind), false);
            push_field(&mut out, "count", &m.count.to_string(), false);
            push_field(&mut out, "value", &fmt_f64(m.value), false);
            push_field(&mut out, "min", &fmt_f64(m.min), false);
            push_field(&mut out, "max", &fmt_f64(m.max), false);
            push_field(&mut out, "p50", &fmt_f64(m.p50), false);
            push_field(&mut out, "p95", &fmt_f64(m.p95), false);
            push_field(&mut out, "p99", &fmt_f64(m.p99), false);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The canonical (rerun-stable) JSON document.
    pub fn canonical_json(&self) -> String {
        self.json(false)
    }

    /// One-line human-readable summary for the CLI.
    pub fn summary(&self) -> String {
        let total_rows = (self.rows * self.repeats) as f64;
        let rate = if self.compute_secs > 0.0 {
            total_rows / self.compute_secs
        } else {
            0.0
        };
        format!(
            "serving bench: {} rows × {} repeats, {} trees / {} nodes, {} thread(s), batch {} → {:.0} rows/s ({:.4}s), checksum {:016x}",
            self.rows,
            self.repeats,
            self.trees,
            self.nodes,
            self.threads,
            self.batch_size,
            rate,
            self.compute_secs,
            self.score_checksum,
        )
    }
}

fn push_field(out: &mut String, key: &str, value: &str, first: bool) {
    if !first {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
}

/// Shortest round-trip decimal form (`f64` Display), as in `RunReport`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_core::{train_single_machine, GbdtConfig, LossKind};
    use dimboost_data::synthetic::{generate, SparseGenConfig};

    fn setup() -> (CompiledModel, Dataset) {
        let ds = generate(&SparseGenConfig::new(200, 30, 6, 5));
        let cfg = GbdtConfig {
            num_trees: 3,
            max_depth: 3,
            loss: LossKind::Logistic,
            ..GbdtConfig::default()
        };
        let model = train_single_machine(&ds, &cfg).unwrap();
        (CompiledModel::compile(&model), ds)
    }

    #[test]
    fn canonical_report_is_rerun_stable() {
        let (c, ds) = setup();
        let opts = BenchOptions {
            engine: EngineConfig {
                threads: 4,
                batch_size: 16,
            },
            repeats: 2,
            raw: false,
        };
        let (scores_a, report_a) = run_serving_bench(&c, &ds, &opts);
        let (scores_b, report_b) = run_serving_bench(&c, &ds, &opts);
        assert_eq!(scores_a, scores_b);
        assert_eq!(report_a.canonical_json(), report_b.canonical_json());
        // The timed documents almost surely differ; the canonical ones may
        // not contain any wall field at all.
        assert!(!report_a.canonical_json().contains("wall/"));
        assert!(!report_a.canonical_json().contains("compute_secs"));
        assert!(report_a.json(true).contains("compute_secs"));
        assert!(report_a.json(true).contains("wall/serving/batch_secs"));
    }

    #[test]
    fn report_counts_are_structural() {
        let (c, ds) = setup();
        let opts = BenchOptions {
            engine: EngineConfig {
                threads: 2,
                batch_size: 64,
            },
            repeats: 3,
            raw: true,
        };
        let (scores, report) = run_serving_bench(&c, &ds, &opts);
        assert_eq!(report.rows, 200);
        assert_eq!(report.batches, 4);
        assert_eq!(report.repeats, 3);
        assert_eq!(report.score_kind, "raw");
        assert_eq!(scores.len(), 200);
        assert_eq!(report.score_checksum, fnv1a64(&scores));
        assert!(report.compute_secs >= 0.0);
        assert!(report.summary().contains("200 rows"));
    }

    #[test]
    fn checksum_pins_score_bits() {
        assert_eq!(fnv1a64(&[]), 0xcbf2_9ce4_8422_2325);
        let a = fnv1a64(&[1.0, 2.0]);
        let b = fnv1a64(&[2.0, 1.0]);
        assert_ne!(a, b, "checksum must be order-sensitive");
        // -0.0 and 0.0 compare equal but have different bits; the checksum
        // must see the difference (it hashes bits, not values).
        assert_ne!(fnv1a64(&[0.0]), fnv1a64(&[-0.0]));
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn rejects_zero_repeats() {
        let (c, ds) = setup();
        let opts = BenchOptions {
            repeats: 0,
            ..BenchOptions::default()
        };
        run_serving_bench(&c, &ds, &opts);
    }
}
