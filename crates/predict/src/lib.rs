//! Compiled, deterministic inference for trained DimBoost models.
//!
//! Training evaluates trees through [`dimboost_core::Tree`], a pointer-free
//! but enum-tagged implicit heap array: every step matches on a `Node` enum
//! and touches a `2^(depth+1)−1`-slot array even when the tree is mostly
//! `Unused`. That is fine inside the trainer's eval loop, but the ROADMAP's
//! north star serves "heavy traffic from millions of users" — a serving
//! path wants a flat, cache-friendly layout and a batch engine whose
//! throughput runs are reproducible.
//!
//! This crate provides that path in three layers:
//!
//! * [`compiled::CompiledModel`] — a trained [`GbdtModel`] compiled into
//!   struct-of-arrays form: per-tree contiguous node arrays (feature id,
//!   threshold or leaf weight, child indices, flag byte) laid out in BFS
//!   order, visiting only reachable nodes. Scores are **bit-equal** to the
//!   interpreted `Tree` path on every loss (binary, regression, multiclass);
//!   an equivalence test pins this.
//! * [`engine`] — batch scoring over sparse rows (no dense materialization)
//!   with the same **static round-robin striping** rule the batched
//!   histogram builders use: thread `t` owns batches `t, t+threads, …` and
//!   results are merged in batch-index order, so output bytes are
//!   bit-identical across reruns for any fixed `(threads, batch_size)`.
//!   Latency/throughput feed a [`dimboost_simnet::MetricsRegistry`]
//!   (`sim/serving/*` canonical, `wall/serving/*` excluded).
//! * [`report::ServingReport`] — a JSON serving report in the same
//!   canonical-vs-timed scheme as the training `RunReport`, gateable by the
//!   `report_diff` tool, plus [`report::run_serving_bench`], the throughput
//!   harness behind the CLI `bench` subcommand.
//!
//! [`GbdtModel`]: dimboost_core::GbdtModel

pub mod compiled;
pub mod engine;
pub mod report;

pub use compiled::CompiledModel;
pub use engine::{score_raw, score_transformed, score_with_metrics, EngineConfig, ScoreKind};
pub use report::{run_serving_bench, BenchOptions, ServingReport};
