//! Deterministic batch scoring.
//!
//! The engine scores a [`Dataset`] in batches of `batch_size` rows,
//! distributed over `threads` workers by the repo's shared deterministic
//! rule: **static round-robin striping** (thread `t` owns batches
//! `t, t + threads, …`), the same assignment the batched histogram builders
//! use. Each worker scores its batches into private buffers; the buffers
//! are then written into the output in ascending batch index, a fixed merge
//! order. Per-row scoring is independent, so unlike the histogram merge
//! there is no f32 reassociation at all: the output is bit-identical to a
//! sequential scan *and* across reruns for any `(threads, batch_size)`.
//!
//! Wall-clock timings per batch are recorded under `wall/serving/*`
//! (excluded from canonical documents); structural counts under
//! `sim/serving/*` (deterministic, canonical).

use std::time::Instant;

use dimboost_data::Dataset;
use dimboost_simnet::MetricsRegistry;

use crate::compiled::CompiledModel;

/// Tuning knobs for the scoring engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum worker threads.
    pub threads: usize,
    /// Rows per batch.
    pub batch_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            batch_size: 1024,
        }
    }
}

/// What each output slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreKind {
    /// Per-class raw additive scores, row-major (`rows × num_classes`).
    Raw,
    /// One transformed prediction per row (see [`CompiledModel::predict`]).
    Transformed,
}

/// Raw per-class scores for every row, row-major (`rows × num_classes`).
pub fn score_raw(model: &CompiledModel, data: &Dataset, config: &EngineConfig) -> Vec<f32> {
    score(model, data, config, ScoreKind::Raw, None)
}

/// Transformed predictions for every row (length `rows`).
pub fn score_transformed(model: &CompiledModel, data: &Dataset, config: &EngineConfig) -> Vec<f32> {
    score(model, data, config, ScoreKind::Transformed, None)
}

/// Scores `data` and records serving metrics into `registry`.
pub fn score_with_metrics(
    model: &CompiledModel,
    data: &Dataset,
    config: &EngineConfig,
    kind: ScoreKind,
    registry: &mut MetricsRegistry,
) -> Vec<f32> {
    score(model, data, config, kind, Some(registry))
}

fn score(
    model: &CompiledModel,
    data: &Dataset,
    config: &EngineConfig,
    kind: ScoreKind,
    registry: Option<&mut MetricsRegistry>,
) -> Vec<f32> {
    assert!(config.batch_size > 0, "batch_size must be positive");
    assert!(config.threads > 0, "threads must be positive");

    let rows = data.num_rows();
    let width = match kind {
        ScoreKind::Raw => model.num_classes(),
        ScoreKind::Transformed => 1,
    };
    let num_batches = rows.div_ceil(config.batch_size);
    let threads = config.threads.min(num_batches.max(1));

    // Scores one batch into `buf` (length `(hi - lo) * width`).
    let fill = |lo: usize, hi: usize, buf: &mut [f32]| {
        for r in lo..hi {
            let row = data.row(r);
            let out = &mut buf[(r - lo) * width..(r - lo + 1) * width];
            match kind {
                ScoreKind::Raw => model.score_into(&row, out),
                ScoreKind::Transformed => out[0] = model.predict(&row),
            }
        }
    };

    let mut out = vec![0.0f32; rows * width];
    // (batch rows, wall seconds) per batch, in ascending batch order.
    let mut batch_stats: Vec<(usize, f64)> = Vec::with_capacity(num_batches);

    if threads <= 1 {
        for b in 0..num_batches {
            let lo = b * config.batch_size;
            let hi = (lo + config.batch_size).min(rows);
            let start = Instant::now();
            fill(lo, hi, &mut out[lo * width..hi * width]);
            batch_stats.push((hi - lo, start.elapsed().as_secs_f64()));
        }
    } else {
        // Static striping: stripe t owns batches t, t+threads, … Each owner
        // pushes its batches in ascending order, so batch b sits at slot
        // b / threads of owner b % threads — a fixed, scheduling-free map.
        // Stripes run on the shared persistent pool (`dimboost_core::pool`):
        // no per-call thread spawns on the serving hot path.
        let per_thread: Vec<Vec<(Vec<f32>, f64)>> =
            dimboost_core::pool::global().run(threads, |t| {
                let mut done = Vec::new();
                let mut b = t;
                while b < num_batches {
                    let lo = b * config.batch_size;
                    let hi = (lo + config.batch_size).min(rows);
                    let mut buf = vec![0.0f32; (hi - lo) * width];
                    let start = Instant::now();
                    fill(lo, hi, &mut buf);
                    done.push((buf, start.elapsed().as_secs_f64()));
                    b += threads;
                }
                done
            });
        for b in 0..num_batches {
            let lo = b * config.batch_size;
            let hi = (lo + config.batch_size).min(rows);
            let (buf, secs) = &per_thread[b % threads][b / threads];
            out[lo * width..hi * width].copy_from_slice(buf);
            batch_stats.push((hi - lo, *secs));
        }
    }

    if let Some(reg) = registry {
        reg.counter_add("sim/serving/rows", rows as u64);
        reg.counter_add("sim/serving/batches", num_batches as u64);
        reg.gauge_set("sim/serving/threads", threads as f64);
        for &(batch_rows, secs) in &batch_stats {
            reg.observe("sim/serving/batch_rows", batch_rows as f64);
            reg.observe("wall/serving/batch_secs", secs);
            if batch_rows > 0 {
                reg.observe("wall/serving/row_secs", secs / batch_rows as f64);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_core::{train_single_machine, GbdtConfig, LossKind};
    use dimboost_data::synthetic::{generate, SparseGenConfig};

    fn trained(loss: LossKind) -> (CompiledModel, Dataset) {
        let mut gen = SparseGenConfig::new(300, 40, 8, 11);
        if let LossKind::Softmax { classes } = loss {
            gen.label_kind = dimboost_data::synthetic::LabelKind::Multiclass { classes };
        }
        let ds = generate(&gen);
        let cfg = GbdtConfig {
            num_trees: 4,
            max_depth: 3,
            loss,
            ..GbdtConfig::default()
        };
        let model = train_single_machine(&ds, &cfg).unwrap();
        (CompiledModel::compile(&model), ds)
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (c, ds) = trained(LossKind::Logistic);
        let seq = score_raw(
            &c,
            &ds,
            &EngineConfig {
                threads: 1,
                batch_size: ds.num_rows(),
            },
        );
        for threads in [2, 4, 8] {
            for batch_size in [7, 64, 1000] {
                let cfg = EngineConfig {
                    threads,
                    batch_size,
                };
                // Per-row scoring has no cross-row accumulation, so the
                // parallel result is bit-equal, not merely close.
                assert_eq!(score_raw(&c, &ds, &cfg), seq, "t={threads} b={batch_size}");
            }
        }
    }

    #[test]
    fn repeat_runs_bit_identical_with_metrics() {
        let (c, ds) = trained(LossKind::Softmax { classes: 3 });
        let cfg = EngineConfig {
            threads: 4,
            batch_size: 32,
        };
        let mut reg = MetricsRegistry::new();
        let first = score_with_metrics(&c, &ds, &cfg, ScoreKind::Transformed, &mut reg);
        assert_eq!(first.len(), ds.num_rows());
        for _ in 0..10 {
            let mut reg = MetricsRegistry::new();
            let again = score_with_metrics(&c, &ds, &cfg, ScoreKind::Transformed, &mut reg);
            assert_eq!(again, first);
        }
        // Deterministic serving metrics are present and structural.
        match reg.get("sim/serving/rows") {
            Some(dimboost_simnet::Metric::Counter(v)) => assert_eq!(*v, 300),
            other => panic!("unexpected {other:?}"),
        }
        match reg.get("sim/serving/batches") {
            Some(dimboost_simnet::Metric::Counter(v)) => assert_eq!(*v, 10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn raw_width_is_num_classes() {
        let (c, ds) = trained(LossKind::Softmax { classes: 3 });
        let cfg = EngineConfig::default();
        assert_eq!(score_raw(&c, &ds, &cfg).len(), ds.num_rows() * 3);
        assert_eq!(score_transformed(&c, &ds, &cfg).len(), ds.num_rows());
    }

    #[test]
    fn empty_dataset_scores_empty() {
        let (c, _) = trained(LossKind::Square);
        let empty = Dataset::empty(40);
        assert!(score_raw(&c, &empty, &EngineConfig::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn rejects_zero_batch_size() {
        let (c, ds) = trained(LossKind::Square);
        let cfg = EngineConfig {
            threads: 2,
            batch_size: 0,
        };
        score_raw(&c, &ds, &cfg);
    }
}
