//! LightGBM's *feature-parallel* mode (Section 2.3).
//!
//! The training data is partitioned by **columns**: every worker holds the
//! whole dataset (the paper's critique — "impractical for many large-scale
//! datasets") but builds histograms and finds splits only for its own
//! feature slice. No histogram ever crosses the network; per tree node the
//! workers exchange only their O(1)-sized local winners. Communication is
//! therefore tiny while computation and memory are what suffer — the
//! opposite trade-off to the data-parallel systems, and the reason this
//! mode only wins on small datasets with many features per worker.

use std::time::Instant;

use dimboost_core::hist_build::build_row;
use dimboost_core::loss::loss_for;
use dimboost_core::{FeatureMeta, GbdtConfig, GbdtModel, LossPoint, NodeIndex, RunBreakdown, Tree};
use dimboost_data::Dataset;
use dimboost_ps::split::{best_split_in_range, FinalSplit};
use dimboost_simnet::collectives::partition_ranges;
use dimboost_simnet::{CommStats, CostModel, SimTime};
use dimboost_sketch::{propose_candidates, GkSketch, SplitCandidates};

use crate::BaselineOutput;

/// Trains with column-partitioned workers. Unlike the data-parallel
/// trainers this takes the *whole* dataset once — every worker reads all of
/// it, which is exactly the memory cost the paper criticizes.
pub fn train_lightgbm_feature_parallel(
    dataset: &Dataset,
    num_workers: usize,
    config: &GbdtConfig,
    cost: CostModel,
) -> Result<BaselineOutput, String> {
    config.validate()?;
    if num_workers == 0 {
        return Err("need at least one worker".into());
    }
    if dataset.num_rows() == 0 {
        return Err("cannot train on zero instances".into());
    }
    let m = dataset.num_features();
    let n = dataset.num_rows();
    let loss = loss_for(config.loss);
    let params = config.split_params();
    let mut comm = CommStats::new();
    let mut compute_secs = 0.0f64;

    // Feature slices per worker.
    let slices = partition_ranges(m, num_workers);

    // Candidates: each worker sketches only its own columns over the full
    // data — fully local, zero communication.
    let mut candidates: Vec<SplitCandidates> = Vec::with_capacity(m);
    {
        let mut max = 0.0f64;
        let mut per_worker: Vec<Vec<SplitCandidates>> = Vec::with_capacity(num_workers);
        for slice in &slices {
            let start = Instant::now();
            let mut sketches: Vec<GkSketch> = slice
                .clone()
                .map(|_| GkSketch::new(config.sketch_eps))
                .collect();
            for (row, _) in dataset.iter_rows() {
                let lo = row
                    .indices()
                    .partition_point(|&f| (f as usize) < slice.start);
                let hi = row.indices().partition_point(|&f| (f as usize) < slice.end);
                for k in lo..hi {
                    let f = row.indices()[k] as usize - slice.start;
                    sketches[f].insert(row.values()[k]);
                }
            }
            per_worker.push(
                sketches
                    .iter_mut()
                    .map(|s| propose_candidates(s, config.num_candidates))
                    .collect(),
            );
            max = max.max(start.elapsed().as_secs_f64());
        }
        compute_secs += max;
        for cands in per_worker {
            candidates.extend(cands);
        }
    }

    // Per-worker feature metadata (the sampled subset intersected with the
    // worker's slice); plus a global meta for bookkeeping.
    let mut preds = vec![0.0f32; n];
    let mut trees = Vec::with_capacity(config.num_trees);
    let mut loss_curve = Vec::with_capacity(config.num_trees);

    for t in 0..config.num_trees {
        let sampled = FeatureMeta::sample_features(m, config.feature_sample_ratio, config.seed, t);
        let worker_metas: Vec<FeatureMeta> = slices
            .iter()
            .map(|slice| {
                let own: Vec<u32> = sampled
                    .iter()
                    .copied()
                    .filter(|&f| slice.contains(&(f as usize)))
                    .collect();
                FeatureMeta::new(own, &candidates)
            })
            .collect();

        let mut tree = Tree::new(config.max_depth);
        let capacity = tree.capacity();
        // All workers hold the full data, so the index is shared state.
        let mut index = NodeIndex::new(n, capacity);
        let grads: Vec<_> = (0..n)
            .map(|i| loss.grad(preds[i], dataset.label(i)))
            .collect();

        let mut active: Vec<u32> = vec![0];
        for depth in 0..config.max_depth {
            if active.is_empty() {
                break;
            }
            let mut decisions = Vec::with_capacity(active.len());
            for &node in &active {
                // Each worker scans its own columns (timed; the layer's wall
                // time is the slowest worker).
                let mut best: Option<(usize, dimboost_ps::NodeSplit)> = None;
                let mut totals = (0.0f64, 0.0f64);
                let mut max = 0.0f64;
                for (wk, meta) in worker_metas.iter().enumerate() {
                    let start = Instant::now();
                    if meta.num_sampled() == 0 {
                        continue;
                    }
                    let row = build_row(dataset, index.instances(node), &grads, meta, true);
                    let res = best_split_in_range(
                        &row,
                        meta.layout(),
                        0..meta.num_sampled(),
                        None,
                        &params,
                    );
                    totals = (res.total_g, res.total_h);
                    if let Some(s) = res.best {
                        let better = match &best {
                            None => true,
                            Some((_, cur)) => s.gain > cur.gain,
                        };
                        if better {
                            best = Some((wk, s));
                        }
                    }
                    max = max.max(start.elapsed().as_secs_f64());
                }
                compute_secs += max;
                // Winner exchange: every worker ships one O(1) candidate.
                if num_workers > 1 {
                    comm.record(
                        64 * num_workers as u64,
                        num_workers as u64,
                        SimTime(cost.alpha + 64.0 * num_workers as f64 * cost.beta),
                    );
                }
                let split = best.map(|(wk, s)| FinalSplit {
                    feature: worker_metas[wk].global_id(s.feature as usize),
                    threshold: worker_metas[wk].threshold(s.feature as usize, s.bucket as usize),
                    gain: s.gain,
                    left_g: s.left_g,
                    left_h: s.left_h,
                    default_left: s.default_left,
                });
                decisions.push((node, split, totals.0, totals.1));
            }

            let mut next_active = Vec::new();
            for &(node, split, total_g, total_h) in &decisions {
                match split {
                    Some(split) => {
                        tree.set_internal_full(
                            node,
                            split.feature,
                            split.threshold,
                            split.gain as f32,
                            split.default_left,
                        );
                        let (lc, rc) = (Tree::left_child(node), Tree::right_child(node));
                        index.split(node, lc, rc, |i| {
                            split.goes_left(dataset.row(i as usize).get(split.feature))
                        });
                        if depth + 1 < config.max_depth {
                            next_active.push(lc);
                            next_active.push(rc);
                        } else {
                            tree.set_leaf(
                                lc,
                                params.leaf_weight(split.left_g, split.left_h) as f32,
                            );
                            tree.set_leaf(
                                rc,
                                params.leaf_weight(total_g - split.left_g, total_h - split.left_h)
                                    as f32,
                            );
                        }
                    }
                    None => tree.set_leaf(node, params.leaf_weight(total_g, total_h) as f32),
                }
            }
            active = next_active;
        }

        let eta = config.learning_rate;
        let start = Instant::now();
        for leaf in 0..capacity as u32 {
            if let dimboost_core::Node::Leaf { weight } = tree.node(leaf) {
                for &i in index.instances(leaf) {
                    preds[i as usize] += eta * weight;
                }
            }
        }
        let train_loss = (0..n)
            .map(|i| loss.loss(preds[i], dataset.label(i)))
            .sum::<f64>()
            / n as f64;
        compute_secs += start.elapsed().as_secs_f64();

        trees.push(tree);
        loss_curve.push(LossPoint {
            tree: t + 1,
            train_loss,
            elapsed_secs: compute_secs + comm.sim_time.seconds(),
        });
    }

    let model = GbdtModel::new(trees, config.learning_rate, config.loss, m);
    model.check_consistency()?;
    Ok(BaselineOutput {
        model,
        breakdown: RunBreakdown { compute_secs, comm },
        loss_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_core::metrics::classification_error;
    use dimboost_data::partition::train_test_split;
    use dimboost_data::synthetic::{generate, SparseGenConfig};

    fn config() -> GbdtConfig {
        GbdtConfig {
            num_trees: 4,
            max_depth: 3,
            num_candidates: 8,
            learning_rate: 0.3,
            ..GbdtConfig::default()
        }
    }

    #[test]
    fn feature_parallel_learns() {
        let ds = generate(&SparseGenConfig::new(2_000, 100, 10, 31));
        let (train, test) = train_test_split(&ds, 0.2, 31).unwrap();
        let out =
            train_lightgbm_feature_parallel(&train, 4, &config(), CostModel::GIGABIT_LAN).unwrap();
        let err = classification_error(&out.model.predict_dataset(&test), test.labels());
        assert!(err < 0.42, "error {err}");
    }

    #[test]
    fn feature_parallel_matches_single_worker() {
        // With one worker this is just sequential training; more workers
        // must grow the same trees (feature slices only partition the scan).
        let ds = generate(&SparseGenConfig::new(1_000, 60, 8, 17));
        let cfg = config();
        let one = train_lightgbm_feature_parallel(&ds, 1, &cfg, CostModel::FREE).unwrap();
        let four = train_lightgbm_feature_parallel(&ds, 4, &cfg, CostModel::FREE).unwrap();
        // Node totals are re-derived from each worker's first local feature,
        // so leaf weights can differ in the last float bits — compare
        // predictions, not bit-identical trees.
        let pa = one.model.predict_dataset(&ds);
        let pb = four.model.predict_dataset(&ds);
        for (a, b) in pa.iter().zip(&pb) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn feature_parallel_moves_almost_no_bytes() {
        let ds = generate(&SparseGenConfig::new(1_000, 200, 10, 13));
        let out =
            train_lightgbm_feature_parallel(&ds, 4, &config(), CostModel::GIGABIT_LAN).unwrap();
        // Only winner exchanges: well under a megabyte.
        assert!(
            out.breakdown.comm.bytes < 1 << 20,
            "{} bytes",
            out.breakdown.comm.bytes
        );
        assert!(out.breakdown.comm.bytes > 0);
    }

    #[test]
    fn rejects_bad_input() {
        let ds = generate(&SparseGenConfig::new(10, 5, 2, 1));
        assert!(train_lightgbm_feature_parallel(&ds, 0, &config(), CostModel::FREE).is_err());
        let empty = Dataset::empty(5);
        assert!(train_lightgbm_feature_parallel(&empty, 2, &config(), CostModel::FREE).is_err());
    }
}
