//! Baseline distributed GBDT trainers (Section 2.3 of the paper).
//!
//! The paper compares DimBoost against four systems. Rather than wrapping
//! the real binaries (unavailable in this environment, and coupled to
//! Yarn/HDFS deployments), this crate reimplements each system's **model
//! aggregation strategy** and **dense histogram construction** on the same
//! GBDT kernel DimBoost uses, so end-to-end comparisons isolate exactly the
//! axes the paper analyses:
//!
//! * [`BaselineKind::Mllib`] — MapReduce-style all-to-one reduce: the
//!   statistics of each tree node are collected on one designated worker
//!   (`reduceByKey`), which chooses the split.
//! * [`BaselineKind::Xgboost`] — binomial-tree AllReduce: local histograms
//!   are merged bottom-up over `log w` non-overlapping steps; every worker
//!   ends with the global histogram.
//! * [`BaselineKind::Lightgbm`] — recursive-halving ReduceScatter: each
//!   worker ends up owning `1/w` of the merged histogram and finds splits
//!   for its own features; non-power-of-two worker counts pay double.
//! * [`train_tencentboost`] — TencentBoost: the parameter-server
//!   architecture *without* DimBoost's optimizations (no sparsity-aware
//!   construction, no low precision, no two-phase split, no scheduler) —
//!   which is precisely `dimboost_core::train_distributed` with
//!   [`dimboost_core::Optimizations::NONE`].
//!
//! All baselines build histograms with the traditional dense enumeration
//! (the paper observes existing systems "implicitly assume that the dataset
//! is dense during histogram construction") and without DimBoost's
//! parallel-batch scheme.

mod driver;
mod feature_parallel;

pub use driver::{train_baseline, train_tencentboost, BaselineKind, BaselineOutput};
pub use feature_parallel::train_lightgbm_feature_parallel;
