use std::time::Instant;

use dimboost_core::hist_build::build_row;
use dimboost_core::loss::{loss_for, GradPair};
use dimboost_core::{
    FeatureMeta, GbdtConfig, GbdtModel, LossPoint, NodeIndex, Optimizations, RunBreakdown, Tree,
};
use dimboost_data::Dataset;
use dimboost_ps::split::{best_split_in_range, FinalSplit};
use dimboost_ps::PsConfig;
use dimboost_simnet::collectives::{allreduce_binomial, reduce_scatter_halving, reduce_to_one};
use dimboost_simnet::{CommStats, CostModel, SimTime};
use dimboost_sketch::{propose_candidates, GkSketch, SplitCandidates};

/// Which baseline aggregation strategy to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Spark MLlib: all-to-one reduce per tree node.
    Mllib,
    /// XGBoost: binomial-tree AllReduce.
    Xgboost,
    /// LightGBM (data-parallel): recursive-halving ReduceScatter.
    Lightgbm,
}

impl BaselineKind {
    /// Human-readable system name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::Mllib => "MLlib",
            BaselineKind::Xgboost => "XGBoost",
            BaselineKind::Lightgbm => "LightGBM",
        }
    }
}

/// Output of a baseline run — same shape as the DimBoost trainer's so the
/// benchmark harness can tabulate them side by side.
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    /// The trained ensemble.
    pub model: GbdtModel,
    /// Compute (wall, max-across-workers) + communication (simulated).
    pub breakdown: RunBreakdown,
    /// Per-tree training loss.
    pub loss_curve: Vec<LossPoint>,
}

/// Runs one collective aggregation of per-worker rows, returning the merged
/// row and absorbing the collective's cost into `stats`.
fn aggregate(
    kind: BaselineKind,
    buffers: &[Vec<f32>],
    root: usize,
    cost: &CostModel,
    stats: &mut CommStats,
) -> Vec<f32> {
    match kind {
        BaselineKind::Mllib => {
            let (row, s) = reduce_to_one(buffers, root, cost);
            stats.absorb(&s);
            row
        }
        BaselineKind::Xgboost => {
            let (row, s) = allreduce_binomial(buffers, cost);
            stats.absorb(&s);
            row
        }
        BaselineKind::Lightgbm => {
            let (scattered, s) = reduce_scatter_halving(buffers, cost);
            stats.absorb(&s);
            // Each owner scans its own features; the winners are exchanged
            // in O(1)-sized messages (charged below by the caller). For the
            // data path the assembled row is equivalent.
            scattered.assemble()
        }
    }
}

/// Trains a GBDT model with a baseline system's aggregation strategy and
/// dense histogram construction. Deterministic in `(config.seed, shards)`.
pub fn train_baseline(
    kind: BaselineKind,
    shards: &[Dataset],
    config: &GbdtConfig,
    cost: CostModel,
) -> Result<BaselineOutput, String> {
    config.validate()?;
    if shards.is_empty() {
        return Err("need at least one worker shard".into());
    }
    let num_features = shards[0].num_features();
    if shards.iter().any(|s| s.num_features() != num_features) {
        return Err("all shards must share the same dimensionality".into());
    }
    let total_instances: usize = shards.iter().map(|s| s.num_rows()).sum();
    if total_instances == 0 {
        return Err("cannot train on zero instances".into());
    }

    let w = shards.len();
    let loss = loss_for(config.loss);
    let params = config.split_params();
    let mut comm = CommStats::new();
    let mut compute_secs = 0.0f64;

    // ---- Quantile sketches, aggregated with the system's own collective. --
    let mut sketch_sets: Vec<Vec<GkSketch>> = Vec::with_capacity(w);
    {
        let mut max = 0.0f64;
        let eps = config.sketch_eps / ((w as f64).log2() + 2.0).max(2.0);
        for shard in shards {
            let start = Instant::now();
            let mut sketches: Vec<GkSketch> =
                (0..num_features).map(|_| GkSketch::new(eps)).collect();
            for (row, _) in shard.iter_rows() {
                for (f, v) in row.iter() {
                    sketches[f as usize].insert(v);
                }
            }
            for s in &mut sketches {
                s.flush();
            }
            max = max.max(start.elapsed().as_secs_f64());
            sketch_sets.push(sketches);
        }
        compute_secs += max;
    }
    let mut sketch_bytes = 0usize;
    let mut merged: Vec<GkSketch> = Vec::new();
    for (f, _) in (0..num_features).enumerate() {
        let per_feature: Vec<GkSketch> = sketch_sets
            .iter_mut()
            .map(|set| std::mem::replace(&mut set[f], GkSketch::new(0.1)))
            .collect();
        let mut m = GkSketch::merge_all(per_feature).expect("w >= 1 sketches");
        sketch_bytes += m.wire_bytes();
        merged.push(m);
    }
    if w > 1 {
        let t = match kind {
            BaselineKind::Mllib => cost.t_reduce_to_one(sketch_bytes, w),
            BaselineKind::Xgboost => cost.t_allreduce_binomial(sketch_bytes, w),
            BaselineKind::Lightgbm => cost.t_reduce_scatter(sketch_bytes, w),
        };
        comm.record(sketch_bytes as u64, w as u64, t);
    }
    let candidates: Vec<SplitCandidates> = merged
        .iter_mut()
        .map(|s| propose_candidates(s, config.num_candidates))
        .collect();

    // ---- Per-worker state. -------------------------------------------------
    let mut preds: Vec<Vec<f32>> = shards.iter().map(|s| vec![0.0; s.num_rows()]).collect();
    let mut trees = Vec::with_capacity(config.num_trees);
    let mut loss_curve = Vec::with_capacity(config.num_trees);

    for t in 0..config.num_trees {
        let sampled =
            FeatureMeta::sample_features(num_features, config.feature_sample_ratio, config.seed, t);
        let meta = FeatureMeta::new(sampled, &candidates);
        let mut tree = Tree::new(config.max_depth);
        let capacity = tree.capacity();

        // Gradients + node index per worker.
        let mut grads: Vec<Vec<GradPair>> = Vec::with_capacity(w);
        let mut indices: Vec<NodeIndex> = Vec::with_capacity(w);
        {
            let mut max = 0.0f64;
            for (shard, pred) in shards.iter().zip(&preds) {
                let start = Instant::now();
                grads.push(
                    (0..shard.num_rows())
                        .map(|i| loss.grad(pred[i], shard.label(i)))
                        .collect(),
                );
                indices.push(NodeIndex::new(shard.num_rows(), capacity));
                max = max.max(start.elapsed().as_secs_f64());
            }
            compute_secs += max;
        }

        let mut active: Vec<u32> = vec![0];
        for depth in 0..config.max_depth {
            if active.is_empty() {
                break;
            }

            // Dense histogram construction on every worker (timed, max).
            let mut per_worker_rows: Vec<Vec<Vec<f32>>> = Vec::with_capacity(w);
            let mut max = 0.0f64;
            for wk in 0..w {
                let start = Instant::now();
                let rows: Vec<Vec<f32>> = active
                    .iter()
                    .map(|&node| {
                        build_row(
                            &shards[wk],
                            indices[wk].instances(node),
                            &grads[wk],
                            &meta,
                            false, // baselines: traditional dense pass
                        )
                    })
                    .collect();
                max = max.max(start.elapsed().as_secs_f64());
                per_worker_rows.push(rows);
            }
            compute_secs += max;

            // Aggregate per node with the system's collective and find the
            // split on the responsible worker(s).
            let scan_start = Instant::now();
            let mut decisions: Vec<(u32, Option<FinalSplit>, f64, f64)> =
                Vec::with_capacity(active.len());
            for (pos, &node) in active.iter().enumerate() {
                let buffers: Vec<Vec<f32>> = per_worker_rows
                    .iter()
                    .map(|rows| rows[pos].clone())
                    .collect();
                let merged_row = aggregate(kind, &buffers, pos % w, &cost, &mut comm);
                let res = best_split_in_range(
                    &merged_row,
                    meta.layout(),
                    0..meta.num_sampled(),
                    None,
                    &params,
                );
                // Winner exchange / model broadcast: O(1) messages.
                if w > 1 {
                    comm.record(64, w as u64, SimTime(cost.alpha + 64.0 * cost.beta));
                }
                let split = res.best.map(|s| FinalSplit {
                    feature: meta.global_id(s.feature as usize),
                    threshold: meta.threshold(s.feature as usize, s.bucket as usize),
                    gain: s.gain,
                    left_g: s.left_g,
                    left_h: s.left_h,
                    default_left: s.default_left,
                });
                decisions.push((node, split, res.total_g, res.total_h));
            }
            compute_secs += scan_start.elapsed().as_secs_f64();

            // SPLIT_TREE, identical logic to the DimBoost trainer.
            let mut next_active = Vec::new();
            for &(node, split, total_g, total_h) in &decisions {
                match split {
                    Some(split) => {
                        tree.set_internal_full(
                            node,
                            split.feature,
                            split.threshold,
                            split.gain as f32,
                            split.default_left,
                        );
                        let (lc, rc) = (Tree::left_child(node), Tree::right_child(node));
                        for (shard, index) in shards.iter().zip(indices.iter_mut()) {
                            index.split(node, lc, rc, |i| {
                                split.goes_left(shard.row(i as usize).get(split.feature))
                            });
                        }
                        if depth + 1 < config.max_depth {
                            next_active.push(lc);
                            next_active.push(rc);
                        } else {
                            let (gl, hl) = (split.left_g, split.left_h);
                            tree.set_leaf(lc, params.leaf_weight(gl, hl) as f32);
                            tree.set_leaf(
                                rc,
                                params.leaf_weight(total_g - gl, total_h - hl) as f32,
                            );
                        }
                    }
                    None => {
                        tree.set_leaf(node, params.leaf_weight(total_g, total_h) as f32);
                    }
                }
            }
            active = next_active;
        }

        // Prediction update + training loss.
        let eta = config.learning_rate;
        let mut total_loss = 0.0f64;
        {
            let mut max = 0.0f64;
            for wk in 0..w {
                let start = Instant::now();
                let shard = &shards[wk];
                for leaf in 0..capacity as u32 {
                    if let dimboost_core::Node::Leaf { weight } = tree.node(leaf) {
                        for &i in indices[wk].instances(leaf) {
                            preds[wk][i as usize] += eta * weight;
                        }
                    }
                }
                total_loss += (0..shard.num_rows())
                    .map(|i| loss.loss(preds[wk][i], shard.label(i)))
                    .sum::<f64>();
                max = max.max(start.elapsed().as_secs_f64());
            }
            compute_secs += max;
        }
        if w > 1 {
            comm.record(
                8 * w as u64,
                w as u64,
                SimTime(cost.alpha + 8.0 * w as f64 * cost.beta),
            );
        }

        trees.push(tree);
        loss_curve.push(LossPoint {
            tree: t + 1,
            train_loss: total_loss / total_instances as f64,
            elapsed_secs: compute_secs + comm.sim_time.seconds(),
        });
    }

    let model = GbdtModel::new(trees, config.learning_rate, config.loss, num_features);
    model.check_consistency()?;
    Ok(BaselineOutput {
        model,
        breakdown: RunBreakdown { compute_secs, comm },
        loss_curve,
    })
}

/// TencentBoost: the parameter-server architecture without DimBoost's
/// optimizations — exactly the core trainer with [`Optimizations::NONE`]
/// (dense construction, full-precision pushes, whole-histogram pulls, single
/// split-finding agent).
pub fn train_tencentboost(
    shards: &[Dataset],
    config: &GbdtConfig,
    ps_config: PsConfig,
) -> Result<BaselineOutput, String> {
    let mut cfg = config.clone();
    cfg.opts = Optimizations::NONE;
    let out = dimboost_core::train_distributed(shards, &cfg, ps_config)?;
    Ok(BaselineOutput {
        model: out.model,
        breakdown: out.breakdown,
        loss_curve: out.loss_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_core::metrics::classification_error;
    use dimboost_core::train_distributed;
    use dimboost_data::partition::{partition_rows, train_test_split};
    use dimboost_data::synthetic::{generate, SparseGenConfig};

    fn config() -> GbdtConfig {
        GbdtConfig {
            num_trees: 4,
            max_depth: 3,
            num_candidates: 8,
            learning_rate: 0.3,
            num_threads: 2,
            ..GbdtConfig::default()
        }
    }

    fn data() -> (Dataset, Dataset) {
        let ds = generate(&SparseGenConfig::new(2_000, 80, 10, 17));
        train_test_split(&ds, 0.2, 17).unwrap()
    }

    #[test]
    fn all_baselines_learn_the_signal() {
        let (train, test) = data();
        let shards = partition_rows(&train, 3).unwrap();
        for kind in [
            BaselineKind::Mllib,
            BaselineKind::Xgboost,
            BaselineKind::Lightgbm,
        ] {
            let out = train_baseline(kind, &shards, &config(), CostModel::GIGABIT_LAN).unwrap();
            let err = classification_error(&out.model.predict_dataset(&test), test.labels());
            assert!(err < 0.42, "{}: error {err}", kind.name());
            assert!(
                out.breakdown.comm.bytes > 0,
                "{} moved no bytes",
                kind.name()
            );
        }
    }

    #[test]
    fn baselines_produce_identical_models_to_each_other() {
        // All three aggregation strategies compute the same sums, so with
        // identical configs they must grow identical trees (modulo float
        // reduction order, which the assert tolerates by exact equality —
        // failures here would indicate a data-path divergence).
        let (train, _) = data();
        let shards = partition_rows(&train, 4).unwrap();
        let cfg = config();
        let a = train_baseline(BaselineKind::Mllib, &shards, &cfg, CostModel::FREE).unwrap();
        let b = train_baseline(BaselineKind::Xgboost, &shards, &cfg, CostModel::FREE).unwrap();
        let c = train_baseline(BaselineKind::Lightgbm, &shards, &cfg, CostModel::FREE).unwrap();
        let pa = a.model.predict_dataset(&train);
        let pb = b.model.predict_dataset(&train);
        let pc = c.model.predict_dataset(&train);
        let close = |x: &[f32], y: &[f32]| x.iter().zip(y).all(|(u, v)| (u - v).abs() < 1e-3);
        assert!(close(&pa, &pb), "MLlib vs XGBoost models diverge");
        assert!(close(&pa, &pc), "MLlib vs LightGBM models diverge");
    }

    #[test]
    fn tencentboost_matches_unoptimized_dimboost() {
        let (train, _) = data();
        let shards = partition_rows(&train, 2).unwrap();
        let cfg = config();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let tencent = train_tencentboost(&shards, &cfg, ps).unwrap();
        let mut plain = cfg.clone();
        plain.opts = Optimizations::NONE;
        let dim = train_distributed(&shards, &plain, ps).unwrap();
        assert_eq!(tencent.model, dim.model);
    }

    #[test]
    fn baseline_accuracy_close_to_dimboost() {
        let (train, test) = data();
        let shards = partition_rows(&train, 3).unwrap();
        let cfg = config();
        let ps = PsConfig {
            num_servers: 3,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        };
        let dim = train_distributed(&shards, &cfg, ps).unwrap();
        let xgb = train_baseline(BaselineKind::Xgboost, &shards, &cfg, CostModel::FREE).unwrap();
        let err_dim = classification_error(&dim.model.predict_dataset(&test), test.labels());
        let err_xgb = classification_error(&xgb.model.predict_dataset(&test), test.labels());
        assert!(
            (err_dim - err_xgb).abs() < 0.06,
            "DimBoost {err_dim} vs XGBoost-style {err_xgb}"
        );
    }

    #[test]
    fn lightgbm_nonpower_of_two_costs_more_comm_time() {
        let (train, _) = data();
        let cfg = config();
        let shards4 = partition_rows(&train, 4).unwrap();
        let shards5 = partition_rows(&train, 5).unwrap();
        let t4 = train_baseline(
            BaselineKind::Lightgbm,
            &shards4,
            &cfg,
            CostModel::GIGABIT_LAN,
        )
        .unwrap()
        .breakdown
        .comm
        .sim_time
        .seconds();
        let t5 = train_baseline(
            BaselineKind::Lightgbm,
            &shards5,
            &cfg,
            CostModel::GIGABIT_LAN,
        )
        .unwrap()
        .breakdown
        .comm
        .sim_time
        .seconds();
        assert!(
            t5 > 1.5 * t4,
            "w=5 {t5} should pay ~2x the w=4 {t4} comm time"
        );
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(train_baseline(BaselineKind::Mllib, &[], &config(), CostModel::FREE).is_err());
        let empty = Dataset::empty(3);
        assert!(train_baseline(BaselineKind::Mllib, &[empty], &config(), CostModel::FREE).is_err());
    }
}
