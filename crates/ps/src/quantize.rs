//! Low-precision gradient histograms (Section 6.1, Appendix A.1).
//!
//! Before a worker pushes a local histogram to the parameter server, each
//! 32-bit float `q` is encoded as a `d`-bit fixed-point integer relative to
//! the histogram's max-absolute value `c`. Rounding is *stochastic*: the
//! fractional part becomes a Bernoulli coin, so the decoded value is an
//! unbiased estimator of the original (`E[q''] = q`), which is what keeps
//! the expected split gain unchanged (Appendix A.1). With `d = 8` this
//! compresses the histogram 4× with no measurable accuracy loss in the
//! paper's experiments.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::HistogramLayout;

/// A quantized histogram row: the scale `c` plus one `d`-bit code per value.
/// Codes are materialized as `u16` in memory; [`QuantizedHistogram::wire_bytes`]
/// reports the honest on-the-wire size with codes packed at `d` bits each
/// (`⌈len·d/8⌉` bytes — e.g. two codes per byte for `d = 4`, one for
/// `d = 8`), plus the 8-byte scale+length header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedHistogram {
    bits: u8,
    scale: f32,
    codes: Vec<u16>,
}

impl QuantizedHistogram {
    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when no values are encoded.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The bit width `d`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The max-abs scale `c` shipped alongside the codes.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Raw codes (zero-point offset encoding).
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Serialized size in bytes: header (scale + length) plus codes packed
    /// at `d` bits each.
    pub fn wire_bytes(&self) -> usize {
        8 + (self.codes.len() * self.bits as usize).div_ceil(8)
    }

    /// Decodes the full row back to floats.
    pub fn dequantize(&self) -> Vec<f32> {
        self.dequantize_range(0, self.codes.len())
    }

    /// Decodes `codes[start..end]` (the parameter server decodes only the
    /// shard slice it owns).
    pub fn dequantize_range(&self, start: usize, end: usize) -> Vec<f32> {
        let levels = levels(self.bits) as f32;
        let zero = levels as u16;
        self.codes[start..end]
            .iter()
            .map(|&code| (code as i32 - zero as i32) as f32 / levels * self.scale)
            .collect()
    }

    /// Decodes `codes[start..end]` and adds the values into `acc` (the
    /// server-side push UDF: "add received local histograms to the global
    /// one").
    pub fn add_range_into(&self, start: usize, end: usize, acc: &mut [f32]) {
        let levels_f = levels(self.bits) as f32;
        let zero = levels(self.bits) as i32;
        for (a, &code) in acc.iter_mut().zip(&self.codes[start..end]) {
            *a += (code as i32 - zero) as f32 / levels_f * self.scale;
        }
    }
}

/// Number of positive quantization levels for a `d`-bit signed code:
/// `2^(d−1) − 1`.
///
/// Public because the quantized histogram *accumulator*
/// (`dimboost-core::hist_build`) reuses the exact same level count so its
/// fixed-point grid matches the wire quantizer's (DESIGN.md §15).
pub fn levels(bits: u8) -> u32 {
    (1u32 << (bits - 1)) - 1
}

/// Decodes one feature-block slice of codes and adds it into `acc`.
///
/// This is the *single* dequantize-add kernel: both the dense quantized
/// push ([`QuantizedRow::add_features_into`]) and the sparse block frames
/// (`crate::sparse`) funnel through it, so the exact f32 operation sequence
/// — `(code − zero_pt) as f32 / levels · scale`, zero buckets taken verbatim
/// — is identical on both paths. That shared kernel is what makes the
/// sparse wire format bit-identical to the dense one.
///
/// `scales`/`zero_values` are block-relative (2 entries per feature of
/// `features`, G then H); `codes` covers exactly
/// `layout.elem_range(features)`.
pub(crate) fn add_quantized_slice_into(
    bits: u8,
    scales: &[f32],
    zero_values: &[f32],
    codes: &[u16],
    layout: &HistogramLayout,
    features: std::ops::Range<usize>,
    acc: &mut [f32],
) {
    let base = layout.elem_range(features.clone()).start;
    let levels_f = levels(bits) as f32;
    let zero_pt = levels(bits) as i32;
    for f in features.clone() {
        let nb = layout.num_buckets(f);
        let zb = layout.zero_bucket(f);
        for (block, block_start) in [layout.g_index(f, 0), layout.h_index(f, 0)]
            .into_iter()
            .enumerate()
        {
            let block_id = 2 * (f - features.start) + block;
            let scale = scales[block_id];
            for k in 0..nb {
                let idx = block_start + k;
                let v = if k == zb {
                    zero_values[block_id]
                } else {
                    (codes[idx - base] as i32 - zero_pt) as f32 / levels_f * scale
                };
                acc[idx - base] += v;
            }
        }
    }
}

/// Encodes a histogram row with `bits`-bit stochastic fixed-point
/// quantization. `bits` must be in `2..=16` and every value must be finite.
///
/// # Panics
/// Panics on a bit width outside `2..=16`. Debug builds also panic on
/// non-finite input: `f32::max` skips NaN when computing the scale and
/// `NaN as i32 == 0` would otherwise map a NaN gradient silently to the
/// zero-point code (decoding as `0.0`). Release builds keep that laundering
/// behavior (NaN → zero point, `±inf` saturates the scale) for speed — a
/// non-finite gradient is a caller bug, not a data condition.
pub fn quantize<R: Rng + ?Sized>(values: &[f32], bits: u8, rng: &mut R) -> QuantizedHistogram {
    assert!(
        (2..=16).contains(&bits),
        "bit width must be in 2..=16, got {bits}"
    );
    debug_assert!(
        values.iter().all(|v| v.is_finite()),
        "quantize: non-finite histogram value"
    );
    let scale = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let levels_f = levels(bits) as f32;
    let zero = levels(bits) as i32;
    let codes = if scale == 0.0 {
        vec![zero as u16; values.len()]
    } else {
        values
            .iter()
            .map(|&v| {
                let scaled = v / scale * levels_f;
                let floor = scaled.floor();
                let frac = scaled - floor;
                let phi = i32::from(rng.random::<f32>() < frac);
                let code = (floor as i32 + phi + zero).clamp(0, 2 * zero);
                code as u16
            })
            .collect()
    };
    QuantizedHistogram { bits, scale, codes }
}

/// A low-precision histogram **row** with sparsity-aware scaling.
///
/// The paper quantizes "each item q in a histogram" against the histogram's
/// max-abs `c` (Section 6.1). On sparse data one bucket per feature — the
/// *zero bucket* — carries almost the entire gradient mass (Algorithm 2
/// deposits the total gradient sum there), so a single shared scale would
/// round every other bucket to noise. This row encoder therefore applies the
/// paper's scheme at the granularity Algorithm 1 actually defines histograms
/// (`G_mk` and `H_mk` are per-feature arrays): one scale per feature per
/// G/H block, computed **excluding** the zero bucket, whose value ships at
/// full precision. Per feature the overhead is two scales and two zero
/// values (16 bytes), preserving a ~`32/d`-ish compression ratio while
/// keeping the small buckets' signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedRow {
    bits: u8,
    /// Per block (2 per feature: G then H): the quantization scale.
    scales: Vec<f32>,
    /// Per block: the zero bucket's exact value.
    zero_values: Vec<f32>,
    /// One code per row element; zero-bucket positions hold the zero point.
    codes: Vec<u16>,
}

impl QuantizedRow {
    /// Number of encoded row elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the row is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The bit width `d`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Largest per-block max-abs scale `c` in the row — the quantization
    /// step is `c / (2^(d-1) − 1)`, so this bounds the row's absolute
    /// rounding error. Reported in the per-round run telemetry.
    pub fn max_scale(&self) -> f32 {
        self.scales.iter().cloned().fold(0.0, f32::max)
    }

    /// Honest on-the-wire size: codes packed at `d` bits each (zero buckets
    /// omitted) plus per-block scale + exact zero value, plus a small
    /// header.
    pub fn wire_bytes(&self) -> usize {
        let zero_slots = self.zero_values.len(); // one omitted code per block
        let packed_codes = self.codes.len() - zero_slots.min(self.codes.len());
        8 + (packed_codes * self.bits as usize).div_ceil(8)
            + 4 * (self.scales.len() + self.zero_values.len())
    }

    /// Per-block scales (2 per feature: G then H).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Per-block exact zero-bucket values (2 per feature: G then H).
    pub fn zero_values(&self) -> &[f32] {
        &self.zero_values
    }

    /// Raw codes (zero-point offset encoding; zero-bucket slots hold the
    /// zero point and are never decoded).
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Decodes the elements covered by the feature range `features` of
    /// `layout` and adds them into `acc` (which covers exactly that range).
    pub fn add_features_into(
        &self,
        layout: &HistogramLayout,
        features: std::ops::Range<usize>,
        acc: &mut [f32],
    ) {
        let elems = layout.elem_range(features.clone());
        add_quantized_slice_into(
            self.bits,
            &self.scales[2 * features.start..2 * features.end],
            &self.zero_values[2 * features.start..2 * features.end],
            &self.codes[elems],
            layout,
            features,
            acc,
        );
    }

    /// Decodes the full row (test/diagnostic path).
    pub fn dequantize(&self, layout: &HistogramLayout) -> Vec<f32> {
        let mut out = vec![0.0f32; layout.row_len()];
        self.add_features_into(layout, 0..layout.num_features(), &mut out);
        out
    }
}

/// Encodes a histogram row with per-feature-block stochastic quantization
/// (see [`QuantizedRow`]). `row.len()` must equal `layout.row_len()` and
/// every value must be finite.
///
/// # Panics
/// Panics on a bad bit width or length mismatch. Debug builds also panic on
/// non-finite input (same NaN-laundering hazard as [`quantize`]: in release
/// a NaN bucket silently becomes the zero-point code and decodes as `0.0`).
pub fn quantize_row<R: Rng + ?Sized>(
    row: &[f32],
    layout: &HistogramLayout,
    bits: u8,
    rng: &mut R,
) -> QuantizedRow {
    assert!(
        (2..=16).contains(&bits),
        "bit width must be in 2..=16, got {bits}"
    );
    assert_eq!(row.len(), layout.row_len(), "row/layout length mismatch");
    debug_assert!(
        row.iter().all(|v| v.is_finite()),
        "quantize_row: non-finite histogram value"
    );
    let nf = layout.num_features();
    let levels_f = levels(bits) as f32;
    let zero_pt = levels(bits) as i32;
    let max_code = 2 * zero_pt;

    let mut scales = Vec::with_capacity(2 * nf);
    let mut zero_values = Vec::with_capacity(2 * nf);
    let mut codes = vec![zero_pt as u16; row.len()];

    for f in 0..nf {
        let nb = layout.num_buckets(f);
        let zb = layout.zero_bucket(f);
        for block_start in [layout.g_index(f, 0), layout.h_index(f, 0)] {
            // Scale from the non-zero-bucket values only.
            let mut c = 0.0f32;
            for k in 0..nb {
                if k != zb {
                    c = c.max(row[block_start + k].abs());
                }
            }
            scales.push(c);
            zero_values.push(row[block_start + zb]);
            if c > 0.0 {
                for k in 0..nb {
                    if k == zb {
                        continue;
                    }
                    let idx = block_start + k;
                    let scaled = row[idx] / c * levels_f;
                    let floor = scaled.floor();
                    let phi = i32::from(rng.random::<f32>() < scaled - floor);
                    codes[idx] = (floor as i32 + phi + zero_pt).clamp(0, max_code) as u16;
                }
            }
        }
    }
    QuantizedRow {
        bits,
        scales,
        zero_values,
        codes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_error_bounded_by_one_level() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<f32> = (0..1000).map(|i| ((i * 37) % 200) as f32 - 100.0).collect();
        for bits in [2u8, 4, 8, 16] {
            let q = quantize(&values, bits, &mut rng);
            let back = q.dequantize();
            let step = q.scale() / ((1u32 << (bits - 1)) - 1) as f32;
            for (v, b) in values.iter().zip(&back) {
                assert!(
                    (v - b).abs() <= step + 1e-4,
                    "bits={bits} v={v} back={b} step={step}"
                );
            }
        }
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        // Statistical test, but not flaky: the shim RNG pins the generator
        // family, so seed 7 replays the same 20k trials on every platform.
        // Tolerance derivation: each dequantized sample deviates from its
        // value by at most one step with Var ≤ step²/4 (Popoviciu), so the
        // standard error of the mean is ≤ (step/2)/√trials; `5·step/√trials`
        // is a ≥10σ bound. A biased rounder (e.g. round-to-nearest) misses
        // it by orders of magnitude.
        let mut rng = StdRng::seed_from_u64(7);
        let values = vec![0.37f32, -0.61, 0.94, -0.08, 0.5];
        let trials = 20_000;
        let mut sums = vec![0.0f64; values.len()];
        for _ in 0..trials {
            let q = quantize(&values, 4, &mut rng);
            for (s, b) in sums.iter_mut().zip(q.dequantize()) {
                *s += b as f64;
            }
        }
        let step = 0.94 / 7.0; // scale / levels for bits=4
        for (v, s) in values.iter().zip(&sums) {
            let mean = s / trials as f64;
            // Standard error of the mean is ~step/2/sqrt(trials); allow 5 sigma.
            let tol = 5.0 * step / (trials as f64).sqrt();
            assert!(
                (mean - *v as f64).abs() < tol,
                "value {v}: mean {mean} (tol {tol})"
            );
        }
    }

    #[test]
    fn zero_row_stays_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = quantize(&[0.0; 16], 8, &mut rng);
        assert_eq!(q.scale(), 0.0);
        assert!(q.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn wire_bytes_reflect_compression() {
        let mut rng = StdRng::seed_from_u64(3);
        let values = vec![1.0f32; 1000];
        let q8 = quantize(&values, 8, &mut rng);
        let q16 = quantize(&values, 16, &mut rng);
        assert_eq!(q8.wire_bytes(), 8 + 1000);
        assert_eq!(q16.wire_bytes(), 8 + 2000);
        // ~4x smaller than f32 for d=8, matching the paper's 32/d ratio.
        assert!(q8.wire_bytes() * 3 < values.len() * 4);
    }

    #[test]
    fn wire_bytes_pack_at_d_bits() {
        // Satellite regression for the doc/impl mismatch: the formula packs
        // at `d` bits, not whole bytes — bits = 4 fits two codes per byte.
        let mut rng = StdRng::seed_from_u64(11);
        let q4 = quantize(&vec![1.0f32; 1000], 4, &mut rng);
        assert_eq!(q4.wire_bytes(), 8 + 500);
        let q4_odd = quantize(&[1.0f32; 7], 4, &mut rng);
        assert_eq!(q4_odd.wire_bytes(), 8 + 4); // ⌈7·4/8⌉ = 4
        let q2 = quantize(&vec![1.0f32; 1000], 2, &mut rng);
        assert_eq!(q2.wire_bytes(), 8 + 250);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite")]
    fn quantize_rejects_nan_in_debug() {
        let mut rng = StdRng::seed_from_u64(0);
        quantize(&[1.0, f32::NAN, 2.0], 8, &mut rng);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite")]
    fn quantize_rejects_infinity_in_debug() {
        let mut rng = StdRng::seed_from_u64(0);
        quantize(&[1.0, f32::INFINITY], 8, &mut rng);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite")]
    fn quantize_row_rejects_nan_in_debug() {
        let layout = sparse_layout();
        let mut row = vec![0.0f32; layout.row_len()];
        row[3] = f32::NAN;
        let mut rng = StdRng::seed_from_u64(0);
        quantize_row(&row, &layout, 8, &mut rng);
    }

    #[test]
    fn add_range_into_matches_dequantize() {
        let mut rng = StdRng::seed_from_u64(9);
        let values: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 8.0).collect();
        let q = quantize(&values, 8, &mut rng);
        let mut acc = vec![1.0f32; 16];
        q.add_range_into(8, 24, &mut acc);
        let expected: Vec<f32> = q.dequantize_range(8, 24).iter().map(|v| v + 1.0).collect();
        assert_eq!(acc, expected);
    }

    #[test]
    fn extremes_map_to_extreme_codes() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = quantize(&[-2.0, 0.0, 2.0], 8, &mut rng);
        let back = q.dequantize();
        assert!((back[0] + 2.0).abs() < 1e-5);
        assert!(back[1].abs() < 2.0 / 127.0 + 1e-6);
        assert!((back[2] - 2.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn rejects_bad_bits() {
        let mut rng = StdRng::seed_from_u64(0);
        quantize(&[1.0], 1, &mut rng);
    }

    // ---- QuantizedRow (layout-aware, sparsity-aware scaling) -------------

    fn sparse_layout() -> HistogramLayout {
        // Two features, 4 buckets each, zero bucket at index 1.
        HistogramLayout::with_zero_buckets(vec![4, 4], vec![1, 1])
    }

    /// A row shaped like real sparse-data histograms: the zero bucket holds
    /// ~1000x the mass of the other buckets.
    fn sparse_row(layout: &HistogramLayout) -> Vec<f32> {
        let mut row = vec![0.0f32; layout.row_len()];
        for f in 0..2 {
            for k in 0..4 {
                row[layout.g_index(f, k)] = if k == 1 {
                    -800.0
                } else {
                    0.3 * (k as f32 + 1.0)
                };
                row[layout.h_index(f, k)] = if k == 1 { 2000.0 } else { 0.5 + k as f32 * 0.2 };
            }
        }
        row
    }

    #[test]
    fn row_quantizer_preserves_small_buckets_next_to_huge_zero_bucket() {
        let layout = sparse_layout();
        let row = sparse_row(&layout);
        let mut rng = StdRng::seed_from_u64(2);
        let q = quantize_row(&row, &layout, 8, &mut rng);
        let back = q.dequantize(&layout);
        for f in 0..2 {
            // Zero buckets are exact.
            assert_eq!(back[layout.g_index(f, 1)], row[layout.g_index(f, 1)]);
            assert_eq!(back[layout.h_index(f, 1)], row[layout.h_index(f, 1)]);
            // Non-zero buckets keep ~1% relative accuracy (one step of the
            // per-block scale, which excludes the huge zero bucket).
            for k in [0usize, 2, 3] {
                for idx in [layout.g_index(f, k), layout.h_index(f, k)] {
                    let step = 1.2 / 127.0; // max non-zero magnitude / levels
                    assert!(
                        (back[idx] - row[idx]).abs() <= step + 1e-5,
                        "idx {idx}: {} vs {}",
                        back[idx],
                        row[idx]
                    );
                }
            }
        }
        // The naive whole-row quantizer would have destroyed those buckets:
        let naive = quantize(&row, 8, &mut rng);
        let naive_back = naive.dequantize();
        let idx = layout.g_index(0, 2);
        let naive_err = (naive_back[idx] - row[idx]).abs();
        let row_err = (back[idx] - row[idx]).abs();
        assert!(
            naive_err > 5.0 * row_err.max(1e-4),
            "naive {naive_err} vs row {row_err}"
        );
    }

    #[test]
    fn row_quantizer_partition_decode_matches_full_decode() {
        let layout = HistogramLayout::with_zero_buckets(vec![3, 5, 2, 4], vec![0, 2, 1, 3]);
        let row: Vec<f32> = (0..layout.row_len())
            .map(|i| ((i * 13 % 7) as f32 - 3.0) * if i % 5 == 0 { 100.0 } else { 0.5 })
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let q = quantize_row(&row, &layout, 8, &mut rng);
        let full = q.dequantize(&layout);
        // Decode features [1..3) into a shard-local buffer.
        let elems = layout.elem_range(1..3);
        let mut acc = vec![0.0f32; elems.len()];
        q.add_features_into(&layout, 1..3, &mut acc);
        assert_eq!(acc, &full[elems]);
    }

    #[test]
    fn row_quantizer_wire_bytes_compress() {
        // 100 features x 20 buckets: f32 row = 100*40*4 = 16000 bytes;
        // quantized: 100*(38 codes + 16 bytes meta) + 8 = ~5.4KB (~3x).
        let layout = HistogramLayout::new(vec![20; 100]);
        let row = vec![1.0f32; layout.row_len()];
        let mut rng = StdRng::seed_from_u64(4);
        let q = quantize_row(&row, &layout, 8, &mut rng);
        let f32_bytes = 4 * layout.row_len();
        assert!(
            q.wire_bytes() * 2 < f32_bytes,
            "{} vs {}",
            q.wire_bytes(),
            f32_bytes
        );
    }

    #[test]
    fn row_quantizer_zero_row() {
        let layout = sparse_layout();
        let row = vec![0.0f32; layout.row_len()];
        let mut rng = StdRng::seed_from_u64(5);
        let q = quantize_row(&row, &layout, 8, &mut rng);
        assert!(q.dequantize(&layout).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_quantizer_unbiased() {
        // Deterministic for the same reason as `stochastic_rounding_is_
        // unbiased` (pinned RNG family + fixed seed). The per-block scale
        // here is ≤ 1 after the max-abs values (100, 5) are carved into
        // their own blocks, so step = scale/7 ≤ 1/7 for bits = 4 and
        // `5/7/√trials` is again a ≥10σ standard-error bound.
        let layout = HistogramLayout::with_zero_buckets(vec![3], vec![0]);
        let row = vec![100.0, 0.37, -0.61, 5.0, 0.73, 0.29];
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 20_000;
        let mut sums = vec![0.0f64; row.len()];
        for _ in 0..trials {
            let q = quantize_row(&row, &layout, 4, &mut rng);
            for (s, v) in sums.iter_mut().zip(q.dequantize(&layout)) {
                *s += v as f64;
            }
        }
        for (v, s) in row.iter().zip(&sums) {
            let mean = s / trials as f64;
            let tol = 5.0 / 7.0 / (trials as f64).sqrt() + 1e-9;
            assert!((mean - *v as f64).abs() < tol, "value {v}: mean {mean}");
        }
    }
}
