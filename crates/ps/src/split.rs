//! Server-side split finding — the pull user-defined function of the
//! two-phase split (Section 6.3).
//!
//! Instead of shipping a whole histogram shard to the requesting worker, the
//! server runs Algorithm 1's split scan (lines 10–17) over its shard and
//! returns a single [`NodeSplit`]: "one integer and two floating-point
//! numbers" in the paper's words (here a few more for the child statistics,
//! still O(1) per partition). The worker's second phase is a max over the
//! `p` per-partition winners, which is exact because the set of local optima
//! contains the global optimum.

use serde::{Deserialize, Serialize};

use crate::HistogramLayout;

/// Regularization and stopping parameters of the split objective
/// (Section 2.2): `λ` is the leaf-weight L2 penalty, `γ` the per-leaf
/// complexity cost subtracted from every gain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitParams {
    /// L2 regularization on leaf weights (λ).
    pub lambda: f64,
    /// L1 regularization on leaf weights (α): gradient sums are
    /// soft-thresholded by α before entering the objective and the leaf
    /// weight, shrinking small-signal leaves to exactly zero (XGBoost's
    /// `reg_alpha`; the paper's objective is the α = 0 case).
    pub alpha: f64,
    /// Complexity cost per leaf (γ), subtracted from the raw gain.
    pub gamma: f64,
    /// Minimum sum of Hessians required on *each* side of a split
    /// (XGBoost-style `min_child_weight`).
    pub min_child_weight: f64,
    /// **Extension (not in the paper):** learn a default direction for zero
    /// (absent) feature values — XGBoost's sparsity-aware split finding.
    /// For every candidate threshold the scan evaluates the zero bucket's
    /// mass on both sides and keeps the better placement. Off, zeros simply
    /// follow the threshold comparison (`0 <= threshold`), which is what
    /// Algorithm 1 does.
    pub learn_default_direction: bool,
}

impl Default for SplitParams {
    fn default() -> Self {
        Self {
            lambda: 1.0,
            alpha: 0.0,
            gamma: 0.0,
            min_child_weight: 1e-3,
            learn_default_direction: false,
        }
    }
}

impl SplitParams {
    /// Soft-thresholds a gradient sum by α: `max(0, |G| − α)·sign(G)`.
    #[inline]
    fn shrink(&self, g: f64) -> f64 {
        if self.alpha == 0.0 {
            g
        } else if g > self.alpha {
            g - self.alpha
        } else if g < -self.alpha {
            g + self.alpha
        } else {
            0.0
        }
    }

    /// The optimal leaf objective `T_α(G)² / (H + λ)` for a node with
    /// gradient sums `(g, h)` (`T_α` is the α soft-threshold; identity when
    /// α = 0, the paper's setting).
    pub fn leaf_objective(&self, g: f64, h: f64) -> f64 {
        let g = self.shrink(g);
        g * g / (h + self.lambda)
    }

    /// The optimal leaf weight `−T_α(G) / (H + λ)`.
    pub fn leaf_weight(&self, g: f64, h: f64) -> f64 {
        -self.shrink(g) / (h + self.lambda)
    }

    /// Split gain: `½·(G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)) − γ`.
    pub fn gain(&self, gl: f64, hl: f64, gr: f64, hr: f64) -> f64 {
        0.5 * (self.leaf_objective(gl, hl) + self.leaf_objective(gr, hr)
            - self.leaf_objective(gl + gr, hl + hr))
            - self.gamma
    }
}

/// A candidate split produced by the server-side scan. `feature` indexes the
/// histogram layout (the *sampled* feature space); the worker maps it back
/// to a global feature id and a threshold value using its candidate tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSplit {
    /// Feature index within the layout.
    pub feature: u32,
    /// Split after this bucket: the left child receives buckets `0..=bucket`.
    pub bucket: u32,
    /// Objective gain of the split.
    pub gain: f64,
    /// Sum of first-order gradients in the left child (including the zero
    /// bucket's mass when `default_left`).
    pub left_g: f64,
    /// Sum of second-order gradients in the left child.
    pub left_h: f64,
    /// Where zero (absent) values go. Without default-direction learning
    /// this is simply `0 <= threshold` — the natural placement.
    pub default_left: bool,
}

impl NodeSplit {
    /// Picks the better of two optional candidates (worker-side phase two).
    /// Ties break toward the lower feature index for determinism.
    pub fn better(a: Option<NodeSplit>, b: Option<NodeSplit>) -> Option<NodeSplit> {
        match (a, b) {
            (None, x) => x,
            (x, None) => x,
            (Some(x), Some(y)) => {
                if (y.gain, std::cmp::Reverse((y.feature, y.bucket)))
                    > (x.gain, std::cmp::Reverse((x.feature, x.bucket)))
                {
                    Some(y)
                } else {
                    Some(x)
                }
            }
        }
    }
}

/// Result of a `pull_split` query: the best split found (if any split beats
/// the γ-regularized gain threshold) plus the node's total gradient sums,
/// which the caller needs for leaf weights even when no split survives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PullSplitResult {
    /// Best split across the queried shard(s), `None` if nothing beats zero
    /// gain.
    pub best: Option<NodeSplit>,
    /// Total first-order gradient sum of the node.
    pub total_g: f64,
    /// Total second-order gradient sum of the node.
    pub total_h: f64,
}

/// The final, published decision for one tree node (the `SpFeat`/`SpVal`/
/// `SpGain` parameters of Figure 6, bundled). Pushed by the worker the task
/// scheduler assigned to the node; pulled by everyone in SPLIT_TREE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitDecision {
    /// Tree-node id this decision belongs to.
    pub node: u32,
    /// The split, or `None` when the node becomes a leaf.
    pub split: Option<FinalSplit>,
    /// Node total first-order gradient sum (for the leaf weight).
    pub total_g: f64,
    /// Node total second-order gradient sum.
    pub total_h: f64,
}

/// A fully-resolved split: global feature id and real-valued threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinalSplit {
    /// Global feature index.
    pub feature: u32,
    /// Instances with nonzero `value <= threshold` go left; zeros follow
    /// `default_left`.
    pub threshold: f32,
    /// Objective gain.
    pub gain: f64,
    /// Left-child gradient sums (the right child is derived by subtraction).
    pub left_g: f64,
    /// Left-child Hessian sum.
    pub left_h: f64,
    /// Where zero (absent) values go.
    pub default_left: bool,
}

impl FinalSplit {
    /// Routing predicate: does an instance with `value` on this feature go
    /// to the left child?
    #[inline]
    pub fn goes_left(&self, value: f32) -> bool {
        if value == 0.0 {
            self.default_left
        } else {
            value <= self.threshold
        }
    }
}

/// Scans a histogram shard for the best split (Algorithm 1, lines 10–17).
///
/// * `shard` — the elements of one histogram row covering the contiguous
///   feature range `features`, i.e. `row[layout.elem_range(features)]`.
/// * `totals` — the node's total `(G, H)`. Pass `None` to derive them from
///   the first feature in the shard (every instance lands in exactly one
///   bucket per feature, so any feature's bucket sums add up to the node
///   totals — no extra communication needed).
///
/// Splits at the last bucket are skipped (an empty right child is not a
/// split), and candidates violating `min_child_weight` on either side are
/// rejected. Returns the totals alongside the best split.
pub fn best_split_in_range(
    shard: &[f32],
    layout: &HistogramLayout,
    features: std::ops::Range<usize>,
    totals: Option<(f64, f64)>,
    params: &SplitParams,
) -> PullSplitResult {
    let base = layout.elem_range(features.clone()).start;
    debug_assert_eq!(shard.len(), layout.elem_range(features.clone()).len());

    let (total_g, total_h) = totals.unwrap_or_else(|| {
        let mut g = 0.0f64;
        let mut h = 0.0f64;
        if let Some(f) = features.clone().next() {
            for k in 0..layout.num_buckets(f) {
                g += shard[layout.g_index(f, k) - base] as f64;
                h += shard[layout.h_index(f, k) - base] as f64;
            }
        }
        (g, h)
    });

    let parent_obj = params.leaf_objective(total_g, total_h);
    let mut best: Option<NodeSplit> = None;

    for f in features {
        let nb = layout.num_buckets(f);
        let g_off = layout.g_index(f, 0) - base;
        let h_off = layout.h_index(f, 0) - base;
        let zb = layout.zero_bucket(f);
        let (zero_g, zero_h) = (shard[g_off + zb] as f64, shard[h_off + zb] as f64);
        // Left sums *excluding* the zero bucket, so both placements of the
        // zero mass can be evaluated per candidate.
        let mut gl_excl = 0.0f64;
        let mut hl_excl = 0.0f64;
        // Last bucket excluded: everything on the left is not a split.
        for k in 0..nb.saturating_sub(1) {
            if k != zb {
                gl_excl += shard[g_off + k] as f64;
                hl_excl += shard[h_off + k] as f64;
            }
            // The natural placement follows the threshold comparison
            // (`0 <= splits[k]` exactly when the zero bucket is in the
            // prefix); evaluate it first so ties prefer it.
            let natural_left = zb <= k;
            let placements: &[bool] = if params.learn_default_direction {
                if natural_left {
                    &[true, false]
                } else {
                    &[false, true]
                }
            } else if natural_left {
                &[true]
            } else {
                &[false]
            };
            for &default_left in placements {
                let (gl, hl) = if default_left {
                    (gl_excl + zero_g, hl_excl + zero_h)
                } else {
                    (gl_excl, hl_excl)
                };
                let gr = total_g - gl;
                let hr = total_h - hl;
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (params.leaf_objective(gl, hl) + params.leaf_objective(gr, hr) - parent_obj)
                    - params.gamma;
                if gain > 0.0 {
                    let cand = NodeSplit {
                        feature: f as u32,
                        bucket: k as u32,
                        gain,
                        left_g: gl,
                        left_h: hl,
                        default_left,
                    };
                    best = NodeSplit::better(best, Some(cand));
                }
            }
        }
    }

    PullSplitResult {
        best,
        total_g,
        total_h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a row for a layout with two features of 3 buckets each.
    fn layout2x3() -> HistogramLayout {
        HistogramLayout::new(vec![3, 3])
    }

    #[test]
    fn finds_obvious_split() {
        let layout = layout2x3();
        // Feature 0: G = [-10, 10, 0], H = [5, 5, 1] -> splitting after
        // bucket 0 separates negative from positive gradients.
        // Feature 1: flat, no gain.
        let row = vec![
            -10.0, 10.0, 0.0, 5.0, 5.0, 1.0, // feature 0
            0.0, 0.0, 0.0, 11.0, 0.0, 0.0, // feature 1 (all in bucket 0)
        ];
        let params = SplitParams {
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let res = best_split_in_range(&row, &layout, 0..2, None, &params);
        assert!((res.total_g - 0.0).abs() < 1e-9);
        assert!((res.total_h - 11.0).abs() < 1e-9);
        let best = res.best.expect("should find a split");
        assert_eq!(best.feature, 0);
        assert_eq!(best.bucket, 0);
        assert!((best.left_g + 10.0).abs() < 1e-9);
        assert!((best.left_h - 5.0).abs() < 1e-9);
        // gain = 0.5*(100/6 + 100/7 - 0/12)
        let expected = 0.5 * (100.0 / 6.0 + 100.0 / 7.0);
        assert!((best.gain - expected).abs() < 1e-9, "gain={}", best.gain);
    }

    #[test]
    fn no_split_on_flat_histogram() {
        let layout = layout2x3();
        let row = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let res = best_split_in_range(&row, &layout, 0..2, None, &SplitParams::default());
        assert!(res.best.is_none());
    }

    #[test]
    fn gamma_suppresses_weak_splits() {
        let layout = HistogramLayout::new(vec![2]);
        let row = vec![-1.0, 1.0, 5.0, 5.0];
        let weak = SplitParams {
            lambda: 1.0,
            gamma: 10.0,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let res = best_split_in_range(&row, &layout, 0..1, None, &weak);
        assert!(res.best.is_none());
        let strong = SplitParams {
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        assert!(best_split_in_range(&row, &layout, 0..1, None, &strong)
            .best
            .is_some());
    }

    #[test]
    fn min_child_weight_rejects_thin_children() {
        let layout = HistogramLayout::new(vec![2]);
        // Left child would have H = 0.1.
        let row = vec![-5.0, 5.0, 0.1, 10.0];
        let params = SplitParams {
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            ..SplitParams::default()
        };
        let res = best_split_in_range(&row, &layout, 0..1, None, &params);
        assert!(res.best.is_none());
    }

    #[test]
    fn totals_derived_from_first_feature_match_supplied() {
        let layout = layout2x3();
        let row = vec![
            -3.0, 1.0, 2.0, 2.0, 2.0, 2.0, // feature 0: G sums to 0, H to 6
            -3.0, 3.0, 0.0, 3.0, 3.0, 0.0, // feature 1: same totals
        ];
        let params = SplitParams {
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let derived = best_split_in_range(&row, &layout, 0..2, None, &params);
        let supplied = best_split_in_range(&row, &layout, 0..2, Some((0.0, 6.0)), &params);
        assert_eq!(derived, supplied);
    }

    #[test]
    fn sharded_scan_equals_full_scan() {
        // Two-phase correctness: max over per-shard winners == full winner.
        let layout = HistogramLayout::new(vec![3, 2, 4, 3]);
        let row: Vec<f32> = (0..layout.row_len())
            .map(|i| ((i * 29 % 11) as f32 - 5.0) * if i % 2 == 0 { 1.0 } else { 0.3 })
            .map(|v| v.abs().max(0.1) * if (v as i32) % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        // Make H entries positive: overwrite H blocks with |values| + 0.5.
        let mut row = row;
        for f in 0..4 {
            for k in 0..layout.num_buckets(f) {
                let idx = layout.h_index(f, k);
                row[idx] = row[idx].abs() + 0.5;
            }
        }
        let params = SplitParams {
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let full = best_split_in_range(&row, &layout, 0..4, None, &params);

        // Shard into feature ranges [0..2) and [2..4).
        let totals = Some((full.total_g, full.total_h));
        let s1 = best_split_in_range(
            &row[layout.elem_range(0..2)],
            &layout,
            0..2,
            totals,
            &params,
        );
        let s2 = best_split_in_range(
            &row[layout.elem_range(2..4)],
            &layout,
            2..4,
            totals,
            &params,
        );
        let combined = NodeSplit::better(s1.best, s2.best);
        assert_eq!(combined, full.best);
    }

    #[test]
    fn default_direction_finds_otherwise_unreachable_split() {
        // One feature, boundaries [0, 0.75, 1.5, 3] -> 5 buckets with the
        // zero bucket at index 0. Instance layout (g, h = 1 each):
        //   v = 0.0  -> bucket 0, g = -1   (class 1)
        //   v = 0.5  -> bucket 1, g = +1   (class 0)
        //   v = 1.0  -> bucket 2, g = +1   (class 0)
        //   v = 2.0  -> bucket 3, g = -1   (class 1)
        // No threshold separates {0, 2} from {0.5, 1}: zeros are glued to
        // the left end. Sending zeros right at threshold 1.5 does.
        let layout = HistogramLayout::with_zero_buckets(vec![5], vec![0]);
        let row = vec![
            -1.0, 1.0, 1.0, -1.0, 0.0, // G
            1.0, 1.0, 1.0, 1.0, 0.0, // H
        ];
        let natural = SplitParams {
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let res = best_split_in_range(&row, &layout, 0..1, None, &natural);
        let best_natural = res.best.expect("natural scan finds some split");
        assert!(
            (best_natural.gain - 0.375).abs() < 1e-9,
            "natural gain {}",
            best_natural.gain
        );

        let learned = SplitParams {
            min_child_weight: 0.0,
            learn_default_direction: true,
            ..SplitParams::default()
        };
        let res = best_split_in_range(&row, &layout, 0..1, None, &learned);
        let best = res.best.expect("learned scan finds the strong split");
        assert_eq!(best.bucket, 2, "split after bucket 2 (threshold 1.5)");
        assert!(!best.default_left, "zeros must go right");
        // Left = buckets 1,2 (zeros excluded): GL = 2, HL = 2;
        // gain = ½(4/3 + 4/3 − 0) = 4/3.
        assert!((best.gain - 4.0 / 3.0).abs() < 1e-9, "gain {}", best.gain);
        assert!((best.left_g - 2.0).abs() < 1e-9);
        assert!((best.left_h - 2.0).abs() < 1e-9);
    }

    #[test]
    fn default_direction_off_keeps_natural_placement() {
        // With the flag off, zeros go left exactly when the zero bucket is
        // within the split prefix — the pre-flag behaviour.
        let layout = HistogramLayout::with_zero_buckets(vec![4, 3], vec![1, 0]);
        let mut row: Vec<f32> = (0..layout.row_len())
            .map(|i| ((i * 31 % 13) as f32 - 6.0) * 0.5)
            .collect();
        for f in 0..2 {
            for k in 0..layout.num_buckets(f) {
                let idx = layout.h_index(f, k);
                row[idx] = row[idx].abs() + 0.1;
            }
        }
        let params = SplitParams {
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let res = best_split_in_range(&row, &layout, 0..2, None, &params);
        let s = res.best.expect("some split exists on this histogram");
        let zb = layout.zero_bucket(s.feature as usize) as u32;
        assert_eq!(s.default_left, zb <= s.bucket);
    }

    #[test]
    fn goes_left_routing() {
        let split = FinalSplit {
            feature: 0,
            threshold: 1.5,
            gain: 1.0,
            left_g: 0.0,
            left_h: 1.0,
            default_left: false,
        };
        assert!(split.goes_left(1.0));
        assert!(split.goes_left(-5.0));
        assert!(!split.goes_left(2.0));
        assert!(!split.goes_left(0.0), "zeros follow default_left = false");
        let natural = FinalSplit {
            default_left: true,
            ..split
        };
        assert!(natural.goes_left(0.0));
    }

    #[test]
    fn better_breaks_ties_deterministically() {
        let a = NodeSplit {
            feature: 1,
            bucket: 0,
            gain: 5.0,
            left_g: 0.0,
            left_h: 1.0,
            default_left: true,
        };
        let b = NodeSplit {
            feature: 2,
            bucket: 0,
            gain: 5.0,
            left_g: 0.0,
            left_h: 1.0,
            default_left: true,
        };
        assert_eq!(NodeSplit::better(Some(a), Some(b)), Some(a));
        assert_eq!(NodeSplit::better(Some(b), Some(a)), Some(a));
        assert_eq!(NodeSplit::better(None, Some(b)), Some(b));
        assert_eq!(NodeSplit::better(Some(a), None), Some(a));
        assert_eq!(NodeSplit::better(None, None), None);
    }

    #[test]
    fn l1_regularization_soft_thresholds() {
        let p = SplitParams {
            alpha: 2.0,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        // |G| <= alpha: weight and objective collapse to zero.
        assert_eq!(p.leaf_weight(1.5, 4.0), 0.0);
        assert_eq!(p.leaf_objective(-2.0, 4.0), 0.0);
        // |G| > alpha: shrunk toward zero by alpha.
        assert!((p.leaf_weight(5.0, 4.0) - (-(5.0 - 2.0) / 5.0)).abs() < 1e-12);
        assert!((p.leaf_weight(-5.0, 4.0) - ((5.0 - 2.0) / 5.0)).abs() < 1e-12);
        // alpha = 0 is the paper's objective.
        let plain = SplitParams {
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        assert_eq!(plain.leaf_weight(5.0, 4.0), -1.0);
    }

    #[test]
    fn l1_suppresses_weak_splits() {
        let layout = HistogramLayout::new(vec![3]);
        // Weak signal: G buckets sum to 0 with small per-side sums.
        let row = vec![-1.0, 1.0, 0.0, 3.0, 3.0, 1.0];
        let plain = SplitParams {
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        assert!(best_split_in_range(&row, &layout, 0..1, None, &plain)
            .best
            .is_some());
        let l1 = SplitParams {
            alpha: 1.5,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        assert!(best_split_in_range(&row, &layout, 0..1, None, &l1)
            .best
            .is_none());
    }

    #[test]
    fn gain_formula_matches_paper() {
        let p = SplitParams {
            lambda: 2.0,
            gamma: 1.5,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let (gl, hl, gr, hr) = (3.0, 4.0, -2.0, 5.0);
        let expected = 0.5 * (9.0 / 6.0 + 4.0 / 7.0 - (1.0f64).powi(2) / 11.0) - 1.5;
        assert!((p.gain(gl, hl, gr, hr) - expected).abs() < 1e-12);
        assert!((p.leaf_weight(3.0, 4.0) + 0.5).abs() < 1e-12);
    }
}
