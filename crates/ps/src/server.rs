use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dimboost_simnet::fault::{Fate, FaultSession, MAX_ATTEMPTS};
use dimboost_simnet::wire::{self, SparseWireStats};
use dimboost_simnet::{CommLedger, CommStats, CostModel, Phase, SimTime, StatsRecorder, TraceBus};
use dimboost_sketch::GkSketch;

use crate::quantize::QuantizedRow;
use crate::sparse;
use crate::split::{best_split_in_range, NodeSplit, PullSplitResult, SplitDecision, SplitParams};
use crate::{HistogramLayout, RangeHashPartitioner};

/// Parameter-server deployment configuration.
#[derive(Debug, Clone, Copy)]
pub struct PsConfig {
    /// Number of parameter servers (the paper co-locates one per machine).
    pub num_servers: usize,
    /// Number of vector partitions; `0` means one per server (the paper's
    /// default).
    pub num_partitions: usize,
    /// Cost model used to charge communication time.
    pub cost_model: CostModel,
}

impl Default for PsConfig {
    fn default() -> Self {
        Self {
            num_servers: 1,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        }
    }
}

impl PsConfig {
    /// Effective partition count (resolves the `0 == per server` default).
    pub fn partitions(&self) -> usize {
        if self.num_partitions == 0 {
            self.num_servers
        } else {
            self.num_partitions
        }
    }
}

/// One feature-block partition's histogram storage.
///
/// Dense pushes merge straight into `merged` in arrival order (the classic
/// path). Sparse block pushes land in `staged`, keyed by the data stripe
/// that produced them, and are folded into `merged` in ascending stripe
/// order the first time the partition is read. The fold order is a property
/// of the *keys*, not of message arrival, so the block-keyed merge is
/// order-independent: any interleaving of stripe deliveries yields the same
/// accumulator bits. Because the trainer's dense path pushes stripes in
/// ascending order too, the fold reproduces the dense add sequence exactly
/// — this is half of the sparse path's bit-identity argument (the other
/// half is that decoded frames reproduce every nonzero f32 verbatim).
#[derive(Default)]
struct PartitionState {
    /// `node → merged accumulator` (the flushed global shard).
    merged: HashMap<u32, Vec<f32>>,
    /// `node → stripe → pending sparse delta`, awaiting the deterministic
    /// ascending-stripe fold.
    staged: HashMap<u32, BTreeMap<u32, Vec<f32>>>,
}

impl PartitionState {
    /// Folds all staged stripe deltas into the merged accumulators
    /// (ascending stripe order per node; nodes are independent).
    fn flush(&mut self, elems_len: usize) {
        for (node, stripes) in std::mem::take(&mut self.staged) {
            let acc = self
                .merged
                .entry(node)
                .or_insert_with(|| vec![0.0f32; elems_len]);
            for (_stripe, delta) in stripes {
                for (a, &v) in acc.iter_mut().zip(&delta) {
                    *a += v;
                }
            }
        }
    }
}

/// Per-tree histogram storage: the layout of a `GradHist` row, its
/// feature-range partitioning, and each partition's per-node state.
struct HistState {
    layout: HistogramLayout,
    partitioner: RangeHashPartitioner,
    partitions: Vec<Mutex<PartitionState>>,
}

/// The sharded parameter store (Sections 4.2–4.3).
///
/// One `ParameterServer` value represents the whole server group; partitions
/// are individually locked so concurrent worker threads pushing different
/// shards (or the same shard — pushes merge) never block each other for
/// long. All push/pull methods record the bytes and packages they would put
/// on the wire, tagged with the execution-plan [`Phase`] that caused them
/// (histogram pushes count toward BUILD_HISTOGRAM, split pulls toward
/// FIND_SPLIT, and so on); phase-level simulated time is charged by the
/// caller via [`ParameterServer::charge`], using the Table 1 closed forms.
pub struct ParameterServer {
    config: PsConfig,
    num_global_features: usize,
    /// `QtSk`: merged per-feature quantile sketches.
    sketches: Mutex<Vec<GkSketch>>,
    /// `SmpFeat`: the leader-sampled feature ids for the current tree.
    sampled: Mutex<Vec<u32>>,
    /// `GradHist` rows for the current tree.
    hist: RwLock<Option<HistState>>,
    /// `SpFeat` + `SpVal` + `SpGain`: published split decisions.
    decisions: Mutex<HashMap<u32, SplitDecision>>,
    recorder: StatsRecorder,
    /// Fault-injection session; `None` runs the happy path untouched.
    faults: Mutex<Option<Arc<FaultSession>>>,
    /// Per-worker message sequence ids already applied, tagged with the
    /// membership epoch they were issued under — the server-side
    /// deduplication set that makes retried pushes idempotent. Keying on
    /// the epoch means a departed machine's late retries can never collide
    /// with (or merge into) sequence numbers of the new epoch.
    applied: Mutex<HashSet<(u64, u32, u64)>>,
    /// Current elastic-membership epoch. Stays 0 for fixed-membership runs;
    /// the trainer bumps it via [`ParameterServer::set_epoch`] after every
    /// scripted join/leave. Operations stamped with an older epoch are
    /// rejected instead of merged (see
    /// [`ParameterServer::push_histogram_from_epoch`]).
    epoch: Mutex<u64>,
}

impl ParameterServer {
    /// Creates a server group for a dataset with `num_global_features`
    /// features.
    pub fn new(num_global_features: usize, config: PsConfig) -> Self {
        assert!(config.num_servers > 0, "need at least one server");
        Self {
            config,
            num_global_features,
            sketches: Mutex::new(Vec::new()),
            sampled: Mutex::new(Vec::new()),
            hist: RwLock::new(None),
            decisions: Mutex::new(HashMap::new()),
            recorder: StatsRecorder::new(),
            faults: Mutex::new(None),
            applied: Mutex::new(HashSet::new()),
            epoch: Mutex::new(0),
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &PsConfig {
        &self.config
    }

    /// The global feature count the server group was created for.
    pub fn num_global_features(&self) -> usize {
        self.num_global_features
    }

    /// The communication ledger.
    pub fn recorder(&self) -> &StatsRecorder {
        &self.recorder
    }

    /// Snapshot of accumulated communication statistics (all phases).
    pub fn comm_stats(&self) -> CommStats {
        self.recorder.snapshot()
    }

    /// Snapshot of the per-phase communication ledger.
    pub fn comm_ledger(&self) -> CommLedger {
        self.recorder.ledger()
    }

    /// Charges simulated communication time to `phase` (the caller computes
    /// it from the cost model, typically `t_ps_exchange`).
    pub fn charge(&self, phase: Phase, time: SimTime) {
        self.recorder.charge(phase, time);
    }

    /// Mirrors every subsequent record onto `bus` as a trace event (the
    /// per-operation view of the ledger).
    pub fn attach_trace(&self, bus: TraceBus) {
        self.recorder.attach_trace(bus);
    }

    // ---- fault-injection resilience ----------------------------------------

    /// Subjects every subsequent worker-originated push/pull to the
    /// session's fault plan (drops, duplications, outages), recovered by
    /// the retry loop in [`ParameterServer::resilient`].
    pub fn attach_faults(&self, session: Arc<FaultSession>) {
        *self.faults.lock() = Some(session);
    }

    /// First-apply gate: returns `true` exactly once per
    /// `(epoch, worker, seq)`. Sequence ids are monotone per worker and
    /// never reused within an epoch, so a retried or duplicated message can
    /// never merge twice.
    fn mark_applied(&self, epoch: u64, worker: u32, seq: u64) -> bool {
        self.applied.lock().insert((epoch, worker, seq))
    }

    /// Advances the membership epoch the server stamps deduplication state
    /// with. Called by the trainer after every scripted join/leave; `epoch`
    /// must be monotone (a smaller value is ignored).
    pub fn set_epoch(&self, epoch: u64) {
        let mut current = self.epoch.lock();
        if epoch > *current {
            *current = epoch;
        }
    }

    /// The membership epoch the server currently stamps operations with.
    pub fn current_epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    /// Runs one logical worker→server operation under the fault plan:
    /// timeout + exponential backoff with deterministic jitter on loss, and
    /// exactly-once application via server-side sequence-id deduplication.
    ///
    /// The exactness invariant lives here: `apply` runs exactly once no
    /// matter how the message is dropped, duplicated, or reordered by
    /// retries, so the ledger records each logical op once and the merged
    /// state is bit-identical to a clean run. All recovery overhead
    /// (outage waits, timeouts, backoff delays) is charged to `phase` as
    /// pure simulated time. Lost *replies* are modelled as the server
    /// caching the reply per sequence id and resending it on retry, so a
    /// pull is never recomputed or recharged either.
    fn resilient<R>(&self, phase: Phase, apply: impl FnOnce() -> R) -> R {
        let session = self.faults.lock().clone();
        let (session, worker) = match session {
            Some(s) => match s.current_worker() {
                Some(w) if s.plan().perturbs_messages() => (s, w),
                _ => return apply(),
            },
            None => return apply(),
        };
        let plan = session.plan();
        let seq = session.next_seq(worker);

        // Transient partition unavailability: the op blocks until every
        // outage window covering the current simulated instant has passed.
        let now = self.recorder.ledger().total().sim_time.seconds();
        let wait = plan.outage_wait(now);
        if wait > 0.0 {
            session.add_outage_wait_secs(wait);
            self.recorder
                .fault_event(phase, "outage_wait", SimTime(wait), 0, 1);
            self.recorder.charge(phase, SimTime(wait));
        }

        let mut apply = Some(apply);
        let mut result: Option<R> = None;
        // Delivers one copy to the server: applies the op on the first
        // delivery of this seq, absorbs every later copy via the dedup set.
        // The op is stamped with the epoch current at issue time.
        let epoch = self.current_epoch();
        let mut deliver = || {
            if self.mark_applied(epoch, worker, seq) {
                let f = apply.take().expect("op applies exactly once");
                result = Some(f());
            } else {
                session.on_dedup_hit();
                self.recorder
                    .fault_event(phase, "dedup_hit", SimTime::ZERO, 0, 1);
            }
        };
        let mut attempt: u32 = 0;
        loop {
            let fate = if attempt >= MAX_ATTEMPTS {
                // The network "heals": force delivery so runs terminate.
                session.on_forced_delivery();
                self.recorder
                    .fault_event(phase, "forced_delivery", SimTime::ZERO, 0, 1);
                Fate::Deliver
            } else {
                plan.fate(worker, seq, attempt)
            };
            match fate {
                Fate::Deliver => {
                    deliver();
                    break;
                }
                Fate::Duplicate => {
                    session.on_duplicate();
                    self.recorder
                        .fault_event(phase, "duplicate", SimTime::ZERO, 0, 1);
                    deliver();
                    deliver();
                    break;
                }
                Fate::DropAck => {
                    // Applied server-side, acknowledgement lost: the client
                    // times out and retries; the retry hits the dedup set.
                    deliver();
                    session.on_ack_drop();
                    self.recorder
                        .fault_event(phase, "ack_drop", SimTime::ZERO, 0, 1);
                }
                Fate::DropRequest => {
                    session.on_request_drop();
                    self.recorder
                        .fault_event(phase, "request_drop", SimTime::ZERO, 0, 1);
                }
            }
            // Lost request or lost ack: timeout, back off, retry.
            let wait = plan.timeout_secs + plan.backoff_secs(worker, seq, attempt);
            session.on_retry(wait);
            self.recorder
                .fault_event(phase, "retry_backoff", SimTime(wait), 0, 1);
            self.recorder.charge(phase, SimTime(wait));
            attempt += 1;
        }
        result.expect("first delivery must have applied the op")
    }

    // ---- QtSk ------------------------------------------------------------

    /// CREATE_SKETCH push: merges one worker's per-feature sketches into the
    /// global ones. `locals` is indexed by global feature id.
    ///
    /// # Panics
    /// Panics if `locals` does not cover every global feature.
    pub fn push_sketches(&self, locals: Vec<GkSketch>) {
        assert_eq!(
            locals.len(),
            self.num_global_features,
            "sketch push must cover all features"
        );
        self.resilient(Phase::CreateSketch, move || {
            self.apply_push_sketches(locals)
        })
    }

    fn apply_push_sketches(&self, mut locals: Vec<GkSketch>) {
        let bytes: usize = locals.iter_mut().map(|s| s.wire_bytes()).sum();
        let mut merged = self.sketches.lock();
        if merged.is_empty() {
            *merged = locals;
        } else {
            for (m, l) in merged.iter_mut().zip(&locals) {
                m.merge(l);
            }
        }
        self.recorder.record_named(
            Phase::CreateSketch,
            "push_sketches",
            bytes as u64,
            self.config.partitions() as u64,
            SimTime::ZERO,
        );
    }

    /// PULL_SKETCH: returns the merged per-feature sketches.
    pub fn pull_sketches(&self) -> Vec<GkSketch> {
        let mut merged = self.sketches.lock();
        let bytes: usize = merged.iter_mut().map(|s| s.wire_bytes()).sum();
        self.recorder.record_named(
            Phase::PullSketch,
            "pull_sketches",
            bytes as u64,
            self.config.partitions() as u64,
            SimTime::ZERO,
        );
        merged.clone()
    }

    // ---- SmpFeat ----------------------------------------------------------

    /// NEW_TREE: the leader worker publishes the sampled feature ids.
    pub fn publish_sampled(&self, features: Vec<u32>) {
        self.recorder.record_named(
            Phase::NewTree,
            "publish_sampled",
            4 * features.len() as u64,
            1,
            SimTime::ZERO,
        );
        *self.sampled.lock() = features;
    }

    /// BUILD_HISTOGRAM: workers pull the sampled feature ids.
    pub fn pull_sampled(&self) -> Vec<u32> {
        let sampled = self.sampled.lock();
        self.recorder.record_named(
            Phase::NewTree,
            "pull_sampled",
            4 * sampled.len() as u64,
            1,
            SimTime::ZERO,
        );
        sampled.clone()
    }

    // ---- GradHist ----------------------------------------------------------

    /// NEW_TREE: installs the histogram layout for the coming tree and
    /// clears all per-node state.
    pub fn init_tree(&self, layout: HistogramLayout) {
        let partitioner = RangeHashPartitioner::new(
            layout.num_features(),
            self.config.partitions(),
            self.config.num_servers,
        );
        let partitions = (0..partitioner.num_partitions())
            .map(|_| Mutex::new(PartitionState::default()))
            .collect();
        *self.hist.write() = Some(HistState {
            layout,
            partitioner,
            partitions,
        });
        self.decisions.lock().clear();
        // Sequence ids are monotone per worker and never reused, so entries
        // from finished trees can never be hit again — drop them to keep the
        // dedup set O(messages per tree) instead of O(messages per run).
        self.applied.lock().clear();
    }

    fn with_hist<R>(&self, f: impl FnOnce(&HistState) -> R) -> R {
        let guard = self.hist.read();
        let state = guard
            .as_ref()
            .expect("init_tree must be called before histogram ops");
        f(state)
    }

    /// FIND_SPLIT push, full precision: adds one worker's local histogram
    /// row for `node` into the global row, shard by shard (the default
    /// *push* UDF — addition).
    pub fn push_histogram(&self, node: u32, row: &[f32]) {
        self.resilient(Phase::BuildHistogram, || {
            self.apply_push_histogram(node, row)
        })
    }

    /// Idempotent entry used by the retry-schedule tests: delivers one copy
    /// of push `seq` from `worker` (stamped with the current epoch) and
    /// returns whether it applied (`false` means the copy was absorbed by
    /// the dedup set). Any schedule of duplicated/reordered deliveries
    /// merges to the clean-schedule histogram because each
    /// `(epoch, worker, seq)` applies at most once.
    pub fn push_histogram_from(&self, worker: u32, seq: u64, node: u32, row: &[f32]) -> bool {
        self.push_histogram_from_epoch(self.current_epoch(), worker, seq, node, row)
    }

    /// [`ParameterServer::push_histogram_from`] with an explicit issue
    /// epoch: the elastic-membership protocol's server-side gate. A message
    /// stamped with an epoch older than the server's current one is a late
    /// retry from before a join/leave — it is rejected outright (recorded
    /// as a `stale_reject` membership event, never merged), so a departed
    /// machine's straggling traffic cannot corrupt the new epoch's
    /// histograms.
    pub fn push_histogram_from_epoch(
        &self,
        epoch: u64,
        worker: u32,
        seq: u64,
        node: u32,
        row: &[f32],
    ) -> bool {
        if epoch < self.current_epoch() {
            if let Some(session) = &*self.faults.lock() {
                session.on_stale_reject();
            }
            self.recorder.membership_event(
                Phase::BuildHistogram,
                "stale_reject",
                SimTime::ZERO,
                0,
                1,
            );
            return false;
        }
        if !self.mark_applied(epoch, worker, seq) {
            return false;
        }
        self.apply_push_histogram(node, row);
        true
    }

    fn apply_push_histogram(&self, node: u32, row: &[f32]) {
        self.with_hist(|state| {
            assert_eq!(row.len(), state.layout.row_len(), "row length mismatch");
            let mut bytes = 0u64;
            for p in 0..state.partitioner.num_partitions() {
                let elems = state.layout.elem_range(state.partitioner.range(p));
                if elems.is_empty() {
                    continue;
                }
                let slice = &row[elems.clone()];
                let mut part = state.partitions[p].lock();
                let acc = part
                    .merged
                    .entry(node)
                    .or_insert_with(|| vec![0.0f32; elems.len()]);
                for (a, &v) in acc.iter_mut().zip(slice) {
                    *a += v;
                }
                bytes += 4 * elems.len() as u64;
            }
            self.recorder.record_named(
                Phase::BuildHistogram,
                "push_histogram",
                bytes,
                state.partitioner.num_partitions() as u64,
                SimTime::ZERO,
            );
        });
    }

    /// FIND_SPLIT push, low precision (Section 6.1): the worker ships a
    /// quantized row; each server decodes only its feature shard and merges
    /// it. Byte accounting distributes the row's wire size across
    /// partitions proportionally to their element counts.
    pub fn push_histogram_quantized(&self, node: u32, q: &QuantizedRow) {
        self.resilient(Phase::BuildHistogram, || {
            self.apply_push_histogram_quantized(node, q)
        })
    }

    fn apply_push_histogram_quantized(&self, node: u32, q: &QuantizedRow) {
        self.with_hist(|state| {
            assert_eq!(q.len(), state.layout.row_len(), "row length mismatch");
            let row_len = state.layout.row_len().max(1);
            let wire = q.wire_bytes() as u64;
            let mut bytes = 0u64;
            for p in 0..state.partitioner.num_partitions() {
                let features = state.partitioner.range(p);
                let elems = state.layout.elem_range(features.clone());
                if elems.is_empty() {
                    continue;
                }
                let mut part = state.partitions[p].lock();
                let acc = part
                    .merged
                    .entry(node)
                    .or_insert_with(|| vec![0.0f32; elems.len()]);
                q.add_features_into(&state.layout, features, acc);
                bytes += wire * elems.len() as u64 / row_len as u64;
            }
            self.recorder.record_named(
                Phase::BuildHistogram,
                "push_histogram_quantized",
                bytes,
                state.partitioner.num_partitions() as u64,
                SimTime::ZERO,
            );
        });
    }

    /// FIND_SPLIT push, sparse full precision: the worker serializes each
    /// feature-block slice of its local row under the smallest of the three
    /// density-adaptive layouts (`wire::encode_f32_sparse`) and the server
    /// stages the decoded delta keyed by `(node, stripe, block)`. Staged
    /// deltas are folded in ascending stripe order when the partition is
    /// next read, so the merge is order-independent in message arrival yet
    /// reproduces the dense path's add sequence exactly (see
    /// [`PartitionState`]). Byte accounting charges the *actual* frame
    /// sizes; empty feature blocks ship nothing at all.
    ///
    /// Returns the per-encoding frame/byte tally for the trainer's
    /// telemetry.
    pub fn push_histogram_sparse(&self, stripe: u32, node: u32, row: &[f32]) -> SparseWireStats {
        self.resilient(Phase::BuildHistogram, || {
            self.apply_push_histogram_sparse(stripe, node, row)
        })
    }

    fn apply_push_histogram_sparse(&self, stripe: u32, node: u32, row: &[f32]) -> SparseWireStats {
        self.with_hist(|state| {
            assert_eq!(row.len(), state.layout.row_len(), "row length mismatch");
            let mut stats = SparseWireStats::default();
            for p in 0..state.partitioner.num_partitions() {
                let elems = state.layout.elem_range(state.partitioner.range(p));
                if elems.is_empty() {
                    continue;
                }
                let (frame, encoding) = wire::encode_f32_sparse(&row[elems.clone()]);
                stats.record(encoding, frame.len());
                // Simulated receive: decode and stage the delta under its
                // (node, stripe) key. Nonzero values come back bit-exact;
                // zero slots decode as +0.0, which is add-neutral.
                let (delta, _) = wire::decode_f32_sparse(frame);
                Self::stage_delta(&state.partitions[p], node, stripe, delta);
            }
            self.recorder.record_named(
                Phase::BuildHistogram,
                "push_histogram_sparse",
                stats.total_bytes(),
                state.partitioner.num_partitions() as u64,
                SimTime::ZERO,
            );
            stats
        })
    }

    /// FIND_SPLIT push, sparse low precision: like
    /// [`ParameterServer::push_histogram_sparse`] but the per-block frames
    /// carry the quantized representation — codes bit-packed at `d` bits
    /// under a dense-or-bitmap layout, scales and exact zero-bucket values
    /// as adaptive f32 sub-frames (`sparse::encode_quantized_block`). The
    /// server decodes each frame and runs the same dequantize-add kernel as
    /// the dense quantized path, staged and folded identically, so the two
    /// paths are bit-identical on the model while the wire bytes shrink
    /// with node sparsity.
    pub fn push_histogram_quantized_sparse(
        &self,
        stripe: u32,
        node: u32,
        q: &QuantizedRow,
    ) -> SparseWireStats {
        self.resilient(Phase::BuildHistogram, || {
            self.apply_push_histogram_quantized_sparse(stripe, node, q)
        })
    }

    fn apply_push_histogram_quantized_sparse(
        &self,
        stripe: u32,
        node: u32,
        q: &QuantizedRow,
    ) -> SparseWireStats {
        self.with_hist(|state| {
            assert_eq!(q.len(), state.layout.row_len(), "row length mismatch");
            let mut stats = SparseWireStats::default();
            for p in 0..state.partitioner.num_partitions() {
                let features = state.partitioner.range(p);
                let elems = state.layout.elem_range(features.clone());
                if elems.is_empty() {
                    continue;
                }
                let (frame, frame_stats) =
                    sparse::encode_quantized_block(q, &state.layout, features.clone());
                stats.merge(&frame_stats);
                let block = sparse::decode_quantized_block(frame, &state.layout, features.clone());
                let mut delta = vec![0.0f32; elems.len()];
                block.add_into(&state.layout, features, &mut delta);
                Self::stage_delta(&state.partitions[p], node, stripe, delta);
            }
            self.recorder.record_named(
                Phase::BuildHistogram,
                "push_histogram_quantized_sparse",
                stats.total_bytes(),
                state.partitioner.num_partitions() as u64,
                SimTime::ZERO,
            );
            stats
        })
    }

    /// Stages one decoded block delta under its `(node, stripe)` key; a
    /// second delta for the same key (e.g. a worker owning several logical
    /// stripes pushing twice) accumulates into the staged vector.
    fn stage_delta(partition: &Mutex<PartitionState>, node: u32, stripe: u32, delta: Vec<f32>) {
        let mut part = partition.lock();
        match part.staged.entry(node).or_default().entry(stripe) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(delta);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                for (a, &v) in slot.get_mut().iter_mut().zip(&delta) {
                    *a += v;
                }
            }
        }
    }

    /// FIND_SPLIT pull, two-phase (Section 6.3): every partition runs the
    /// split scan over its shard (server-side phase) and the best of the
    /// per-partition winners is returned (worker-side phase). The reply per
    /// partition is O(1) — "one integer and two floating-point numbers".
    pub fn pull_split(&self, node: u32, params: &SplitParams) -> PullSplitResult {
        self.resilient(Phase::FindSplit, || self.apply_pull_split(node, params))
    }

    fn apply_pull_split(&self, node: u32, params: &SplitParams) -> PullSplitResult {
        self.with_hist(|state| {
            let mut totals: Option<(f64, f64)> = None;
            let mut best: Option<NodeSplit> = None;
            let mut packages = 0u64;
            for p in 0..state.partitioner.num_partitions() {
                let features = state.partitioner.range(p);
                if features.is_empty() {
                    continue;
                }
                let elems_len = state.layout.elem_range(features.clone()).len();
                let mut part = state.partitions[p].lock();
                part.flush(elems_len);
                let Some(shard) = part.merged.get(&node) else {
                    continue;
                };
                let res = best_split_in_range(shard, &state.layout, features, totals, params);
                totals = Some((res.total_g, res.total_h));
                best = NodeSplit::better(best, res.best);
                packages += 1;
            }
            // ~48 bytes per partition reply (feature, bucket, gain, G_L, H_L, totals).
            self.recorder.record_named(
                Phase::FindSplit,
                "pull_split",
                48 * packages,
                packages,
                SimTime::ZERO,
            );
            let (total_g, total_h) = totals.unwrap_or((0.0, 0.0));
            PullSplitResult {
                best,
                total_g,
                total_h,
            }
        })
    }

    /// FIND_SPLIT pull, naive single-phase: ships the whole merged row to
    /// the worker. Kept for the Table 3 ablation (two-phase split off).
    pub fn pull_histogram(&self, node: u32) -> Vec<f32> {
        self.resilient(Phase::FindSplit, || self.apply_pull_histogram(node))
    }

    fn apply_pull_histogram(&self, node: u32) -> Vec<f32> {
        self.with_hist(|state| {
            let mut row = vec![0.0f32; state.layout.row_len()];
            let mut packages = 0u64;
            for p in 0..state.partitioner.num_partitions() {
                let elems = state.layout.elem_range(state.partitioner.range(p));
                if elems.is_empty() {
                    continue;
                }
                let mut part = state.partitions[p].lock();
                part.flush(elems.len());
                if let Some(shard) = part.merged.get(&node) {
                    row[elems].copy_from_slice(shard);
                }
                packages += 1;
            }
            self.recorder.record_named(
                Phase::FindSplit,
                "pull_histogram",
                4 * row.len() as u64,
                packages,
                SimTime::ZERO,
            );
            row
        })
    }

    /// Derives `sibling`'s merged histogram as `parent − built_child`, shard
    /// by shard, entirely server-side (the classic histogram-subtraction
    /// trick: only the smaller child is built and pushed; the other falls
    /// out by subtraction). No bytes cross the network.
    ///
    /// Missing parent or child shards are treated as zero rows, so empty
    /// nodes subtract cleanly.
    pub fn derive_sibling(&self, parent: u32, built_child: u32, sibling: u32) {
        self.with_hist(|state| {
            for p in 0..state.partitioner.num_partitions() {
                let elems = state.layout.elem_range(state.partitioner.range(p));
                if elems.is_empty() {
                    continue;
                }
                let mut part = state.partitions[p].lock();
                part.flush(elems.len());
                let mut out = part
                    .merged
                    .get(&parent)
                    .cloned()
                    .unwrap_or_else(|| vec![0.0f32; elems.len()]);
                if let Some(child) = part.merged.get(&built_child) {
                    for (o, c) in out.iter_mut().zip(child) {
                        *o -= c;
                    }
                }
                part.merged.insert(sibling, out);
            }
        });
    }

    /// Frees the histogram row of a finished node.
    pub fn clear_node(&self, node: u32) {
        self.with_hist(|state| {
            for p in &state.partitions {
                let mut part = p.lock();
                part.merged.remove(&node);
                part.staged.remove(&node);
            }
        });
    }

    // ---- SpFeat / SpVal / SpGain -------------------------------------------

    /// The assigned worker publishes the final decision for a node.
    pub fn publish_decision(&self, decision: SplitDecision) {
        self.resilient(Phase::FindSplit, || self.apply_publish_decision(decision))
    }

    fn apply_publish_decision(&self, decision: SplitDecision) {
        self.recorder
            .record_named(Phase::FindSplit, "publish_decision", 64, 1, SimTime::ZERO);
        self.decisions.lock().insert(decision.node, decision);
    }

    /// SPLIT_TREE: workers pull the decisions for the given nodes.
    ///
    /// # Panics
    /// Panics if a requested node has no published decision — a
    /// synchronization bug in the caller.
    pub fn pull_decisions(&self, nodes: &[u32]) -> Vec<SplitDecision> {
        let map = self.decisions.lock();
        self.recorder.record_named(
            Phase::SplitTree,
            "pull_decisions",
            64 * nodes.len() as u64,
            nodes.len() as u64,
            SimTime::ZERO,
        );
        nodes
            .iter()
            .map(|n| {
                *map.get(n)
                    .unwrap_or_else(|| panic!("no decision published for node {n}"))
            })
            .collect()
    }

    /// Clears published decisions (layer boundary).
    pub fn clear_decisions(&self) {
        self.decisions.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::FinalSplit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ps_with_layout(buckets: Vec<u32>, servers: usize) -> ParameterServer {
        let ps = ParameterServer::new(
            buckets.len(),
            PsConfig {
                num_servers: servers,
                num_partitions: 0,
                cost_model: CostModel::FREE,
            },
        );
        ps.init_tree(HistogramLayout::new(buckets));
        ps
    }

    /// Sparse-looking worker rows over a wide layout: most features zero.
    fn sparse_rows(row_len: usize, workers: usize) -> Vec<Vec<f32>> {
        (0..workers)
            .map(|w| {
                let mut row = vec![0.0f32; row_len];
                for i in (w..row_len).step_by(17 + w) {
                    row[i] = (i as f32 + 1.0) * if w % 2 == 0 { 0.5 } else { -0.25 };
                }
                row
            })
            .collect()
    }

    #[test]
    fn sparse_push_is_bit_identical_to_dense() {
        let buckets = vec![8u32; 40];
        let rows = sparse_rows(8 * 2 * 40, 4);
        let dense = ps_with_layout(buckets.clone(), 3);
        let sparse = ps_with_layout(buckets, 3);
        for (w, row) in rows.iter().enumerate() {
            dense.push_histogram(5, row);
            sparse.push_histogram_sparse(w as u32, 5, row);
        }
        let a = dense.pull_histogram(5);
        let b = sparse.pull_histogram(5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sparse_push_merge_is_stripe_order_independent() {
        // Deliver the same stripe deltas in opposite arrival orders: the
        // block-keyed staging folds by stripe key, so the accumulator bits
        // must come out identical.
        let buckets = vec![4u32; 20];
        let rows = sparse_rows(4 * 2 * 20, 3);
        let fwd = ps_with_layout(buckets.clone(), 2);
        let rev = ps_with_layout(buckets, 2);
        for (w, row) in rows.iter().enumerate() {
            fwd.push_histogram_sparse(w as u32, 1, row);
        }
        for (w, row) in rows.iter().enumerate().rev() {
            rev.push_histogram_sparse(w as u32, 1, row);
        }
        let a = fwd.pull_histogram(1);
        let b = rev.pull_histogram(1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sparse_push_charges_fewer_bytes_on_sparse_rows() {
        let buckets = vec![8u32; 40];
        let rows = sparse_rows(8 * 2 * 40, 2);
        let dense = ps_with_layout(buckets.clone(), 2);
        let sparse = ps_with_layout(buckets, 2);
        let mut wire = 0u64;
        for (w, row) in rows.iter().enumerate() {
            dense.push_histogram(0, row);
            wire += sparse.push_histogram_sparse(w as u32, 0, row).total_bytes();
        }
        let dense_bytes = dense.comm_stats().bytes;
        assert!(
            wire * 2 < dense_bytes,
            "sparse {wire} vs dense {dense_bytes}"
        );
        // The recorder saw the same true frame bytes the summary reports.
        let ledger = sparse.comm_ledger();
        let recorded: u64 = Phase::ALL.iter().map(|p| ledger.phase(*p).bytes).sum();
        assert_eq!(recorded, wire);
    }

    #[test]
    fn sparse_quantized_push_is_bit_identical_to_dense_quantized() {
        let buckets = vec![6u32; 30];
        let layout = HistogramLayout::new(buckets.clone());
        let rows = sparse_rows(layout.row_len(), 3);
        let dense = ps_with_layout(buckets.clone(), 2);
        let sparse = ps_with_layout(buckets, 2);
        for (w, row) in rows.iter().enumerate() {
            // Same seed per worker on both sides: the stochastic rounding
            // must agree for the bit-identity comparison to be meaningful.
            let mut rng = StdRng::seed_from_u64(w as u64);
            let q = crate::quantize::quantize_row(row, &layout, 8, &mut rng);
            dense.push_histogram_quantized(7, &q);
            sparse.push_histogram_quantized_sparse(w as u32, 7, &q);
        }
        let a = dense.pull_histogram(7);
        let b = sparse.pull_histogram(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sparse_push_then_derive_sibling_matches_dense() {
        // derive_sibling reads partitions; staged sparse deltas must be
        // flushed before the subtraction sees them.
        let buckets = vec![4u32; 10];
        let rows = sparse_rows(4 * 2 * 10, 2);
        let ps = ps_with_layout(buckets, 2);
        ps.push_histogram_sparse(0, 1, &rows[0]);
        ps.push_histogram_sparse(1, 1, &rows[1]);
        ps.push_histogram_sparse(0, 2, &rows[1]);
        ps.derive_sibling(1, 2, 3);
        let parent = ps.pull_histogram(1);
        let child = ps.pull_histogram(2);
        let sibling = ps.pull_histogram(3);
        for ((p, c), s) in parent.iter().zip(&child).zip(&sibling) {
            assert_eq!(*s, p - c);
        }
    }

    #[test]
    fn sparse_push_on_degenerate_grid_skips_empty_partitions() {
        // 8 partitions over 2 features: 6 partitions own no feature range.
        // Sparse pushes must route around them and charge zero bytes for
        // them — the per-push frame tally covers only the 2 real blocks.
        let ps = ParameterServer::new(
            2,
            PsConfig {
                num_servers: 8,
                num_partitions: 0,
                cost_model: CostModel::FREE,
            },
        );
        ps.init_tree(HistogramLayout::new(vec![2, 2]));
        let row = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let stats = ps.push_histogram_sparse(0, 0, &row);
        assert_eq!(stats.total_frames(), 2);
        // Each 4-element block is fully dense → dense layout, 5 + 16 bytes.
        assert_eq!(stats.total_bytes(), 2 * (5 + 16));
        assert_eq!(ps.pull_histogram(0).as_slice(), &row);
    }

    #[test]
    fn push_merges_rows_additively() {
        let ps = ps_with_layout(vec![2, 2], 2);
        ps.push_histogram(0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        ps.push_histogram(0, &[10.0; 8]);
        let row = ps.pull_histogram(0);
        assert_eq!(row, vec![11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0]);
    }

    #[test]
    fn nodes_are_independent() {
        let ps = ps_with_layout(vec![2], 1);
        ps.push_histogram(1, &[1.0, 1.0, 1.0, 1.0]);
        ps.push_histogram(2, &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(ps.pull_histogram(1), vec![1.0; 4]);
        assert_eq!(ps.pull_histogram(2), vec![2.0; 4]);
        ps.clear_node(1);
        assert_eq!(ps.pull_histogram(1), vec![0.0; 4]);
        assert_eq!(ps.pull_histogram(2), vec![2.0; 4]);
    }

    #[test]
    fn concurrent_pushes_from_worker_threads() {
        let ps = ps_with_layout(vec![4, 4, 4], 3);
        let row_len = 24;
        // Test-only thread spawn (this module is #[cfg(test)]): it proves
        // push_histogram tolerates genuinely concurrent callers. Production
        // hot paths never spawn per call — they run on the persistent pool
        // in `dimboost-core::pool`.
        std::thread::scope(|scope| {
            for w in 0..8 {
                let ps = &ps;
                scope.spawn(move || {
                    let row: Vec<f32> = (0..row_len).map(|i| (w * i) as f32).collect();
                    for _ in 0..10 {
                        ps.push_histogram(5, &row);
                    }
                });
            }
        });
        let row = ps.pull_histogram(5);
        for (i, v) in row.iter().enumerate() {
            let expected: f32 = (0..8).map(|w| (w * i) as f32 * 10.0).sum();
            assert!((v - expected).abs() < 1e-3, "elem {i}: {v} vs {expected}");
        }
    }

    #[test]
    fn pull_split_matches_manual_scan() {
        let ps = ps_with_layout(vec![3, 3], 2);
        let row = vec![
            -10.0, 10.0, 0.0, 5.0, 5.0, 1.0, // feature 0
            0.0, 0.0, 0.0, 11.0, 0.0, 0.0, // feature 1
        ];
        ps.push_histogram(0, &row);
        let params = SplitParams {
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let res = ps.pull_split(0, &params);
        let full =
            best_split_in_range(&row, &HistogramLayout::new(vec![3, 3]), 0..2, None, &params);
        assert_eq!(res.best, full.best);
        assert_eq!(res.total_g, full.total_g);
        assert_eq!(res.total_h, full.total_h);
    }

    #[test]
    fn quantized_push_approximates_full_push() {
        let buckets = vec![8u32; 10];
        let layout = HistogramLayout::new(buckets.clone());
        let row: Vec<f32> = (0..layout.row_len())
            .map(|i| ((i % 17) as f32 - 8.0) / 4.0)
            .collect();

        let full = ps_with_layout(buckets.clone(), 4);
        full.push_histogram(0, &row);
        let full_bytes = full.comm_stats().bytes;

        let quant = ps_with_layout(buckets, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let q = crate::quantize::quantize_row(&row, &layout, 8, &mut rng);
        quant.push_histogram_quantized(0, &q);
        let quant_bytes = quant.comm_stats().bytes;

        let a = full.pull_histogram(0);
        let b = quant.pull_histogram(0);
        let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let step = max_abs / 127.0;
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= step + 1e-5, "{x} vs {y}");
        }
        // And the wire accounting shows ~4x compression on the push path.
        // Per-feature scale/zero metadata eats part of the ideal 32/d ratio;
        // at 8 buckets/feature the honest win is ~2x (larger K approaches 4x).
        assert!(
            quant_bytes * 2 < full_bytes,
            "{quant_bytes} vs {full_bytes}"
        );
    }

    #[test]
    fn derive_sibling_is_exact_subtraction() {
        let ps = ps_with_layout(vec![3, 3], 2);
        let parent = vec![
            10.0, 20.0, 30.0, 1.0, 2.0, 3.0, 5.0, 5.0, 5.0, 4.0, 4.0, 4.0,
        ];
        let child = vec![4.0, 8.0, 12.0, 0.5, 1.0, 1.5, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0];
        ps.push_histogram(0, &parent);
        ps.push_histogram(1, &child);
        ps.derive_sibling(0, 1, 2);
        let sib = ps.pull_histogram(2);
        for ((s, p), c) in sib.iter().zip(&parent).zip(&child) {
            assert!((s - (p - c)).abs() < 1e-5, "{s} vs {}", p - c);
        }
        // And split finding on the derived node works.
        let params = SplitParams {
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let res = ps.pull_split(2, &params);
        assert!((res.total_g - (60.0 - 24.0)).abs() < 1e-4);
    }

    #[test]
    fn derive_sibling_with_missing_nodes_is_zero_safe() {
        let ps = ps_with_layout(vec![2], 1);
        // No parent, no child: sibling is a zero row.
        ps.derive_sibling(0, 1, 2);
        assert_eq!(ps.pull_histogram(2), vec![0.0; 4]);
        // Parent only: sibling equals parent.
        ps.push_histogram(3, &[1.0, 2.0, 3.0, 4.0]);
        ps.derive_sibling(3, 4, 5);
        assert_eq!(ps.pull_histogram(5), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn sketch_push_pull_roundtrip() {
        let ps = ParameterServer::new(3, PsConfig::default());
        let make = |offset: f32| -> Vec<GkSketch> {
            (0..3)
                .map(|f| {
                    let mut s = GkSketch::new(0.01);
                    s.extend((0..100).map(|i| offset + (f * 100 + i) as f32));
                    s
                })
                .collect()
        };
        ps.push_sketches(make(0.0));
        ps.push_sketches(make(1000.0));
        let mut merged = ps.pull_sketches();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].count(), 200);
        assert_eq!(merged[0].min(), Some(0.0));
        assert_eq!(merged[0].max(), Some(1099.0));
    }

    #[test]
    #[should_panic(expected = "cover all features")]
    fn sketch_push_must_cover_all_features() {
        let ps = ParameterServer::new(3, PsConfig::default());
        ps.push_sketches(vec![GkSketch::new(0.1)]);
    }

    #[test]
    fn sampled_features_roundtrip() {
        let ps = ParameterServer::new(10, PsConfig::default());
        ps.publish_sampled(vec![1, 3, 5]);
        assert_eq!(ps.pull_sampled(), vec![1, 3, 5]);
    }

    #[test]
    fn decisions_roundtrip_and_clear() {
        let ps = ParameterServer::new(4, PsConfig::default());
        ps.init_tree(HistogramLayout::new(vec![2; 4]));
        let d = SplitDecision {
            node: 3,
            split: Some(FinalSplit {
                feature: 2,
                threshold: 0.5,
                gain: 1.25,
                left_g: -1.0,
                left_h: 2.0,
                default_left: true,
            }),
            total_g: 0.0,
            total_h: 4.0,
        };
        ps.publish_decision(d);
        assert_eq!(ps.pull_decisions(&[3]), vec![d]);
        ps.clear_decisions();
    }

    #[test]
    #[should_panic(expected = "no decision published")]
    fn pulling_missing_decision_panics() {
        let ps = ParameterServer::new(4, PsConfig::default());
        ps.pull_decisions(&[9]);
    }

    #[test]
    fn init_tree_resets_state() {
        let ps = ps_with_layout(vec![2], 1);
        ps.push_histogram(0, &[1.0; 4]);
        ps.init_tree(HistogramLayout::new(vec![2]));
        assert_eq!(ps.pull_histogram(0), vec![0.0; 4]);
    }

    #[test]
    fn push_histogram_from_is_idempotent() {
        let ps = ps_with_layout(vec![2], 1);
        let row = [1.0, 2.0, 3.0, 4.0];
        assert!(ps.push_histogram_from(0, 0, 7, &row));
        assert!(
            !ps.push_histogram_from(0, 0, 7, &row),
            "retried copy must dedup"
        );
        assert!(
            ps.push_histogram_from(1, 0, 7, &row),
            "other worker, same seq"
        );
        assert_eq!(ps.pull_histogram(7), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn stale_epoch_pushes_are_rejected_not_merged() {
        let ps = ps_with_layout(vec![2], 1);
        let row = [1.0, 2.0, 3.0, 4.0];
        // Epoch 0: a worker pushes, then departs; epoch advances.
        assert!(ps.push_histogram_from_epoch(0, 0, 0, 7, &row));
        ps.set_epoch(1);
        assert_eq!(ps.current_epoch(), 1);
        // The departed worker's late retry (same op, old epoch) and even a
        // *new* old-epoch sequence id are both rejected outright.
        assert!(!ps.push_histogram_from_epoch(0, 0, 0, 7, &row));
        assert!(!ps.push_histogram_from_epoch(0, 0, 1, 7, &row));
        // Current-epoch traffic flows normally, including a seq id that
        // collides numerically with an epoch-0 one.
        assert!(ps.push_histogram_from_epoch(1, 1, 0, 7, &row));
        assert!(!ps.push_histogram_from_epoch(1, 1, 0, 7, &row), "dedup");
        assert_eq!(ps.pull_histogram(7), vec![2.0, 4.0, 6.0, 8.0]);
        // Epochs only move forward.
        ps.set_epoch(0);
        assert_eq!(ps.current_epoch(), 1);
    }

    #[test]
    fn stale_rejects_reach_the_fault_session() {
        let ps = ps_with_layout(vec![2], 1);
        let plan = dimboost_simnet::FaultPlan::parse("join worker=9 round=0\n").unwrap();
        let session = dimboost_simnet::FaultSession::new(plan);
        session.init_membership(2);
        ps.attach_faults(session.clone());
        ps.set_epoch(3);
        assert!(!ps.push_histogram_from_epoch(2, 0, 0, 0, &[1.0; 4]));
        let summary = session.membership_summary().unwrap();
        assert_eq!(summary.stale_rejects, 1);
    }

    fn chaos_plan() -> dimboost_simnet::FaultPlan {
        dimboost_simnet::FaultPlan {
            seed: 11,
            drop_p: 0.25,
            ack_drop_p: 0.15,
            dup_p: 0.1,
            ..dimboost_simnet::FaultPlan::default()
        }
    }

    #[test]
    fn faulted_pushes_match_clean_run_exactly() {
        let rows: Vec<Vec<f32>> = (0..6)
            .map(|w| (0..8).map(|i| (w * 8 + i) as f32 * 0.5).collect())
            .collect();

        let clean = ps_with_layout(vec![2, 2], 2);
        for row in &rows {
            clean.push_histogram(3, row);
        }

        let faulted = ps_with_layout(vec![2, 2], 2);
        let session = dimboost_simnet::FaultSession::new(chaos_plan());
        faulted.attach_faults(session.clone());
        for (w, row) in rows.iter().enumerate() {
            session.set_worker(Some(w as u32));
            faulted.push_histogram(3, row);
        }
        session.set_worker(None);

        // Exactness invariant: the merged state and the logical ledger are
        // bit-identical; only simulated time differs.
        assert_eq!(faulted.pull_histogram(3), clean.pull_histogram(3));
        let (cl, fl) = (clean.comm_ledger(), faulted.comm_ledger());
        for phase in Phase::ALL {
            assert_eq!(cl.phase(phase).bytes, fl.phase(phase).bytes, "{phase:?}");
            assert_eq!(
                cl.phase(phase).packages,
                fl.phase(phase).packages,
                "{phase:?}"
            );
        }
        // The plan above is aggressive enough that faults actually fired.
        let sum = session.summary();
        assert!(sum.request_drops + sum.ack_drops + sum.duplicates > 0);
        assert_eq!(sum.dedup_hits, sum.ack_drops + sum.duplicates);
        assert!(sum.backoff_secs > 0.0);
        assert!(
            fl.phase(Phase::BuildHistogram).sim_time.seconds()
                > cl.phase(Phase::BuildHistogram).sim_time.seconds()
        );
    }

    #[test]
    fn faulted_pulls_are_not_recharged() {
        let ps = ps_with_layout(vec![2], 1);
        ps.push_histogram(0, &[1.0, 2.0, 3.0, 4.0]);
        let clean_bytes = ps.comm_ledger().phase(Phase::FindSplit).bytes;
        assert_eq!(clean_bytes, 0);

        let session = dimboost_simnet::FaultSession::new(chaos_plan());
        ps.attach_faults(session.clone());
        session.set_worker(Some(0));
        for _ in 0..20 {
            assert_eq!(ps.pull_histogram(0), vec![1.0, 2.0, 3.0, 4.0]);
        }
        session.set_worker(None);
        // Each logical pull recorded exactly once despite retries.
        assert_eq!(ps.comm_ledger().phase(Phase::FindSplit).bytes, 20 * 16);
    }

    #[test]
    fn outage_blocks_until_window_passes() {
        let plan = dimboost_simnet::FaultPlan {
            drop_p: 0.0001, // perturbs_messages() without changing fates
            outages: vec![dimboost_simnet::fault::OutageSpec {
                server: 0,
                start: 0.0,
                duration: 0.75,
            }],
            ..dimboost_simnet::FaultPlan::default()
        };
        let ps = ps_with_layout(vec![2], 1);
        let session = dimboost_simnet::FaultSession::new(plan);
        ps.attach_faults(session.clone());
        session.set_worker(Some(0));
        ps.push_histogram(0, &[1.0; 4]);
        session.set_worker(None);
        let sum = session.summary();
        assert!((sum.outage_wait_secs - 0.75).abs() < 1e-9);
        assert!(
            ps.comm_ledger()
                .phase(Phase::BuildHistogram)
                .sim_time
                .seconds()
                >= 0.75
        );
        // Clock has moved past the window: the next op sails through.
        session.set_worker(Some(0));
        ps.push_histogram(0, &[1.0; 4]);
        session.set_worker(None);
        assert!((session.summary().outage_wait_secs - 0.75).abs() < 1e-9);
    }

    #[test]
    fn more_partitions_than_features_is_fine() {
        let ps = ParameterServer::new(
            2,
            PsConfig {
                num_servers: 8,
                num_partitions: 0,
                cost_model: CostModel::FREE,
            },
        );
        ps.init_tree(HistogramLayout::new(vec![2, 2]));
        ps.push_histogram(0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(
            ps.pull_histogram(0),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        );
        let params = SplitParams {
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 0.0,
            ..SplitParams::default()
        };
        let res = ps.pull_split(0, &params);
        assert!((res.total_g - 3.0).abs() < 1e-6);
    }
}
