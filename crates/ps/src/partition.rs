use std::ops::Range;

/// The hybrid range-hash partitioner of Section 4.3.
///
/// A parameter vector (here: the feature axis of a histogram row) is first
/// split into `num_partitions` contiguous *ranges* — preserving fast range
/// queries — and each range is then assigned to a server by *hash*, which
/// balances load across servers. The default partition count equals the
/// number of servers, as in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeHashPartitioner {
    ranges: Vec<Range<usize>>,
    server_of: Vec<usize>,
    num_servers: usize,
    len: usize,
}

/// Fibonacci-style multiplicative hash for partition ids.
fn hash_id(id: u64) -> u64 {
    id.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31) ^ id.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

impl RangeHashPartitioner {
    /// Partitions `len` items into `num_partitions` contiguous ranges and
    /// assigns each range to one of `num_servers` servers.
    ///
    /// Assignment sorts partitions by hash and deals them round-robin, which
    /// randomizes placement (hash partition) while guaranteeing servers
    /// differ by at most one partition (the balance the paper wants from
    /// hashing, made deterministic).
    ///
    /// # Panics
    /// Panics if `num_partitions` or `num_servers` is zero.
    pub fn new(len: usize, num_partitions: usize, num_servers: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        assert!(num_servers > 0, "need at least one server");
        let base = len / num_partitions;
        let extra = len % num_partitions;
        let mut ranges = Vec::with_capacity(num_partitions);
        let mut start = 0;
        for p in 0..num_partitions {
            let size = base + usize::from(p < extra);
            ranges.push(start..start + size);
            start += size;
        }
        let mut order: Vec<usize> = (0..num_partitions).collect();
        order.sort_unstable_by_key(|&p| (hash_id(p as u64), p));
        let mut server_of = vec![0; num_partitions];
        for (slot, &p) in order.iter().enumerate() {
            server_of[p] = slot % num_servers;
        }
        Self {
            ranges,
            server_of,
            num_servers,
            len,
        }
    }

    /// Convenience: one partition per server (the paper's default).
    pub fn per_server(len: usize, num_servers: usize) -> Self {
        Self::new(len, num_servers, num_servers)
    }

    /// Total item count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the partitioned space is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.ranges.len()
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// The contiguous item range of partition `p`.
    pub fn range(&self, p: usize) -> Range<usize> {
        self.ranges[p].clone()
    }

    /// All ranges, in partition order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// The server that owns partition `p`.
    pub fn server_of(&self, p: usize) -> usize {
        self.server_of[p]
    }

    /// The partition containing item `i` (binary search over ranges).
    pub fn partition_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "item {i} out of range {}", self.len);
        self.ranges.partition_point(|r| r.end <= i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        let p = RangeHashPartitioner::new(103, 7, 3);
        assert_eq!(p.num_partitions(), 7);
        let mut pos = 0;
        for i in 0..7 {
            let r = p.range(i);
            assert_eq!(r.start, pos);
            pos = r.end;
        }
        assert_eq!(pos, 103);
    }

    #[test]
    fn per_server_is_balanced_bijection() {
        let p = RangeHashPartitioner::per_server(100, 8);
        let mut counts = vec![0; 8];
        for i in 0..8 {
            counts[p.server_of(i)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1), "counts={counts:?}");
    }

    #[test]
    fn many_partitions_balanced_across_servers() {
        let p = RangeHashPartitioner::new(1000, 40, 7);
        let mut counts = vec![0usize; 7];
        for i in 0..40 {
            counts[p.server_of(i)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "counts={counts:?}");
    }

    #[test]
    fn assignment_is_hash_shuffled() {
        // The hash step should not degenerate to identity assignment.
        let p = RangeHashPartitioner::per_server(64, 16);
        let identity = (0..16).all(|i| p.server_of(i) == i);
        assert!(!identity, "hash assignment degenerated to identity");
    }

    #[test]
    fn partition_of_matches_ranges() {
        let p = RangeHashPartitioner::new(50, 6, 2);
        for i in 0..50 {
            let part = p.partition_of(i);
            assert!(
                p.range(part).contains(&i),
                "item {i} not in partition {part}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = RangeHashPartitioner::new(77, 5, 5);
        let b = RangeHashPartitioner::new(77, 5, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn more_servers_than_partitions() {
        let p = RangeHashPartitioner::new(10, 2, 5);
        assert!(p.server_of(0) < 5);
        assert!(p.server_of(1) < 5);
        assert_ne!(p.server_of(0), p.server_of(1));
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn rejects_zero_partitions() {
        RangeHashPartitioner::new(10, 0, 1);
    }

    #[test]
    fn empty_space() {
        let p = RangeHashPartitioner::new(0, 3, 3);
        assert!(p.is_empty());
        assert!(p.ranges().iter().all(|r| r.is_empty()));
    }

    // ---- Degenerate grids (len < num_partitions) --------------------------
    // The block grid of the sparse exchange crosses data stripes with these
    // feature ranges, so the trailing-empty-partition behavior is
    // load-bearing: empty blocks must route nowhere and ship nothing.

    #[test]
    fn fewer_items_than_partitions_leaves_trailing_ranges_empty() {
        let p = RangeHashPartitioner::new(3, 8, 4);
        assert_eq!(p.num_partitions(), 8);
        // base = 0, extra = 3: the first three ranges get one item each,
        // the remaining five are empty (and all pinned at position 3).
        for i in 0..3 {
            assert_eq!(p.range(i), i..i + 1);
        }
        for i in 3..8 {
            assert!(p.range(i).is_empty(), "partition {i} should be empty");
            assert_eq!(p.range(i), 3..3);
        }
        // Coverage is still exact and gap-free.
        let total: usize = p.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn partition_of_on_degenerate_grid_skips_empty_ranges() {
        let p = RangeHashPartitioner::new(3, 8, 4);
        // Every item resolves to the unique nonempty partition holding it —
        // never to one of the empty ranges that share its boundary position.
        for i in 0..3 {
            let part = p.partition_of(i);
            assert_eq!(part, i);
            assert!(p.range(part).contains(&i));
        }
    }

    #[test]
    fn partition_of_boundaries_on_uneven_grid() {
        // 7 items over 3 partitions: sizes 3, 2, 2 — pin both edges of
        // every range.
        let p = RangeHashPartitioner::new(7, 3, 2);
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(1), 3..5);
        assert_eq!(p.range(2), 5..7);
        for (item, part) in [(0, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)] {
            assert_eq!(p.partition_of(item), part, "item {item}");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_of_past_the_end_panics_in_debug() {
        RangeHashPartitioner::new(3, 8, 4).partition_of(3);
    }

    #[test]
    fn degenerate_grid_server_assignment_is_balanced() {
        // Empty partitions still get server slots; the round-robin deal
        // keeps per-server partition counts within one of each other.
        let p = RangeHashPartitioner::new(2, 9, 3);
        let mut counts = vec![0usize; 3];
        for i in 0..9 {
            assert!(p.server_of(i) < 3);
            counts[p.server_of(i)] += 1;
        }
        assert_eq!(counts, vec![3, 3, 3]);
    }

    #[test]
    fn empty_partitions_cost_zero_wire_bytes() {
        // An empty feature range encodes to nothing on the sparse wire:
        // the PS push loop skips it before framing, so the only candidate
        // payload is the empty slice — whose frame the exchange never
        // sends. Pin that the slice for an empty range really is empty.
        let p = RangeHashPartitioner::new(3, 8, 4);
        let items: Vec<f32> = vec![1.0, 2.0, 3.0];
        for i in 3..8 {
            let r = p.range(i);
            assert!(items[r].is_empty());
        }
    }
}
