//! Sparse block frames for the PS histogram exchange.
//!
//! At the dimensionalities DimBoost targets, most histogram buckets of a
//! tree node are exactly zero (features with no instances in the node
//! contribute nothing), so dense f32 — or dense-quantized — rows pay
//! `α + n·β` for bytes that carry no information. This module serializes
//! one *feature block* (the contiguous feature range a
//! [`RangeHashPartitioner`](crate::RangeHashPartitioner) partition owns) of
//! a quantized row into a density-adaptive frame:
//!
//! * the per-block **scales** and exact **zero-bucket values** ride
//!   [`wire::encode_f32_sparse`] sub-frames (dense / bitmap / runs,
//!   whichever is smallest for that payload);
//! * the **codes** are bit-packed at `d` bits each (zero-bucket slots
//!   omitted — they ship exactly in the zero-value sub-frame) under the
//!   smaller of two layouts: *dense* (every slot) or *bitmap* (presence
//!   bits for `code ≠ zero point`, then only those codes).
//!
//! Decoding funnels through the same dequantize-add kernel as the dense
//! quantized path (`quantize::add_quantized_slice_into`), so the f32
//! operation sequence — and therefore the learned model — is bit-identical;
//! only the wire bytes differ. See DESIGN.md §14 for the determinism
//! argument.

use dimboost_simnet::wire::{self, SparseWireStats, WireEncoding};
use dimboost_simnet::wire::{Buf, BufMut, Bytes, BytesMut};

use crate::quantize::{add_quantized_slice_into, levels, QuantizedRow};
use crate::HistogramLayout;

/// One decoded feature block of a quantized row, indexed block-relative.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedBlock {
    bits: u8,
    /// Per block (2 per feature of the range: G then H): the scale.
    scales: Vec<f32>,
    /// Per block: the zero bucket's exact value.
    zero_values: Vec<f32>,
    /// One code per element of the range (zero-bucket slots hold the zero
    /// point, reconstructed at decode — they are never read by the kernel).
    codes: Vec<u16>,
}

impl QuantizedBlock {
    /// Decodes the block and adds it into `acc`, which covers exactly
    /// `layout.elem_range(features)` — the same kernel, and therefore the
    /// same f32 rounding, as [`QuantizedRow::add_features_into`].
    pub fn add_into(
        &self,
        layout: &HistogramLayout,
        features: std::ops::Range<usize>,
        acc: &mut [f32],
    ) {
        add_quantized_slice_into(
            self.bits,
            &self.scales,
            &self.zero_values,
            &self.codes,
            layout,
            features,
            acc,
        );
    }
}

/// Number of non-zero-bucket code slots in `features` (the slots the codes
/// section actually ships: each feature omits one G and one H zero-bucket
/// slot).
fn packed_slots(layout: &HistogramLayout, features: &std::ops::Range<usize>) -> usize {
    let elems = layout.elem_range(features.clone());
    elems.len() - 2 * features.len()
}

/// Appends `codes[..]` (each `< 2^bits`) LSB-first at `bits` bits each.
fn pack_codes(buf: &mut BytesMut, codes: &[u16], bits: u8) {
    let mut word = 0u32;
    let mut filled = 0u8;
    for &code in codes {
        word |= (code as u32) << filled;
        filled += bits;
        while filled >= 8 {
            buf.put_u8((word & 0xFF) as u8);
            word >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        buf.put_u8((word & 0xFF) as u8);
    }
}

/// Reads `count` codes packed by [`pack_codes`].
fn unpack_codes(bytes: &mut Bytes, count: usize, bits: u8) -> Vec<u16> {
    let need = (count * bits as usize).div_ceil(8);
    assert!(bytes.remaining() >= need, "truncated quantized block frame");
    let mut word = 0u32;
    let mut filled = 0u8;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        while filled < bits {
            word |= (bytes.get_u8() as u32) << filled;
            filled += 8;
        }
        out.push((word & ((1u32 << bits) - 1)) as u16);
        word >>= bits;
        filled -= bits;
    }
    out
}

/// Serializes the feature block `features` of `q` into a sparse frame.
/// Returns the frame plus a per-encoding byte/frame tally (the scales and
/// zero-value sub-frames count under their own chosen encodings; the codes
/// section counts under its dense-or-bitmap choice, including the 2-byte
/// frame header).
pub fn encode_quantized_block(
    q: &QuantizedRow,
    layout: &HistogramLayout,
    features: std::ops::Range<usize>,
) -> (Bytes, SparseWireStats) {
    let bits = q.bits();
    let zero_pt = levels(bits) as u16;
    let elems = layout.elem_range(features.clone());
    let scales = &q.scales()[2 * features.start..2 * features.end];
    let zero_values = &q.zero_values()[2 * features.start..2 * features.end];

    // Gather the shippable codes (zero-bucket slots omitted) block-relative.
    let mut packed = Vec::with_capacity(packed_slots(layout, &features));
    for f in features.clone() {
        let nb = layout.num_buckets(f);
        let zb = layout.zero_bucket(f);
        for block_start in [layout.g_index(f, 0), layout.h_index(f, 0)] {
            for k in 0..nb {
                if k != zb {
                    packed.push(q.codes()[block_start + k]);
                }
            }
        }
    }
    debug_assert_eq!(elems.len() - packed.len(), 2 * features.len());

    let mut stats = SparseWireStats::default();
    let mut buf = BytesMut::new();
    buf.put_u8(bits);

    let (scales_frame, scales_enc) = wire::encode_f32_sparse(scales);
    stats.record(scales_enc, scales_frame.len());
    buf.put_slice(&scales_frame);
    let (zeros_frame, zeros_enc) = wire::encode_f32_sparse(zero_values);
    stats.record(zeros_enc, zeros_frame.len());
    buf.put_slice(&zeros_frame);

    // Codes: dense (all slots at d bits) vs bitmap (presence bits for
    // code ≠ zero point, then only those). Smaller wins; ties go dense.
    let m = packed.len();
    let nnz = packed.iter().filter(|&&c| c != zero_pt).count();
    let dense_sz = (m * bits as usize).div_ceil(8);
    let bitmap_sz = m.div_ceil(8) + (nnz * bits as usize).div_ceil(8);
    let codes_start = buf.len();
    if dense_sz <= bitmap_sz {
        buf.put_u8(WireEncoding::Dense as u8);
        pack_codes(&mut buf, &packed, bits);
        stats.record(WireEncoding::Dense, buf.len() - codes_start + 1);
    } else {
        buf.put_u8(WireEncoding::Bitmap as u8);
        let mut bitmap = vec![0u8; m.div_ceil(8)];
        for (i, &c) in packed.iter().enumerate() {
            if c != zero_pt {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        buf.put_slice(&bitmap);
        let nonzero: Vec<u16> = packed.iter().copied().filter(|&c| c != zero_pt).collect();
        pack_codes(&mut buf, &nonzero, bits);
        stats.record(WireEncoding::Bitmap, buf.len() - codes_start + 1);
    }
    (buf.freeze(), stats)
}

/// Deserializes a frame produced by [`encode_quantized_block`] for the same
/// `layout`/`features`. Every scale, zero value, and code is reconstructed
/// exactly (sparse sub-frames preserve nonzero f32 bits; omitted code slots
/// are by definition the zero point).
///
/// # Panics
/// Panics on truncation or an unknown codes-layout tag.
pub fn decode_quantized_block(
    mut bytes: Bytes,
    layout: &HistogramLayout,
    features: std::ops::Range<usize>,
) -> QuantizedBlock {
    assert!(bytes.remaining() >= 1, "truncated quantized block frame");
    let bits = bytes.get_u8();
    assert!((2..=16).contains(&bits), "bad bit width {bits} in frame");
    let zero_pt = levels(bits) as u16;
    let (scales, _) = wire::read_f32_sparse(&mut bytes);
    let (zero_values, _) = wire::read_f32_sparse(&mut bytes);
    assert_eq!(scales.len(), 2 * features.len(), "scales length mismatch");
    assert_eq!(
        zero_values.len(),
        scales.len(),
        "zero-values length mismatch"
    );

    let m = packed_slots(layout, &features);
    assert!(bytes.remaining() >= 1, "truncated quantized block frame");
    let packed = match WireEncoding::from_tag(bytes.get_u8()) {
        WireEncoding::Dense => unpack_codes(&mut bytes, m, bits),
        WireEncoding::Bitmap => {
            let bm_len = m.div_ceil(8);
            assert!(
                bytes.remaining() >= bm_len,
                "truncated quantized block frame"
            );
            let mut bitmap = vec![0u8; bm_len];
            bytes.copy_to_slice(&mut bitmap);
            let nnz = (0..m)
                .filter(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
                .count();
            let nonzero = unpack_codes(&mut bytes, nnz, bits);
            let mut it = nonzero.into_iter();
            (0..m)
                .map(|i| {
                    if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                        it.next().expect("bitmap/codes count mismatch")
                    } else {
                        zero_pt
                    }
                })
                .collect()
        }
        other => panic!("codes section cannot use {other:?} layout"),
    };

    // Re-expand to one code per element, zero point in the zero-bucket slots.
    let elems = layout.elem_range(features.clone());
    let mut codes = vec![zero_pt; elems.len()];
    let base = elems.start;
    let mut it = packed.into_iter();
    for f in features.clone() {
        let nb = layout.num_buckets(f);
        let zb = layout.zero_bucket(f);
        for block_start in [layout.g_index(f, 0), layout.h_index(f, 0)] {
            for k in 0..nb {
                if k != zb {
                    codes[block_start + k - base] = it.next().expect("packed slot count mismatch");
                }
            }
        }
    }
    QuantizedBlock {
        bits,
        scales,
        zero_values,
        codes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::quantize_row;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout() -> HistogramLayout {
        HistogramLayout::with_zero_buckets(vec![4, 6, 3, 5, 4], vec![1, 0, 2, 4, 3])
    }

    /// A realistic sparse-node row: most features untouched (all-zero
    /// blocks), a couple active.
    fn sparse_row(layout: &HistogramLayout) -> Vec<f32> {
        let mut row = vec![0.0f32; layout.row_len()];
        for (f, mass) in [(1usize, -3.5f32), (3, 0.75)] {
            let zb = layout.zero_bucket(f);
            row[layout.g_index(f, zb)] = mass * 10.0;
            row[layout.h_index(f, zb)] = mass.abs() * 20.0;
            row[layout.g_index(f, (zb + 1) % layout.num_buckets(f))] = mass;
            row[layout.h_index(f, (zb + 1) % layout.num_buckets(f))] = mass.abs();
        }
        row
    }

    #[test]
    fn block_roundtrip_is_exact() {
        let layout = layout();
        let row = sparse_row(&layout);
        let mut rng = StdRng::seed_from_u64(3);
        let q = quantize_row(&row, &layout, 8, &mut rng);
        for features in [0..layout.num_features(), 0..2, 2..5, 1..1] {
            let (frame, stats) = encode_quantized_block(&q, &layout, features.clone());
            // The tally attributes every frame byte to some encoding.
            assert_eq!(stats.total_bytes() as usize, frame.len(), "{features:?}");
            let block = decode_quantized_block(frame, &layout, features.clone());
            // Decoded add must equal the dense quantized add bit-for-bit.
            let elems = layout.elem_range(features.clone());
            let mut dense_acc = vec![0.1f32; elems.len()];
            let mut sparse_acc = dense_acc.clone();
            q.add_features_into(&layout, features.clone(), &mut dense_acc);
            block.add_into(&layout, features, &mut sparse_acc);
            for (d, s) in dense_acc.iter().zip(&sparse_acc) {
                assert_eq!(d.to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn all_zero_block_is_tiny() {
        let layout = layout();
        let row = vec![0.0f32; layout.row_len()];
        let mut rng = StdRng::seed_from_u64(4);
        let q = quantize_row(&row, &layout, 8, &mut rng);
        let features = 0..layout.num_features();
        let (frame, _) = encode_quantized_block(&q, &layout, features.clone());
        // Far smaller than both the f32 row and the dense-quantized row.
        assert!(frame.len() < layout.row_len(), "{} bytes", frame.len());
        assert!(frame.len() < q.wire_bytes() / 2);
        let block = decode_quantized_block(frame, &layout, features.clone());
        let mut acc = vec![0.0f32; layout.row_len()];
        block.add_into(&layout, features, &mut acc);
        assert!(acc.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dense_codes_layout_on_dense_rows() {
        // Every bucket populated → bitmap presence bits are pure overhead
        // and the codes section must fall back to the dense layout.
        let layout = HistogramLayout::new(vec![8; 4]);
        let row: Vec<f32> = (0..layout.row_len()).map(|i| (i + 1) as f32).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let q = quantize_row(&row, &layout, 8, &mut rng);
        let (frame, stats) = encode_quantized_block(&q, &layout, 0..4);
        assert!(stats.frames[WireEncoding::Dense as usize] >= 1);
        let block = decode_quantized_block(frame, &layout, 0..4);
        let mut dense_acc = vec![0.0f32; layout.row_len()];
        let mut sparse_acc = dense_acc.clone();
        q.add_features_into(&layout, 0..4, &mut dense_acc);
        block.add_into(&layout, 0..4, &mut sparse_acc);
        assert_eq!(dense_acc, sparse_acc);
    }

    #[test]
    fn low_bit_widths_roundtrip() {
        let layout = layout();
        let row = sparse_row(&layout);
        for bits in [2u8, 4, 7, 16] {
            let mut rng = StdRng::seed_from_u64(bits as u64);
            let q = quantize_row(&row, &layout, bits, &mut rng);
            let (frame, _) = encode_quantized_block(&q, &layout, 0..5);
            let block = decode_quantized_block(frame, &layout, 0..5);
            let mut dense_acc = vec![0.0f32; layout.row_len()];
            let mut sparse_acc = dense_acc.clone();
            q.add_features_into(&layout, 0..5, &mut dense_acc);
            block.add_into(&layout, 0..5, &mut sparse_acc);
            for (d, s) in dense_acc.iter().zip(&sparse_acc) {
                assert_eq!(d.to_bits(), s.to_bits(), "bits={bits}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "truncated quantized block frame")]
    fn truncated_block_frame_panics() {
        let layout = layout();
        let row = sparse_row(&layout);
        let mut rng = StdRng::seed_from_u64(6);
        let q = quantize_row(&row, &layout, 8, &mut rng);
        let (frame, _) = encode_quantized_block(&q, &layout, 0..5);
        let cut = frame.len() - 1;
        decode_quantized_block(frame.slice(0..cut), &layout, 0..5);
    }

    #[test]
    fn pack_unpack_codes_all_widths() {
        for bits in 2u8..=16 {
            let max = (1u32 << bits) - 1;
            let codes: Vec<u16> = (0..100u32).map(|i| (i * 37 % (max + 1)) as u16).collect();
            let mut buf = BytesMut::new();
            pack_codes(&mut buf, &codes, bits);
            assert_eq!(buf.len(), (codes.len() * bits as usize).div_ceil(8));
            let mut frozen = buf.freeze();
            assert_eq!(unpack_codes(&mut frozen, codes.len(), bits), codes);
        }
    }
}
