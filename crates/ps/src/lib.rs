//! The DimBoost parameter server (Sections 4 and 6 of the paper).
//!
//! The PS stores the global model state as partitioned vectors (Figure 6):
//! quantile sketches (`QtSk`), sampled features (`SmpFeat`), the gradient
//! histograms of the active tree nodes (`GradHist`, `2^d − 1` rows of
//! `2·K·M·σ` values), and the per-node split results (`SpFeat`, `SpVal`,
//! `SpGain`). Workers interact with it through *push* (merge an update into
//! a parameter) and *pull* (query a parameter) operations; both are
//! user-definable, and DimBoost's two-phase split finding (Section 6.3) is
//! implemented exactly as the paper describes — by moving Algorithm 1's
//! split scan (lines 10–17) into the pull function so each server returns
//! one candidate split instead of its whole histogram shard.
//!
//! * [`RangeHashPartitioner`] — the hybrid range-hash partitioning of
//!   Section 4.3.
//! * [`HistogramLayout`] — the flat feature-major layout of one `GradHist`
//!   row.
//! * [`quantize`] — the low-precision (d-bit fixed point, stochastically
//!   rounded) histogram representation of Section 6.1 / Appendix A.1.
//! * [`split`] — the server-side split scan (the pull UDF) and the
//!   [`split::NodeSplit`] record it returns.
//! * [`ParameterServer`] — the sharded store itself, safe for concurrent
//!   worker threads.
//!
//! Communication accounting: every push/pull records the bytes and packages
//! it would put on the wire into a [`dimboost_simnet::StatsRecorder`];
//! phase-level simulated *time* is charged by the trainer using the Table 1
//! closed forms (see `dimboost-simnet`), so overlapping worker pushes are
//! not double-counted.

mod layout;
mod partition;
pub mod quantize;
mod server;
pub mod sparse;
pub mod split;

pub use layout::HistogramLayout;
pub use partition::RangeHashPartitioner;
pub use server::{ParameterServer, PsConfig};
pub use split::{NodeSplit, SplitParams};
