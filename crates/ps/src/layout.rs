use std::ops::Range;

use serde::{Deserialize, Serialize};

/// The flat layout of one `GradHist` row (Figure 6).
///
/// A histogram row concatenates, feature by feature, the first-order bucket
/// sums `G[0..k_f]` followed by the second-order sums `H[0..k_f]`, where
/// `k_f` is feature `f`'s bucket count (bucket counts vary per feature
/// because duplicate split candidates collapse). The layout maps features to
/// element offsets so the parameter server can shard rows by feature range
/// and scan shards without any side tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramLayout {
    /// `offsets[f]` is the element offset of feature `f`'s G block;
    /// `offsets[num_features]` is the total row length.
    offsets: Vec<usize>,
    /// Buckets per feature.
    buckets: Vec<u32>,
    /// Index of each feature's zero bucket (the bucket containing the value
    /// `0.0`). On sparse data this bucket carries almost all gradient mass,
    /// so the low-precision compressor ships it at full precision.
    zero_buckets: Vec<u32>,
}

impl HistogramLayout {
    /// Builds the layout from per-feature bucket counts, with all zero
    /// buckets at index 0 (correct for non-negative feature values).
    pub fn new(buckets: Vec<u32>) -> Self {
        let zero_buckets = vec![0; buckets.len()];
        Self::with_zero_buckets(buckets, zero_buckets)
    }

    /// Builds the layout with explicit zero-bucket indices per feature.
    ///
    /// # Panics
    /// Panics if the arrays disagree in length or a zero bucket is out of
    /// range for its feature.
    pub fn with_zero_buckets(buckets: Vec<u32>, zero_buckets: Vec<u32>) -> Self {
        assert_eq!(buckets.len(), zero_buckets.len(), "length mismatch");
        for (f, (&b, &z)) in buckets.iter().zip(&zero_buckets).enumerate() {
            assert!(z < b.max(1), "feature {f}: zero bucket {z} out of {b}");
        }
        let mut offsets = Vec::with_capacity(buckets.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &b in &buckets {
            acc += 2 * b as usize;
            offsets.push(acc);
        }
        Self {
            offsets,
            buckets,
            zero_buckets,
        }
    }

    /// The zero-bucket index of feature `f`.
    #[inline]
    pub fn zero_bucket(&self, f: usize) -> usize {
        self.zero_buckets[f] as usize
    }

    /// Number of features covered by this layout.
    pub fn num_features(&self) -> usize {
        self.buckets.len()
    }

    /// Total element count of one histogram row.
    pub fn row_len(&self) -> usize {
        *self
            .offsets
            .last()
            .expect("offsets always has a final entry")
    }

    /// Bucket count of feature `f`.
    pub fn num_buckets(&self, f: usize) -> usize {
        self.buckets[f] as usize
    }

    /// Element range of feature `f`'s G block.
    pub fn g_range(&self, f: usize) -> Range<usize> {
        let start = self.offsets[f];
        start..start + self.buckets[f] as usize
    }

    /// Element range of feature `f`'s H block.
    pub fn h_range(&self, f: usize) -> Range<usize> {
        let start = self.offsets[f] + self.buckets[f] as usize;
        start..start + self.buckets[f] as usize
    }

    /// Element offset of `G[bucket]` for feature `f`.
    #[inline]
    pub fn g_index(&self, f: usize, bucket: usize) -> usize {
        debug_assert!(bucket < self.buckets[f] as usize);
        self.offsets[f] + bucket
    }

    /// Element offset of `H[bucket]` for feature `f`.
    #[inline]
    pub fn h_index(&self, f: usize, bucket: usize) -> usize {
        debug_assert!(bucket < self.buckets[f] as usize);
        self.offsets[f] + self.buckets[f] as usize + bucket
    }

    /// Element range spanned by the contiguous feature range `features`
    /// (used to slice a row for one PS partition).
    pub fn elem_range(&self, features: Range<usize>) -> Range<usize> {
        self.offsets[features.start]..self.offsets[features.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_and_ranges() {
        let l = HistogramLayout::new(vec![3, 1, 4]);
        assert_eq!(l.num_features(), 3);
        assert_eq!(l.row_len(), 2 * (3 + 1 + 4));
        assert_eq!(l.g_range(0), 0..3);
        assert_eq!(l.h_range(0), 3..6);
        assert_eq!(l.g_range(1), 6..7);
        assert_eq!(l.h_range(1), 7..8);
        assert_eq!(l.g_range(2), 8..12);
        assert_eq!(l.h_range(2), 12..16);
    }

    #[test]
    fn point_indices() {
        let l = HistogramLayout::new(vec![2, 2]);
        assert_eq!(l.g_index(0, 1), 1);
        assert_eq!(l.h_index(0, 1), 3);
        assert_eq!(l.g_index(1, 0), 4);
        assert_eq!(l.h_index(1, 1), 7);
    }

    #[test]
    fn elem_range_spans_features() {
        let l = HistogramLayout::new(vec![3, 1, 4]);
        assert_eq!(l.elem_range(0..3), 0..16);
        assert_eq!(l.elem_range(1..2), 6..8);
        assert_eq!(l.elem_range(2..2), 8..8);
    }

    #[test]
    fn empty_layout() {
        let l = HistogramLayout::new(vec![]);
        assert_eq!(l.row_len(), 0);
        assert_eq!(l.num_features(), 0);
    }
}
